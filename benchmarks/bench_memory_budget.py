"""Engine-wide memory budget: identity gates plus out-of-core completion.

The memory budget (:mod:`repro.core.budget`) replaces the kernels' hard-coded
tile constants with one bytes ceiling and turns on spill-to-disk for the
growable buffers.  This driver gates its two contracts:

* **Identity gate** (every scale) — EMST edges/weights and HDBSCAN* labels
  under budgets from comfortable (``256M``) down to far below any tile floor
  (``1`` byte) must be **byte-identical** to the unbudgeted engine.  The
  budget may only change tile/chunk sizes, never results.
* **Out-of-core gate** (full scale) — EMST and HDBSCAN* at the headline
  ``n = 10^7`` must *complete* with the points memory-mapped from disk and
  the engine capped at ``512M``, and the run's resident-set growth must stay
  under ``budget + fixed overhead allowance``.  At smoke scale
  (``REPRO_BENCH_SCALE < 1``) the run still executes end to end — memmapped
  input, bounded budget, spill threshold forced low so the spill path is
  exercised — but the RSS ceiling is only recorded, not asserted, since a
  tiny run's RSS is dominated by the interpreter.

Every record in the JSON artifact (``REPRO_BENCH_JSON``, default
``BENCH_memory_budget.json``) carries wall-clock times, the budget's own
planned peak (:attr:`~repro.core.budget.MemoryBudget.peak_bytes`), spill
counters, and the measured process peak RSS
(:func:`repro.bench.harness.peak_rss_bytes`).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import memory_snapshot, peak_rss_bytes
from repro.core.budget import MemoryBudget, parse_memory_size
from repro.core.points import open_memmap_points
from repro.emst.api import emst
from repro.hdbscan.api import hdbscan

from _common import scaled

#: Budgets the identity gate sweeps: comfortable, tight, below every default
#: tile constant, and degenerate (clamps at the tile floors everywhere).
BUDGET_AXIS = ("256M", "32M", "4M", 1)

#: Scale of the identity-gate records (HDBSCAN*'s default core-distance path
#: is the chunked O(n^2) brute force, so this stays moderate).
IDENTITY_N = 4_000

#: Headline scale of the out-of-core gate (the ISSUE's n = 10^7 target).
OUT_OF_CORE_N = 10_000_000

#: The engine's bytes ceiling for the out-of-core run.
OUT_OF_CORE_BUDGET = "512M"

#: Fixed allowance on top of the budget for everything the budget does not
#: govern: the interpreter and NumPy, transient BLAS workspaces, and the page
#: cache the unlinked spill memmaps ride on (the kernel counts hot mapped
#: pages toward RSS even though it can drop them under pressure).
RSS_ALLOWANCE_BYTES = parse_memory_size("1G")

_FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0

_RESULTS: dict = {}


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    machine = _RESULTS.setdefault("machine", {})
    machine["scale"] = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    machine.update(memory_snapshot())
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_memory_budget.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def _budget_spec(budget) -> str:
    return MemoryBudget(budget).spec() if budget is not None else "unbounded"


def test_identity_across_budgets(benchmark):
    """EMST and HDBSCAN* results are byte-identical at every budget."""
    n = scaled(IDENTITY_N)
    points = np.random.default_rng(7).random((n, 3))
    times: dict = {}
    runs: dict = {}

    def run_all():
        for budget in (None,) + BUDGET_AXIS:
            start = time.perf_counter()
            tree = emst(points, method="memogfk", memory_budget=budget)
            clustering = hdbscan(points, min_pts=10, memory_budget=budget)
            times[_budget_spec(budget)] = time.perf_counter() - start
            runs[_budget_spec(budget)] = (tree, clustering)
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    ref_tree, ref_clustering = runs["unbounded"]
    ref_edges = ref_tree.edges.as_arrays()
    ref_labels = ref_clustering.eom_labels()
    for budget in BUDGET_AXIS:
        spec = _budget_spec(budget)
        tree, clustering = runs[spec]
        for reference, candidate in zip(ref_edges, tree.edges.as_arrays()):
            assert np.array_equal(reference, candidate), (
                f"EMST diverged under memory_budget={spec}"
            )
        assert np.array_equal(
            ref_clustering.core_distances, clustering.core_distances
        ), f"core distances diverged under memory_budget={spec}"
        assert np.array_equal(ref_labels, clustering.eom_labels()), (
            f"HDBSCAN* labels diverged under memory_budget={spec}"
        )

    for spec, seconds in times.items():
        print(f"[memory-budget] identity n={n} budget={spec}: {seconds:.3f}s")
    _record(
        "identity",
        {
            "n": n,
            "budgets": {spec: {"seconds": seconds} for spec, seconds in times.items()},
            "byte_identical": True,
        },
    )


def test_out_of_core_completion(benchmark):
    """EMST + HDBSCAN* at n = 10^7 complete under a fixed 512M engine budget.

    The points live in a ``.npy`` file and enter the engine as a read-only
    memory map (never copied into budgeted RAM); the edge buffers spill to
    unlinked temporary-file memmaps past the budget's threshold.  At full
    scale the resident-set growth of the measured region must stay under
    ``budget + RSS_ALLOWANCE_BYTES``.
    """
    n = scaled(OUT_OF_CORE_N)
    budget_bytes = parse_memory_size(OUT_OF_CORE_BUDGET)
    # Cap the spill threshold at one edge-endpoint column so smoke-scale runs
    # exercise the spill path too, instead of only at 10^7.
    budget = MemoryBudget(
        OUT_OF_CORE_BUDGET,
        spill_threshold=max(min(budget_bytes // 8, n * 8), 1 << 16),
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-ooc-") as tmp:
        npy_path = Path(tmp) / "points.npy"
        # Stream the points to disk in slabs so the generator itself never
        # holds the full array (the whole point of the out-of-core run).
        writer = np.lib.format.open_memmap(
            npy_path, mode="w+", dtype=np.float64, shape=(n, 2)
        )
        rng = np.random.default_rng(11)
        slab = 1 << 20
        for start in range(0, n, slab):
            stop = min(start + slab, n)
            writer[start:stop] = rng.random((stop - start, 2))
        writer.flush()
        del writer

        points = open_memmap_points(npy_path)
        rss_before = peak_rss_bytes()
        times: dict = {}
        results: dict = {}

        def run_pipelines():
            start = time.perf_counter()
            results["emst"] = emst(points, method="memogfk", memory_budget=budget)
            times["emst"] = time.perf_counter() - start
            start = time.perf_counter()
            results["hdbscan"] = hdbscan(
                points,
                min_pts=10,
                method="memogfk",
                compute_dendrogram=False,
                memory_budget=budget,
            )
            times["hdbscan"] = time.perf_counter() - start
            return times

        benchmark.pedantic(run_pipelines, rounds=1, iterations=1)

        assert results["emst"].num_edges == n - 1
        assert results["hdbscan"].mst.num_edges == n - 1

        rss_after = peak_rss_bytes()
        rss_delta = (
            rss_after - rss_before
            if rss_before is not None and rss_after is not None
            else None
        )
        ceiling = budget_bytes + RSS_ALLOWANCE_BYTES
        for stage, seconds in times.items():
            print(f"[memory-budget] out-of-core n={n} {stage}: {seconds:.3f}s")
        print(
            f"[memory-budget] rss_delta={rss_delta} ceiling={ceiling} "
            f"planned_peak={budget.peak_bytes} spilled={budget.spilled_buffers}"
        )
        _record(
            "out_of_core",
            {
                "n": n,
                "budget": budget.spec(),
                "budget_bytes": budget_bytes,
                "rss_allowance_bytes": RSS_ALLOWANCE_BYTES,
                "times": times,
                "emst_total_weight": results["emst"].total_weight,
                "peak_rss_before_bytes": rss_before,
                "peak_rss_after_bytes": rss_after,
                "rss_delta_bytes": rss_delta,
                "budget_peak_bytes": int(budget.peak_bytes),
                "spilled_buffers": int(budget.spilled_buffers),
                "spilled_bytes": int(budget.spilled_bytes),
                "gate_active": bool(_FULL_SCALE and rss_delta is not None),
            },
        )
        if _FULL_SCALE and rss_delta is not None:
            assert rss_delta <= ceiling, (
                f"out-of-core RSS growth {rss_delta} exceeds the "
                f"{budget.spec()} budget + {RSS_ALLOWANCE_BYTES} allowance"
            )
