"""Flat vs. legacy kd-tree engine: build and all-points kNN throughput.

This driver records the speedup of the array-native
:class:`~repro.spatial.flat.FlatKDTree` (structure-of-arrays storage, batched
frontier traversals) over the historical node-object tree preserved in
:mod:`repro.spatial.legacy` (one Python object per node, per-query recursive
traversal).  The headline configuration is the all-points k-NN on 20k uniform
2-D points — the core-distance workload of HDBSCAN* — where the flat engine
must be at least 2x faster end to end; in practice the batched traversal wins
by a much larger margin.

Run with ``pytest benchmarks/bench_flat_tree.py -s`` to see the table; set
``REPRO_BENCH_SCALE`` to grow or shrink the dataset sizes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.spatial import KDTree, knn
from repro.spatial.legacy import LegacyKDTree, legacy_knn

from _common import scaled

#: (n, d, k, leaf_size) configurations; the first is the acceptance headline.
CONFIGS = [
    (20_000, 2, 10, 32),
    (5_000, 5, 10, 32),
]


def _measure(points: np.ndarray, k: int, leaf_size: int):
    start = time.perf_counter()
    flat_tree = KDTree(points, leaf_size=leaf_size)
    flat_build = time.perf_counter() - start
    start = time.perf_counter()
    _, flat_dists = knn(flat_tree, k)
    flat_query = time.perf_counter() - start

    start = time.perf_counter()
    legacy_tree = LegacyKDTree(points, leaf_size=leaf_size)
    legacy_build = time.perf_counter() - start
    start = time.perf_counter()
    _, legacy_dists = legacy_knn(legacy_tree, k)
    legacy_query = time.perf_counter() - start

    assert np.allclose(flat_dists, legacy_dists, rtol=1e-12, atol=0)
    return flat_build, flat_query, legacy_build, legacy_query


@pytest.mark.parametrize("n,d,k,leaf_size", CONFIGS)
def test_flat_tree_speedup(benchmark, n, d, k, leaf_size):
    """Flat engine must be >= 2x faster than the node-object path."""
    points = np.random.default_rng(0).random((scaled(n), d))
    flat_build, flat_query, legacy_build, legacy_query = benchmark.pedantic(
        _measure, args=(points, k, leaf_size), rounds=1, iterations=1
    )
    build_speedup = legacy_build / flat_build
    query_speedup = legacy_query / flat_query
    total_speedup = (legacy_build + legacy_query) / (flat_build + flat_query)
    print(
        f"\n[flat-tree] n={points.shape[0]} d={d} k={k} leaf={leaf_size}: "
        f"build {legacy_build:.3f}s -> {flat_build:.3f}s ({build_speedup:.1f}x), "
        f"all-points kNN {legacy_query:.3f}s -> {flat_query:.3f}s "
        f"({query_speedup:.1f}x), end-to-end {total_speedup:.1f}x"
    )
    assert total_speedup >= 2.0
