"""Table 3 — sequential external-baseline comparison (mlpack Dual-Tree Borůvka).

The paper's Table 3 lists mlpack's sequential Dual-Tree Borůvka EMST times and
reports that the paper's sequential EMST-MemoGFK is 0.89-4.17x faster (2.44x
on average).  mlpack is not available offline, so the in-repo
``emst_dualtree_boruvka`` (kd-tree Borůvka with component pruning) plays its
role; the driver reports the per-dataset time of both methods and the ratio.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, measure
from repro.emst import emst_dualtree_boruvka, emst_memogfk

from _common import dataset

DATASETS = {
    "2D-UniformFill": 800,
    "2D-SS-varden": 800,
    "3D-GeoLife": 700,
    "7D-Household": 500,
    "10D-HT": 400,
}


def test_table3_sequential_baseline_comparison(benchmark):
    """Regenerate Table 3: dual-tree Borůvka baseline vs sequential MemoGFK."""
    rows = []
    ratios = []
    for name, size in DATASETS.items():
        points = dataset(name, size)
        baseline, baseline_time = measure(emst_dualtree_boruvka, points)
        ours, ours_time = measure(emst_memogfk, points)
        assert baseline.is_spanning_tree() and ours.is_spanning_tree()
        assert abs(baseline.total_weight - ours.total_weight) < 1e-6 * max(
            1.0, ours.total_weight
        )
        ratio = baseline_time / ours_time
        ratios.append(ratio)
        rows.append(
            [f"{name}-{points.shape[0]}", f"{baseline_time:.3f}", f"{ours_time:.3f}", f"{ratio:.2f}x"]
        )
    print()
    print(
        format_table(
            ["dataset", "DualTreeBoruvka (s)", "EMST-MemoGFK 1T (s)", "baseline / ours"],
            rows,
            title="Table 3: sequential baseline comparison (mlpack substitute)",
        )
    )
    print(f"average ratio: {np.mean(ratios):.2f}x (paper reports 2.44x on average vs mlpack)")

    # Shape check: our sequential WSPD-based method should not lose to the
    # point-by-point Borůvka baseline on any dataset at this scale.
    assert min(ratios) >= 0.8

    points = dataset("2D-UniformFill", DATASETS["2D-UniformFill"])
    benchmark.pedantic(emst_dualtree_boruvka, args=(points,), rounds=1, iterations=1)
