"""Serving-layer gates: zero-refit re-cuts, throughput, predict quality.

The serving layer exists so that one expensive fit answers many cheap
queries.  This driver records and gates the claims behind that split:

* **Re-cut vs refit gate** — one :func:`repro.serve.fit_state` fit, then
  epsilon re-cuts off the frozen arrays.  A *warm* re-cut (LRU hit) must be
  at least 100x faster than a cold ``HDBSCAN(epsilon=...).fit_predict``
  refit; the artifact also records the cold (computed, uncached) re-cut
  time, which is itself orders of magnitude under a refit.
* **Throughput gate** — a mixed re-cut workload (distinct cuts plus
  repeats) answered through :meth:`FitState.recut` and through a full
  :class:`~repro.serve.server.ServingEngine` request loop, reported with
  the harness's ``requests_per_second`` / ``latency_p50_s`` /
  ``latency_p99_s`` keys.  The state-level loop must sustain >= 1000
  re-cut requests/sec.
* **Predict quality gate** — ``approximate_predict`` on the training points
  must reproduce the fitted labels (ARI >= 0.95; exact-duplicate points are
  the only tolerated source of slack), and perturbed near-training queries
  are recorded alongside.
* **Save/load identity** — ``save`` -> ``load_state`` -> ``recut`` must be
  byte-identical to the in-memory state, and the artifact records state
  file size and save/load wall clocks.

JSON artifact: ``REPRO_BENCH_JSON`` (default ``BENCH_serving.json``),
scaled by ``REPRO_BENCH_SCALE`` like every other driver.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bench.harness import latency_stats, memory_snapshot, timed_requests
from repro.estimators import HDBSCAN
from repro.hdbscan import adjusted_rand_index
from repro.serve import ServingEngine, approximate_predict, fit_state, load_state

from _common import scaled

#: Points in the benchmark fit; the issue's gates are stated at n=20k.
BENCH_N = 20_000

#: Fitted parameters of the serving state under test.
MIN_PTS = 10
MIN_CLUSTER_SIZE = 5

#: Distinct epsilon cuts in the throughput workload; repeats hit the LRU.
DISTINCT_EPSILONS = 32

_FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0

_RESULTS: dict = {}

_STATE_CACHE: dict = {}


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    machine = _RESULTS.setdefault("machine", {})
    machine["scale"] = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    machine.update(memory_snapshot())
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_serving.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def _points(n: int) -> np.ndarray:
    return np.random.default_rng(17).random((n, 3))


def _fitted_state(n: int):
    """One shared fit per scale (the whole point of serving: fit once)."""
    if n not in _STATE_CACHE:
        start = time.perf_counter()
        state = fit_state(
            _points(n), min_pts=MIN_PTS, min_cluster_size=MIN_CLUSTER_SIZE
        )
        _STATE_CACHE[n] = (state, time.perf_counter() - start)
    return _STATE_CACHE[n]


def _epsilons(count: int) -> list:
    return [round(0.05 + 0.01 * index, 4) for index in range(count)]


def test_recut_vs_refit(benchmark):
    """A warm re-cut must beat a cold refit by >= 100x."""
    n = scaled(BENCH_N)
    report: dict = {}

    def run():
        state, fit_seconds = _fitted_state(n)
        epsilon = 0.25

        start = time.perf_counter()
        refit_labels = HDBSCAN(
            min_pts=MIN_PTS,
            min_cluster_size=MIN_CLUSTER_SIZE,
            epsilon=epsilon,
        ).fit_predict(_points(n))
        refit_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cold = state.recut(epsilon=epsilon)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = state.recut(epsilon=epsilon)
        warm_seconds = time.perf_counter() - start

        assert np.array_equal(cold.labels, refit_labels), (
            "serving re-cut diverged from a cold refit at the same epsilon"
        )
        assert warm.labels is cold.labels, "second identical cut missed the LRU"
        report.update(
            n=n,
            epsilon=epsilon,
            fit_seconds=fit_seconds,
            refit_seconds=refit_seconds,
            cold_recut_seconds=cold_seconds,
            warm_recut_seconds=warm_seconds,
            cold_speedup=refit_seconds / cold_seconds,
            warm_speedup=refit_seconds / warm_seconds,
        )
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"[serving] recut-vs-refit n={n}: refit={report['refit_seconds']:.3f}s "
        f"cold={report['cold_recut_seconds'] * 1e3:.2f}ms "
        f"(x{report['cold_speedup']:.0f}) "
        f"warm={report['warm_recut_seconds'] * 1e6:.0f}us "
        f"(x{report['warm_speedup']:.0f})"
    )
    assert report["warm_speedup"] >= 100.0, (
        f"warm re-cut is only {report['warm_speedup']:.1f}x faster than a "
        f"refit; the serving layer gates >= 100x"
    )
    _record("recut_vs_refit", report)


def test_recut_throughput(benchmark):
    """A mixed re-cut workload must sustain >= 1000 requests/sec."""
    n = scaled(BENCH_N)
    repeats = 40 if _FULL_SCALE else 10
    report: dict = {}

    def run():
        state, _ = _fitted_state(n)
        epsilons = _epsilons(DISTINCT_EPSILONS)
        workload = [epsilons[i % len(epsilons)] for i in range(len(epsilons) * repeats)]

        # State-level loop: the serving primitive the >=1000 req/s gate is on.
        latencies = []
        for epsilon in workload:
            start = time.perf_counter()
            state.recut(epsilon=epsilon)
            latencies.append(time.perf_counter() - start)
        report["recut"] = latency_stats(latencies)
        report["recut"]["cache"] = state.cache_info()

        # Engine-level loop: full request dicts through ServingEngine.handle
        # (includes list serialization of every label vector).
        engine = ServingEngine(state)
        requests = [{"op": "recut", "epsilon": epsilon} for epsilon in workload]
        responses, engine_stats = timed_requests(engine.handle, requests)
        assert all(response["ok"] for response in responses)
        report["engine"] = engine_stats
        report["n"] = n
        report["distinct_cuts"] = len(epsilons)
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    recut = report["recut"]
    print(
        f"[serving] throughput n={n}: recut {recut['requests_per_second']:.0f} req/s "
        f"(p50={recut['latency_p50_s'] * 1e6:.0f}us "
        f"p99={recut['latency_p99_s'] * 1e6:.0f}us), engine "
        f"{report['engine']['requests_per_second']:.0f} req/s"
    )
    assert recut["requests_per_second"] >= 1000.0, (
        f"re-cut throughput {recut['requests_per_second']:.0f} req/s is under "
        f"the 1000 req/s serving gate"
    )
    _record("throughput", report)


def test_predict_quality(benchmark):
    """Predicting the training set must reproduce the fitted labels."""
    n = scaled(BENCH_N)
    report: dict = {}

    def run():
        state, _ = _fitted_state(n)
        fitted = state.recut().labels

        start = time.perf_counter()
        labels, probabilities = approximate_predict(state, state.points)
        predict_seconds = time.perf_counter() - start
        train_ari = adjusted_rand_index(fitted, labels)

        rng = np.random.default_rng(23)
        jitter = state.points + rng.normal(scale=1e-3, size=state.points.shape)
        near_labels, _ = approximate_predict(state, jitter)
        near_ari = adjusted_rand_index(fitted, near_labels)

        report.update(
            n=n,
            predict_seconds=predict_seconds,
            predict_points_per_second=n / predict_seconds,
            train_ari=float(train_ari),
            near_train_ari=float(near_ari),
            probabilities_in_unit_interval=bool(
                (probabilities >= 0).all() and (probabilities <= 1).all()
            ),
        )
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"[serving] predict n={n}: train ARI={report['train_ari']:.4f} "
        f"near-train ARI={report['near_train_ari']:.4f} "
        f"({report['predict_points_per_second']:.0f} pts/s)"
    )
    assert report["train_ari"] >= 0.95, (
        f"approximate_predict only reaches ARI {report['train_ari']:.3f} "
        f"against the fitted labels; the serving layer gates >= 0.95"
    )
    assert report["probabilities_in_unit_interval"]
    _record("predict_quality", report)


def test_save_load_identity(benchmark, tmp_path):
    """save -> load_state -> recut must match the in-memory state exactly."""
    n = scaled(BENCH_N)
    path = tmp_path / "state.npz"
    report: dict = {}

    def run():
        state, _ = _fitted_state(n)
        start = time.perf_counter()
        state.save(path)
        save_seconds = time.perf_counter() - start

        start = time.perf_counter()
        loaded = load_state(path)
        load_seconds = time.perf_counter() - start

        for epsilon in (None, 0.2, 0.5):
            kwargs = {} if epsilon is None else {"epsilon": epsilon}
            original = state.recut(**kwargs)
            restored = loaded.recut(**kwargs)
            assert original.labels.tobytes() == restored.labels.tobytes()
            assert (
                original.probabilities.tobytes() == restored.probabilities.tobytes()
            )
        report.update(
            n=n,
            state_bytes=os.path.getsize(path),
            save_seconds=save_seconds,
            load_seconds=load_seconds,
            byte_identical=True,
        )
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"[serving] save/load n={n}: {report['state_bytes'] / 1e6:.2f} MB, "
        f"save={report['save_seconds']:.3f}s load={report['load_seconds']:.3f}s"
    )
    _record("save_load", report)
