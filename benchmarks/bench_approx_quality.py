"""Accuracy-versus-speed curves for the approximation subsystem.

The approximate methods are the first whose output is *contractually*
approximate, so this driver both measures and **gates** the contract:

* **Weight gate (every scale, fails CI)** — for every ε in
  :data:`EPSILONS` and every quality dataset, the approximate EMST's total
  weight must lie in ``[w_exact, (1 + ε) · w_exact]``, and likewise for the
  approximate mutual-reachability MST.  The gate runs at smoke scale in CI
  and at any manual scale.
* **Quality curves** — weight ratio and wall clock per ε for
  ``approx_emst`` / ``approx_hdbscan``, plus the adjusted Rand index of the
  approximate HDBSCAN* flat clustering against the exact pipeline's on the
  registry datasets (the documented quality contract).
* **Speedup gate (full scale only)** — at the acceptance point ε = 0.5 and
  the headline n = 20k on ``7D-Household`` (clustered, moderate dimension —
  the workload class where the exact engine works hardest per WSPD pair;
  measured ~1.4x), ``approx_emst`` must be measurably faster than exact
  MemoGFK.  Below ε ≈ 0.25 — or on high-dimensional quasi-uniform data
  (``10D-HT``) — the ε-certified decomposition becomes denser than what the
  exact engine traverses and the approximation loses its edge; the curves
  in the artifact show the crossover, prefer exact there.

Results go to the JSON artifact (``REPRO_BENCH_JSON``, default
``BENCH_approx_quality.json``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.approx import approx_emst, approx_hdbscan
from repro.bench.harness import memory_snapshot
from repro.emst import emst_memogfk
from repro.hdbscan import adjusted_rand_index, hdbscan

from _common import scaled

#: Headline scale of the ε = 0.5 speedup acceptance criterion.
HEADLINE_N = 20_000

#: Dataset of the speedup gate: clustered, moderate dimension — the regime
#: where exact MemoGFK does the most per-pair work.
HEADLINE_DATASET = "7D-Household"

#: The ε axis of every curve.
EPSILONS = (0.01, 0.1, 0.5, 1.0)

#: Registry datasets of the quality curves (weight ratio + ARI), at a size
#: where the exact references stay cheap across the whole grid.
QUALITY_N = 4_000
QUALITY_DATASETS = (
    "2D-UniformFill",
    "5D-SS-varden",
    "3D-GeoLife",
    "7D-Household",
)

#: Acceptance point of the speedup gate.
SPEEDUP_EPSILON = 0.5

MIN_PTS = 10
MIN_CLUSTER_SIZE = 5

_RESULTS: dict = {}


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _record(name: str, payload) -> None:
    _RESULTS[name] = payload
    _RESULTS.setdefault("machine", {})["scale"] = _scale()
    _RESULTS["machine"].update(memory_snapshot())
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_approx_quality.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def _dataset(name: str, n: int) -> np.ndarray:
    from repro.datasets import load_dataset

    return load_dataset(name, n=scaled(n), seed=0)


def _timed(function, repeats: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_emst_weight_gate_and_curves(benchmark):
    """Weight ratio and wall clock per ε; the (1+ε) gate fails at any scale."""
    records = {}

    def run_all():
        for name in QUALITY_DATASETS:
            points = _dataset(name, QUALITY_N)
            exact_time, exact = _timed(lambda: emst_memogfk(points))
            exact_weight = exact.total_weight
            curve = {"n": int(points.shape[0]), "exact_seconds": exact_time}
            for epsilon in EPSILONS:
                seconds, result = _timed(lambda: approx_emst(points, epsilon))
                ratio = result.total_weight / exact_weight
                curve[f"eps_{epsilon}"] = {
                    "seconds": seconds,
                    "weight_ratio": ratio,
                    "speedup_vs_exact": exact_time / seconds,
                    "wspd_pairs": result.stats.get("wspd_pairs"),
                    "pairs_refined": result.stats.get("pairs_refined"),
                }
                # THE GATE: contractual (1+eps) bound, never below exact.
                assert result.is_spanning_tree()
                slack = 1e-9 * exact_weight
                assert result.total_weight >= exact_weight - slack, (
                    f"{name} eps={epsilon}: approximate tree lighter than exact"
                )
                assert result.total_weight <= (1 + epsilon) * exact_weight + slack, (
                    f"{name} eps={epsilon}: weight ratio {ratio:.6f} exceeds 1+eps"
                )
            records[name] = curve
        return records

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n[approx] EMST weight-ratio / speedup curves")
    for name, curve in records.items():
        row = "  ".join(
            f"eps={eps}: ratio={curve[f'eps_{eps}']['weight_ratio']:.5f} "
            f"({curve[f'eps_{eps}']['speedup_vs_exact']:.2f}x)"
            for eps in EPSILONS
        )
        print(f"  {name} (n={curve['n']}): {row}")
    _record("emst_quality", records)


def test_hdbscan_weight_gate_and_ari_curves(benchmark):
    """Mutual-reachability weight gate plus ARI-vs-exact quality curves."""
    records = {}

    def run_all():
        for name in QUALITY_DATASETS:
            points = _dataset(name, QUALITY_N)
            min_pts = min(MIN_PTS, points.shape[0])
            exact_time, exact = _timed(lambda: hdbscan(points, min_pts=min_pts))
            exact_weight = exact.mst.total_weight
            exact_labels = exact.eom_labels(min_cluster_size=MIN_CLUSTER_SIZE)
            curve = {"n": int(points.shape[0]), "exact_seconds": exact_time}
            for epsilon in EPSILONS:
                seconds, result = _timed(
                    lambda: approx_hdbscan(points, min_pts, epsilon)
                )
                weight = result.mst.total_weight
                labels = result.eom_labels(min_cluster_size=MIN_CLUSTER_SIZE)
                ari = adjusted_rand_index(exact_labels, labels)
                curve[f"eps_{epsilon}"] = {
                    "seconds": seconds,
                    "weight_ratio": weight / exact_weight,
                    "ari_vs_exact": ari,
                }
                assert result.mst.is_spanning_tree()
                slack = 1e-9 * exact_weight
                assert weight >= exact_weight - slack, (
                    f"{name} eps={epsilon}: approximate MR-MST lighter than exact"
                )
                assert weight <= (1 + epsilon) * exact_weight + slack, (
                    f"{name} eps={epsilon}: MR weight ratio exceeds 1+eps"
                )
            records[name] = curve
        return records

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n[approx] HDBSCAN* weight-ratio / ARI curves")
    for name, curve in records.items():
        row = "  ".join(
            f"eps={eps}: ratio={curve[f'eps_{eps}']['weight_ratio']:.5f} "
            f"ARI={curve[f'eps_{eps}']['ari_vs_exact']:.3f}"
            for eps in EPSILONS
        )
        print(f"  {name} (n={curve['n']}): {row}")
    _record("hdbscan_quality", records)


def test_headline_speedup_gate(benchmark):
    """ε = 0.5 must beat exact MemoGFK at the headline scale (full scale only)."""
    n = scaled(HEADLINE_N)
    points = _dataset(HEADLINE_DATASET, HEADLINE_N)

    def run_both():
        exact_time, exact = _timed(lambda: emst_memogfk(points), repeats=2)
        approx_time, approx = _timed(
            lambda: approx_emst(points, SPEEDUP_EPSILON), repeats=2
        )
        return exact_time, approx_time, exact, approx

    exact_time, approx_time, exact, approx = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    speedup = exact_time / approx_time
    ratio = approx.total_weight / exact.total_weight
    print(
        f"\n[approx] headline {HEADLINE_DATASET} n={n}: "
        f"exact={exact_time:.2f}s approx(eps={SPEEDUP_EPSILON})={approx_time:.2f}s "
        f"speedup={speedup:.2f}x weight_ratio={ratio:.5f}"
    )
    _record(
        "headline_speedup",
        {
            "dataset": HEADLINE_DATASET,
            "n": n,
            "epsilon": SPEEDUP_EPSILON,
            "exact_seconds": exact_time,
            "approx_seconds": approx_time,
            "speedup": speedup,
            "weight_ratio": ratio,
        },
    )
    # The weight contract holds at every scale.
    assert approx.is_spanning_tree()
    assert ratio <= 1 + SPEEDUP_EPSILON + 1e-9
    assert approx.total_weight >= exact.total_weight * (1 - 1e-9)
    if _scale() >= 1.0:
        # The acceptance criterion: measurably faster than exact MemoGFK at
        # n=20k.  Smoke-scale runs (CI) skip the timing gate — tiny inputs
        # sit below the engine's batching thresholds — but still enforce the
        # weight contract above.
        assert speedup > 1.0, (
            f"approx_emst(eps={SPEEDUP_EPSILON}) was not faster than exact "
            f"MemoGFK at n={n}: {approx_time:.2f}s vs {exact_time:.2f}s"
        )
