"""Ablation — GFK batch-threshold schedule: doubling beta vs incrementing it.

The paper doubles beta every round (Algorithm 2, line 10) "to ensure that
there are a logarithmic number of rounds and hence better depth", in contrast
to Chatterjee et al.'s sequential schedule that increases beta by 1.  This
driver compares the two schedules on round counts (the depth proxy) and
verifies both produce the same tree.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, measure
from repro.emst import emst_gfk

from _common import dataset

DATASETS = {"2D-UniformFill": 800, "3D-SS-varden": 700}


def test_ablation_beta_schedule(benchmark):
    """Rounds and time: beta doubling (parallel) vs beta increment (sequential)."""
    rows = []
    for name, size in DATASETS.items():
        points = dataset(name, size)
        doubling, doubling_time = measure(emst_gfk, points, beta_growth="double")
        incrementing, incrementing_time = measure(emst_gfk, points, beta_growth="increment")
        assert abs(doubling.total_weight - incrementing.total_weight) < 1e-6
        assert doubling.stats["rounds"] <= incrementing.stats["rounds"]
        assert doubling.stats["rounds"] <= 2 * int(np.log2(points.shape[0])) + 2
        rows.append(
            [
                f"{name}-{points.shape[0]}",
                doubling.stats["rounds"],
                f"{doubling_time:.3f}",
                incrementing.stats["rounds"],
                f"{incrementing_time:.3f}",
            ]
        )

    print()
    print(
        format_table(
            ["dataset", "rounds (double)", "time (s)", "rounds (increment)", "time (s)"],
            rows,
            title="Ablation: GFK beta schedule (doubling vs +1)",
        )
    )

    points = dataset("2D-UniformFill", DATASETS["2D-UniformFill"])
    benchmark.pedantic(
        emst_gfk, args=(points,), kwargs={"beta_growth": "double"}, rounds=1, iterations=1
    )
