"""Figure 8 — decomposition of running time into phases.

The paper breaks the 48-core running time of each method into kd-tree
construction, WSPD traversal, Kruskal, core-distance computation, Delaunay
triangulation and dendrogram construction.  Every algorithm in this library
records per-phase wall-clock timings in its ``stats``; the driver prints the
same breakdown and checks the qualitative statements the paper makes about it
(EMST-MemoGFK spends the least time in WSPD of the three WSPD methods;
HDBSCAN*-MemoGFK spends less WSPD time than HDBSCAN*-GanTao).
"""

from __future__ import annotations

from repro.bench import format_table, phase_breakdown
from repro.dendrogram import dendrogram_topdown
from repro.emst import emst_delaunay, emst_gfk, emst_memogfk, emst_naive
from repro.hdbscan import hdbscan_mst_gantao, hdbscan_mst_memogfk

from _common import dataset

DATASETS = {"2D-UniformFill": 1000, "3D-SS-varden": 800, "7D-Household": 500}
MIN_PTS = 10
PHASES = ["build-tree", "wspd", "bccp", "kruskal", "wspd+kruskal", "core-dist", "delaunay", "emst", "dendrogram"]


def _phases_of(stats):
    breakdown = phase_breakdown(stats)
    return {phase: breakdown.get(phase, 0.0) for phase in PHASES}


def test_fig8_time_decomposition(benchmark):
    """Regenerate the per-phase time decomposition behind Figure 8."""
    rows = []
    for name, size in DATASETS.items():
        points = dataset(name, size)
        label = f"{name}-{points.shape[0]}"

        emst_results = {
            "EMST-Naive": emst_naive(points),
            "EMST-GFK": emst_gfk(points),
            "EMST-MemoGFK": emst_memogfk(points),
        }
        if points.shape[1] == 2:
            emst_results["EMST-Delaunay"] = emst_delaunay(points)
        hdbscan_results = {
            "HDBSCAN*-MemoGFK": hdbscan_mst_memogfk(points, MIN_PTS),
            "HDBSCAN*-GanTao": hdbscan_mst_gantao(points, MIN_PTS),
        }

        for method, result in {**emst_results, **hdbscan_results}.items():
            phases = _phases_of(result.stats)
            rows.append(
                [label, method]
                + [f"{phases[phase]:.3f}" if phases[phase] else "-" for phase in PHASES]
            )

        # Qualitative claims from the paper's Figure 8 discussion, expressed
        # on the mechanism counters (wall clocks at this scale carry large
        # Python constant factors):
        # HDBSCAN*-MemoGFK computes no more BCCPs than HDBSCAN*-GanTao.
        assert (
            hdbscan_results["HDBSCAN*-MemoGFK"].stats["bccp_calls"]
            <= hdbscan_results["HDBSCAN*-GanTao"].stats["bccp_calls"]
        )
        # MemoGFK materializes fewer pairs than the full WSPD of Naive/GFK.
        assert (
            emst_results["EMST-MemoGFK"].stats["max_pairs_materialized"]
            < emst_results["EMST-Naive"].stats["pairs_materialized"]
        )

    print()
    print(
        format_table(
            ["dataset", "method"] + PHASES,
            rows,
            title="Figure 8: running-time decomposition per phase (seconds, 1 thread)",
        )
    )

    points = dataset("3D-SS-varden", DATASETS["3D-SS-varden"])
    mst = emst_memogfk(points)
    benchmark.pedantic(
        dendrogram_topdown, args=(list(mst.edges), points.shape[0]), rounds=1, iterations=1
    )
