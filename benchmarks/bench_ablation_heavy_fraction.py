"""Ablation — heavy-edge fraction of the top-down dendrogram construction.

The paper sets the number of heavy edges to n/10 and notes this "works
reasonably well in all cases" even though the optimum depends on minPts.
This driver sweeps the fraction, confirming (a) the result is identical for
every fraction and (b) the fraction trades off the number of recursion levels
(depth) against per-level work, with n/10 a reasonable middle point.
"""

from __future__ import annotations

from repro.bench import format_table, run_with_tracker
from repro.dendrogram import dendrogram_topdown, reachability_from_dendrogram
from repro.emst import emst_memogfk

from _common import dataset

FRACTIONS = (0.02, 0.1, 0.3, 0.5)


def test_ablation_heavy_edge_fraction(benchmark):
    """Dendrogram construction cost as the heavy-edge fraction varies."""
    points = dataset("2D-SS-varden", 1000)
    n = points.shape[0]
    edges = list(emst_memogfk(points).edges)

    rows = []
    reference_order = None
    for fraction in FRACTIONS:
        dendrogram, tracker, elapsed = run_with_tracker(
            dendrogram_topdown, edges, n, heavy_fraction=fraction
        )
        assert dendrogram.is_valid()
        order, _ = reachability_from_dendrogram(dendrogram)
        if reference_order is None:
            reference_order = order.tolist()
        else:
            assert order.tolist() == reference_order
        rows.append(
            [fraction, f"{elapsed:.3f}", f"{tracker.work:.3g}", f"{tracker.depth:.3g}"]
        )

    print()
    print(
        format_table(
            ["heavy fraction", "time (s)", "work", "depth"],
            rows,
            title="Ablation: top-down dendrogram heavy-edge fraction (2D-SS-varden)",
        )
    )

    benchmark.pedantic(
        dendrogram_topdown, args=(edges, n), kwargs={"heavy_fraction": 0.1}, rounds=1, iterations=1
    )
