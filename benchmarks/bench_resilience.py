"""Fault-tolerance overhead and kill/resume identity gates.

Checkpointing exists to make long fits survivable, but it must not tax the
fits that never crash.  This driver records and gates both halves:

* **Overhead gate** — one EMST and one HDBSCAN* fit, each timed bare,
  with a cold checkpoint directory (paying every phase commit), and with a
  *finished* checkpoint (pure reload).  The artifact records the three
  wall-clock times per pipeline; the reload must return byte-identical
  results, and at full scale it must beat the bare fit (the whole point of
  resuming).
* **Kill/resume gate** — every fit is killed at a seeded phase boundary via
  the deterministic ``crash-after-phase`` fault and resumed; the resumed
  result must be byte-identical to the uninterrupted reference, and the
  artifact records how much of the bare wall-clock the resume saved.

JSON artifact: ``REPRO_BENCH_JSON`` (default ``BENCH_resilience.json``),
scaled by ``REPRO_BENCH_SCALE`` like every other driver.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bench.harness import memory_snapshot
from repro.emst.api import emst
from repro.hdbscan.api import hdbscan
from repro.resilience import InjectedCrashError, inject_faults

from _common import scaled

#: Points in the benchmark fits (HDBSCAN*'s chunked brute-force core
#: distances keep this moderate, as in the memory-budget driver).
BENCH_N = 3_000

#: Phase boundary each pipeline is killed after in the kill/resume gate
#: (late boundaries, so the resume actually has work to skip).
KILL_FAULTS = {
    "emst": "crash-after-phase:phase=mst",
    "hdbscan": "crash-after-phase:phase=mst",
}

_FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0

_RESULTS: dict = {}


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    machine = _RESULTS.setdefault("machine", {})
    machine["scale"] = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    machine.update(memory_snapshot())
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_resilience.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def _fit(pipeline: str, points, **kwargs):
    if pipeline == "emst":
        return emst(points, method="memogfk", **kwargs)
    return hdbscan(points, min_pts=10, method="memogfk", **kwargs)


def _result_bytes(pipeline: str, result) -> tuple:
    if pipeline == "emst":
        return tuple(array.tobytes() for array in result.edges.as_arrays())
    parts = [result.core_distances.tobytes()]
    parts.extend(array.tobytes() for array in result.mst.edges.as_arrays())
    parts.append(result.dbscan_labels(0.5).tobytes())
    return tuple(parts)


def test_checkpoint_overhead(benchmark, tmp_path):
    """Bare vs checkpointed vs resumed-from-finished wall-clock per pipeline."""
    n = scaled(BENCH_N)
    points = np.random.default_rng(11).random((n, 3))
    report: dict = {}

    def run_all():
        for pipeline in ("emst", "hdbscan"):
            directory = tmp_path / f"overhead-{pipeline}"
            start = time.perf_counter()
            bare = _fit(pipeline, points)
            bare_seconds = time.perf_counter() - start
            start = time.perf_counter()
            checkpointed = _fit(pipeline, points, checkpoint_dir=directory)
            checkpointed_seconds = time.perf_counter() - start
            start = time.perf_counter()
            reloaded = _fit(pipeline, points, checkpoint_dir=directory)
            reload_seconds = time.perf_counter() - start
            assert _result_bytes(pipeline, checkpointed) == _result_bytes(
                pipeline, bare
            ), f"{pipeline}: checkpointing changed the result bytes"
            assert _result_bytes(pipeline, reloaded) == _result_bytes(
                pipeline, bare
            ), f"{pipeline}: reloading a finished checkpoint changed bytes"
            report[pipeline] = {
                "n": n,
                "bare_seconds": bare_seconds,
                "checkpointed_seconds": checkpointed_seconds,
                "reload_seconds": reload_seconds,
                "overhead_ratio": checkpointed_seconds / bare_seconds,
            }
        return report

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for pipeline, row in report.items():
        print(
            f"[resilience] overhead {pipeline} n={n}: "
            f"bare={row['bare_seconds']:.3f}s "
            f"checkpointed={row['checkpointed_seconds']:.3f}s "
            f"(x{row['overhead_ratio']:.2f}) "
            f"reload={row['reload_seconds']:.3f}s"
        )
        if _FULL_SCALE:
            assert row["reload_seconds"] < row["bare_seconds"], (
                f"{pipeline}: reloading a finished checkpoint "
                f"({row['reload_seconds']:.3f}s) should beat recomputing "
                f"({row['bare_seconds']:.3f}s)"
            )
    _record("overhead", report)


def test_kill_and_resume_identity(benchmark, tmp_path):
    """A fit killed at a phase boundary resumes byte-identically."""
    n = scaled(BENCH_N)
    points = np.random.default_rng(13).random((n, 3))
    report: dict = {}

    def run_all():
        for pipeline, fault in KILL_FAULTS.items():
            directory = tmp_path / f"kill-{pipeline}"
            start = time.perf_counter()
            reference = _fit(pipeline, points)
            bare_seconds = time.perf_counter() - start
            crashed = False
            start = time.perf_counter()
            try:
                with inject_faults(fault):
                    _fit(pipeline, points, checkpoint_dir=directory)
            except InjectedCrashError:
                crashed = True
            killed_seconds = time.perf_counter() - start
            assert crashed, f"{pipeline}: the {fault} fault never fired"
            start = time.perf_counter()
            resumed = _fit(pipeline, points, checkpoint_dir=directory)
            resume_seconds = time.perf_counter() - start
            assert _result_bytes(pipeline, resumed) == _result_bytes(
                pipeline, reference
            ), f"{pipeline}: resume after {fault} diverged from the reference"
            report[pipeline] = {
                "n": n,
                "fault": fault,
                "bare_seconds": bare_seconds,
                "killed_run_seconds": killed_seconds,
                "resume_seconds": resume_seconds,
                "resume_saved_fraction": 1.0 - resume_seconds / bare_seconds,
                "byte_identical": True,
            }
        return report

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for pipeline, row in report.items():
        print(
            f"[resilience] kill/resume {pipeline} n={n}: "
            f"bare={row['bare_seconds']:.3f}s "
            f"resume={row['resume_seconds']:.3f}s "
            f"(saved {100 * row['resume_saved_fraction']:.0f}%)"
        )
    _record("kill_resume", report)
