"""Per-backend kernel timings with identity / bound / speedup gates.

The backend registry (:mod:`repro.core.backend`) makes the hot kernels
pluggable — numpy vs numba-compiled, float64 vs float32-lowered scoring.
This driver measures what each backend actually buys and gates the contracts:

* **Identity gate** (every scale) — the exact backends must return
  byte-identical BCCP winners and edge weights: ``numba`` against ``numpy``
  (when numba is installed; otherwise the fallback resolves to numpy and the
  gate degenerates to a self-check), and the whole EMST pipeline must return
  byte-identical trees across exact backends.
* **Lowered bound gate** (every scale) — ``numpy-f32`` winners, re-evaluated
  in exact float64, must be within relative ``1e-5`` of the exact winners
  and never below them (the exact winner is the minimum).
* **Speedup gate** (full scale, numba installed) — the compiled backend must
  run the BCCP phase at the headline ``n = 10^5`` at least ``3x`` faster
  than the numpy backend.  At smoke scale (``REPRO_BENCH_SCALE < 1``) or
  without numba the timings are recorded but the ratio is not asserted.

Every record in the JSON artifact (``REPRO_BENCH_JSON``, default
``BENCH_backends.json``) carries the backend name that *actually executed*
(after any fallback) and its effective scoring dtype.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bench.harness import memory_snapshot
from repro.core.backend import BACKENDS, HAVE_NUMBA, resolve_backend
from repro.emst.api import emst
from repro.spatial.kdtree import KDTree
from repro.spatial.knn import knn_bruteforce
from repro.wspd.bccp import bccp_batch

from _common import scaled

#: Headline scale of the BCCP-phase records (the ISSUE's n = 10^5 target).
HEADLINE_N = 100_000

#: Smaller scale for the end-to-end EMST and k-NN records.
PIPELINE_N = 20_000

#: Backends timed by this driver (requested names; records report the
#: effective backend after fallback).
BACKEND_AXIS = ("numpy", "numba", "numpy-f32", "numba-f32")

#: The compiled backend must beat numpy by this factor on the BCCP phase at
#: full scale.
SPEEDUP_GATE = 3.0

_FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0

_RESULTS: dict = {}


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    _RESULTS.setdefault("machine", {})["scale"] = float(
        os.environ.get("REPRO_BENCH_SCALE", "1.0")
    )
    _RESULTS["machine"]["have_numba"] = HAVE_NUMBA
    _RESULTS["machine"].update(memory_snapshot())
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_backends.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def _backend_meta(requested: str) -> dict:
    """Metadata of the backend that actually executes a requested name."""
    backend = resolve_backend(requested)
    return {
        "requested": requested,
        "backend": backend.name,
        "dtype": backend.scoring_dtype.name,
        "fallback": backend.name != requested,
    }


def _bccp_workload(points: np.ndarray, backend: str):
    """A tree plus a frontier of leaf-pair ids approximating one GFK round."""
    tree = KDTree(points, leaf_size=32, backend=backend)
    leaves = tree.flat.leaf_ids()
    # Pair every leaf with a handful of others, deterministically; sizes vary
    # with the spatial-median splits, so the batch exercises the size-class
    # grouping exactly like a WSPD frontier does.
    rng = np.random.default_rng(123)
    a_ids = np.repeat(leaves, 4)
    b_ids = rng.permutation(a_ids)
    keep = a_ids != b_ids
    return tree, a_ids[keep], b_ids[keep]


def test_bccp_phase_backends(benchmark):
    """BCCP-phase wall clock per backend at the headline n = 10^5 scale."""
    n = scaled(HEADLINE_N)
    points = np.random.default_rng(0).random((n, 2))
    times: dict = {}
    outputs: dict = {}

    def run_all():
        for name in BACKEND_AXIS:
            backend = resolve_backend(name)
            if hasattr(backend, "warmup") and backend.available():
                backend.warmup()  # JIT cost out of the timed region
            tree, a_ids, b_ids = _bccp_workload(points, name)
            start = time.perf_counter()
            pa, pb, w = bccp_batch(tree.flat, a_ids, b_ids)
            times[name] = time.perf_counter() - start
            outputs[name] = (pa, pb, w)
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Identity gate: exact backends agree byte for byte (numba == numpy; a
    # fallback run compares numpy against itself, which keeps the gate alive
    # as a smoke check everywhere).
    pa_np, pb_np, w_np = outputs["numpy"]
    pa_nb, pb_nb, w_nb = outputs["numba"]
    assert np.array_equal(pa_np, pa_nb), "exact BCCP winners diverged"
    assert np.array_equal(pb_np, pb_nb), "exact BCCP winners diverged"
    assert np.array_equal(w_np, w_nb), "exact BCCP weights diverged"

    # Lowered bound gate: float32 scoring may pick near-tied pairs, but its
    # exactly re-evaluated weights can never beat the true minimum and must
    # stay within float32-selection resolution of it.
    w_f32 = outputs["numpy-f32"][2]
    slack = 1e-9 * np.maximum(w_np, 1.0)
    assert np.all(w_f32 >= w_np - slack), "lowered weight below the exact minimum"
    np.testing.assert_allclose(w_f32, w_np, rtol=1e-5, atol=1e-7)

    for name in BACKEND_AXIS:
        print(f"[backends] bccp n={n} backend={name}: {times[name]:.3f}s")
    speedup = times["numpy"] / max(times["numba"], 1e-12)
    _record(
        "bccp_phase",
        {
            "n": n,
            "num_pairs": int(outputs["numpy"][0].size),
            "backends": {
                name: {"seconds": times[name], **_backend_meta(name)}
                for name in BACKEND_AXIS
            },
            "numba_speedup": speedup,
            "speedup_gate": SPEEDUP_GATE,
            "gate_active": bool(HAVE_NUMBA and _FULL_SCALE),
        },
    )
    if HAVE_NUMBA and _FULL_SCALE:
        assert speedup >= SPEEDUP_GATE, (
            f"numba BCCP speedup {speedup:.2f}x below the {SPEEDUP_GATE}x gate"
        )


def test_emst_backends(benchmark):
    """End-to-end EMST per backend, gated on tree identity / weight bounds."""
    n = scaled(PIPELINE_N)
    points = np.random.default_rng(1).random((n, 2))
    times: dict = {}
    results: dict = {}

    def run_all():
        for name in BACKEND_AXIS:
            backend = resolve_backend(name)
            if hasattr(backend, "warmup") and backend.available():
                backend.warmup()
            start = time.perf_counter()
            results[name] = emst(points, method="memogfk", backend=name)
            times[name] = time.perf_counter() - start
            assert results[name].is_spanning_tree()
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    ref = results["numpy"].edges.as_arrays()
    exact = results["numba"].edges.as_arrays()
    for left, right in zip(ref, exact):
        assert np.array_equal(left, right), "exact backends returned different trees"
    lowered_w = np.sort(results["numpy-f32"].edges.as_arrays()[2])
    np.testing.assert_allclose(lowered_w, np.sort(ref[2]), rtol=1e-5, atol=1e-7)

    for name in BACKEND_AXIS:
        print(
            f"[backends] emst n={n} backend={name}: {times[name]:.3f}s "
            f"(weight {results[name].total_weight:.6g})"
        )
    _record(
        "emst_memogfk",
        {
            "n": n,
            "backends": {
                name: {
                    "seconds": times[name],
                    "total_weight": results[name].total_weight,
                    **_backend_meta(name),
                }
                for name in BACKEND_AXIS
            },
        },
    )


def test_knn_backends(benchmark):
    """Brute-force k-NN per backend (the core-distance kernel shape)."""
    n = scaled(PIPELINE_N)
    k = 10
    points = np.random.default_rng(2).random((n, 4))
    times: dict = {}
    outputs: dict = {}

    def run_all():
        for name in BACKEND_AXIS:
            backend = resolve_backend(name)
            if hasattr(backend, "warmup") and backend.available():
                backend.warmup()
            start = time.perf_counter()
            outputs[name] = knn_bruteforce(points, k, backend=name)
            times[name] = time.perf_counter() - start
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The minPts-th distance is what HDBSCAN* consumes; exact backends must
    # agree to the last ulp of their (differently accumulated) kernels, and
    # the lowered backend to float32-selection resolution.
    cd_np = outputs["numpy"][1][:, -1]
    np.testing.assert_allclose(outputs["numba"][1][:, -1], cd_np, rtol=1e-12)
    np.testing.assert_allclose(
        outputs["numpy-f32"][1][:, -1], cd_np, rtol=1e-5, atol=1e-7
    )

    for name in BACKEND_AXIS:
        print(f"[backends] knn n={n} k={k} backend={name}: {times[name]:.3f}s")
    _record(
        "knn_bruteforce",
        {
            "n": n,
            "k": k,
            "backends": {
                name: {"seconds": times[name], **_backend_meta(name)}
                for name in BACKEND_AXIS
            },
        },
    )


def test_backend_registry_snapshot(benchmark):
    """Record which backends this machine can actually run."""

    def snapshot():
        return {
            name: {
                "available": BACKENDS[name].available(),
                "dtype": BACKENDS[name].scoring_dtype.name,
                "lowered": BACKENDS[name].lowered,
            }
            for name in BACKENDS
        }

    registry = benchmark.pedantic(snapshot, rounds=1, iterations=1)
    print(f"[backends] registry: {registry}")
    _record("registry", registry)
