"""Dynamic-update gates: incremental churn vs cold refit, with conformance.

The incremental engine exists so a serving deployment can absorb point
churn without re-running the fit.  This driver records and gates the two
claims behind that:

* **Update vs refit gate** — one cold :func:`repro.dynamic.fit_dynamic`,
  then a 1% churn applied as insert/delete batches through
  :func:`insert_batch` / :func:`delete_batch`.  At full scale (the issue's
  n=10^5 setting) the *total* incremental cost of the churn must be at
  least 10x cheaper than the cold refit of the surviving points; the
  artifact also records the per-batch insert/delete costs and the
  mean-per-update ratio.  At smoke scale the ratio is recorded but not
  enforced (small fits amortize nothing).
* **Conformance gate** — at any scale, the churned state must be
  byte-identical to a cold refit of the surviving points: every persisted
  array (points, core distances, MST columns, dendrogram, condensed tree)
  and the EOM labels.  A seeded randomized churn drill (seed logged in
  the artifact) re-asserts the same identity over an interleaved
  insert/delete sequence.

JSON artifact: ``REPRO_BENCH_JSON`` (default ``BENCH_dynamic.json``),
scaled by ``REPRO_BENCH_SCALE`` like every other driver.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.bench.harness import memory_snapshot
from repro.dynamic import delete_batch, fit_dynamic, insert_batch

from _common import scaled

#: Points in the benchmark fit; the issue's 10x gate is stated at n=10^5.
BENCH_N = 100_000

#: Fraction of the point set churned through the incremental engine.
CHURN_FRACTION = 0.01

MIN_PTS = 10
MIN_CLUSTER_SIZE = 5

#: Seed of the randomized interleaved drill (logged in the artifact so a
#: failure is replayable byte for byte).
DRILL_SEED = 20210607

_FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0

_RESULTS: dict = {}


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    machine = _RESULTS.setdefault("machine", {})
    machine["scale"] = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    machine.update(memory_snapshot())
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_dynamic.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def _points(n: int) -> np.ndarray:
    return np.random.default_rng(17).random((n, 3))


def _state_blobs(state) -> dict:
    return {
        name: np.asarray(value).tobytes()
        for name, value in state.state_arrays().items()
    }


def _assert_conformant(updated, cold, context: str) -> None:
    got, want = _state_blobs(updated), _state_blobs(cold)
    assert set(got) == set(want), context
    for name in sorted(want):
        assert got[name] == want[name], (
            f"{context}: array {name!r} diverged from the cold refit"
        )
    assert (
        updated.recut().labels.tobytes() == cold.recut().labels.tobytes()
    ), context


def test_update_vs_refit(benchmark):
    """1% churn through the incremental engine vs a cold refit."""
    n = scaled(BENCH_N)
    churn = max(2, int(n * CHURN_FRACTION))
    half = churn // 2
    report: dict = {}

    def run():
        points = _points(n)
        rng = np.random.default_rng(3)
        batch = rng.random((half, 3))

        start = time.perf_counter()
        state = fit_dynamic(
            points, min_pts=MIN_PTS, min_cluster_size=MIN_CLUSTER_SIZE
        )
        fit_seconds = time.perf_counter() - start

        start = time.perf_counter()
        state = insert_batch(state, batch)
        insert_seconds = time.perf_counter() - start

        removed = rng.choice(n + half, size=half, replace=False)
        start = time.perf_counter()
        state = delete_batch(state, removed)
        delete_seconds = time.perf_counter() - start

        survivors = np.delete(
            np.concatenate([points, batch]), removed, axis=0
        )
        start = time.perf_counter()
        cold = fit_dynamic(
            survivors, min_pts=MIN_PTS, min_cluster_size=MIN_CLUSTER_SIZE
        )
        refit_seconds = time.perf_counter() - start

        _assert_conformant(state, cold, f"1% churn at n={n}")

        churn_seconds = insert_seconds + delete_seconds
        report.update(
            n=n,
            churned_points=2 * half,
            fit_seconds=fit_seconds,
            insert_seconds=insert_seconds,
            delete_seconds=delete_seconds,
            churn_seconds=churn_seconds,
            refit_seconds=refit_seconds,
            churn_speedup=refit_seconds / churn_seconds,
            mean_update_speedup=refit_seconds / (churn_seconds / 2.0),
            conformant=True,
        )
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"[dynamic] churn-vs-refit n={n}: refit={report['refit_seconds']:.2f}s "
        f"insert={report['insert_seconds']:.2f}s "
        f"delete={report['delete_seconds']:.2f}s "
        f"(churn x{report['churn_speedup']:.1f}, "
        f"per-update x{report['mean_update_speedup']:.1f})"
    )
    if _FULL_SCALE:
        assert report["churn_speedup"] >= 10.0, (
            f"applying 1% churn incrementally is only "
            f"{report['churn_speedup']:.1f}x cheaper than a cold refit; "
            f"the dynamic engine gates >= 10x at n={n}"
        )
    _record("update_vs_refit", report)


def test_churn_drill(benchmark):
    """Seeded interleaved insert/delete drill, byte-compared to a refit."""
    n = scaled(2_000)
    rounds = 4
    report: dict = {}

    def run():
        rng = np.random.default_rng(DRILL_SEED)
        live = _points(n)
        state = fit_dynamic(
            live, min_pts=MIN_PTS, min_cluster_size=MIN_CLUSTER_SIZE
        )
        start = time.perf_counter()
        for _ in range(rounds):
            batch = rng.random((int(rng.integers(10, 40)), 3))
            state = insert_batch(state, batch)
            live = np.concatenate([live, batch])
            removed = rng.choice(
                live.shape[0],
                size=min(int(rng.integers(10, 50)), live.shape[0]),
                replace=False,
            )
            state = delete_batch(state, removed)
            live = np.delete(live, removed, axis=0)
        drill_seconds = time.perf_counter() - start
        cold = fit_dynamic(
            live, min_pts=MIN_PTS, min_cluster_size=MIN_CLUSTER_SIZE
        )
        _assert_conformant(state, cold, f"drill seed={DRILL_SEED}")
        report.update(
            n=n,
            rounds=rounds,
            seed=DRILL_SEED,
            final_points=int(live.shape[0]),
            drill_seconds=drill_seconds,
            conformant=True,
        )
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"[dynamic] churn drill seed={DRILL_SEED}: {report['rounds']} rounds, "
        f"{report['final_points']} survivors, byte-identical to cold refit "
        f"({report['drill_seconds']:.2f}s)"
    )
    _record("churn_drill", report)
