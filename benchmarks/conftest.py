"""Pytest fixtures for the benchmark drivers (shared helpers live in _common)."""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from _common import FIGURE_DATASETS, TABLE_DATASETS, dataset


@pytest.fixture(scope="session")
def table_datasets() -> Dict[str, np.ndarray]:
    """All datasets used by the table benchmarks."""
    return {name: dataset(name, n) for name, n in TABLE_DATASETS.items()}


@pytest.fixture(scope="session")
def figure_datasets() -> Dict[str, np.ndarray]:
    """The smaller dataset selection used by the scaling-figure benchmarks."""
    return {name: dataset(name, n) for name, n in FIGURE_DATASETS.items()}
