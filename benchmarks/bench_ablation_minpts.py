"""Ablation — sensitivity of HDBSCAN* running time to minPts.

Section 5 notes: "We tried varying minPts over a range from 10 to 50 for our
HDBSCAN* implementations and found just a moderate increase in the running
time for increasing minPts."  This driver sweeps minPts and checks the
increase stays moderate (well below linear in minPts).
"""

from __future__ import annotations

from repro.bench import format_table, measure
from repro.hdbscan import hdbscan_mst_memogfk

from _common import dataset

MIN_PTS_VALUES = (10, 20, 30, 40, 50)


def test_ablation_minpts_sweep(benchmark):
    """Running time of HDBSCAN*-MemoGFK for minPts = 10..50."""
    points = dataset("3D-SS-varden", 800)
    rows = []
    times = {}
    for min_pts in MIN_PTS_VALUES:
        result, elapsed = measure(hdbscan_mst_memogfk, points, min_pts)
        assert result.is_spanning_tree()
        times[min_pts] = elapsed
        rows.append([min_pts, f"{elapsed:.3f}", result.stats["bccp_calls"]])

    print()
    print(
        format_table(
            ["minPts", "time (s)", "BCCP calls"],
            rows,
            title="Ablation: HDBSCAN*-MemoGFK running time vs minPts (3D-SS-varden)",
        )
    )

    # "Moderate increase": going from minPts=10 to minPts=50 should cost far
    # less than the 5x a linear dependence would give.
    assert times[50] <= 3.0 * times[10]

    benchmark.pedantic(
        hdbscan_mst_memogfk, args=(points, 10), rounds=1, iterations=1
    )
