"""Ablation — the new definition of well-separation (Section 3.2.2).

The paper attributes HDBSCAN*-MemoGFK's advantage over HDBSCAN*-GanTao to the
new disjunctive notion of well-separation (geometrically separated OR
mutually unreachable), which terminates the WSPD recursion earlier and
produces 2.5-10.29x fewer pairs.  This driver counts the pairs produced by
both definitions across datasets and minPts values.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.hdbscan import core_distances
from repro.spatial import KDTree
from repro.wspd import count_wspd_pairs

from _common import dataset

DATASETS = {"2D-SS-varden": 800, "3D-GeoLife": 800, "7D-Household": 500}
MIN_PTS_VALUES = (10, 30, 50)


def test_ablation_well_separation_definition(benchmark):
    """Pair counts: geometric-only vs the disjunctive HDBSCAN* definition."""
    rows = []
    for name, size in DATASETS.items():
        points = dataset(name, size)
        for min_pts in MIN_PTS_VALUES:
            core = core_distances(points, min_pts)
            tree = KDTree(points, leaf_size=1)
            tree.annotate_core_distances(core)
            geometric = count_wspd_pairs(tree, separation="geometric")
            disjunctive = count_wspd_pairs(tree, separation="hdbscan")
            assert disjunctive <= geometric
            rows.append(
                [
                    f"{name}-{points.shape[0]}",
                    min_pts,
                    geometric,
                    disjunctive,
                    f"{geometric / max(disjunctive, 1):.2f}x",
                ]
            )

    print()
    print(
        format_table(
            ["dataset", "minPts", "geometric pairs", "new-definition pairs", "reduction"],
            rows,
            title="Ablation: WSPD pair counts under the two well-separation definitions",
        )
    )
    # The reduction grows with minPts (larger core distances make more pairs
    # mutually unreachable), the trend behind the paper's 2.5-10.29x range.
    reductions_by_minpts = {}
    for row in rows:
        reductions_by_minpts.setdefault(row[1], []).append(float(row[4].rstrip("x")))
    means = [sum(v) / len(v) for _, v in sorted(reductions_by_minpts.items())]
    assert means[-1] >= means[0]

    points = dataset("2D-SS-varden", DATASETS["2D-SS-varden"])
    tree = KDTree(points, leaf_size=1)
    tree.annotate_core_distances(core_distances(points, 10))
    benchmark.pedantic(
        count_wspd_pairs, args=(tree,), kwargs={"separation": "hdbscan"}, rounds=1, iterations=1
    )
