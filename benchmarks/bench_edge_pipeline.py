"""Array-native edge pipeline vs. the per-pair / per-edge reference paths.

This driver measures the two hot stages that PR 2 vectorized downstream of
the spatial engine:

* the **BCCP phase** of GFK/MemoGFK — the full WSPD pair set of a 20k-point
  kd-tree evaluated through the batched size-class kernel
  (:func:`repro.wspd.bccp.bccp_batch` via the array-backed
  :class:`~repro.wspd.bccp.BCCPCache`) against the per-pair scalar kernel
  that the PR-1 engine dispatched one Python call at a time;
* the **dendrogram build** — the array union-find merge sweep of
  :func:`repro.dendrogram.sequential.dendrogram_sequential` against the
  historical per-edge dict-and-``add_internal`` loop (reproduced here
  verbatim as the reference).

Both comparisons assert byte-identical outputs (same BCCP endpoints and exact
weights, same linkage matrix) — the refactor's invariant — and a >= 2x
speedup at the headline scale.  Results are also written as JSON (see
``REPRO_BENCH_JSON``) so the CI workflow can archive them.

Run with ``pytest benchmarks/bench_edge_pipeline.py -s``; set
``REPRO_BENCH_SCALE`` to grow or shrink the dataset sizes (the speedup
assertions are enforced at scale >= 1 only, since tiny smoke runs are
dominated by constant overheads).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bench.harness import memory_snapshot
from repro.dendrogram import dendrogram_sequential
from repro.dendrogram.sequential import _ordered_children, tree_vertex_distances
from repro.dendrogram.structure import Dendrogram
from repro.emst import emst_gfk, emst_memogfk
from repro.parallel.unionfind import UnionFind
from repro.spatial import KDTree
from repro.wspd.bccp import BCCPCache, bccp
from repro.wspd.wspd import compute_wspd_ids

from _common import scaled

#: Headline scale of the acceptance criterion.
HEADLINE_N = 20_000

_RESULTS: dict = {}


def _at_full_scale() -> bool:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    _RESULTS.setdefault("machine", {}).update(memory_snapshot())
    path = os.environ.get("REPRO_BENCH_JSON", "bench_edge_pipeline.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def dendrogram_sequential_reference(edge_list, num_points, start=0):
    """The PR-1 per-edge construction: dict bindings + one add_internal per edge."""
    vertex_distance = tree_vertex_distances(edge_list, num_points, start)
    dendrogram = Dendrogram(num_points)
    order = sorted(range(len(edge_list)), key=lambda index: edge_list[index][2])
    union_find = UnionFind(num_points)
    cluster_node = {}
    last_node = -1
    for index in order:
        u, v, weight = edge_list[index]
        root_u = union_find.find(u)
        root_v = union_find.find(v)
        node_u = cluster_node.get(root_u, root_u)
        node_v = cluster_node.get(root_v, root_v)
        left, right = _ordered_children(node_u, node_v, u, v, vertex_distance)
        new_node = dendrogram.add_internal(left, right, weight, (u, v))
        union_find.union(u, v)
        cluster_node[union_find.find(u)] = new_node
        last_node = new_node
    dendrogram.set_root(last_node)
    return dendrogram


def test_batched_bccp_speedup(benchmark):
    """Batched BCCP kernel >= 2x over the per-pair scalar path, identical output."""
    n = scaled(HEADLINE_N)
    points = np.random.default_rng(0).random((n, 2))
    tree = KDTree(points, leaf_size=1)
    pair_a, pair_b = compute_wspd_ids(tree)

    def measure():
        cache = BCCPCache(tree)
        start = time.perf_counter()
        point_a, point_b, weights = cache.get_batch(pair_a, pair_b)
        batched = time.perf_counter() - start

        start = time.perf_counter()
        scalar = [
            bccp(tree, tree.node(a), tree.node(b))
            for a, b in zip(pair_a.tolist(), pair_b.tolist())
        ]
        per_pair = time.perf_counter() - start
        return point_a, point_b, weights, batched, per_pair, scalar

    point_a, point_b, weights, batched, per_pair, scalar = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    assert all(
        result.point_a == int(point_a[i])
        and result.point_b == int(point_b[i])
        and result.distance == float(weights[i])
        for i, result in enumerate(scalar)
    ), "batched BCCP kernel diverged from the scalar reference"

    speedup = per_pair / batched
    print(
        f"\n[edge-pipeline] BCCP phase n={n} pairs={pair_a.size}: "
        f"per-pair {per_pair:.3f}s -> batched {batched:.3f}s ({speedup:.1f}x)"
    )
    _record(
        "bccp_phase",
        {
            "n": n,
            "pairs": int(pair_a.size),
            "per_pair_seconds": per_pair,
            "batched_seconds": batched,
            "speedup": speedup,
        },
    )
    if _at_full_scale():
        assert speedup >= 2.0


def test_dendrogram_build_speedup(benchmark):
    """Array merge sweep >= 2x over the per-edge reference, identical linkage."""
    n = scaled(HEADLINE_N)
    points = np.random.default_rng(1).random((n, 2))
    mst = emst_memogfk(points)
    edge_list = [(int(u), int(v), float(w)) for u, v, w in mst.edges]

    def measure():
        start = time.perf_counter()
        reference = dendrogram_sequential_reference(edge_list, n)
        per_edge = time.perf_counter() - start
        start = time.perf_counter()
        fast = dendrogram_sequential(mst.edges, n)
        array_native = time.perf_counter() - start
        return reference, fast, per_edge, array_native

    reference, fast, per_edge, array_native = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    assert np.array_equal(
        reference.to_linkage_matrix(), fast.to_linkage_matrix()
    ), "array-native dendrogram diverged from the per-edge reference"
    assert reference.root == fast.root

    speedup = per_edge / array_native
    print(
        f"\n[edge-pipeline] dendrogram build n={n}: "
        f"per-edge {per_edge:.3f}s -> array {array_native:.3f}s ({speedup:.1f}x)"
    )
    _record(
        "dendrogram_build",
        {
            "n": n,
            "per_edge_seconds": per_edge,
            "array_seconds": array_native,
            "speedup": speedup,
        },
    )
    if _at_full_scale():
        assert speedup >= 2.0


def test_gfk_memogfk_msts_agree(benchmark):
    """End-to-end cross-check: both round drivers produce the same MST."""
    n = scaled(HEADLINE_N) // 4
    points = np.random.default_rng(2).random((n, 2))

    def measure():
        start = time.perf_counter()
        gfk = emst_gfk(points)
        gfk_seconds = time.perf_counter() - start
        start = time.perf_counter()
        memo = emst_memogfk(points)
        memo_seconds = time.perf_counter() - start
        return gfk, memo, gfk_seconds, memo_seconds

    gfk, memo, gfk_seconds, memo_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    def canonical(result):
        endpoints, weights = result.edge_arrays()
        lo = np.minimum(endpoints[:, 0], endpoints[:, 1])
        hi = np.maximum(endpoints[:, 0], endpoints[:, 1])
        order = np.lexsort((hi, lo, weights))
        return lo[order], hi[order], weights[order]

    for left, right in zip(canonical(gfk), canonical(memo)):
        assert np.array_equal(left, right)
    print(
        f"\n[edge-pipeline] end-to-end n={n}: "
        f"GFK {gfk_seconds:.3f}s, MemoGFK {memo_seconds:.3f}s, MSTs identical"
    )
    _record(
        "end_to_end",
        {"n": n, "gfk_seconds": gfk_seconds, "memogfk_seconds": memo_seconds},
    )
