"""Figure 6 — EMST speedup over the best sequential baseline vs thread count.

For each dataset the paper plots, for every EMST method, the speedup over the
best single-thread time as the thread count grows from 1 to 48 (plus
hyper-threading).  Here the per-thread-count times come from Brent's bound on
the instrumented work/depth, calibrated to the measured single-thread time, so
the curves' *shape* (near-linear scaling of the WSPD-based methods, ordering
of the methods) mirrors the paper's.
"""

from __future__ import annotations

from repro.bench import THREAD_COUNTS, format_scaling_series, scaling_curve
from repro.emst import emst_gfk, emst_memogfk, emst_naive

from _common import FIGURE_DATASETS, dataset

METHODS = {
    "EMST-Naive": emst_naive,
    "EMST-GFK": emst_gfk,
    "EMST-MemoGFK": emst_memogfk,
}


def test_fig6_emst_scaling_curves(benchmark):
    """Regenerate the speedup-vs-threads series behind Figure 6."""
    print()
    for name, size in FIGURE_DATASETS.items():
        points = dataset(name, size)
        curves = {}
        best_t1 = None
        for method, function in METHODS.items():
            curve = scaling_curve(function, points, thread_counts=THREAD_COUNTS)
            curves[method] = curve
            best_t1 = curve["times"][0] if best_t1 is None else min(best_t1, curve["times"][0])
        for method, curve in curves.items():
            over_best = [best_t1 / t for t in curve["times"]]
            print(
                format_scaling_series(
                    f"[Fig 6] {name}-{points.shape[0]} {method}",
                    curve["thread_counts"],
                    over_best,
                )
            )
            # Scaling shape: monotone non-decreasing speedups, meaningful
            # parallelism at 48 threads under the work-depth model.
            speedups = curve["speedups"]
            assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
            assert speedups[-1] > 4.0

    points = dataset("2D-UniformFill", FIGURE_DATASETS["2D-UniformFill"])
    benchmark.pedantic(emst_memogfk, args=(points,), rounds=1, iterations=1)
