"""Measured thread-scaling curves for EMST and HDBSCAN* (paper Fig. 6/7 shape).

Unlike the ``bench_fig6`` / ``bench_fig7`` drivers — whose multi-thread
points are *simulated* with Brent's bound from work–depth instrumentation —
this driver measures **real wall-clock** self-relative speedups: each
algorithm is re-run with ``num_threads`` in {1, 2, 4, 8}, sharding its
batched kernels (WSPD traversal sweeps, BCCP size-class tensors, k-NN
blocks, Kruskal merge sorts) across the persistent worker pool of
:mod:`repro.parallel.pool`.

Because the sharding uses fixed chunk boundaries and stable reduction order,
every run must be *byte-identical* to the single-thread run; the tests
assert that for the full MST edge arrays and the dendrogram linkage matrix
at every thread count, and the assertion fails the CI job at any scale.
(Smoke-scale frontiers sit below some sharding thresholds, so the
tier-1 suite additionally forces the sharded branches at small scale —
``tests/test_thread_determinism.py::TestShardedPathsEngage``; the full-scale
run here exercises them naturally.)

The measured speedup gate (>= 1.8x at 4 threads for both pipelines at the
headline n=20k) is enforced only at full scale on machines that actually
expose >= 4 usable cores; smoke runs and starved CI containers still check
identity and still emit the JSON artifact (``REPRO_BENCH_JSON``, default
``BENCH_parallel_scaling.json``).

For honest scaling numbers, pin the BLAS thread pools to one thread
(``OMP_NUM_THREADS=1 OPENBLAS_NUM_THREADS=1 MKL_NUM_THREADS=1``) so the
worker pool is the only source of parallelism being measured.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.bench.harness import measured_scaling_curve, memory_snapshot
from repro.dendrogram.topdown import dendrogram_topdown
from repro.emst import emst_memogfk
from repro.hdbscan import hdbscan
from repro.parallel.pool import shutdown_pools

from _common import scaled

#: Headline scale of the acceptance criterion.
HEADLINE_N = 20_000

#: Thread counts of the measured curve (the machine-sized prefix of the
#: paper's 1..48h figures).
THREAD_COUNTS = (1, 2, 4, 8)

#: Required measured speedup at 4 threads (full scale, >= 4 cores only).
SPEEDUP_GATE_THREADS = 4
SPEEDUP_GATE = 1.8

_RESULTS: dict = {}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without CPU affinity
        return os.cpu_count() or 1


def _at_full_scale() -> bool:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0


def _speedup_gate_active() -> bool:
    return _at_full_scale() and _available_cores() >= SPEEDUP_GATE_THREADS


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    _RESULTS["machine"] = {
        "available_cores": _available_cores(),
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        **memory_snapshot(),
    }
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_parallel_scaling.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def _edge_triplet(edges):
    u, v, w = edges.as_arrays()
    return u, v, w


def _assert_identical_edges(reference, candidate, context: str) -> None:
    for left, right in zip(_edge_triplet(reference), _edge_triplet(candidate)):
        assert np.array_equal(left, right), (
            f"{context}: threaded run diverged from the single-thread edge list"
        )


def _report(name: str, n: int, curve: dict) -> None:
    times = ", ".join(
        f"{p}t={t:.3f}s" for p, t in zip(curve["thread_counts"], curve["times"])
    )
    speedups = ", ".join(
        f"{p}t={s:.2f}x" for p, s in zip(curve["thread_counts"], curve["speedups"])
    )
    print(f"\n[parallel-scaling] {name} n={n}: {times}")
    print(f"[parallel-scaling] {name} speedups: {speedups}")
    _record(
        name,
        {
            "n": n,
            "metric": curve.get("metric", "euclidean"),
            "thread_counts": list(curve["thread_counts"]),
            "times": curve["times"],
            "speedups": curve["speedups"],
            "identical_across_threads": True,
        },
    )


def _gate(curve: dict, name: str) -> None:
    if not _speedup_gate_active():
        return
    index = curve["thread_counts"].index(SPEEDUP_GATE_THREADS)
    speedup = curve["speedups"][index]
    assert speedup >= SPEEDUP_GATE, (
        f"{name}: measured {SPEEDUP_GATE_THREADS}-thread speedup {speedup:.2f}x "
        f"below the {SPEEDUP_GATE}x gate"
    )


def test_emst_memogfk_thread_scaling(benchmark):
    """EMST (MemoGFK) wall-clock scaling; byte-identical MSTs at 1/2/4/8 threads."""
    n = scaled(HEADLINE_N)
    points = np.random.default_rng(0).random((n, 2))

    def measure():
        shutdown_pools()
        return measured_scaling_curve(
            emst_memogfk, points, thread_counts=THREAD_COUNTS
        )

    curve = benchmark.pedantic(measure, rounds=1, iterations=1)

    reference = curve["results"][0]
    for threads, result in zip(curve["thread_counts"], curve["results"]):
        _assert_identical_edges(
            reference.edges, result.edges, f"emst-memogfk num_threads={threads}"
        )
    _report("emst_memogfk", n, curve)
    _gate(curve, "emst_memogfk")


def test_hdbscan_thread_scaling(benchmark):
    """HDBSCAN* (MemoGFK) scaling; byte-identical MSTs and dendrograms."""
    n = scaled(HEADLINE_N)
    points = np.random.default_rng(1).random((n, 2))

    def run(num_threads=None):
        return hdbscan(points, min_pts=10, method="memogfk", num_threads=num_threads)

    def measure():
        shutdown_pools()
        return measured_scaling_curve(run, thread_counts=THREAD_COUNTS)

    curve = benchmark.pedantic(measure, rounds=1, iterations=1)

    reference = curve["results"][0]
    ref_linkage = reference.dendrogram.to_linkage_matrix()
    for threads, result in zip(curve["thread_counts"], curve["results"]):
        context = f"hdbscan-memogfk num_threads={threads}"
        _assert_identical_edges(reference.mst.edges, result.mst.edges, context)
        assert np.array_equal(
            result.dendrogram.to_linkage_matrix(), ref_linkage
        ), f"{context}: threaded dendrogram diverged"
        assert np.array_equal(
            result.core_distances, reference.core_distances
        ), f"{context}: threaded core distances diverged"
    _report("hdbscan_memogfk", n, curve)
    _gate(curve, "hdbscan_memogfk")


def test_dendrogram_identity_across_thread_counts(benchmark):
    """Single-linkage dendrogram over the threaded EMST is thread-invariant."""
    n = scaled(HEADLINE_N) // 4
    points = np.random.default_rng(2).random((n, 2))

    def measure():
        shutdown_pools()
        curve = measured_scaling_curve(
            emst_memogfk, points, thread_counts=(1, 2)
        )
        return [
            dendrogram_topdown(result.edges, n) for result in curve["results"]
        ]

    dendrograms = benchmark.pedantic(measure, rounds=1, iterations=1)
    reference = dendrograms[0].to_linkage_matrix()
    for dendrogram in dendrograms[1:]:
        assert np.array_equal(dendrogram.to_linkage_matrix(), reference)
    print(f"\n[parallel-scaling] top-down dendrogram identical at 1/2 threads (n={n})")
    _record("dendrogram_identity", {"n": n, "identical_across_threads": True})
