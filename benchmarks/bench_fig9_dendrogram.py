"""Figure 9 — dendrogram construction: self-relative speedup and running time.

The paper reports, per dataset, the running time and self-relative speedup of
the parallel top-down dendrogram construction for (a) single-linkage
clustering (dendrogram of the EMST) and (b) HDBSCAN* with minPts = 10
(dendrogram of the mutual-reachability MST), noting that the single-linkage
dendrogram shows higher parallelism because the heavy edges split the tree
into more, better-balanced light subproblems.  The driver reproduces both
series: times are measured single-thread, speedups come from the work-depth
model, and the number of light subproblems created at the top level is
reported as the mechanism behind the parallelism difference.
"""

from __future__ import annotations

from repro.bench import format_table, run_with_tracker
from repro.dendrogram import dendrogram_topdown
from repro.emst import emst_memogfk
from repro.hdbscan import hdbscan_mst_memogfk
from repro.parallel.scheduler import simulated_time

from _common import FIGURE_DATASETS, dataset

MIN_PTS = 10


def _dendrogram_speedup(edges, num_points):
    result, tracker, elapsed = run_with_tracker(
        dendrogram_topdown, edges, num_points, heavy_fraction=0.1
    )
    work, depth = max(tracker.work, 1.0), max(tracker.depth, 1.0)
    seconds_per_op = elapsed / (work + depth)
    t48 = simulated_time(work, depth, 48, seconds_per_op=seconds_per_op, hyperthread_factor=1.35)
    return result, elapsed, elapsed / t48


def test_fig9_dendrogram_speedups(benchmark):
    """Regenerate the dendrogram speedup/time series behind Figure 9."""
    rows = []
    for name, size in FIGURE_DATASETS.items():
        points = dataset(name, size)
        n = points.shape[0]

        emst_edges = list(emst_memogfk(points).edges)
        hdbscan_edges = list(hdbscan_mst_memogfk(points, MIN_PTS).edges)

        sl_dendrogram, sl_time, sl_speedup = _dendrogram_speedup(emst_edges, n)
        hd_dendrogram, hd_time, hd_speedup = _dendrogram_speedup(hdbscan_edges, n)
        assert sl_dendrogram.is_valid() and hd_dendrogram.is_valid()
        assert sl_speedup > 2.0 and hd_speedup > 2.0

        rows.append(
            [
                f"{name}-{n}",
                f"{sl_speedup:.2f}x",
                f"{sl_time:.3f}",
                f"{hd_speedup:.2f}x",
                f"{hd_time:.3f}",
            ]
        )

    print()
    print(
        format_table(
            [
                "dataset",
                "single-linkage speedup",
                "time (s)",
                "HDBSCAN* speedup",
                "time (s)",
            ],
            rows,
            title="Figure 9: ordered dendrogram construction (self-relative speedup modelled at 48h)",
        )
    )

    points = dataset("2D-UniformFill", FIGURE_DATASETS["2D-UniformFill"])
    edges = list(emst_memogfk(points).edges)
    benchmark.pedantic(
        dendrogram_topdown, args=(edges, points.shape[0]), rounds=1, iterations=1
    )
