"""Figure 7 — HDBSCAN* MST speedup over the best sequential baseline vs threads.

Same methodology as Figure 6, for the two exact HDBSCAN* MST constructions
with minPts = 10 (the full pipeline the paper times includes the MST of the
mutual reachability graph; the dendrogram is benchmarked separately in
Figure 9).
"""

from __future__ import annotations

from repro.bench import THREAD_COUNTS, format_scaling_series, scaling_curve
from repro.hdbscan import hdbscan_mst_gantao, hdbscan_mst_memogfk

from _common import FIGURE_DATASETS, dataset

MIN_PTS = 10
METHODS = {
    "HDBSCAN*-MemoGFK": hdbscan_mst_memogfk,
    "HDBSCAN*-GanTao": hdbscan_mst_gantao,
}


def test_fig7_hdbscan_scaling_curves(benchmark):
    """Regenerate the speedup-vs-threads series behind Figure 7."""
    print()
    for name, size in FIGURE_DATASETS.items():
        points = dataset(name, size)
        curves = {
            method: scaling_curve(function, points, MIN_PTS, thread_counts=THREAD_COUNTS)
            for method, function in METHODS.items()
        }
        best_t1 = min(curve["times"][0] for curve in curves.values())
        for method, curve in curves.items():
            over_best = [best_t1 / t for t in curve["times"]]
            print(
                format_scaling_series(
                    f"[Fig 7] {name}-{points.shape[0]} {method} (minPts={MIN_PTS})",
                    curve["thread_counts"],
                    over_best,
                )
            )
            speedups = curve["speedups"]
            assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
            assert speedups[-1] > 4.0
        # The MemoGFK variant computes no more BCCPs than GanTao, the
        # mechanism behind its faster curves in the paper.
        assert (
            curves["HDBSCAN*-MemoGFK"]["result"].stats["bccp_calls"]
            <= curves["HDBSCAN*-GanTao"]["result"].stats["bccp_calls"]
        )

    points = dataset("3D-SS-varden", FIGURE_DATASETS["3D-SS-varden"])
    benchmark.pedantic(
        hdbscan_mst_memogfk, args=(points, MIN_PTS), rounds=1, iterations=1
    )
