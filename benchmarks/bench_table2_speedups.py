"""Table 2 — speedups over the best sequential method and self-relative speedups.

The paper's Table 2 summarizes, per method, the range/average of (a) the
48-core speedup over the best sequential implementation and (b) the
self-relative speedup (T1 of the method / T48 of the method).  Here the
48-core times are modelled from the instrumented work/depth (Brent's bound
calibrated to the measured single-thread time), so the self-relative column
reproduces the paper's qualitative finding: the WSPD-based methods have
abundant parallelism (large self-relative speedups), while their ranking
against the best sequential time follows the single-thread ordering.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, run_with_tracker
from repro.emst import emst_gfk, emst_memogfk, emst_naive
from repro.hdbscan import hdbscan_mst_gantao, hdbscan_mst_memogfk
from repro.parallel.scheduler import simulated_time

from _common import FIGURE_DATASETS, dataset

EMST_METHODS = {
    "EMST-Naive": emst_naive,
    "EMST-GFK": emst_gfk,
    "EMST-MemoGFK": emst_memogfk,
}
HDBSCAN_METHODS = {
    "HDBSCAN*-MemoGFK": lambda points: hdbscan_mst_memogfk(points, 10),
    "HDBSCAN*-GanTao": lambda points: hdbscan_mst_gantao(points, 10),
}


def _measure(function, points):
    result, tracker, elapsed = run_with_tracker(function, points)
    work, depth = max(tracker.work, 1.0), max(tracker.depth, 1.0)
    seconds_per_op = elapsed / (work + depth)
    t48 = simulated_time(work, depth, 48, seconds_per_op=seconds_per_op)
    return elapsed, t48


def test_table2_speedup_summary(benchmark):
    """Regenerate Table 2's two speedup columns per method."""
    per_method_best = {}
    per_method_self = {}

    for name, size in FIGURE_DATASETS.items():
        points = dataset(name, size)
        emst_times = {m: _measure(fn, points) for m, fn in EMST_METHODS.items()}
        hdbscan_times = {m: _measure(fn, points) for m, fn in HDBSCAN_METHODS.items()}
        best_sequential_emst = min(t1 for t1, _ in emst_times.values())
        best_sequential_hdbscan = min(t1 for t1, _ in hdbscan_times.values())
        for method, (t1, t48) in emst_times.items():
            per_method_best.setdefault(method, []).append(best_sequential_emst / t48)
            per_method_self.setdefault(method, []).append(t1 / t48)
        for method, (t1, t48) in hdbscan_times.items():
            per_method_best.setdefault(method, []).append(best_sequential_hdbscan / t48)
            per_method_self.setdefault(method, []).append(t1 / t48)

    rows = []
    for method in list(EMST_METHODS) + list(HDBSCAN_METHODS):
        over_best = per_method_best[method]
        self_relative = per_method_self[method]
        rows.append(
            [
                method,
                f"{min(over_best):.2f}-{max(over_best):.2f}x",
                f"{np.mean(over_best):.2f}x",
                f"{min(self_relative):.2f}-{max(self_relative):.2f}x",
                f"{np.mean(self_relative):.2f}x",
            ]
        )
    print()
    print(
        format_table(
            ["method", "over best seq (range)", "avg", "self-relative (range)", "avg"],
            rows,
            title="Table 2: modelled 48-core speedups",
        )
    )

    # Qualitative shape: every method shows substantial self-relative
    # parallelism under the work-depth model (the paper reports 8x-56x).
    for method, values in per_method_self.items():
        assert min(values) > 4.0, method

    points = dataset("2D-UniformFill", FIGURE_DATASETS["2D-UniformFill"])
    benchmark.pedantic(emst_memogfk, args=(points,), rounds=1, iterations=1)
