"""Table 5 — HDBSCAN* running times (MemoGFK vs GanTao, minPts = 10).

The paper's Table 5 shows HDBSCAN*-MemoGFK (the new well-separation
definition) consistently beating HDBSCAN*-GanTao (standard well-separation)
because it generates 2.5-10.3x fewer well-separated pairs.  The driver
measures both single-thread, models the 48-core time, and checks the
pair-count mechanism that produces the paper's ordering.
"""

from __future__ import annotations

from repro.bench import format_table, run_with_tracker
from repro.hdbscan import hdbscan_mst_gantao, hdbscan_mst_memogfk
from repro.parallel.scheduler import simulated_time

from _common import TABLE_DATASETS, dataset

MIN_PTS = 10


def _measure(function, points):
    result, tracker, elapsed = run_with_tracker(function, points, MIN_PTS)
    work, depth = max(tracker.work, 1.0), max(tracker.depth, 1.0)
    seconds_per_op = elapsed / (work + depth)
    return result, elapsed, simulated_time(work, depth, 48, seconds_per_op=seconds_per_op)


def test_table5_hdbscan_running_times(benchmark):
    """Regenerate Table 5 (minPts = 10)."""
    rows = []
    for name, size in TABLE_DATASETS.items():
        points = dataset(name, size)
        memogfk, memogfk_t1, memogfk_t48 = _measure(hdbscan_mst_memogfk, points)
        gantao, gantao_t1, gantao_t48 = _measure(hdbscan_mst_gantao, points)
        assert memogfk.is_spanning_tree() and gantao.is_spanning_tree()
        assert abs(memogfk.total_weight - gantao.total_weight) <= 1e-6 * max(
            1.0, gantao.total_weight
        )
        # The mechanism behind the paper's Table 5: the new definition of
        # well-separation computes no more BCCPs than the standard one.
        assert memogfk.stats["bccp_calls"] <= gantao.stats["bccp_calls"]
        rows.append(
            [
                f"{name}-{points.shape[0]}",
                f"{memogfk_t1:.3f}",
                f"{memogfk_t48:.3f}",
                f"{gantao_t1:.3f}",
                f"{gantao_t48:.3f}",
                f"{gantao.stats['bccp_calls'] / max(memogfk.stats['bccp_calls'], 1):.2f}x",
            ]
        )
    print()
    print(
        format_table(
            [
                "dataset",
                "MemoGFK T1",
                "MemoGFK T48*",
                "GanTao T1",
                "GanTao T48*",
                "BCCP-call reduction",
            ],
            rows,
            title="Table 5: HDBSCAN* running times (seconds; T48* modelled; minPts=10)",
        )
    )

    points = dataset("2D-SS-varden", TABLE_DATASETS["2D-SS-varden"])
    benchmark.pedantic(
        hdbscan_mst_memogfk, args=(points, MIN_PTS), rounds=1, iterations=1
    )
