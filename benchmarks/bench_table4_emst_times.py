"""Table 4 — EMST running times per dataset and method.

The paper's Table 4 reports, for every dataset, the running time of
EMST-Naive, EMST-GFK, EMST-MemoGFK and EMST-Delaunay on 1 thread and on 48
cores.  This driver measures the single-thread time of each method directly
and derives the 48-core time from the instrumented work/depth via Brent's
bound (DESIGN.md, "Parallelism model").  The expected *shape* is the paper's:
MemoGFK is the fastest WSPD-based method, Naive beats GFK (which pays for
materializing pair state), and Delaunay is competitive but 2D-only.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, run_with_tracker
from repro.emst import emst_delaunay, emst_gfk, emst_memogfk, emst_naive
from repro.parallel.scheduler import simulated_time

from _common import TABLE_DATASETS, dataset

METHODS = {
    "EMST-Naive": emst_naive,
    "EMST-GFK": emst_gfk,
    "EMST-MemoGFK": emst_memogfk,
    "EMST-Delaunay": emst_delaunay,
}


def _time_method(function, points):
    result, tracker, elapsed = run_with_tracker(function, points)
    work = max(tracker.work, 1.0)
    depth = max(tracker.depth, 1.0)
    seconds_per_op = elapsed / (work + depth)
    t48 = simulated_time(work, depth, 48, seconds_per_op=seconds_per_op)
    return result, elapsed, t48


def test_table4_emst_running_times(benchmark):
    """Regenerate Table 4 (1-thread measured, 48-core modelled)."""
    rows = []
    stats = {}
    for name, size in TABLE_DATASETS.items():
        points = dataset(name, size)
        row = [f"{name}-{points.shape[0]}"]
        for method_name, function in METHODS.items():
            if method_name == "EMST-Delaunay" and points.shape[1] != 2:
                row.extend(["-", "-"])
                continue
            result, t1, t48 = _time_method(function, points)
            assert result.is_spanning_tree()
            row.extend([f"{t1:.3f}", f"{t48:.3f}"])
            stats.setdefault(name, {})[method_name] = result.stats
        rows.append(row)

    headers = ["dataset"]
    for method_name in METHODS:
        headers.extend([f"{method_name} T1", f"{method_name} T48*"])
    print()
    print(format_table(headers, rows, title="Table 4: EMST running times (seconds; T48* modelled)"))

    # The mechanism behind the paper's Table 4 ordering (MemoGFK fastest)
    # is that MemoGFK materializes far fewer pairs and GFK skips BCCPs that
    # Naive computes; at reproduction scale wall clocks are dominated by
    # Python constant factors, so the mechanism counters are what we check
    # (EXPERIMENTS.md records the wall-clock deviations).
    for name, per_method in stats.items():
        naive_stats = per_method["EMST-Naive"]
        memogfk_stats = per_method["EMST-MemoGFK"]
        gfk_stats = per_method["EMST-GFK"]
        assert memogfk_stats["max_pairs_materialized"] < naive_stats["pairs_materialized"]
        assert gfk_stats["bccp_calls"] <= naive_stats["bccp_calls"]
        assert memogfk_stats["bccp_calls"] <= naive_stats["bccp_calls"]

    # pytest-benchmark timing of the paper's fastest method on one dataset.
    points = dataset("2D-SS-varden", TABLE_DATASETS["2D-SS-varden"])
    benchmark.pedantic(emst_memogfk, args=(points,), rounds=1, iterations=1)
