"""Shared fixtures and helpers for the benchmark drivers.

Each module under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation section (see DESIGN.md's per-experiment index and
EXPERIMENTS.md for the paper-vs-measured record).  The drivers run at
"reproduction scale": the dataset sizes are set so the whole directory
finishes in minutes of pure-Python time rather than the hours of C++/48-core
time the paper uses.  Set the environment variable ``REPRO_BENCH_SCALE`` to a
float (default 1.0) to grow or shrink every dataset proportionally.

Printed tables appear with ``pytest benchmarks/ --benchmark-only -s``; without
``-s`` they are captured but the pytest-benchmark timing tables are still
reported.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.datasets import load_dataset

#: Datasets used by the table benchmarks (name -> reproduction-scale size).
TABLE_DATASETS: Dict[str, int] = {
    "2D-UniformFill": 1200,
    "5D-UniformFill": 700,
    "2D-SS-varden": 1200,
    "5D-SS-varden": 700,
    "3D-GeoLife": 1000,
    "7D-Household": 600,
    "10D-HT": 500,
    "16D-CHEM": 400,
}

#: Smaller selection used by the figure (scaling-curve) benchmarks.
FIGURE_DATASETS: Dict[str, int] = {
    "2D-UniformFill": 1000,
    "3D-SS-varden": 800,
    "3D-GeoLife": 800,
    "7D-Household": 500,
}


def scaled(n: int) -> int:
    """Apply the REPRO_BENCH_SCALE environment scaling factor."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(64, int(n * scale))


_CACHE: Dict[str, np.ndarray] = {}


def dataset(name: str, n: int) -> np.ndarray:
    """Load (and cache) one registered dataset at the requested size."""
    key = f"{name}:{scaled(n)}"
    if key not in _CACHE:
        _CACHE[key] = load_dataset(name, n=scaled(n), seed=0)
    return _CACHE[key]
