"""Ablation — MemoGFK memory usage vs materializing the full WSPD.

Section 5 ("MemoGFK Memory Usage") reports that retrieving pairs round by
round instead of materializing the whole WSPD reduces memory usage by up to
10x.  The proxy for memory here is the number of well-separated pairs
materialized: the full WSPD size (what Naive/GFK hold in memory) versus the
largest number of pairs MemoGFK ever holds in a single round.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.emst import emst_memogfk, emst_naive
from repro.hdbscan import hdbscan_mst_gantao, hdbscan_mst_memogfk

from _common import dataset

DATASETS = {"2D-UniformFill": 1000, "5D-UniformFill": 600, "3D-SS-varden": 800, "3D-GeoLife": 800}


def test_ablation_memogfk_memory(benchmark):
    """Peak materialized pairs: full WSPD vs MemoGFK's per-round maximum."""
    rows = []
    reductions = []
    for name, size in DATASETS.items():
        points = dataset(name, size)
        naive = emst_naive(points)
        memogfk = emst_memogfk(points)
        full_wspd = naive.stats["pairs_materialized"]
        peak_memo = max(memogfk.stats["max_pairs_materialized"], 1)
        reduction = full_wspd / peak_memo
        reductions.append(reduction)
        rows.append(
            [f"{name}-{points.shape[0]}", int(full_wspd), int(peak_memo), f"{reduction:.1f}x"]
        )
        assert reduction > 2.0, name

    print()
    print(
        format_table(
            ["dataset", "full WSPD pairs", "MemoGFK peak pairs/round", "reduction"],
            rows,
            title="Ablation: pairs materialized (memory proxy), full WSPD vs MemoGFK",
        )
    )
    print(f"max reduction: {max(reductions):.1f}x (paper reports up to 10x less memory)")

    points = dataset("2D-UniformFill", DATASETS["2D-UniformFill"])
    benchmark.pedantic(emst_memogfk, args=(points,), rounds=1, iterations=1)


def test_ablation_memory_also_holds_for_hdbscan(benchmark):
    """The same memory mechanism applies to the HDBSCAN* variants."""
    points = dataset("3D-SS-varden", DATASETS["3D-SS-varden"])
    memogfk = hdbscan_mst_memogfk(points, 10)
    gantao = hdbscan_mst_gantao(points, 10)
    assert memogfk.stats["max_pairs_materialized"] <= gantao.stats["pairs_materialized"]
    benchmark.pedantic(
        hdbscan_mst_memogfk, args=(points, 10), rounds=1, iterations=1
    )
