"""Figure 10 — approximate OPTICS (Gan & Tao) vs the exact HDBSCAN* methods.

The paper finds that with a quality-preserving approximation parameter
(rho = 0.125, i.e. WSPD separation constant 8) the approximate algorithm is
*slower* than the exact ones, because the large separation constant produces
many more well-separated pairs (1.00-1.96x slower than HDBSCAN*-GanTao and
1.72-7.48x slower than HDBSCAN*-MemoGFK).  The driver reproduces the
comparison on the Household and CHEM proxies and checks the pair-count
mechanism.
"""

from __future__ import annotations

from repro.bench import format_table, measure
from repro.hdbscan import hdbscan_mst_gantao, hdbscan_mst_memogfk, optics_approx_mst
from repro.spatial import KDTree
from repro.wspd import count_wspd_pairs

from _common import dataset

DATASETS = {"7D-Household": 500, "16D-CHEM": 350}
MIN_PTS = 10
RHO = 0.125


def test_fig10_approximate_optics_comparison(benchmark):
    """Regenerate the Figure 10 comparison (rho = 0.125)."""
    rows = []
    for name, size in DATASETS.items():
        points = dataset(name, size)
        approx, approx_time = measure(optics_approx_mst, points, MIN_PTS, rho=RHO)
        gantao, gantao_time = measure(hdbscan_mst_gantao, points, MIN_PTS)
        memogfk, memogfk_time = measure(hdbscan_mst_memogfk, points, MIN_PTS)

        assert approx.is_spanning_tree()
        # The approximate MST's weight is close to (and not above 1+rho times)
        # the exact weight.
        assert approx.total_weight <= gantao.total_weight * (1.0 + RHO) + 1e-6
        assert approx.total_weight >= gantao.total_weight / (1.0 + RHO) - 1e-6

        # Mechanism: separation constant 8 produces far more pairs than the
        # exact algorithms' constant 2.
        tree = KDTree(points, leaf_size=1)
        pairs_s8 = count_wspd_pairs(tree, s=8.0)
        pairs_s2 = count_wspd_pairs(tree, s=2.0)
        assert pairs_s8 > pairs_s2

        rows.append(
            [
                f"{name}-{points.shape[0]}",
                f"{approx_time:.3f}",
                f"{gantao_time:.3f}",
                f"{memogfk_time:.3f}",
                f"{pairs_s8 / pairs_s2:.2f}x",
            ]
        )

    print()
    print(
        format_table(
            [
                "dataset",
                "OPTICS-GanTaoApprox (s)",
                "HDBSCAN*-GanTao (s)",
                "HDBSCAN*-MemoGFK (s)",
                "WSPD pairs s=8 / s=2",
            ],
            rows,
            title=f"Figure 10: approximate OPTICS (rho={RHO}) vs exact HDBSCAN* (1 thread)",
        )
    )

    points = dataset("7D-Household", DATASETS["7D-Household"])
    benchmark.pedantic(
        optics_approx_mst, args=(points, MIN_PTS), kwargs={"rho": RHO}, rounds=1, iterations=1
    )
