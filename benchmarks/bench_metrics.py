"""Per-metric EMST / HDBSCAN* timings with a Euclidean-identity gate.

The metric-general geometry core routes every kernel (node bounds, WSPD
separation masks, BCCP block tensors, k-NN folds, exact edge weights)
through a pluggable :class:`repro.core.metric.Metric`.  This driver measures
what that indirection costs and what the non-Euclidean workloads run at:

* **Euclidean identity gate** — the refactor's contract is that the
  Euclidean path is the *same arithmetic* as the historical Euclidean-only
  engine.  Passing ``metric=None``, ``metric="euclidean"`` and
  ``metric=EuclideanMetric()`` must all produce byte-identical MST edge
  arrays, dendrograms and core distances (asserted at every scale — a
  violation fails the CI job).
* **Per-metric timings** — EMST (MemoGFK) and the full HDBSCAN* pipeline at
  the headline n=20k for euclidean / manhattan / chebyshev / minkowski:3,
  written to the JSON artifact (``REPRO_BENCH_JSON``, default
  ``BENCH_metrics.json``) with the metric name in each record's metadata.
* **Cross-metric sanity** — each metric's MST is a spanning tree and its
  total weight is metric-consistent with a brute-force reference at small n.

Non-Euclidean kernels accumulate per-axis instead of using the BLAS
expansion, so they are expected to be slower; the artifact quantifies by how
much rather than gating it.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.bench.harness import memory_snapshot
from repro.core.metric import EuclideanMetric, resolve_metric
from repro.emst import emst_bruteforce, emst_memogfk
from repro.hdbscan import hdbscan

from _common import scaled

#: Headline scale of the per-metric timing records.
HEADLINE_N = 20_000

#: Metrics timed by this driver (spec strings, resolved per run).
METRICS = ("euclidean", "manhattan", "chebyshev", "minkowski:3")

_RESULTS: dict = {}


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    _RESULTS.setdefault("machine", {})["scale"] = float(
        os.environ.get("REPRO_BENCH_SCALE", "1.0")
    )
    _RESULTS["machine"].update(memory_snapshot())
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_metrics.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def _edge_arrays(result):
    return result.edges.as_arrays()


def test_euclidean_identity_gate(benchmark):
    """metric=None / 'euclidean' / EuclideanMetric() are byte-identical."""
    n = scaled(HEADLINE_N) // 4
    points = np.random.default_rng(42).random((n, 2))

    def run_all():
        return [
            emst_memogfk(points, metric=spec)
            for spec in (None, "euclidean", EuclideanMetric())
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    reference = _edge_arrays(results[0])
    for result in results[1:]:
        for left, right in zip(reference, _edge_arrays(result)):
            assert np.array_equal(left, right), (
                "euclidean identity gate: metric indirection changed the MST"
            )

    ref_h = hdbscan(points, min_pts=10)
    via_metric = hdbscan(points, min_pts=10, metric="euclidean")
    assert np.array_equal(ref_h.core_distances, via_metric.core_distances)
    for left, right in zip(
        _edge_arrays(ref_h.mst), _edge_arrays(via_metric.mst)
    ):
        assert np.array_equal(left, right)
    assert np.array_equal(
        ref_h.dendrogram.to_linkage_matrix(),
        via_metric.dendrogram.to_linkage_matrix(),
    )
    print(f"\n[metrics] euclidean identity gate passed (n={n})")
    _record("euclidean_identity", {"n": n, "identical": True})


def test_emst_per_metric_timings(benchmark):
    """EMST (MemoGFK) wall clock per metric at the headline scale."""
    n = scaled(HEADLINE_N)
    points = np.random.default_rng(0).random((n, 2))
    times: dict = {}
    weights: dict = {}

    def run_all():
        import time as _time

        for spec in METRICS:
            start = _time.perf_counter()
            result = emst_memogfk(points, metric=spec)
            times[spec] = _time.perf_counter() - start
            weights[spec] = result.total_weight
            assert result.is_spanning_tree()
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for spec in METRICS:
        print(
            f"[metrics] emst n={n} metric={spec}: "
            f"{times[spec]:.3f}s (weight {weights[spec]:.6g})"
        )
    _record(
        "emst_memogfk",
        {
            "n": n,
            "metrics": {
                resolve_metric(spec).spec(): {
                    "seconds": times[spec],
                    "total_weight": weights[spec],
                }
                for spec in METRICS
            },
        },
    )


def test_hdbscan_per_metric_timings(benchmark):
    """Full HDBSCAN* pipeline wall clock per metric at the headline scale."""
    n = scaled(HEADLINE_N)
    points = np.random.default_rng(1).random((n, 2))
    times: dict = {}

    def run_all():
        import time as _time

        for spec in METRICS:
            start = _time.perf_counter()
            result = hdbscan(points, min_pts=10, metric=spec)
            times[spec] = _time.perf_counter() - start
            assert result.mst.is_spanning_tree()
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for spec in METRICS:
        print(f"[metrics] hdbscan n={n} metric={spec}: {times[spec]:.3f}s")
    _record(
        "hdbscan_memogfk",
        {
            "n": n,
            "metrics": {
                resolve_metric(spec).spec(): {"seconds": times[spec]}
                for spec in METRICS
            },
        },
    )


def test_small_scale_bruteforce_consistency(benchmark):
    """Engine MSTs match brute-force total weights under every metric."""
    points = np.random.default_rng(2).random((300, 3))

    def run_all():
        deltas = {}
        for spec in METRICS:
            engine = emst_memogfk(points, metric=spec)
            reference = emst_bruteforce(points, metric=spec)
            deltas[spec] = abs(engine.total_weight - reference.total_weight)
        return deltas

    deltas = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for spec, delta in deltas.items():
        assert delta < 1e-8, f"metric={spec}: engine vs brute-force drift {delta}"
    print("[metrics] brute-force consistency ok:", deltas)
    _record(
        "bruteforce_consistency",
        {"n": 300, "max_weight_delta": max(deltas.values())},
    )
