"""Compare every EMST method on the same data set.

Reproduces, at laptop scale, the comparison behind the paper's Table 4 /
Figure 8: all methods return the same tree, but they differ enormously in how
many bichromatic-closest-pair computations they perform and how many
well-separated pairs they ever hold in memory.

Run with::

    python examples/emst_methods_comparison.py
"""

import time

from repro import emst
from repro.datasets import seed_spreader


def main() -> None:
    points = seed_spreader(2000, 2, seed=3)
    print(f"data: {points.shape[0]} seed-spreader points in 2-d\n")

    methods = ["naive", "gfk", "memogfk", "delaunay", "dualtree-boruvka"]
    print(
        f"{'method':>18} | {'time (s)':>8} | {'weight':>10} | "
        f"{'BCCP calls':>10} | {'pairs held':>10}"
    )
    reference_weight = None
    for method in methods:
        start = time.perf_counter()
        result = emst(points, method=method)
        elapsed = time.perf_counter() - start
        if reference_weight is None:
            reference_weight = result.total_weight
        assert abs(result.total_weight - reference_weight) < 1e-6
        bccp_calls = result.stats.get("bccp_calls", "-")
        pairs_held = result.stats.get(
            "max_pairs_materialized", result.stats.get("pairs_materialized", "-")
        )
        print(
            f"{method:>18} | {elapsed:8.3f} | {result.total_weight:10.4f} | "
            f"{str(bccp_calls):>10} | {str(pairs_held):>10}"
        )

    print(
        "\nAll methods produce a spanning tree of identical weight; MemoGFK "
        "holds an order of magnitude fewer well-separated pairs at any time "
        "than the methods that materialize the full WSPD."
    )


if __name__ == "__main__":
    main()
