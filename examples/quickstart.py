"""Quickstart: EMST, single-linkage clustering, and HDBSCAN* in a few lines.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import emst, hdbscan, single_linkage
from repro.datasets import gaussian_blobs


def main() -> None:
    # A small synthetic data set: three Gaussian clusters in the plane.
    points, truth = gaussian_blobs(
        600, 2, num_clusters=3, cluster_std=0.02, seed=42, return_labels=True
    )

    # 1. Euclidean minimum spanning tree (MemoGFK, the paper's fastest method).
    tree = emst(points)
    print(f"EMST: {tree.num_edges} edges, total weight {tree.total_weight:.4f}")
    print(f"      WSPD rounds: {tree.stats['rounds']}, BCCP calls: {tree.stats['bccp_calls']}")

    # 2. Single-linkage clustering = dendrogram of the EMST.
    clustering = single_linkage(points)
    labels = clustering.labels_k(3)
    agreement = _best_case_accuracy(labels, truth)
    print(f"single-linkage, k=3: label agreement with ground truth = {agreement:.1%}")

    # 3. HDBSCAN*: hierarchy over all density levels.
    result = hdbscan(points, min_pts=10)
    order, reachability = result.reachability_plot()
    print(
        "HDBSCAN*: reachability plot computed; "
        f"median reachability distance = {np.median(reachability[1:]):.4f}"
    )
    flat = result.dbscan_labels(epsilon=0.1, min_cluster_size=5)
    num_clusters = len(set(flat[flat >= 0].tolist()))
    num_noise = int(np.sum(flat == -1))
    print(f"DBSCAN* cut at eps=0.1: {num_clusters} clusters, {num_noise} noise points")


def _best_case_accuracy(labels: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of points whose predicted cluster matches the majority truth label."""
    correct = 0
    for label in set(labels.tolist()):
        members = truth[labels == label]
        values, counts = np.unique(members, return_counts=True)
        correct += int(counts.max())
    return correct / len(labels)


if __name__ == "__main__":
    main()
