"""Quickstart: EMST, single-linkage clustering, and HDBSCAN* in a few lines.

This walkthrough uses the scikit-learn-style estimator facade
(:mod:`repro.estimators`): construct with hyperparameters, ``fit`` /
``fit_predict`` on data, read the fitted attributes.  The functional API
(``repro.emst``, ``repro.hdbscan``, ``repro.single_linkage``) remains
available for pipeline-shaped code.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.datasets import gaussian_blobs
from repro.estimators import EMST, HDBSCAN


def main() -> None:
    # A small synthetic data set: three Gaussian clusters in the plane.
    points, truth = gaussian_blobs(
        600, 2, num_clusters=3, cluster_std=0.02, seed=42, return_labels=True
    )

    # 1. Euclidean minimum spanning tree (MemoGFK, the paper's fastest method).
    tree = EMST().fit(points)
    print(
        f"EMST: {len(tree.edges_)} edges, total weight {tree.total_weight_:.4f}"
    )
    stats = tree.result_.stats
    print(f"      WSPD rounds: {stats['rounds']}, BCCP calls: {stats['bccp_calls']}")

    # 2. Single-linkage clustering: the EMST estimator cuts its own dendrogram
    #    when n_clusters is set.
    labels = EMST(n_clusters=3).fit_predict(points)
    agreement = _best_case_accuracy(labels, truth)
    print(f"single-linkage, k=3: label agreement with ground truth = {agreement:.1%}")

    # 3. HDBSCAN*: density-based clusters with membership strengths.
    model = HDBSCAN(min_pts=10, min_cluster_size=5)
    flat = model.fit_predict(points)
    num_clusters = len(set(flat[flat >= 0].tolist()))
    num_noise = int(np.sum(flat == -1))
    print(
        f"HDBSCAN*: {num_clusters} clusters, {num_noise} noise points; "
        f"median membership = {np.median(model.probabilities_):.2f}"
    )
    order, reachability = model.result_.reachability_plot()
    print(
        "          reachability plot computed; "
        f"median reachability distance = {np.median(reachability[1:]):.4f}"
    )

    # 4. Non-Euclidean workloads: every estimator takes a metric parameter
    #    ("euclidean", "manhattan", "chebyshev", or "minkowski:p").  Here a
    #    Manhattan-metric HDBSCAN*, the natural choice for grid-like data.
    grid_model = HDBSCAN(min_pts=10, metric="manhattan")
    grid_labels = grid_model.fit_predict(points)
    grid_clusters = len(set(grid_labels[grid_labels >= 0].tolist()))
    l1_tree = EMST(metric="manhattan").fit(points)
    print(
        f"manhattan metric: {grid_clusters} HDBSCAN* clusters; "
        f"L1 MST weight {l1_tree.total_weight_:.4f} "
        f"(vs Euclidean {tree.total_weight_:.4f})"
    )

    # 5. Accuracy-for-speed: epsilon > 0 computes a (1+eps)-approximate tree
    #    whose total weight is contractually within a factor 1 + eps of the
    #    exact MST (and never below it).  In practice the observed ratio sits
    #    far inside the bound.
    epsilon = 0.5
    approx_tree = EMST(epsilon=epsilon).fit(points)
    ratio = approx_tree.total_weight_ / tree.total_weight_
    stats = approx_tree.result_.stats
    print(
        f"approximate EMST (eps={epsilon}): weight ratio vs exact = {ratio:.5f} "
        f"(contract: <= {1 + epsilon:.2f}); "
        f"{stats['pairs_certified']} pairs certified, "
        f"{stats['pairs_refined']} refined exactly"
    )


def _best_case_accuracy(labels: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of points whose predicted cluster matches the majority truth label."""
    correct = 0
    for label in set(labels.tolist()):
        members = truth[labels == label]
        values, counts = np.unique(members, return_counts=True)
        correct += int(counts.max())
    return correct / len(labels)


if __name__ == "__main__":
    main()
