"""Single-linkage hierarchical clustering of correlated feature vectors.

EMST-based single-linkage clustering is the classic tool for grouping
high-dimensional measurement vectors (the paper cites gene-expression
clustering as an application).  This example clusters a synthetic
"expression-profile" data set -- groups of correlated 16-dimensional vectors,
mimicking co-regulated genes -- and walks down the dendrogram to show how the
hierarchy exposes structure at several scales.

Run with::

    python examples/single_linkage_gene_expression.py
"""

import numpy as np

from repro import single_linkage
from repro.datasets import chem_proxy, gaussian_blobs


def main() -> None:
    # "Expression profiles": 5 groups of correlated vectors plus background.
    profiles, truth = gaussian_blobs(
        800, 16, num_clusters=5, cluster_std=0.03, seed=11, return_labels=True
    )
    print(f"data: {profiles.shape[0]} profiles, {profiles.shape[1]} conditions each")

    result = single_linkage(profiles)
    print(
        f"EMST built with {result.emst.method}: weight {result.emst.total_weight:.3f}, "
        f"{result.emst.stats['rounds']} MemoGFK rounds"
    )

    # Walk down the hierarchy: how many clusters exist at each merge scale?
    heights = np.sort(result.dendrogram.heights())
    print("\nclusters at a range of dendrogram cut heights:")
    for quantile in (99.9, 99.5, 99.0, 95.0, 50.0):
        cut = float(np.percentile(heights, quantile))
        labels = result.labels_at(cut)
        print(f"  cut height {cut:8.4f} -> {len(set(labels.tolist())):4d} clusters")

    # Flat clustering with the known number of groups.
    labels = result.labels_k(5)
    sizes = np.bincount(labels)
    print(f"\nk=5 cut cluster sizes: {sorted(sizes.tolist(), reverse=True)}")
    purity = _purity(labels, truth)
    print(f"cluster purity vs ground truth: {purity:.1%}")

    # The same machinery applies to any vector data, e.g. the chemical-sensor
    # proxy data set used in the benchmarks.
    sensors = chem_proxy(600, seed=2)
    sensor_clustering = single_linkage(sensors)
    print(
        f"\nchemical-sensor proxy ({sensors.shape[0]} x {sensors.shape[1]}): "
        f"{len(set(sensor_clustering.labels_k(10).tolist()))} clusters at k=10"
    )


def _purity(labels: np.ndarray, truth: np.ndarray) -> float:
    correct = 0
    for label in set(labels.tolist()):
        members = truth[labels == label]
        _, counts = np.unique(members, return_counts=True)
        correct += int(counts.max())
    return correct / len(labels)


if __name__ == "__main__":
    main()
