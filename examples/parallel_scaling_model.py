"""Inspect the work-depth instrumentation and the modelled scaling curves.

The paper evaluates on a 48-core machine; this reproduction models
multi-threaded running times from the measured work and depth of each
algorithm via Brent's bound (see DESIGN.md).  This example shows the raw
ingredients: the work/depth an algorithm reports, its per-phase breakdown, and
the speedup curve the model predicts.

Run with::

    python examples/parallel_scaling_model.py
"""

from repro import emst, hdbscan
from repro.bench import THREAD_COUNTS, format_scaling_series, run_with_tracker, scaling_curve
from repro.datasets import uniform_fill


def main() -> None:
    points = uniform_fill(1500, 3, seed=5)
    print(f"data: {points.shape[0]} uniform points in 3-d\n")

    # Work and depth of one EMST run.
    result, tracker, elapsed = run_with_tracker(emst, points)
    print(f"EMST-MemoGFK: {elapsed:.3f}s measured on one thread")
    print(f"  instrumented work  = {tracker.work:,.0f} operations")
    print(f"  instrumented depth = {tracker.depth:,.0f} operations")
    print(f"  work / depth       = {tracker.work / tracker.depth:,.0f} (available parallelism)")
    print("  work per phase:")
    for phase, work in sorted(tracker.phase_work.items(), key=lambda kv: -kv[1]):
        print(f"    {phase:12s} {work:14,.0f}")

    # Modelled speedup curve (Brent's bound calibrated to the measured time).
    curve = scaling_curve(emst, points, thread_counts=THREAD_COUNTS)
    print()
    print(format_scaling_series("EMST-MemoGFK modelled speedups", curve["thread_counts"], curve["speedups"]))

    curve = scaling_curve(hdbscan, points, 10, thread_counts=THREAD_COUNTS)
    print()
    print(
        format_scaling_series(
            "HDBSCAN* (minPts=10) modelled speedups", curve["thread_counts"], curve["speedups"]
        )
    )


if __name__ == "__main__":
    main()
