"""Density-based clustering of skewed GPS-like data (the GeoLife scenario).

The paper's introduction motivates HDBSCAN* with exactly this situation:
spatial data whose density varies wildly (dense city centres, sparse travel
trajectories), where any single DBSCAN epsilon either merges the cities or
labels the suburbs as noise.  HDBSCAN* builds the whole hierarchy once; flat
clusterings for any epsilon are then just cuts.

Run with::

    python examples/spatial_clustering_gps.py
"""

import numpy as np

from repro import hdbscan
from repro.datasets import geolife_proxy


def main() -> None:
    points = geolife_proxy(3000, seed=7)
    print(f"data: {points.shape[0]} GPS-like points in {points.shape[1]}-d (skewed density)")

    result = hdbscan(points, min_pts=10)
    core = result.core_distances
    print(
        "core distances: "
        f"p10={np.percentile(core, 10):.3f}  median={np.median(core):.3f}  "
        f"p90={np.percentile(core, 90):.3f}  max={core.max():.3f}"
    )

    # One hierarchy, many epsilon cuts: sweep epsilon and report how the flat
    # clustering changes -- no recomputation needed.
    print(f"{'epsilon':>10} | {'clusters':>8} | {'noise':>6} | largest cluster")
    for quantile in (30, 50, 70, 90):
        epsilon = float(np.percentile(core, quantile))
        labels = result.dbscan_labels(epsilon, min_cluster_size=10)
        clustered = labels[labels >= 0]
        num_clusters = len(set(clustered.tolist()))
        largest = int(np.bincount(clustered).max()) if clustered.size else 0
        print(
            f"{epsilon:10.3f} | {num_clusters:8d} | {int(np.sum(labels == -1)):6d} | {largest}"
        )

    # The reachability plot is the classic OPTICS visualization: valleys are
    # clusters.  Render it as coarse ASCII so the example has no plotting
    # dependency.
    order, reachability = result.reachability_plot()
    print("\nreachability plot (downsampled, higher bar = larger distance):")
    finite = np.where(np.isinf(reachability), np.nanmax(reachability[1:]), reachability)
    buckets = np.array_split(finite, 60)
    heights = np.array([bucket.mean() for bucket in buckets])
    scale = 8.0 / heights.max()
    for level in range(8, 0, -1):
        row = "".join("#" if h * scale >= level else " " for h in heights)
        print("  " + row)


if __name__ == "__main__":
    main()
