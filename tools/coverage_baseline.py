"""Measure statement coverage of ``src/repro`` under the tier-1 suite.

The development container does not ship ``coverage``; CI installs it and
enforces ``coverage report --fail-under`` (see ``.github/workflows/ci.yml``).
This script reproduces the measurement locally with only the standard
library so the CI baseline can be recorded and re-derived:

* *executable lines* per file come from the compiled code objects
  (``co_lines`` over the module and every nested code object) — the same
  source of truth ``coverage.py`` uses;
* *executed lines* come from a ``sys.settrace`` / ``threading.settrace``
  line tracer restricted to files under ``src/repro`` (other frames are
  skipped wholesale, so the slowdown stays tolerable).

The numbers track ``coverage.py``'s within a couple of percent (docstring
and def-line accounting differ slightly); the CI gate is therefore set a few
points below the figure printed here.

Run with::

    PYTHONPATH=src python tools/coverage_baseline.py [pytest args...]
"""

from __future__ import annotations

import os
import sys
import threading
from collections import defaultdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"


def executable_lines(path: Path) -> set:
    """Line numbers of executable statements, from the compiled code objects."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines() if line is not None)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main() -> int:
    import pytest

    targets = {str(p) for p in SOURCE_ROOT.rglob("*.py")}
    executed = defaultdict(set)

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if filename not in targets:
            return None
        if event == "line":
            executed[filename].add(frame.f_lineno)
        return tracer

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(sys.argv[1:] or ["-x", "-q", str(REPO_ROOT / "tests")])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_statements = 0
    total_hit = 0
    rows = []
    for filename in sorted(targets):
        statements = executable_lines(Path(filename))
        hit = executed[filename] & statements
        total_statements += len(statements)
        total_hit += len(hit)
        percent = 100.0 * len(hit) / len(statements) if statements else 100.0
        rows.append((percent, filename, len(hit), len(statements)))

    rows.sort()
    for percent, filename, hit, statements in rows:
        relative = os.path.relpath(filename, REPO_ROOT)
        print(f"{percent:6.1f}%  {hit:5d}/{statements:<5d}  {relative}")
    overall = 100.0 * total_hit / total_statements if total_statements else 100.0
    print(f"\nTOTAL: {overall:.1f}% ({total_hit}/{total_statements} statements)")
    return int(exit_code)


if __name__ == "__main__":
    sys.exit(main())
