"""Run a command under a hard address-space cap (``RLIMIT_AS``).

The out-of-core CI job uses this to prove the memory-budget engine actually
fits: the child process cannot allocate past the cap — an engine that ignored
its budget dies with ``MemoryError`` instead of quietly using more RAM than
the runner has.  Usage::

    python tools/capped_run.py 3G -- python -m pytest benchmarks/bench_memory_budget.py

The cap applies to the *whole* child address space (interpreter, NumPy,
mapped files — everything), so it must sit well above the engine budget; the
benchmark's own RSS gate is the precise check, this wrapper is the hard
backstop.  Sizes accept the same ``K``/``M``/``G``/``T`` binary suffixes as
the ``--memory-budget`` CLI flag.

Exits with the child's exit code; exits 2 on a nonsense size or missing
command, and 3 where the platform lacks ``RLIMIT_AS`` (Windows) so callers
can tell "could not cap" from "the capped run failed".
"""

from __future__ import annotations

import os
import subprocess
import sys

_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
sys.path.insert(0, _REPO_SRC)

from repro.core.budget import parse_memory_size  # noqa: E402
from repro.core.errors import ReproError  # noqa: E402


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--" in argv:
        argv.remove("--")
    if len(argv) < 2:
        print(
            "usage: python tools/capped_run.py SIZE [--] COMMAND [ARG...]",
            file=sys.stderr,
        )
        return 2
    try:
        cap = parse_memory_size(argv[0])
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        import resource
    except ImportError:
        print("error: RLIMIT_AS is unavailable on this platform", file=sys.stderr)
        return 3

    command = argv[1:]

    def limit_address_space() -> None:
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

    print(f"[capped-run] RLIMIT_AS={cap} bytes: {' '.join(command)}", file=sys.stderr)
    completed = subprocess.run(command, preexec_fn=limit_address_space)
    return completed.returncode


if __name__ == "__main__":
    sys.exit(main())
