"""Subprocess chaos drill: kill a CLI run at a phase boundary, then resume.

The in-process kill-and-resume tests (``tests/test_resilience.py``) simulate
process death with an injected exception; this wrapper proves the same
contract across *real* process boundaries, the way an operator would hit it:

1. run the CLI to completion once (the reference output);
2. rerun it with ``REPRO_FAULTS=crash-after-phase:...`` and a checkpoint
   directory — the child dies at a seeded-random phase boundary with a
   nonzero exit code;
3. rerun with ``--resume`` and byte-compare the output file against the
   reference.

Any divergence, any unexpected exit code, or a crashed run that somehow
*succeeded* fails the drill.  Usage (the CI chaos job runs exactly this)::

    python tools/chaos_run.py --seed 0
    python tools/chaos_run.py --command hdbscan --rounds 3 --num-threads 4

Exits 0 when every round passes, 1 on a contract violation, 2 on bad usage.
The drill composes with ``tools/capped_run.py`` for the out-of-core job::

    python tools/capped_run.py 3G -- python tools/chaos_run.py --memory-budget 64M
"""

from __future__ import annotations

import argparse
import os
import random
import subprocess
import sys
import tempfile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPO_SRC = os.path.join(_REPO_ROOT, "src")
sys.path.insert(0, _REPO_SRC)

import numpy as np  # noqa: E402

#: Phase boundaries a run of each subcommand commits, as (phase, at) fault
#: coordinates the drill may kill at.  ``at`` indexes occurrences of the
#: phase's commit — the per-round MST snapshot commits many times.
_KILL_SITES = {
    "emst": [
        ("mst-rounds", 0),
        ("mst-rounds", 1),
        ("mst", 0),
    ],
    "hdbscan": [
        ("core-distances", 0),
        ("mst-rounds", 0),
        ("mst-rounds", 1),
        ("mst", 0),
        ("dendrogram", 0),
    ],
}


def _run_cli(arguments, *, faults=None):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        part for part in (_REPO_SRC, environment.get("PYTHONPATH")) if part
    )
    if faults is None:
        environment.pop("REPRO_FAULTS", None)
    else:
        environment["REPRO_FAULTS"] = faults
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        env=environment,
        capture_output=True,
        text=True,
    )


def _fail(message: str, completed=None) -> int:
    print(f"[chaos-run] FAIL: {message}", file=sys.stderr)
    if completed is not None and completed.stderr:
        print(completed.stderr, file=sys.stderr)
    return 1


def run_drill(args, workdir: str) -> int:
    rng = random.Random(args.seed)
    points = np.random.default_rng(args.seed).normal(
        size=(args.num_points, 3)
    )
    points_file = os.path.join(workdir, "points.npy")
    np.save(points_file, points)

    base = [args.command, points_file, "--num-threads", str(args.num_threads)]
    if args.command == "hdbscan":
        base += ["--min-pts", "8"]
    if args.memory_budget:
        base += ["--memory-budget", args.memory_budget]

    reference = os.path.join(workdir, "reference.csv")
    completed = _run_cli(base + ["--output", reference])
    if completed.returncode != 0:
        return _fail("reference run failed", completed)

    for round_index in range(args.rounds):
        phase, at = rng.choice(_KILL_SITES[args.command])
        fault = f"crash-after-phase:phase={phase},at={at}"
        checkpoint = os.path.join(workdir, f"ckpt-{round_index}")
        output = os.path.join(workdir, f"out-{round_index}.csv")
        print(f"[chaos-run] round {round_index}: kill at {fault}", file=sys.stderr)

        crashed = _run_cli(
            base + ["--checkpoint-dir", checkpoint, "--output", output],
            faults=fault,
        )
        if crashed.returncode == 0:
            # A kill site past this run's last commit (few MST rounds) means
            # the fault never fired and the run simply finished — still a
            # valid resume fixture only if the output already matches.
            print(
                f"[chaos-run] round {round_index}: kill site never reached, "
                "run completed",
                file=sys.stderr,
            )
        elif not os.path.isdir(checkpoint):
            return _fail(f"crashed run left no checkpoint at {checkpoint}", crashed)

        resumed = _run_cli(
            base + ["--checkpoint-dir", checkpoint, "--resume", "--output", output]
        )
        if resumed.returncode != 0:
            return _fail(
                f"resume exited {resumed.returncode} after {fault}", resumed
            )
        with open(reference, "rb") as want, open(output, "rb") as got:
            if want.read() != got.read():
                return _fail(f"resumed output diverged after {fault}")
        print(f"[chaos-run] round {round_index}: byte-identical", file=sys.stderr)
    print(f"[chaos-run] PASS: {args.rounds} kill/resume rounds", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--command", choices=sorted(_KILL_SITES), default="emst",
        help="CLI subcommand to drill (default: emst)",
    )
    parser.add_argument("--seed", type=int, default=0, help="drill RNG seed")
    parser.add_argument(
        "--rounds", type=int, default=2, help="kill/resume rounds (default: 2)"
    )
    parser.add_argument(
        "--num-points", type=int, default=400, help="dataset size (default: 400)"
    )
    parser.add_argument(
        "--num-threads", type=int, default=2, help="threads for the child runs"
    )
    parser.add_argument(
        "--memory-budget", default=None, help="optional --memory-budget for the child"
    )
    args = parser.parse_args(argv)
    if args.rounds < 1 or args.num_points < 10:
        parser.error("--rounds must be >= 1 and --num-points >= 10")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        return run_drill(args, workdir)


if __name__ == "__main__":
    sys.exit(main())
