"""Approximation subsystem: (1+ε)-approximate EMST and HDBSCAN* pipelines.

Everything in this package trades a *contractual* accuracy bound for speed,
built on the same engine layers as the exact methods — the flat kd-tree, the
vectorized WSPD frontier traversal, the batched BCCP kernels, the worker-pool
sharding and the pluggable metric:

* :func:`~repro.approx.emst.approx_emst` — (1+ε)-approximate metric MST from
  the WSPD: one representative edge per well-separated pair at a separation
  constant derived from ε, then one Kruskal pass.  The returned tree is a
  genuine spanning tree of true pairwise distances whose total weight is at
  most ``(1 + ε)`` times the exact MST weight.
* :func:`~repro.approx.hdbscan.approx_hdbscan_mst` — approximate mutual
  reachability MST (the vectorized form of Appendix C's cardinality cases),
  registered as HDBSCAN* method ``"wspd-approx"``.
* :func:`~repro.approx.hdbscan.approx_hdbscan` — full approximate HDBSCAN*
  pipeline (core distances, approximate MST, dendrogram).

``ε = 0`` always means *exact*: the entry points delegate to the exact
MemoGFK engine, so callers can treat ε as a pure accuracy knob.
"""

from repro.approx.emst import (
    approx_emst,
    emst_wspd_approx,
    resolve_approx_method,
)
from repro.approx.hdbscan import approx_hdbscan, approx_hdbscan_mst

__all__ = [
    "approx_emst",
    "emst_wspd_approx",
    "resolve_approx_method",
    "approx_hdbscan",
    "approx_hdbscan_mst",
]
