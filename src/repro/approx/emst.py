"""(1+ε)-approximate EMST from an ε-certified pair decomposition.

The exact EMST methods keep one *bichromatic closest pair* edge per
well-separated pair of the ``s = 2`` WSPD — Callahan and Kosaraju's classical
construction.  The approximation replaces the BCCP of a pair with the
deterministic *representative* edge ``(first(A), first(B))`` — one row of a
vectorized weight sweep instead of an ``|A| · |B|`` distance matrix — and
derives the decomposition itself from ε: the FIND_PAIR recursion splits a
pair until it is classically well-separated **and** its representative edge
is certified within ``(1 + ε)`` of the pair's BCCP against the
sphere-geometry lower bound ``max(d(A, B), d(rep) − diam(A) − diam(B))``
(:func:`repro.wspd.separation.epsilon_certified_mask`).  Small ε therefore
means deeper splitting and more pairs — an explicit accuracy-versus-speed
axis — and singleton pairs always certify, so the recursion bottoms out.

Every recorded pair contributes a candidate edge within ``(1 + ε)`` of its
BCCP, and Kruskal over per-pair (1+ε)-approximate BCCPs of a geometrically
separated covering decomposition returns a spanning tree of weight at most
``(1 + ε)`` times the exact MST: the classical exchange argument (diameters
bounded by gaps plus the minimax property of MST paths) carries the per-pair
factor through to the total.  Since every candidate weight is a genuine
pairwise distance, the tree is also never lighter than the exact MST:
``w_exact ≤ w_approx ≤ (1 + ε) · w_exact``.

``representative="bccp"`` is the conservative end of the axis: the plain
geometric ``s = 2`` decomposition with the exact batched BCCP kernel per
pair (per-pair factor 1 — the exact construction's candidate set, computed
through the approximation pipeline's filtered Kruskal).  ``ε = 0`` delegates
to the exact MemoGFK engine outright.

Connectivity is guaranteed structurally, not probabilistically: alongside
the WSPD candidates the edge pool always contains the kd-tree *skeleton*
(for every internal node, an edge between the first points of its two
children — ``n − 1`` true-distance edges whose union is connected by
induction over the tree), so the Kruskal pass returns a spanning tree even
under adversarial floating-point behaviour of the separation predicate.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.metric import Metric, MetricLike
from repro.core.points import as_points
from repro.emst.memogfk import emst_memogfk
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal_filtered_arrays
from repro.parallel import pool as _pool
from repro.parallel.pool import map_shards, resolve_num_threads
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind
from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDTree
from repro.wspd.bccp import BCCPCache
from repro.wspd.separation import (
    bccp_lower_bounds,
    epsilon_certified_mask,
    node_representatives,
)
from repro.wspd.wspd import compute_wspd_ids

#: Representative-edge strategies: ``sample`` records the ε-certified
#: decomposition and keeps its representative edges; ``bccp`` records the
#: exact construction's geometric decomposition and runs the batched BCCP
#: kernel on every pair (per-pair factor 1).
REPRESENTATIVES = ("sample", "bccp")


def resolve_approx_method(
    method: str, epsilon, *, knob: str = "epsilon"
) -> Tuple[str, dict]:
    """Resolve the (method, ε) knob pair every public surface exposes.

    One shared rule for the functional APIs, the estimators and the CLI: a
    negative ε is rejected, a positive ε selects the approximate engine
    (refusing a conflicting exact method beats silently ignoring either
    knob), and ``"wspd-approx"`` always receives an explicit ``epsilon``
    kwarg — ``0`` meaning exact, so ε stays a pure accuracy knob.  Returns
    the method to dispatch plus the method kwargs to forward; ``knob`` names
    the parameter in error messages (the HDBSCAN estimator calls it
    ``approx_epsilon``).
    """
    epsilon = 0.0 if epsilon is None else float(epsilon)
    if epsilon < 0:
        raise InvalidParameterError(f"{knob} must be >= 0, got {epsilon}")
    kwargs: dict = {}
    if epsilon > 0:
        if method not in ("memogfk", "wspd-approx"):
            raise InvalidParameterError(
                f"{knob}={epsilon} requests the (1+ε)-approximate tree, "
                f"which method {method!r} cannot produce; leave method at "
                "its default or set it to 'wspd-approx'"
            )
        method = "wspd-approx"
    if method == "wspd-approx":
        kwargs["epsilon"] = epsilon
    return method, kwargs


def sharded_edge_weights(
    metric: Metric,
    points: np.ndarray,
    index_a: np.ndarray,
    index_b: np.ndarray,
    core_distances: Optional[np.ndarray] = None,
    *,
    num_threads: Optional[int] = None,
) -> np.ndarray:
    """``metric.exact_edge_weights`` sharded over the worker pool.

    Fixed chunk boundaries, every shard fills its slice of one output array —
    byte-identical to the single call at any thread count (the kernel is
    purely elementwise over the index arrays).
    """
    m = int(index_a.size)
    if resolve_num_threads(num_threads) == 1 or m < 2 * _pool.DEFAULT_CHUNK:
        return metric.exact_edge_weights(points, index_a, index_b, core_distances)
    out = np.empty(m, dtype=np.float64)

    def shard(lo: int, hi: int) -> None:
        out[lo:hi] = metric.exact_edge_weights(
            points, index_a[lo:hi], index_b[lo:hi], core_distances
        )

    map_shards(shard, m, num_threads=num_threads)
    return out


def skeleton_edges(flat: FlatKDTree) -> Tuple[np.ndarray, np.ndarray]:
    """One bridging point pair per internal kd-tree node.

    For every internal node, the first point of its left child and the first
    point of its right child.  By induction over the tree, the union of these
    ``n − 1`` edges connects every point, so any candidate set containing
    them spans regardless of what the WSPD contributed.
    """
    internal = np.flatnonzero(flat.left_child >= 0)
    u = flat.perm[flat.node_start[flat.left_child[internal]]]
    v = flat.perm[flat.node_start[flat.right_child[internal]]]
    return u, v


def representative_points(
    flat: FlatKDTree,
    a_ids: np.ndarray,
    b_ids: np.ndarray,
    representatives: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic representative point of each node of a pair frontier.

    With ``representatives`` (the center-nearest map of
    :func:`repro.wspd.separation.node_representatives`) the certified
    choice; without it, the first point of each node's contiguous ``perm``
    slice — the choice the Appendix C OPTICS approximation makes.
    """
    if representatives is not None:
        return representatives[a_ids], representatives[b_ids]
    return flat.perm[flat.node_start[a_ids]], flat.perm[flat.node_start[b_ids]]


def candidate_mst(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    num_points: int,
    *,
    num_threads: Optional[int] = None,
) -> EdgeList:
    """Exact MST of an (approximate) candidate edge set.

    The candidate sets the approximation produces are an order of magnitude
    larger than the ``n − 1`` surviving edges, so the chunked,
    snapshot-pruned Kruskal (:func:`~repro.mst.kruskal.kruskal_filtered_arrays`)
    is used: it accepts the same edge set as the plain batch but discards
    already-connected edges a vectorized chunk at a time and stops as soon as
    the tree is complete.
    """
    union_find = UnionFind(num_points)
    output = EdgeList()
    kruskal_filtered_arrays(u, v, w, output, union_find, num_threads=num_threads)
    return output


def approx_emst(
    points,
    epsilon: float = 0.1,
    *,
    representative: str = "sample",
    leaf_size: int = 1,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
) -> EMSTResult:
    """(1+ε)-approximate metric MST via certified WSPD representatives.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of points.
    epsilon:
        Accuracy parameter: the returned spanning tree's total weight is at
        most ``(1 + epsilon)`` times the exact MST weight (and never below
        it — every candidate edge is a true pairwise distance).  ``0`` runs
        the exact MemoGFK engine; negative values raise.
    representative:
        ``"sample"`` (default): representative edges of the ε-certified
        decomposition.  ``"bccp"``: exact batched BCCPs of the geometric
        ``s = 2`` decomposition (per-pair factor 1, the conservative end of
        the axis).
    leaf_size:
        kd-tree leaf size for the WSPD (must effectively be 1, as for every
        WSPD consumer).
    num_threads:
        Worker threads: the WSPD separation/certificate sweeps, the BCCP
        size-class kernels (``representative="bccp"``), the candidate weight
        sweep and the Kruskal argsort all shard onto the persistent pool
        with fixed chunk boundaries, so the tree is byte-identical at any
        setting.
    metric:
        Distance metric (name, Metric instance, or ``None`` for Euclidean).
        The (1+ε) argument only uses the triangle inequality, so it holds
        for every norm-induced metric.

    Returns
    -------
    EMSTResult
        ``method="wspd-approx"`` with stats recording ε, the decomposition
        size, the candidate count and per-phase timings.
    """
    if epsilon < 0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    if representative not in REPRESENTATIVES:
        raise InvalidParameterError(
            f"representative must be one of {sorted(REPRESENTATIVES)}, "
            f"got {representative!r}"
        )
    data = as_points(points, min_points=1)
    if epsilon == 0:
        return emst_memogfk(data, num_threads=num_threads, metric=metric)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(
            EdgeList(), 1, "wspd-approx", stats={"epsilon": float(epsilon)}
        )

    timings = {}
    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size, metric=metric)
    flat = tree.flat
    timings["build-tree"] = time.perf_counter() - start

    start = time.perf_counter()
    if representative == "bccp":
        reps = None
        pair_a, pair_b = compute_wspd_ids(
            tree, separation="geometric", s=2.0, num_threads=num_threads
        )
    else:
        reps = node_representatives(flat)
        pair_a, pair_b = compute_wspd_ids(
            tree,
            predicate=lambda a, b: epsilon_certified_mask(
                flat, a, b, 2.0, epsilon, reps
            ),
            num_threads=num_threads,
        )
    timings["wspd"] = time.perf_counter() - start

    start = time.perf_counter()
    tracker = current_tracker()
    num_refined = 0
    if representative == "bccp":
        cache = BCCPCache(tree, num_threads=num_threads)
        with tracker.parallel("approx-bccp"):
            cand_u, cand_v, cand_w = cache.get_batch(pair_a, pair_b)
        distance_evaluations = cache.num_distance_evaluations
        num_refined = int(pair_a.size)
    else:
        cand_u, cand_v = representative_points(flat, pair_a, pair_b, reps)
        tracker.add(float(cand_u.size), 1.0, phase="bccp")
        cand_w = sharded_edge_weights(
            flat.metric, data, cand_u, cand_v, num_threads=num_threads
        )
        distance_evaluations = int(cand_u.size)
        # Pairs the certificate rejected were recorded because they are
        # small (SMALL_PAIR_CAP); refine them with the exact batched BCCP so
        # their candidate is the true pair minimum (per-pair factor 1).
        lower = bccp_lower_bounds(flat, pair_a, pair_b, cand_w)
        refine = cand_w > (1.0 + epsilon) * lower
        num_refined = int(np.count_nonzero(refine))
        if num_refined:
            cache = BCCPCache(tree, num_threads=num_threads)
            with tracker.parallel("approx-bccp"):
                ref_u, ref_v, ref_w = cache.get_batch(pair_a[refine], pair_b[refine])
            cand_u[refine] = ref_u
            cand_v[refine] = ref_v
            cand_w[refine] = ref_w
            distance_evaluations += cache.num_distance_evaluations
    # The kd-tree skeleton guarantees the candidate graph spans even when
    # floating-point separation decisions go badly; its edges are true
    # distances, so they can only improve the tree.
    skel_u, skel_v = skeleton_edges(flat)
    skel_w = sharded_edge_weights(
        flat.metric, data, skel_u, skel_v, num_threads=num_threads
    )
    distance_evaluations += int(skel_u.size)
    cand_u = np.concatenate([cand_u, skel_u])
    cand_v = np.concatenate([cand_v, skel_v])
    cand_w = np.concatenate([cand_w, skel_w])
    timings["candidates"] = time.perf_counter() - start

    start = time.perf_counter()
    tree_edges = candidate_mst(cand_u, cand_v, cand_w, n, num_threads=num_threads)
    timings["kruskal"] = time.perf_counter() - start

    stats = {
        "epsilon": float(epsilon),
        "representative": representative,
        "wspd_pairs": int(pair_a.size),
        "pairs_refined": num_refined,
        "pairs_certified": int(pair_a.size) - num_refined,
        "candidate_edges": int(cand_u.size),
        "distance_evaluations": int(distance_evaluations),
    }
    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(tree_edges, n, "wspd-approx", stats=stats)


def emst_wspd_approx(
    points,
    *,
    epsilon: float = 0.0,
    representative: str = "sample",
    leaf_size: int = 1,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
) -> EMSTResult:
    """``emst(method="wspd-approx")`` adapter: keyword-only ε, same contract
    as :func:`approx_emst`.

    ε defaults to ``0`` — exact — so selecting the method without an ε means
    the same thing on every surface (functional API, estimators, CLI).
    """
    return approx_emst(
        points,
        epsilon,
        representative=representative,
        leaf_size=leaf_size,
        num_threads=num_threads,
        metric=metric,
    )
