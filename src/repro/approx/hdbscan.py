"""Approximate HDBSCAN*: an ε-certified mutual-reachability MST.

The same construction as :mod:`repro.approx.emst`, lifted to the mutual
reachability distance ``mr(u, v) = max(cd(u), cd(v), d(u, v))``: the
FIND_PAIR recursion splits a pair ``(A, B)`` until it is classically
well-separated **and** the mutual reachability of its representative edge is
certified within ``(1 + ε)`` of the pair's BCCP* against the per-pair lower
bound ``max(d(A, B), d(rep) − diam(A) − diam(B), cd_min(A), cd_min(B))`` —
the same bound the exact MemoGFK window pruning uses.  This subsumes the
cardinality cases of the paper's Appendix C approximation: a node whose
representative has an unrepresentative core distance simply fails the
certificate and is split further, bottoming out at singleton pairs (whose
representative *is* their BCCP*).

Unlike the Appendix C reproduction (:mod:`repro.hdbscan.optics_approx`) —
which scales distances by ``1/(1+ρ)`` to preserve OPTICS ordering semantics
and loops over pairs in Python — every candidate edge here carries its
*true* mutual reachability distance and the whole pipeline runs on the
array engine: the certificate is a vectorized frontier mask, weights come
from one sharded ``exact_edge_weights`` sweep, and the candidate MST runs
through the chunk-pruned Kruskal.  The kd-tree skeleton rides along for
structural connectivity, so the result is always a spanning tree of genuine
mutual reachability distances with total weight in
``[w_exact, (1 + ε) · w_exact]``.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.approx.emst import (
    candidate_mst,
    representative_points,
    sharded_edge_weights,
    skeleton_edges,
)
from repro.core.errors import InvalidParameterError
from repro.core.metric import MetricLike, resolve_metric
from repro.core.points import as_points
from repro.emst.result import EMSTResult
from repro.hdbscan.core_distance import core_distances as compute_core_distances
from repro.hdbscan.memogfk import hdbscan_mst_memogfk
from repro.hdbscan.result import HDBSCANResult
from repro.mst.edges import EdgeList
from repro.parallel.scheduler import current_tracker
from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDTree
from repro.wspd.bccp import BCCPCache
from repro.wspd.separation import (
    SMALL_PAIR_CAP,
    bccp_lower_bounds,
    node_representatives,
    well_separated_mask,
)
from repro.wspd.wspd import PairMask, compute_wspd_ids


def bccp_star_lower_bounds(
    flat: FlatKDTree, a: np.ndarray, b: np.ndarray, rep_distances: np.ndarray
) -> np.ndarray:
    """Per-pair lower bound on ``BCCP*(A, B)``: the geometric BCCP bound
    joined with the per-node minimum core distances — the same bound the
    exact MemoGFK window pruning uses."""
    return np.maximum(
        bccp_lower_bounds(flat, a, b, rep_distances),
        np.maximum(flat.cd_min[a], flat.cd_min[b]),
    )


def mutual_reachability_certificate(
    flat: FlatKDTree,
    core_distances: np.ndarray,
    epsilon: float,
    s: float = 2.0,
    representatives: Optional[np.ndarray] = None,
) -> PairMask:
    """ε-certified separation under the mutual reachability distance.

    A frontier pair passes when it is classically ``s``-well-separated and
    either the mutual reachability of its representative edge is at most
    ``(1 + ε)`` times the pair's BCCP* lower bound
    (:func:`bccp_star_lower_bounds`), or the pair is small enough
    (:data:`~repro.wspd.separation.SMALL_PAIR_CAP`) to refine with one
    exact batched BCCP*.  Requires core-distance annotations (``cd_min``)
    on the tree.
    """
    metric = flat.metric
    points = flat.points
    sizes = flat.node_sizes

    def mask(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if representatives is not None:
            rep_a = representatives[a]
            rep_b = representatives[b]
        else:
            rep_a = flat.perm[flat.node_start[a]]
            rep_b = flat.perm[flat.node_start[b]]
        d_rep = metric.exact_edge_weights(points, rep_a, rep_b)
        rep_mr = np.maximum(
            d_rep, np.maximum(core_distances[rep_a], core_distances[rep_b])
        )
        certified = rep_mr <= (1.0 + epsilon) * bccp_star_lower_bounds(
            flat, a, b, d_rep
        )
        small = sizes[a] * sizes[b] <= SMALL_PAIR_CAP
        return well_separated_mask(flat, a, b, s) & (certified | small)

    return mask


def approx_hdbscan_mst(
    points,
    min_pts: int = 10,
    *,
    epsilon: float = 0.1,
    leaf_size: int = 1,
    core_dists: Optional[np.ndarray] = None,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
) -> EMSTResult:
    """(1+ε)-approximate MST of the mutual reachability graph.

    Registered as HDBSCAN* method ``"wspd-approx"``.  The returned tree is a
    spanning tree of true mutual reachability distances with total weight in
    ``[w_exact, (1 + ε) · w_exact]``.  ``ε = 0`` delegates to the exact
    HDBSCAN*-MemoGFK engine; negative ε raises.

    Parameters mirror :func:`repro.hdbscan.memogfk.hdbscan_mst_memogfk` plus
    ``epsilon``; ``num_threads`` shards the k-NN blocks (when core distances
    are computed here), the certificate sweeps, the weight sweep and the
    Kruskal argsort onto the persistent pool, so the tree is byte-identical
    at any setting.
    """
    if epsilon < 0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    data = as_points(points, min_points=1)
    if epsilon == 0:
        return hdbscan_mst_memogfk(
            data,
            min_pts,
            leaf_size=leaf_size,
            core_dists=core_dists,
            num_threads=num_threads,
            metric=metric,
        )
    resolved_metric = resolve_metric(metric)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(
            EdgeList(), 1, "hdbscan-wspd-approx", stats={"epsilon": float(epsilon)}
        )

    timings = {}
    start = time.perf_counter()
    if core_dists is None:
        core_dists = compute_core_distances(
            data, min(min_pts, n), num_threads=num_threads, metric=resolved_metric
        )
    else:
        core_dists = np.asarray(core_dists, dtype=np.float64)
    timings["core-dist"] = time.perf_counter() - start

    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size, metric=resolved_metric)
    tree.annotate_core_distances(core_dists)
    flat = tree.flat
    timings["build-tree"] = time.perf_counter() - start

    start = time.perf_counter()
    reps = node_representatives(flat)
    pair_a, pair_b = compute_wspd_ids(
        tree,
        predicate=mutual_reachability_certificate(
            flat, core_dists, epsilon, representatives=reps
        ),
        num_threads=num_threads,
    )
    timings["wspd"] = time.perf_counter() - start

    start = time.perf_counter()
    cand_u, cand_v = representative_points(flat, pair_a, pair_b, reps)
    current_tracker().add(float(cand_u.size), 1.0, phase="bccp")
    # One plain-distance sweep serves both the candidate weights (mutual
    # reachability is the plain distance maxed with the endpoint core
    # distances) and the certificate's lower bound.
    plain = sharded_edge_weights(
        resolved_metric, data, cand_u, cand_v, num_threads=num_threads
    )
    cand_w = np.maximum(
        plain, np.maximum(core_dists[cand_u], core_dists[cand_v])
    )
    distance_evaluations = int(cand_u.size)
    # Recorded-but-uncertified pairs are the small ones; refine them with
    # the exact batched BCCP* (per-pair factor 1).
    refine = cand_w > (1.0 + epsilon) * bccp_star_lower_bounds(
        flat, pair_a, pair_b, plain
    )
    num_refined = int(np.count_nonzero(refine))
    if num_refined:
        cache = BCCPCache(tree, core_distances=core_dists, num_threads=num_threads)
        ref_u, ref_v, ref_w = cache.get_batch(pair_a[refine], pair_b[refine])
        cand_u[refine] = ref_u
        cand_v[refine] = ref_v
        cand_w[refine] = ref_w
        distance_evaluations += cache.num_distance_evaluations
    skel_u, skel_v = skeleton_edges(flat)
    skel_w = sharded_edge_weights(
        resolved_metric, data, skel_u, skel_v, core_dists, num_threads=num_threads
    )
    distance_evaluations += int(skel_u.size)
    cand_u = np.concatenate([cand_u, skel_u])
    cand_v = np.concatenate([cand_v, skel_v])
    cand_w = np.concatenate([cand_w, skel_w])
    timings["candidates"] = time.perf_counter() - start

    start = time.perf_counter()
    tree_edges = candidate_mst(cand_u, cand_v, cand_w, n, num_threads=num_threads)
    timings["kruskal"] = time.perf_counter() - start

    stats = {
        "epsilon": float(epsilon),
        "wspd_pairs": int(pair_a.size),
        "pairs_refined": num_refined,
        "pairs_certified": int(pair_a.size) - num_refined,
        "candidate_edges": int(cand_u.size),
        "distance_evaluations": int(distance_evaluations),
        "min_pts": int(min_pts),
    }
    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(tree_edges, n, "hdbscan-wspd-approx", stats=stats)


def approx_hdbscan(
    points,
    min_pts: int = 10,
    epsilon: float = 0.1,
    *,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
    **kwargs,
) -> HDBSCANResult:
    """Full approximate HDBSCAN* pipeline (core distances, (1+ε)-approximate
    mutual-reachability MST, ordered dendrogram).

    A thin convenience over ``hdbscan(..., method="wspd-approx")``.  Quality
    contract: the MST weight is within ``(1 + ε)`` of exact, and the derived
    flat clusterings track the exact pipeline's closely at small ε — the ARI
    curves against the exact labels on the registry datasets are measured by
    ``benchmarks/bench_approx_quality.py`` and summarized in the README's
    Approximation section.
    """
    from repro.hdbscan.api import hdbscan

    return hdbscan(
        points,
        min_pts=min_pts,
        method="wspd-approx",
        epsilon=epsilon,
        num_threads=num_threads,
        metric=metric,
        **kwargs,
    )
