"""Public flat namespace for the library's exception hierarchy.

Every exception the engine raises lives in :mod:`repro.core.errors`; this
module re-exports them so callers can write ``from repro.errors import
WorkerFailedError`` without reaching into the core package.  The resilience
subsystem (:mod:`repro.resilience`) raises the checkpoint/worker/spill
classes; the rest of the engine raises the parameter/input/result classes.

All classes derive from :class:`ReproError`, so ``except ReproError`` still
catches everything.
"""

from repro.core.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    FitStateError,
    InvalidParameterError,
    InvalidPointSetError,
    NotComputedError,
    ReproError,
    SpillIOError,
    WorkerFailedError,
)

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "InvalidPointSetError",
    "NotComputedError",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "FitStateError",
    "WorkerFailedError",
    "SpillIOError",
]
