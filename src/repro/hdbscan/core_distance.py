"""Core distances.

The core distance of a point ``p`` for a given ``minPts`` is the distance from
``p`` to its ``minPts``-nearest neighbour, counting ``p`` itself (so
``minPts = 1`` gives core distance 0 for every point and HDBSCAN* degenerates
to the EMST, Appendix D).

The ``"kdtree"`` method rides the same flat array engine as every other
traversal in the library: the all-points query runs as batched frontier
traversals of :class:`repro.spatial.flat.FlatKDTree`, and the resulting core
distances are what :meth:`KDTree.annotate_core_distances` folds back into the
tree's ``cd_min`` / ``cd_max`` arrays for the HDBSCAN* separation tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backend import BackendLike, resolve_backend
from repro.core.budget import BudgetLike, use_memory_budget
from repro.core.errors import InvalidParameterError
from repro.core.metric import MetricLike, resolve_metric
from repro.core.points import as_points
from repro.spatial.kdtree import KDTree
from repro.spatial.knn import knn, knn_bruteforce


def core_distances(
    points,
    min_pts: int,
    *,
    method: str = "bruteforce",
    tree: Optional[KDTree] = None,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
    backend: BackendLike = None,
    memory_budget: BudgetLike = None,
) -> np.ndarray:
    """Core distance of every point for the given ``minPts``.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of points.
    min_pts:
        The HDBSCAN* ``minPts`` parameter (``1 <= minPts <= n``).
    method:
        ``"bruteforce"`` (chunked exact brute force, O(n^2) but one matrix
        product per chunk) or ``"kdtree"`` (the batched flat-tree traversal
        the paper's algorithm uses; subquadratic, so it wins as n grows).
    tree:
        Optional pre-built kd-tree reused when ``method="kdtree"``; its
        metric must match ``metric``.
    num_threads:
        Thread count for the underlying k-NN batches.
    metric:
        Distance metric (name, Metric instance, or ``None`` for Euclidean).
    backend:
        Kernel backend for the k-NN batches (name, KernelBackend instance,
        or ``None`` for the ambient default).  Core distances are always
        returned in exact float64: lowered backends re-evaluate the selected
        neighbours before the ``minPts``-th distance is read off.
    memory_budget:
        Bytes ceiling for the k-NN tiles (int, size string like ``"512M"``,
        a :class:`~repro.core.budget.MemoryBudget`, or ``None`` for the
        ambient default).  Results are byte-identical at any budget.
    """
    with use_memory_budget(memory_budget):
        data = as_points(points)
        resolved_metric = resolve_metric(metric)
        resolved_backend = resolve_backend(backend)
        n = data.shape[0]
        if not 1 <= min_pts <= n:
            raise InvalidParameterError(f"minPts must be in [1, {n}], got {min_pts}")
        if tree is not None and tree.metric != resolved_metric:
            raise InvalidParameterError(
                f"the supplied kd-tree was built under metric "
                f"{tree.metric.spec()!r}, which conflicts with "
                f"metric={resolved_metric.spec()!r}"
            )
        if min_pts == 1:
            return np.zeros(n, dtype=np.float64)
        if method == "bruteforce":
            _, distances = knn_bruteforce(
                data,
                min_pts,
                num_threads=num_threads,
                metric=resolved_metric,
                backend=resolved_backend,
            )
        elif method == "kdtree":
            if tree is None:
                tree = KDTree(
                    data,
                    leaf_size=max(16, min_pts),
                    metric=resolved_metric,
                    backend=resolved_backend,
                )
            _, distances = knn(tree, min_pts, num_threads=num_threads)
        else:
            raise InvalidParameterError("method must be 'bruteforce' or 'kdtree'")
        return np.ascontiguousarray(distances[:, -1], dtype=np.float64)
