"""Result object returned by the public :func:`repro.hdbscan.api.hdbscan`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.errors import NotComputedError
from repro.dendrogram.extract import dbscan_star_labels
from repro.dendrogram.reachability import reachability_from_dendrogram
from repro.dendrogram.structure import Dendrogram
from repro.emst.result import EMSTResult


@dataclass
class HDBSCANResult:
    """The HDBSCAN* hierarchy for one point set.

    Attributes
    ----------
    mst:
        MST of the mutual reachability graph (edge weights are mutual
        reachability distances).
    core_distances:
        Core distance of every point for the chosen ``minPts``.
    min_pts:
        The ``minPts`` parameter used.
    dendrogram:
        Ordered dendrogram of the MST (``None`` when dendrogram construction
        was skipped).
    method:
        Name of the MST algorithm used.
    stats:
        Per-phase timings and counters collected along the way.
    """

    mst: EMSTResult
    core_distances: np.ndarray
    min_pts: int
    dendrogram: Optional[Dendrogram]
    method: str
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        return self.mst.num_points

    def _require_dendrogram(self) -> Dendrogram:
        if self.dendrogram is None:
            raise NotComputedError(
                "dendrogram was not computed; call hdbscan(..., compute_dendrogram=True)"
            )
        return self.dendrogram

    def reachability_plot(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(order, distances)`` of the reachability plot (OPTICS sequence)."""
        return reachability_from_dendrogram(self._require_dendrogram())

    def dbscan_labels(self, epsilon: float, *, min_cluster_size: int = 1) -> np.ndarray:
        """DBSCAN* labels for a single ``epsilon`` (noise points get ``-1``)."""
        return dbscan_star_labels(
            self.mst.edges,
            self.core_distances,
            epsilon,
            min_cluster_size=min_cluster_size,
        )

    def eom_labels(
        self, *, min_cluster_size: int = 5, allow_single_cluster: bool = False
    ) -> np.ndarray:
        """Flat HDBSCAN* clusters via excess-of-mass selection (no epsilon).

        Condenses the dendrogram with the given ``min_cluster_size`` and picks
        the most stable set of clusters; noise points get label ``-1``.
        """
        from repro.dendrogram.condensed import hdbscan_flat_labels

        return hdbscan_flat_labels(
            self._require_dendrogram(),
            min_cluster_size=min_cluster_size,
            allow_single_cluster=allow_single_cluster,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HDBSCANResult(method={self.method!r}, n={self.num_points}, "
            f"minPts={self.min_pts})"
        )
