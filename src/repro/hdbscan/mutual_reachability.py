"""Mutual reachability distances.

``d_m(p, q) = max(cd(p), cd(q), d(p, q))`` — the edge weights of the mutual
reachability graph G_MR whose MST defines the HDBSCAN* hierarchy.  ``d`` is
the chosen base metric (Euclidean by default).
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import pairwise_distances, point_distance
from repro.core.metric import MetricLike
from repro.core.points import as_points


def mutual_reachability(
    p, q, core_distance_p: float, core_distance_q: float, metric: MetricLike = None
) -> float:
    """Mutual reachability distance between two individual points."""
    return max(core_distance_p, core_distance_q, point_distance(p, q, metric))


def mutual_reachability_matrix(
    points, core_distances: np.ndarray, metric: MetricLike = None
) -> np.ndarray:
    """Full ``(n, n)`` mutual reachability distance matrix.

    Θ(n^2) memory; used by the brute-force baseline and the test suite only.
    The diagonal is set to 0 (a point's distance to itself), matching the
    convention that self-edges in the HDBSCAN* MST are handled separately via
    the core distances.
    """
    data = as_points(points)
    core = np.asarray(core_distances, dtype=np.float64)
    if core.shape[0] != data.shape[0]:
        raise ValueError("core_distances must have one entry per point")
    distances = pairwise_distances(data, metric)
    matrix = np.maximum(distances, np.maximum(core[:, None], core[None, :]))
    np.fill_diagonal(matrix, 0.0)
    return matrix
