"""HDBSCAN* — hierarchical density-based clustering (Section 3.2 + Appendix C).

The pipeline is: core distances via k-NN (``minPts``-nearest neighbour), then
an MST of the *mutual reachability graph* (edge weights
``max(cd(p), cd(q), d(p, q))``), then the ordered dendrogram and reachability
plot of that MST.  Three MST constructions are provided:

* :func:`~repro.hdbscan.gantao.hdbscan_mst_gantao` — the parallelized exact
  version of Gan & Tao's algorithm: standard (geometric) well-separation,
  BCCP* per pair (Section 3.2.1 baseline);
* :func:`~repro.hdbscan.memogfk.hdbscan_mst_memogfk` — the paper's
  space-efficient algorithm using the new disjunctive notion of
  well-separation (Section 3.2.2);
* :func:`~repro.hdbscan.bruteforce.hdbscan_mst_bruteforce` — O(n^2) reference
  over the complete mutual reachability graph (testing only).

:func:`~repro.hdbscan.optics_approx.optics_approx_mst` implements the parallel
approximate OPTICS algorithm of Appendix C.  The public entry point is
:func:`~repro.hdbscan.api.hdbscan`.
"""

from repro.hdbscan.core_distance import core_distances
from repro.hdbscan.mutual_reachability import (
    mutual_reachability,
    mutual_reachability_matrix,
)
from repro.hdbscan.bruteforce import hdbscan_mst_bruteforce
from repro.hdbscan.gantao import hdbscan_mst_gantao
from repro.hdbscan.memogfk import hdbscan_mst_memogfk
from repro.hdbscan.optics_approx import optics_approx_mst
from repro.hdbscan.result import HDBSCANResult
from repro.hdbscan.validation import adjusted_rand_index
from repro.hdbscan.api import hdbscan, HDBSCAN_METHODS

__all__ = [
    "core_distances",
    "mutual_reachability",
    "mutual_reachability_matrix",
    "hdbscan_mst_bruteforce",
    "hdbscan_mst_gantao",
    "hdbscan_mst_memogfk",
    "optics_approx_mst",
    "HDBSCANResult",
    "adjusted_rand_index",
    "hdbscan",
    "HDBSCAN_METHODS",
]
