"""Clustering-agreement measures used by the quality benchmarks and tests.

The approximation subsystem's quality contract for HDBSCAN* is stated in
terms of the adjusted Rand index between the flat clusterings derived from
the approximate and the exact pipelines (see the README's Approximation
section and ``benchmarks/bench_approx_quality.py``); this module provides
the measure without an sklearn dependency.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError


def adjusted_rand_index(labels_a, labels_b) -> float:
    """Adjusted Rand index between two flat labelings.

    Chance-corrected pair-counting agreement in ``[-1, 1]``: ``1`` for
    identical partitions (up to label renaming), ``~0`` for independent
    ones.  Noise markers (e.g. HDBSCAN*'s ``-1``) are treated as one
    ordinary cluster, so disagreement about what is noise lowers the score
    like any other disagreement.  Degenerate cases where the expected and
    maximum index coincide (e.g. both partitions are single clusters)
    return ``1.0``.
    """
    a = np.asarray(labels_a).ravel()
    b = np.asarray(labels_b).ravel()
    if a.size != b.size:
        raise InvalidParameterError(
            f"labelings must have equal length, got {a.size} and {b.size}"
        )
    if a.size == 0:
        raise InvalidParameterError("labelings must be non-empty")

    _, a_ids = np.unique(a, return_inverse=True)
    _, b_ids = np.unique(b, return_inverse=True)
    num_a = int(a_ids.max()) + 1
    num_b = int(b_ids.max()) + 1
    contingency = np.bincount(
        a_ids * num_b + b_ids, minlength=num_a * num_b
    ).reshape(num_a, num_b)

    def pairs(counts: np.ndarray) -> float:
        counts = counts.astype(np.float64)
        return float((counts * (counts - 1.0) / 2.0).sum())

    sum_cells = pairs(contingency.ravel())
    sum_rows = pairs(contingency.sum(axis=1))
    sum_cols = pairs(contingency.sum(axis=0))
    total = a.size * (a.size - 1.0) / 2.0
    expected = sum_rows * sum_cols / total if total else 0.0
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))
