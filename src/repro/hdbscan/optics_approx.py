"""Parallel approximate OPTICS (Appendix C, after Gan & Tao).

The approximation parameter ``rho >= 0`` determines the WSPD separation
constant ``s = sqrt(8 / rho)``: the larger the required precision (smaller
``rho``), the larger the separation constant and the more well-separated
pairs are generated.  For every pair ``(A, B)`` a *representative point* is
chosen on each side (the paper's implementation simply picks an arbitrary
point, as does this one — deterministically, the first point of the node), and
edges are added according to the four cardinality cases of Appendix C, with
weight::

    w(u, v) = max(cd(u), cd(v), d(u, v) / (1 + rho))

The MST of the resulting multigraph is an MST of a graph whose weights
approximate the mutual reachability distances within a factor of ``1 + rho``.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.metric import Metric, MetricLike, resolve_metric
from repro.core.points import as_points
from repro.emst.result import EMSTResult
from repro.hdbscan.core_distance import core_distances as compute_core_distances
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal
from repro.parallel.scheduler import current_tracker
from repro.spatial.kdtree import KDNode, KDTree
from repro.wspd.wspd import iterate_wspd


def _pair_edges(
    tree: KDTree,
    node_a: KDNode,
    node_b: KDNode,
    core_dists: np.ndarray,
    min_pts: int,
    rho: float,
    metric: Metric,
) -> List[Tuple[int, int, float]]:
    """Edges generated for one well-separated pair (the four cases of App. C)."""
    points = tree.points
    scale = 1.0 + rho

    def weight(u: int, v: int) -> float:
        return max(
            core_dists[u],
            core_dists[v],
            metric.point_distance(points[u], points[v]) / scale,
        )

    a_indices = node_a.indices
    b_indices = node_b.indices
    rep_a = int(a_indices[0])
    rep_b = int(b_indices[0])
    edges: List[Tuple[int, int, float]] = []
    small_a = a_indices.shape[0] < min_pts
    small_b = b_indices.shape[0] < min_pts
    if small_a and small_b:
        for u in a_indices:
            for v in b_indices:
                edges.append((int(u), int(v), weight(int(u), int(v))))
    elif not small_a and small_b:
        for v in b_indices:
            edges.append((rep_a, int(v), weight(rep_a, int(v))))
    elif small_a and not small_b:
        for u in a_indices:
            edges.append((int(u), rep_b, weight(int(u), rep_b)))
    else:
        edges.append((rep_a, rep_b, weight(rep_a, rep_b)))
    return edges


def optics_approx_mst(
    points,
    min_pts: int = 10,
    *,
    rho: float = 0.125,
    leaf_size: int = 1,
    core_dists: Optional[np.ndarray] = None,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
) -> EMSTResult:
    """Approximate MST for OPTICS / HDBSCAN* with approximation parameter rho.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of points.
    min_pts:
        OPTICS/HDBSCAN* ``minPts`` parameter.
    rho:
        Approximation parameter (> 0); the separation constant is
        ``sqrt(8 / rho)`` (``rho = 0.125`` gives ``s = 8``, the value used in
        the paper's Figure 10 experiments).
    leaf_size:
        kd-tree leaf size for the WSPD.
    core_dists:
        Optional precomputed core distances.
    num_threads:
        Thread count for the k-NN batches.
    metric:
        Distance metric (name, Metric instance, or ``None`` for Euclidean);
        the ``1 + rho`` approximation argument only uses the triangle
        inequality, so it carries over to every norm-induced metric.
    """
    if rho <= 0:
        raise InvalidParameterError("rho must be positive")
    data = as_points(points, min_points=1)
    resolved_metric = resolve_metric(metric)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "optics-gantao-approx")

    timings = {}
    start = time.perf_counter()
    if core_dists is None:
        core_dists = compute_core_distances(
            data, min(min_pts, n), num_threads=num_threads, metric=resolved_metric
        )
    timings["core-dist"] = time.perf_counter() - start

    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size, metric=resolved_metric)
    timings["build-tree"] = time.perf_counter() - start

    separation_constant = math.sqrt(8.0 / rho)
    tracker = current_tracker()

    start = time.perf_counter()
    edges: List[Tuple[int, int, float]] = []
    num_pairs = 0
    for pair in iterate_wspd(tree, separation="geometric", s=separation_constant):
        num_pairs += 1
        pair_edges = _pair_edges(
            tree, pair.node_a, pair.node_b, core_dists, min_pts, rho, resolved_metric
        )
        tracker.add(len(pair_edges), 1.0, phase="wspd")
        edges.extend(pair_edges)
    timings["wspd"] = time.perf_counter() - start

    start = time.perf_counter()
    tree_edges = kruskal(edges, n)
    timings["kruskal"] = time.perf_counter() - start

    stats = {
        "wspd_pairs": num_pairs,
        "graph_edges": len(edges),
        "rho": rho,
        "separation_constant": separation_constant,
        "min_pts": min_pts,
    }
    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(tree_edges, n, "optics-gantao-approx", stats=stats)
