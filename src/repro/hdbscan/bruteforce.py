"""Brute-force MST of the complete mutual reachability graph.

Θ(n^2) space and time — the reference every HDBSCAN* MST implementation is
tested against, and the naive approach whose memory footprint the paper's
Theorem 3.3 improves on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.result import EMSTResult
from repro.hdbscan.core_distance import core_distances as compute_core_distances
from repro.hdbscan.mutual_reachability import mutual_reachability_matrix
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal
from repro.parallel.scheduler import current_tracker


def hdbscan_mst_bruteforce(
    points,
    min_pts: int = 10,
    *,
    core_dists: Optional[np.ndarray] = None,
    metric: MetricLike = None,
) -> EMSTResult:
    """MST of the mutual reachability graph by Kruskal over all n(n-1)/2 edges."""
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if core_dists is None:
        core_dists = compute_core_distances(data, min(min_pts, n), metric=metric)
    if n == 1:
        return EMSTResult(EdgeList(), 1, "hdbscan-bruteforce")
    current_tracker().add(float(n) * n, 1.0, phase="bruteforce")
    matrix = mutual_reachability_matrix(data, core_dists, metric)
    upper_i, upper_j = np.triu_indices(n, k=1)
    weights = matrix[upper_i, upper_j]
    order = np.argsort(weights, kind="stable")
    edges = zip(upper_i[order], upper_j[order], weights[order])
    tree_edges = kruskal(edges, n)
    return EMSTResult(
        tree_edges,
        n,
        "hdbscan-bruteforce",
        stats={"distance_evaluations": n * n},
    )
