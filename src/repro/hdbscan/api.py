"""Public HDBSCAN* entry point.

``hdbscan(points, min_pts=10)`` runs the full pipeline the paper's experiments
time: core distances, MST of the mutual reachability graph, and the ordered
dendrogram (from which the reachability plot and flat DBSCAN* clusterings are
derived).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.backend import BackendLike, use_backend
from repro.core.budget import BudgetLike, use_memory_budget
from repro.core.errors import InvalidParameterError
from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.dendrogram.topdown import dendrogram_topdown
from repro.hdbscan.bruteforce import hdbscan_mst_bruteforce
from repro.hdbscan.core_distance import core_distances as compute_core_distances
from repro.hdbscan.gantao import hdbscan_mst_gantao
from repro.hdbscan.memogfk import hdbscan_mst_memogfk
from repro.hdbscan.optics_approx import optics_approx_mst
from repro.hdbscan.result import HDBSCANResult
from repro.dendrogram.structure import Dendrogram
from repro.emst.memogfk import ROUND_PHASE
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.parallel.pool import use_pool_policy
from repro.resilience.checkpoint import CheckpointManager, build_fingerprint


def _hdbscan_mst_wspd_approx(points, min_pts: int = 10, **kwargs):
    """(1+ε)-approximate mutual-reachability MST (``epsilon=`` kwarg).

    Imported lazily: :mod:`repro.approx` consumes the whole exact engine, so
    a module-level import here would cycle through the package inits.
    """
    from repro.approx.hdbscan import approx_hdbscan_mst

    return approx_hdbscan_mst(points, min_pts, **kwargs)


HDBSCAN_METHODS: Dict[str, Callable] = {
    "memogfk": hdbscan_mst_memogfk,
    "gantao": hdbscan_mst_gantao,
    "optics-approx": optics_approx_mst,
    "wspd-approx": _hdbscan_mst_wspd_approx,
    "bruteforce": hdbscan_mst_bruteforce,
}


def hdbscan(
    points,
    min_pts: int = 10,
    *,
    method: str = "memogfk",
    compute_dendrogram: bool = True,
    start: int = 0,
    heavy_fraction: float = 0.1,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
    backend: BackendLike = None,
    memory_budget: BudgetLike = None,
    checkpoint_dir=None,
    resume: bool = True,
    max_retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    **method_kwargs,
) -> HDBSCANResult:
    """Compute the HDBSCAN* hierarchy of a point set.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of points.
    min_pts:
        The ``minPts`` density parameter (the paper's default is 10).
    method:
        MST construction: ``"memogfk"`` (default, the paper's space-efficient
        algorithm), ``"gantao"`` (exact baseline), ``"optics-approx"``
        (Appendix C approximation; accepts ``rho``), ``"wspd-approx"`` (the
        batched (1+ε)-approximate tree of
        :func:`repro.approx.hdbscan.approx_hdbscan_mst`; accepts
        ``epsilon``) or ``"bruteforce"``.
    compute_dendrogram:
        Whether to build the ordered dendrogram (needed for the reachability
        plot; the MST alone suffices for :meth:`HDBSCANResult.dbscan_labels`).
    start:
        Starting vertex for the ordered dendrogram / reachability plot.
    heavy_fraction:
        Heavy-edge fraction of the top-down dendrogram construction.
    num_threads:
        Worker threads for every batched stage of the pipeline: the
        core-distance k-NN blocks, the WSPD/MemoGFK traversal sweeps, the
        BCCP* size-class kernels and the Kruskal weight sorts all shard onto
        the persistent worker pool (:mod:`repro.parallel.pool`) with fixed
        chunk boundaries, so the MST, dendrogram and labels are
        byte-identical at any thread count.
    metric:
        Distance metric the core distances and mutual reachability are taken
        under: a name (``"euclidean"``, ``"manhattan"``, ``"chebyshev"``,
        ``"minkowski:p"``), a :class:`~repro.core.metric.Metric` instance, or
        ``None`` for Euclidean (byte-identical to the historical engine).
    backend:
        Kernel backend for every batched stage (name,
        :class:`~repro.core.backend.KernelBackend` instance, or ``None`` for
        the ambient default).  Exact backends return byte-identical results;
        lowered (``-f32``) backends score candidates in float32 with every
        surviving edge weight re-evaluated in exact float64.
    memory_budget:
        Bytes ceiling for the tiled kernels and growable buffers (int, size
        string like ``"512M"``, a :class:`~repro.core.budget.MemoryBudget`,
        or ``None`` for the ambient default — see
        :func:`repro.core.budget.use_memory_budget`).  Changes only
        tile/chunk sizes and enables spill-to-disk past its threshold, so
        the MST, dendrogram and labels are byte-identical to the unbudgeted
        engine at any budget admitting at least one tile.
    checkpoint_dir:
        Directory for phase-level checkpoint/resume (see
        :mod:`repro.resilience`).  When given, each finished pipeline phase —
        core distances, the MST (plus, for MemoGFK, every completed filter
        round) and the dendrogram — is committed atomically with a checksum,
        and a rerun over the same directory with the same fingerprint (same
        points, parameters, metric, backend, dtype, thread count and budget)
        skips the completed phases and returns **byte-identical** results.
        A mismatching fingerprint raises ``CheckpointMismatchError``;
        corrupt or truncated state raises ``CheckpointCorruptError``.
    resume:
        With ``False`` an existing checkpoint in ``checkpoint_dir`` is
        discarded and the run starts fresh (default ``True``: reuse it).
    max_retries:
        Worker-death events one pooled batch absorbs by respawn-and-retry
        before degrading to the serial fallback (``None`` keeps the ambient
        :func:`repro.parallel.pool.use_pool_policy` default of 2).
    task_timeout:
        Seconds a pooled batch may go with no task completing before the run
        fails with ``WorkerFailedError`` (``None``: no time limit; worker
        *deaths* are still detected and retried immediately either way).
    method_kwargs:
        Additional arguments forwarded to the MST implementation.

    Returns
    -------
    HDBSCANResult
    """
    with use_memory_budget(memory_budget):
        data = as_points(points, min_points=1)
        n = data.shape[0]
        if not 1 <= min_pts <= n:
            raise InvalidParameterError(f"minPts must be in [1, {n}], got {min_pts}")
        try:
            mst_function = HDBSCAN_METHODS[method]
        except KeyError:
            raise InvalidParameterError(
                f"unknown HDBSCAN* method {method!r}; "
                f"choose from {sorted(HDBSCAN_METHODS)}"
            ) from None

        checkpoint = None
        if checkpoint_dir is not None:
            checkpoint = CheckpointManager(
                checkpoint_dir,
                build_fingerprint(
                    data,
                    algorithm="hdbscan",
                    method=method,
                    metric=metric,
                    backend=backend,
                    memory_budget=memory_budget,
                    num_threads=num_threads,
                    min_pts=int(min_pts),
                    start=int(start),
                    heavy_fraction=float(heavy_fraction),
                    compute_dendrogram=bool(compute_dendrogram),
                    options=repr(sorted(method_kwargs.items())),
                ),
                resume=resume,
            )

        timings = {}
        # One scope covers core distances and the MST: every tree built inside
        # snapshots this backend, with no per-method plumbing; the pool policy
        # scope does the same for the fault-tolerance knobs.
        with use_backend(backend), use_pool_policy(max_retries, task_timeout):
            start_time = time.perf_counter()
            if checkpoint is not None and checkpoint.has_phase("core-distances"):
                arrays, _ = checkpoint.load_phase("core-distances")
                core_dists = arrays["core_distances"]
            else:
                core_dists = compute_core_distances(
                    data, min_pts, num_threads=num_threads, metric=metric
                )
                if checkpoint is not None:
                    checkpoint.save_phase(
                        "core-distances", {"core_distances": core_dists}
                    )
            timings["core-dist"] = time.perf_counter() - start_time

            start_time = time.perf_counter()
            if checkpoint is not None and checkpoint.has_phase("mst"):
                arrays, meta = checkpoint.load_phase("mst")
                edges = EdgeList()
                edges.extend_arrays(arrays["u"], arrays["v"], arrays["w"])
                mst = EMSTResult(
                    edges,
                    n,
                    str(meta.get("method", method)),
                    stats=dict(meta.get("stats", {})),
                )
            else:
                if method == "bruteforce":
                    mst = mst_function(
                        data, min_pts, core_dists=core_dists, metric=metric
                    )
                else:
                    if method == "memogfk" and checkpoint is not None:
                        # MemoGFK checkpoints every filter round, so even a
                        # kill mid-MST resumes at the last finished round.
                        method_kwargs = dict(method_kwargs, checkpoint=checkpoint)
                    mst = mst_function(
                        data,
                        min_pts,
                        core_dists=core_dists,
                        num_threads=num_threads,
                        metric=metric,
                        **method_kwargs,
                    )
                if checkpoint is not None:
                    u, v, w = mst.edges.as_arrays()
                    checkpoint.save_phase(
                        "mst",
                        {"u": u, "v": v, "w": w},
                        {"stats": mst.stats, "method": mst.method},
                    )
                    checkpoint.remove_phase(ROUND_PHASE)
            timings["mst"] = time.perf_counter() - start_time

        dendrogram = None
        if compute_dendrogram and n > 1:
            start_time = time.perf_counter()
            if checkpoint is not None and checkpoint.has_phase("dendrogram"):
                arrays, _ = checkpoint.load_phase("dendrogram")
                dendrogram = Dendrogram.from_state_arrays(arrays)
            else:
                dendrogram = dendrogram_topdown(
                    mst.edges, n, start=start, heavy_fraction=heavy_fraction
                )
                if checkpoint is not None:
                    checkpoint.save_phase("dendrogram", dendrogram.state_arrays())
            timings["dendrogram"] = time.perf_counter() - start_time

    # The fit is over: drop the edge buffers' doubling over-allocation so a
    # long-lived holder of the result (the serving layer) pins only live data.
    mst.edges.shrink_to_fit()
    stats = dict(mst.stats)
    stats.update({f"time_{name}": value for name, value in timings.items()})
    return HDBSCANResult(
        mst=mst,
        core_distances=core_dists,
        min_pts=min_pts,
        dendrogram=dendrogram,
        method=method,
        stats=stats,
    )
