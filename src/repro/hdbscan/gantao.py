"""HDBSCAN*-GanTao: the exact baseline of Section 3.2.1.

The algorithm parallelizes Gan & Tao's approach and makes it exact: core
distances are computed with ``minPts``-nearest-neighbour queries, a WSPD with
the *standard* (geometric) notion of well-separation is built, the BCCP* of
every pair (exact bichromatic closest pair under the mutual reachability
distance) provides one candidate edge per pair, and an MST is computed over
those edges.  As in the paper's implementation, the MST step reuses the
MemoGFK machinery (pairs are retrieved round by round rather than
materialized), so the only difference from HDBSCAN*-MemoGFK is the separation
predicate — which is exactly the comparison the paper's experiments isolate.

Every stage runs on the flat array engine: the kd-tree is built once as a
:class:`~repro.spatial.flat.FlatKDTree`, its ``cd_min`` / ``cd_max`` arrays
are annotated with one vectorized sweep, the MemoGFK window traversals
evaluate the separation and ρ-window tests over whole node frontiers at once,
and each round's surviving pairs are resolved by the batched BCCP* size-class
kernel through the array-backed cache (one call per round).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.memogfk import memogfk_mst
from repro.emst.result import EMSTResult
from repro.hdbscan.core_distance import core_distances as compute_core_distances
from repro.mst.edges import EdgeList
from repro.spatial.kdtree import KDTree


def hdbscan_mst_gantao(
    points,
    min_pts: int = 10,
    *,
    leaf_size: int = 1,
    core_dists: Optional[np.ndarray] = None,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
) -> EMSTResult:
    """Exact MST of the mutual reachability graph, Gan & Tao style.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of points.
    min_pts:
        HDBSCAN* ``minPts`` parameter.
    leaf_size:
        kd-tree leaf size for the WSPD.
    core_dists:
        Optional precomputed core distances (skips the k-NN step).
    num_threads:
        Worker threads for every batched stage — the core-distance k-NN
        blocks and the MemoGFK-engine traversal/BCCP*/Kruskal rounds all
        shard onto the persistent worker pool with deterministic chunking,
        so the MST is byte-identical at any thread count.
    metric:
        Distance metric the core distances and mutual reachability are taken
        under (name, Metric instance, or ``None`` for Euclidean).
    """
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "hdbscan-gantao")

    timings = {}
    start = time.perf_counter()
    if core_dists is None:
        core_dists = compute_core_distances(
            data, min(min_pts, n), num_threads=num_threads, metric=metric
        )
    timings["core-dist"] = time.perf_counter() - start

    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size, metric=metric)
    tree.annotate_core_distances(core_dists)
    timings["build-tree"] = time.perf_counter() - start

    start = time.perf_counter()
    edges, stats = memogfk_mst(
        tree,
        separation="geometric",
        core_distances=core_dists,
        num_threads=num_threads,
    )
    timings["wspd+kruskal"] = time.perf_counter() - start

    stats.update({f"time_{name}": value for name, value in timings.items()})
    stats["min_pts"] = min_pts
    return EMSTResult(edges, n, "hdbscan-gantao", stats=stats)
