"""HDBSCAN*-MemoGFK: the paper's space-efficient algorithm (Section 3.2.2).

Identical in structure to :mod:`repro.hdbscan.gantao`, with one change that is
the paper's core HDBSCAN* contribution: the WSPD / MemoGFK traversals use the
new notion of well-separation — a pair is well-separated when it is
*geometrically separated* **or** *mutually unreachable* — so the recursion
terminates earlier and far fewer pairs are ever generated (Theorem 3.2 proves
the MST over the resulting BCCP* edges is still an MST of the full mutual
reachability graph; Theorem 3.3 gives the O(n · minPts) space bound).  Like
the EMST drivers, each round's retrieved pairs go through the batched BCCP*
kernel and the vectorized Kruskal batch in whole-array form.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.memogfk import memogfk_mst
from repro.emst.result import EMSTResult
from repro.hdbscan.core_distance import core_distances as compute_core_distances
from repro.mst.edges import EdgeList
from repro.spatial.kdtree import KDTree


def hdbscan_mst_memogfk(
    points,
    min_pts: int = 10,
    *,
    leaf_size: int = 1,
    core_dists: Optional[np.ndarray] = None,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
    checkpoint=None,
) -> EMSTResult:
    """Exact MST of the mutual reachability graph with the new well-separation.

    Parameters are identical to :func:`repro.hdbscan.gantao.hdbscan_mst_gantao`,
    plus ``checkpoint``: a
    :class:`~repro.resilience.checkpoint.CheckpointManager` enabling the
    per-round state commits of :func:`repro.emst.memogfk.memogfk_mst` (the
    ``hdbscan()`` entry point wires this up from its ``checkpoint_dir=``).
    """
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "hdbscan-memogfk")

    timings = {}
    start = time.perf_counter()
    if core_dists is None:
        core_dists = compute_core_distances(
            data, min(min_pts, n), num_threads=num_threads, metric=metric
        )
    timings["core-dist"] = time.perf_counter() - start

    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size, metric=metric)
    tree.annotate_core_distances(core_dists)
    timings["build-tree"] = time.perf_counter() - start

    start = time.perf_counter()
    edges, stats = memogfk_mst(
        tree,
        separation="hdbscan",
        core_distances=core_dists,
        num_threads=num_threads,
        checkpoint=checkpoint,
    )
    timings["wspd+kruskal"] = time.perf_counter() - start

    stats.update({f"time_{name}": value for name, value in timings.items()})
    stats["min_pts"] = min_pts
    return EMSTResult(edges, n, "hdbscan-memogfk", stats=stats)
