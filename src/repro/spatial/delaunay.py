"""2D Delaunay triangulation edges.

Appendix A.1 of the paper computes the EMST of a planar point set as the MST
of its Delaunay triangulation (Shamos & Hoey).  The paper uses the parallel
Delaunay implementation from PBBS; here the triangulation substrate is SciPy's
Qhull binding, and the MST step reuses the library's own Kruskal.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.spatial import Delaunay

from repro.core.errors import InvalidParameterError
from repro.core.points import as_points
from repro.parallel.scheduler import current_tracker


def delaunay_edges(points) -> Tuple[np.ndarray, np.ndarray]:
    """Unique edges of the 2D Delaunay triangulation with Euclidean weights.

    Returns ``(edges, weights)`` where ``edges`` is an ``(m, 2)`` integer array
    of point indices (each undirected edge listed once) and ``weights`` the
    corresponding Euclidean lengths.

    Raises
    ------
    InvalidParameterError
        If the points are not two-dimensional (the Delaunay-based EMST is a
        2D-only method, as in the paper) or fewer than 3 points are given.
    """
    data = as_points(points, min_points=2)
    if data.shape[1] != 2:
        raise InvalidParameterError("delaunay_edges requires 2-dimensional points")
    n = data.shape[0]
    if n < 3:
        # Qhull needs at least 3 non-collinear points; with 2 the only edge is
        # the pair itself.
        edges = np.array([[0, 1]], dtype=np.int64)
        weights = np.array([float(np.linalg.norm(data[0] - data[1]))])
        return edges, weights

    current_tracker().add(n * max(np.log2(n), 1.0), max(np.log2(n), 1.0), phase="delaunay")
    triangulation = Delaunay(data, qhull_options="QJ")
    simplices = triangulation.simplices
    pairs = np.vstack(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    pairs.sort(axis=1)
    pairs = np.unique(pairs, axis=0).astype(np.int64)
    diffs = data[pairs[:, 0]] - data[pairs[:, 1]]
    weights = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
    return pairs, weights
