"""Spatial data structures: kd-tree, k-nearest-neighbour queries, Delaunay.

The paper's algorithms are all driven by a spatial-median kd-tree (Section 2.3)
whose nodes carry bounding-sphere information (and, for HDBSCAN*, minimum and
maximum core distances).  The same tree is used for WSPD construction, for the
pruned traversals of MemoGFK, and for k-NN / core-distance queries.
"""

from repro.spatial.kdtree import KDTree, KDNode
from repro.spatial.knn import knn, knn_bruteforce, knn_distances
from repro.spatial.delaunay import delaunay_edges

__all__ = [
    "KDTree",
    "KDNode",
    "knn",
    "knn_bruteforce",
    "knn_distances",
    "delaunay_edges",
]
