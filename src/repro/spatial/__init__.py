"""Spatial data structures: flat kd-tree engine, k-NN queries, Delaunay.

The paper's algorithms are all driven by a spatial-median kd-tree (Section
2.3) whose nodes carry bounding-sphere information (and, for HDBSCAN*,
minimum and maximum core distances).  The tree is stored as the array-native
:class:`FlatKDTree` — a permutation of point indices plus parallel per-node
arrays — which WSPD construction, the pruned traversals of MemoGFK and the
batched k-NN / core-distance queries all drive with vectorized frontier
operations.  :class:`KDTree` / :class:`KDNode` are the node-view
compatibility layer over the same storage; :mod:`repro.spatial.legacy` keeps
the original object tree as a benchmark baseline.
"""

from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDTree, KDNode
from repro.spatial.knn import knn, knn_bruteforce, knn_distances
from repro.spatial.delaunay import delaunay_edges

__all__ = [
    "FlatKDTree",
    "KDTree",
    "KDNode",
    "knn",
    "knn_bruteforce",
    "knn_distances",
    "delaunay_edges",
]
