"""Spatial-median kd-tree with per-node bounding statistics.

This is the tree described in Section 2.3 / 3.1.1 of the paper: it is built by
recursively splitting the widest dimension of a node's bounding box at its
midpoint ("spatial median").  Every node stores

* the indices of the points it contains,
* its axis-aligned bounding box and the circumscribing bounding sphere,
* its diameter (the sphere diameter, ``A_diam`` in the paper), and
* once :meth:`KDTree.annotate_core_distances` has been called, the minimum and
  maximum core distance of its points (``cd_min(A)`` / ``cd_max(A)``), which
  the HDBSCAN* notion of well-separation needs.

The construction is written as the parallel algorithm (children built
independently) but executes sequentially; the work–depth tracker is charged
O(n log n) work and O(log^2 n) depth for the build.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional

import numpy as np

from repro.core.bounding import BoundingBox, BoundingSphere
from repro.core.errors import InvalidParameterError, NotComputedError
from repro.core.points import as_points
from repro.parallel.scheduler import current_tracker


class KDNode:
    """One node of the kd-tree; a leaf when it has no children."""

    __slots__ = (
        "node_id",
        "indices",
        "box",
        "sphere",
        "left",
        "right",
        "cd_min",
        "cd_max",
    )

    def __init__(self, node_id: int, indices: np.ndarray, box: BoundingBox) -> None:
        self.node_id = node_id
        self.indices = indices
        self.box = box
        self.sphere: BoundingSphere = box.to_sphere()
        self.left: Optional[KDNode] = None
        self.right: Optional[KDNode] = None
        self.cd_min: Optional[float] = None
        self.cd_max: Optional[float] = None

    @property
    def size(self) -> int:
        """Number of points contained in this node."""
        return int(self.indices.shape[0])

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def diameter(self) -> float:
        """Diameter of the node's bounding sphere (``A_diam`` in the paper)."""
        return self.sphere.diameter

    def children(self) -> List["KDNode"]:
        if self.is_leaf:
            return []
        return [self.left, self.right]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"KDNode(id={self.node_id}, {kind}, size={self.size})"


class KDTree:
    """Spatial-median kd-tree over an ``(n, d)`` point array.

    Parameters
    ----------
    points:
        The point set (validated through :func:`repro.core.points.as_points`).
    leaf_size:
        Maximum number of points in a leaf.  The paper builds WSPD trees with
        one point per leaf; k-NN queries are usually faster with slightly
        larger leaves, so the default is configurable.
    """

    def __init__(self, points, *, leaf_size: int = 1) -> None:
        if leaf_size < 1:
            raise InvalidParameterError("leaf_size must be >= 1")
        self.points = as_points(points)
        self.leaf_size = leaf_size
        self._nodes: List[KDNode] = []
        self._core_distances: Optional[np.ndarray] = None
        n = self.points.shape[0]
        tracker = current_tracker()
        tracker.add(n * max(math.log2(n), 1.0), max(math.log2(n), 1.0) ** 2, phase="build-tree")
        self.root = self._build(np.arange(n, dtype=np.int64))

    # -- construction --------------------------------------------------------

    def _new_node(self, indices: np.ndarray) -> KDNode:
        box = BoundingBox.of_points(self.points[indices])
        node = KDNode(len(self._nodes), indices, box)
        self._nodes.append(node)
        return node

    def _build(self, indices: np.ndarray) -> KDNode:
        node = self._new_node(indices)
        stack = [node]
        while stack:
            current = stack.pop()
            if current.size <= self.leaf_size:
                continue
            left_idx, right_idx = self._split(current)
            if left_idx is None:
                continue
            current.left = self._new_node(left_idx)
            current.right = self._new_node(right_idx)
            stack.append(current.left)
            stack.append(current.right)
        return node

    def _split(self, node: KDNode):
        """Split ``node`` along the widest dimension at the spatial median."""
        coords = self.points[node.indices]
        extent = node.box.extent
        dimension = int(np.argmax(extent))
        if extent[dimension] <= 0.0:
            # All points identical: split the index array in half so duplicate
            # points still terminate at singleton leaves.
            if node.size <= self.leaf_size:
                return None, None
            half = node.size // 2
            return node.indices[:half], node.indices[half:]
        midpoint = (node.box.lower[dimension] + node.box.upper[dimension]) * 0.5
        mask = coords[:, dimension] < midpoint
        left = node.indices[mask]
        right = node.indices[~mask]
        if left.size == 0 or right.size == 0:
            # Degenerate spatial median (e.g. many duplicates at the midpoint):
            # fall back to an object median so progress is guaranteed.
            order = np.argsort(coords[:, dimension], kind="stable")
            half = node.size // 2
            left = node.indices[order[:half]]
            right = node.indices[order[half:]]
        return left, right

    # -- structural accessors -------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def size(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def nodes(self) -> Iterator[KDNode]:
        """Iterate over all nodes (construction order: parent before children)."""
        return iter(self._nodes)

    def leaves(self) -> Iterator[KDNode]:
        return (node for node in self._nodes if node.is_leaf)

    def height(self) -> int:
        """Length of the longest root-to-leaf path (root alone has height 0)."""

        def walk(node: KDNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def node_points(self, node: KDNode) -> np.ndarray:
        """Coordinate array of the points contained in ``node``."""
        return self.points[node.indices]

    # -- core-distance annotation (HDBSCAN*) ----------------------------------

    def annotate_core_distances(self, core_distances: np.ndarray) -> None:
        """Attach per-node min/max core distances used by HDBSCAN* separation.

        ``core_distances[i]`` must be the core distance of point ``i`` (the
        distance to its minPts-nearest neighbour, including itself).
        """
        core_distances = np.asarray(core_distances, dtype=np.float64)
        if core_distances.shape != (self.size,):
            raise InvalidParameterError(
                "core_distances must have one value per point"
            )
        self._core_distances = core_distances
        tracker = current_tracker()
        tracker.add(self.num_nodes, max(math.log2(self.size + 1), 1.0), phase="core-dist")
        # Children were appended after their parent, so a reverse sweep over
        # the construction order visits children before parents.
        for node in reversed(self._nodes):
            if node.is_leaf:
                values = core_distances[node.indices]
                node.cd_min = float(values.min())
                node.cd_max = float(values.max())
            else:
                node.cd_min = min(node.left.cd_min, node.right.cd_min)
                node.cd_max = max(node.left.cd_max, node.right.cd_max)

    @property
    def core_distances(self) -> np.ndarray:
        """Core distances previously attached via :meth:`annotate_core_distances`."""
        if self._core_distances is None:
            raise NotComputedError(
                "core distances have not been annotated on this tree"
            )
        return self._core_distances

    @property
    def has_core_distances(self) -> bool:
        return self._core_distances is not None
