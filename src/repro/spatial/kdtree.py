"""Node-view compatibility layer over the flat structure-of-arrays kd-tree.

The tree described in Section 2.3 / 3.1.1 of the paper — spatial-median
splits, per-node bounding boxes and spheres, optional ``cd_min`` / ``cd_max``
core-distance annotations — is *stored* as the array-native
:class:`repro.spatial.flat.FlatKDTree`.  This module keeps the original
object-style API on top of it: :class:`KDTree` owns a flat tree, and
:class:`KDNode` is a lightweight **view** onto one node id whose attributes
(``indices``, ``box``, ``sphere``, ``left``, ``right``, ``cd_min`` …) read
straight out of the flat arrays.

Hot paths never touch these views: the WSPD, GFK/MemoGFK and k-NN traversals
drive the flat arrays in batch form.  The views exist so that algorithm code
that genuinely works pair-at-a-time (BCCP kernels, the dual-tree Borůvka and
OPTICS baselines, the test-suite's structural checks) keeps its natural
object-shaped interface.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.core.backend import BackendLike, resolve_backend
from repro.core.bounding import BoundingBox, BoundingSphere
from repro.core.errors import InvalidParameterError, NotComputedError
from repro.core.metric import EUCLIDEAN, Metric, MetricLike, resolve_metric
from repro.core.points import as_points
from repro.spatial.flat import FlatKDTree


class KDNode:
    """View onto one node of a :class:`FlatKDTree` (a leaf when childless).

    Views are created on demand and cached by the owning :class:`KDTree`, so
    ``node.left is tree.node(node.left.node_id)`` always holds and repeated
    attribute access does not rebuild boxes or spheres.
    """

    __slots__ = ("_tree", "node_id", "_box", "_sphere")

    def __init__(self, tree: "KDTree", node_id: int) -> None:
        self._tree = tree
        self.node_id = node_id
        self._box: Optional[BoundingBox] = None
        self._sphere: Optional[BoundingSphere] = None

    @property
    def _flat(self) -> FlatKDTree:
        return self._tree.flat

    @property
    def indices(self) -> np.ndarray:
        """Point indices owned by this node (a view into the permutation)."""
        return self._flat.point_indices(self.node_id)

    @property
    def box(self) -> BoundingBox:
        if self._box is None:
            flat = self._flat
            self._box = BoundingBox(
                flat.node_lower[self.node_id], flat.node_upper[self.node_id]
            )
        return self._box

    @property
    def sphere(self) -> BoundingSphere:
        if self._sphere is None:
            flat = self._flat
            self._sphere = BoundingSphere(
                flat.node_center[self.node_id],
                float(flat.node_radius[self.node_id]),
                metric=self._tree.sphere_metric,
            )
        return self._sphere

    @property
    def left(self) -> Optional["KDNode"]:
        child = int(self._flat.left_child[self.node_id])
        return None if child < 0 else self._tree.node(child)

    @property
    def right(self) -> Optional["KDNode"]:
        child = int(self._flat.right_child[self.node_id])
        return None if child < 0 else self._tree.node(child)

    @property
    def cd_min(self) -> Optional[float]:
        values = self._flat.cd_min
        return None if values is None else float(values[self.node_id])

    @property
    def cd_max(self) -> Optional[float]:
        values = self._flat.cd_max
        return None if values is None else float(values[self.node_id])

    @property
    def size(self) -> int:
        """Number of points contained in this node."""
        flat = self._flat
        return int(flat.node_end[self.node_id] - flat.node_start[self.node_id])

    @property
    def is_leaf(self) -> bool:
        return int(self._flat.left_child[self.node_id]) < 0

    @property
    def diameter(self) -> float:
        """Diameter of the node's bounding sphere (``A_diam`` in the paper)."""
        return 2.0 * float(self._flat.node_radius[self.node_id])

    def children(self) -> List["KDNode"]:
        if self.is_leaf:
            return []
        return [self.left, self.right]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"KDNode(id={self.node_id}, {kind}, size={self.size})"


class KDTree:
    """Spatial-median kd-tree over an ``(n, d)`` point array.

    Parameters
    ----------
    points:
        The point set (validated through :func:`repro.core.points.as_points`).
    leaf_size:
        Maximum number of points in a leaf.  The paper builds WSPD trees with
        one point per leaf; k-NN queries are usually faster with slightly
        larger leaves, so the default is configurable.
    metric:
        Distance metric (name, :class:`~repro.core.metric.Metric` instance,
        or ``None`` for Euclidean).  The metric rides the tree: the flat
        engine's node radii and gap distances, the WSPD separation masks and
        the BCCP kernels all read it from here.
    backend:
        Kernel backend (name, :class:`~repro.core.backend.KernelBackend`
        instance, or ``None`` for the ambient default).  Like the metric it
        rides the tree: the flat engine snapshots it at construction and
        every batched kernel driven through this tree dispatches through it.

    The underlying storage is the flat array engine, exposed as ``tree.flat``;
    the batch traversals in :mod:`repro.spatial.knn`, :mod:`repro.wspd` and
    :mod:`repro.emst` drive it directly.
    """

    def __init__(
        self,
        points,
        *,
        leaf_size: int = 1,
        metric: MetricLike = None,
        backend: BackendLike = None,
    ) -> None:
        if leaf_size < 1:
            raise InvalidParameterError("leaf_size must be >= 1")
        self.points = as_points(points)
        self.leaf_size = leaf_size
        self.metric = resolve_metric(metric)
        self.backend = resolve_backend(backend)
        self.flat = FlatKDTree(
            self.points, leaf_size=leaf_size, metric=self.metric, backend=self.backend
        )
        self._views: dict = {}
        self._core_distances: Optional[np.ndarray] = None

    @classmethod
    def from_flat(cls, flat: FlatKDTree) -> "KDTree":
        """Wrap an already-built :class:`FlatKDTree` without rebuilding it.

        Used by the serving layer to restore a fitted tree from
        :meth:`FlatKDTree.state_arrays` storage: construction parameters and
        the point set are taken from the flat engine, and if the flat tree
        carries core-distance annotations they are surfaced through
        :attr:`core_distances` (reconstructed from the per-point values is not
        possible, so callers re-annotate; the node extrema survive as-is).
        """
        tree = object.__new__(cls)
        tree.points = flat.points
        tree.leaf_size = flat.leaf_size
        tree.metric = flat.metric
        tree.backend = flat.backend
        tree.flat = flat
        tree._views = {}
        tree._core_distances = None
        return tree

    @property
    def sphere_metric(self) -> Optional[Metric]:
        """Metric handed to node-view spheres.

        ``None`` for Euclidean trees so the scalar sphere methods keep their
        historical ``np.linalg.norm`` code path bit for bit.
        """
        return None if self.metric == EUCLIDEAN else self.metric

    # -- structural accessors -------------------------------------------------

    def node(self, node_id: int) -> KDNode:
        """The (cached) view onto node ``node_id``."""
        view = self._views.get(node_id)
        if view is None:
            view = KDNode(self, node_id)
            self._views[node_id] = view
        return view

    @property
    def root(self) -> KDNode:
        return self.node(0)

    @property
    def num_nodes(self) -> int:
        return self.flat.num_nodes

    @property
    def size(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def nodes(self) -> Iterator[KDNode]:
        """Iterate over all nodes (id order: parent before children)."""
        return (self.node(i) for i in range(self.flat.num_nodes))

    def leaves(self) -> Iterator[KDNode]:
        return (self.node(int(i)) for i in self.flat.leaf_ids())

    def height(self) -> int:
        """Length of the longest root-to-leaf path (root alone has height 0)."""
        return self.flat.height

    def node_points(self, node: KDNode) -> np.ndarray:
        """Coordinate array of the points contained in ``node``."""
        return self.points[node.indices]

    # -- core-distance annotation (HDBSCAN*) ----------------------------------

    def annotate_core_distances(self, core_distances: np.ndarray) -> None:
        """Attach per-node min/max core distances used by HDBSCAN* separation.

        ``core_distances[i]`` must be the core distance of point ``i`` (the
        distance to its minPts-nearest neighbour, including itself).
        """
        core_distances = np.asarray(core_distances, dtype=np.float64)
        if core_distances.shape != (self.size,):
            raise InvalidParameterError(
                "core_distances must have one value per point"
            )
        self.flat.annotate_core_distances(core_distances)
        self._core_distances = core_distances

    @property
    def core_distances(self) -> np.ndarray:
        """Core distances previously attached via :meth:`annotate_core_distances`."""
        if self._core_distances is None:
            raise NotComputedError(
                "core distances have not been annotated on this tree"
            )
        return self._core_distances

    @property
    def has_core_distances(self) -> bool:
        return self._core_distances is not None
