"""k-nearest-neighbour queries.

Two interchangeable implementations are provided:

* :func:`knn` — kd-tree traversal with bounding-box pruning, the structure the
  paper uses (Callahan–Kosaraju give the O(k n log n) work / O(log n) depth
  bound for the all-points query);
* :func:`knn_bruteforce` — chunked exact brute force built on a single matrix
  product per chunk; asymptotically worse but heavily vectorized, so it is the
  faster option for the data sizes this reproduction runs at.

Both return neighbours *including the query point itself*, matching the
paper's definition of the core distance ("distance from p to its
minPts-nearest neighbour, including p itself").
"""

from __future__ import annotations

import heapq
import math
from typing import Optional, Tuple

import numpy as np

from repro.core.distance import cross_distances
from repro.core.errors import InvalidParameterError
from repro.core.points import as_points
from repro.parallel.pool import parallel_map
from repro.parallel.scheduler import current_tracker
from repro.spatial.kdtree import KDTree


def knn(
    tree: KDTree,
    k: int,
    *,
    queries: Optional[np.ndarray] = None,
    num_threads: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """k nearest neighbours of every query point using a kd-tree.

    Parameters
    ----------
    tree:
        A :class:`~repro.spatial.kdtree.KDTree` over the data points.
    k:
        Number of neighbours to return (``k <= n``); the query point itself is
        counted when it is part of the data set.
    queries:
        Points to query; defaults to the tree's own points (the all-points
        query used for core distances).
    num_threads:
        If > 1, query batches are dispatched on a thread pool.

    Returns
    -------
    (indices, distances):
        Arrays of shape ``(num_queries, k)``; neighbours are sorted by
        increasing distance.
    """
    if k < 1:
        raise InvalidParameterError("k must be >= 1")
    if k > tree.size:
        raise InvalidParameterError(f"k={k} exceeds the number of points {tree.size}")
    if queries is None:
        query_points = tree.points
    else:
        query_points = as_points(queries)
        if query_points.shape[1] != tree.dimension:
            raise InvalidParameterError("query dimensionality does not match the tree")

    n_queries = query_points.shape[0]
    tracker = current_tracker()
    tracker.add(
        k * n_queries * max(math.log2(tree.size), 1.0),
        max(math.log2(tree.size), 1.0),
        phase="knn",
    )

    def query_one(index: int) -> Tuple[np.ndarray, np.ndarray]:
        return _query_single(tree, query_points[index], k)

    results = parallel_map(query_one, range(n_queries), num_threads=num_threads)
    indices = np.stack([r[0] for r in results])
    distances = np.stack([r[1] for r in results])
    return indices, distances


def _query_single(tree: KDTree, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Single-point k-NN by best-first kd-tree traversal."""
    # Max-heap of (-distance, index) holding the best k candidates so far.
    heap: list = []
    points = tree.points

    def visit(node) -> None:
        if len(heap) == k and -heap[0][0] <= node.box.min_distance_to_point(query):
            return
        if node.is_leaf:
            leaf_points = points[node.indices]
            diffs = leaf_points - query
            dists = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
            for dist, idx in zip(dists, node.indices):
                if len(heap) < k:
                    heapq.heappush(heap, (-float(dist), int(idx)))
                elif dist < -heap[0][0]:
                    heapq.heapreplace(heap, (-float(dist), int(idx)))
            return
        first, second = node.left, node.right
        if second.box.min_distance_to_point(query) < first.box.min_distance_to_point(query):
            first, second = second, first
        visit(first)
        visit(second)

    visit(tree.root)
    ordered = sorted(((-neg, idx) for neg, idx in heap))
    distances = np.array([dist for dist, _ in ordered], dtype=np.float64)
    indices = np.array([idx for _, idx in ordered], dtype=np.int64)
    return indices, distances


def knn_bruteforce(
    points,
    k: int,
    *,
    chunk_size: int = 512,
    num_threads: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact k-NN of every point against the whole set via chunked brute force.

    The ``(n, n)`` distance matrix is never materialized: queries are processed
    in chunks of ``chunk_size`` rows, and within a chunk ``np.argpartition``
    selects the k smallest distances before a final sort of only those k.
    """
    data = as_points(points)
    n = data.shape[0]
    if k < 1:
        raise InvalidParameterError("k must be >= 1")
    if k > n:
        raise InvalidParameterError(f"k={k} exceeds the number of points {n}")

    current_tracker().add(float(n) * n, max(math.log2(n), 1.0), phase="knn")

    chunk_starts = list(range(0, n, chunk_size))

    def process_chunk(start: int) -> Tuple[np.ndarray, np.ndarray]:
        stop = min(start + chunk_size, n)
        dists = cross_distances(data[start:stop], data)
        part = np.argpartition(dists, k - 1, axis=1)[:, :k]
        rows = np.arange(stop - start)[:, None]
        part_d = dists[rows, part]
        order = np.argsort(part_d, axis=1, kind="stable")
        return part[rows, order], part_d[rows, order]

    results = parallel_map(process_chunk, chunk_starts, num_threads=num_threads)
    indices = np.vstack([r[0] for r in results]).astype(np.int64)
    distances = np.vstack([r[1] for r in results])
    return indices, distances


def knn_distances(points, k: int, **kwargs) -> np.ndarray:
    """Distance to the k-th nearest neighbour of every point (self included).

    This is exactly the core-distance computation of HDBSCAN* with
    ``k = minPts``.
    """
    _, distances = knn_bruteforce(points, k, **kwargs)
    return distances[:, -1]
