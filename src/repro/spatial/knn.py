"""k-nearest-neighbour queries.

Two interchangeable implementations are provided:

* :func:`knn` — batched kd-tree traversal with bounding-box pruning over the
  flat array engine, the structure the paper uses (Callahan–Kosaraju give the
  O(k n log n) work / O(log n) depth bound for the all-points query).  Queries
  are processed a block at a time: every block descends the tree as one
  frontier of (query, node) pairs pruned with array comparisons, so the
  traversal cost is NumPy-vectorized rather than per-node Python dispatch;
* :func:`knn_bruteforce` — chunked exact brute force built on a single matrix
  product per chunk; asymptotically worse but fully dense, so it can still win
  at very small sizes or very high dimensions.

Both return neighbours *including the query point itself*, matching the
paper's definition of the core distance ("distance from p to its
minPts-nearest neighbour, including p itself").
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.backend import BackendLike, resolve_backend
from repro.core.budget import MemoryBudget, current_memory_budget
from repro.core.errors import InvalidParameterError
from repro.core.metric import Metric, MetricLike, resolve_metric
from repro.core.points import as_points
from repro.parallel.pool import parallel_map, resolve_num_threads
from repro.parallel.scheduler import current_tracker
from repro.spatial.kdtree import KDTree

#: Default bytes-per-chunk for the k-NN blocking (the unbudgeted tile size).
#: Block sizes are derived from the actual per-query footprint (k result
#: slots, the merge staging area, the d-dimensional rows — or, for brute
#: force, a whole row of the distance matrix) instead of a fixed row count,
#: so small-k/high-n workloads get large cache-friendly blocks while large-k
#: or high-n brute-force chunks stay within the budget rather than thrashing
#: memory.  Under a bounded ambient :class:`~repro.core.budget.MemoryBudget`
#: the per-chunk bytes shrink to the budget's tile share instead.
_CHUNK_BUDGET_BYTES = 8 << 20

#: Clamps keeping blocks big enough to amortize NumPy dispatch and small
#: enough that every worker gets several blocks to balance across.
_MIN_BLOCK_ROWS = 32
_MAX_BLOCK_ROWS = 8192


def _tree_query_block_rows(
    k: int, dim: int, budget: MemoryBudget, workers: int
) -> int:
    """Queries per traversal block from the bytes-per-chunk budget.

    Each in-flight query carries its ``(k,)`` index/distance rows, the
    ``(2k,)`` merge staging copies and a few frontier entries of gathered
    ``dim``-vectors; the block size bounds the traversal's live footprint and
    doubles as the unit of work dispatched to the worker pool (``workers``
    concurrent blocks are live, so a bounded budget divides its tile share
    accordingly).  The per-query results are independent of the blocking, so
    every block size (and thread count) returns identical arrays.
    """
    per_query = 48 * k + 64 * dim + 64
    return budget.tile_rows(
        per_query,
        default_bytes=_CHUNK_BUDGET_BYTES,
        minimum=_MIN_BLOCK_ROWS,
        maximum=_MAX_BLOCK_ROWS,
        parts=workers,
        component="knn",
    )


def _bruteforce_chunk_rows(n: int, k: int, dim: int, budget: MemoryBudget) -> int:
    """Rows per brute-force chunk: one chunk materializes ``rows × n`` distances.

    Unlike the tree traversal's per-query folds, the brute-force distance
    block is a single BLAS ``matmul`` whose kernel dispatch (gemm vs gemv,
    small-matrix paths) depends on the chunk's row count — re-tiling it under
    a budget would change low-order bits of the reported distances.  The
    chunk size therefore stays at its fixed derivation and the chunk block is
    recorded as an irreducible allocation, keeping the budget's peak
    accounting honest without breaking the byte-identity contract.
    """
    per_row = 8 * (2 * n + 4 * k + dim)
    rows = int(min(max(_CHUNK_BUDGET_BYTES // per_row, 1), _MAX_BLOCK_ROWS))
    budget.note_allocation(rows * per_row)
    return rows


def _refine_block(
    metric: Metric, queries: np.ndarray, data: np.ndarray, idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact float64 distances of already-selected neighbours, re-sorted.

    Lowered (float32-scoring) backends select the neighbour *sets* in float32;
    this pass restores the reported distances — and the within-row order — to
    exact float64 with a difference-and-norm evaluation over only the selected
    ``rows × k`` pairs, never the full candidate set.  ``queries`` / ``data``
    must be the original float64 arrays.
    """
    gathered = data[idx]  # (rows, k, d)
    diff = (queries[:, None, :] - gathered).reshape(-1, queries.shape[1])
    refined = metric.diff_norms(diff).reshape(idx.shape)
    order = np.argsort(refined, axis=1, kind="stable")
    rows = np.arange(idx.shape[0])[:, None]
    return idx[rows, order], refined[rows, order]


def knn(
    tree: KDTree,
    k: int,
    *,
    queries: Optional[np.ndarray] = None,
    num_threads: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """k nearest neighbours of every query point using a kd-tree.

    Parameters
    ----------
    tree:
        A :class:`~repro.spatial.kdtree.KDTree` over the data points.  The
        tree's metric governs the query: neighbours and distances are
        metric-correct for whatever metric the tree was built with.
    k:
        Number of neighbours to return (``k <= n``); the query point itself is
        counted when it is part of the data set.
    queries:
        Points to query; defaults to the tree's own points (the all-points
        query used for core distances).
    num_threads:
        If > 1, query blocks are dispatched on the persistent worker pool
        (:func:`repro.parallel.pool.get_pool`).  Block boundaries do not
        depend on the thread count, so the returned arrays are byte-identical
        at any setting.

    Returns
    -------
    (indices, distances):
        Arrays of shape ``(num_queries, k)``; neighbours are sorted by
        increasing distance.
    """
    if k < 1:
        raise InvalidParameterError("k must be >= 1")
    if k > tree.size:
        raise InvalidParameterError(f"k={k} exceeds the number of points {tree.size}")
    if queries is None:
        query_points = tree.points
    else:
        query_points = as_points(queries)
        if query_points.shape[1] != tree.dimension:
            raise InvalidParameterError("query dimensionality does not match the tree")

    n_queries = query_points.shape[0]
    tracker = current_tracker()
    tracker.add(
        k * n_queries * max(math.log2(tree.size), 1.0),
        max(math.log2(tree.size), 1.0),
        phase="knn",
    )

    flat = tree.flat
    lowered = flat.backend.lowered
    block = _tree_query_block_rows(
        k, tree.dimension, current_memory_budget(), resolve_num_threads(num_threads)
    )
    block_starts = list(range(0, n_queries, block))

    def query_block(start: int) -> Tuple[np.ndarray, np.ndarray]:
        stop = min(start + block, n_queries)
        idx, dist = flat.query_knn(query_points[start:stop], k)
        if lowered:
            # The traversal scored candidates in float32; re-evaluate only
            # the selected neighbours in exact float64.
            idx, dist = _refine_block(
                tree.metric, query_points[start:stop], tree.points, idx
            )
        return idx, dist

    results = parallel_map(query_block, block_starts, num_threads=num_threads)
    indices = np.vstack([r[0] for r in results])
    distances = np.vstack([r[1] for r in results])
    return indices, distances


def knn_bruteforce(
    points,
    k: int,
    *,
    chunk_size: Optional[int] = None,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
    backend: BackendLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact k-NN of every point against the whole set via chunked brute force.

    The ``(n, n)`` distance matrix is never materialized: queries are processed
    in chunks (by default sized so one chunk's ``rows × n`` distance block
    fits the bytes-per-chunk budget; pass ``chunk_size`` to override), and
    within a chunk the backend's selection kernel keeps the k smallest
    distances (``argpartition`` + stable sort for numpy, a compiled bounded
    insertion scan for numba).  With ``num_threads > 1`` the chunks run on
    the persistent worker pool; chunk boundaries are independent of the thread
    count, so results are byte-identical at any setting.  ``metric`` selects
    the distance (Euclidean by default); ``backend`` the kernel backend
    (``None`` for the ambient default).  Under a lowered backend the scan
    runs in float32 and the selected neighbours are re-evaluated in exact
    float64.
    """
    data = as_points(points)
    resolved_metric = resolve_metric(metric)
    resolved_backend = resolve_backend(backend)
    scoring_data = resolved_backend.lower_points(data)
    n = data.shape[0]
    if k < 1:
        raise InvalidParameterError("k must be >= 1")
    if k > n:
        raise InvalidParameterError(f"k={k} exceeds the number of points {n}")

    current_tracker().add(float(n) * n, max(math.log2(n), 1.0), phase="knn")

    if chunk_size is None:
        chunk_size = _bruteforce_chunk_rows(n, k, data.shape[1], current_memory_budget())
    chunk_starts = list(range(0, n, chunk_size))

    def process_chunk(start: int) -> Tuple[np.ndarray, np.ndarray]:
        stop = min(start + chunk_size, n)
        idx, dist = resolved_backend.knn_chunk(
            resolved_metric, scoring_data[start:stop], scoring_data, k
        )
        if resolved_backend.lowered:
            idx, dist = _refine_block(resolved_metric, data[start:stop], data, idx)
        return idx, dist

    results = parallel_map(process_chunk, chunk_starts, num_threads=num_threads)
    indices = np.vstack([r[0] for r in results]).astype(np.int64)
    distances = np.vstack([r[1] for r in results])
    return indices, distances


def knn_distances(points, k: int, **kwargs) -> np.ndarray:
    """Distance to the k-th nearest neighbour of every point (self included).

    This is exactly the core-distance computation of HDBSCAN* with
    ``k = minPts``.
    """
    _, distances = knn_bruteforce(points, k, **kwargs)
    return distances[:, -1]
