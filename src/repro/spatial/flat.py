"""Flat, structure-of-arrays kd-tree: the array-native spatial engine.

The paper's algorithms all bottom out in traversals of a spatial-median
kd-tree (Section 2.3).  The original reproduction stored that tree as linked
``KDNode`` Python objects, which makes every hot path pay per-node Python
dispatch.  :class:`FlatKDTree` stores the *same* tree as a handful of parallel
NumPy arrays instead — the layout scikit-learn's neighbor trees use — so whole
frontiers of nodes can be tested, pruned and expanded with single array
operations:

* ``perm`` — a permutation of ``0..n-1``; every node owns the contiguous
  slice ``perm[node_start[v]:node_end[v]]`` of point indices;
* ``node_lower`` / ``node_upper`` — per-node axis-aligned bounding boxes;
* ``node_center`` / ``node_radius`` — the circumscribing bounding spheres
  (center = box center, radius = half the box diagonal, as in the paper);
* ``left_child`` / ``right_child`` — child node ids (``-1`` marks a leaf);
* ``cd_min`` / ``cd_max`` — per-node core-distance extrema, filled in by
  :meth:`annotate_core_distances` (the HDBSCAN* separation needs them).

Construction is iterative and level-synchronous: every level of the tree is
split with a constant number of vectorized passes (segmented bounding boxes
via ``ufunc.reduceat``, segmented stable partitions via ``np.lexsort``), so
the build itself is array-native too.  The split rule is exactly the one the
paper (and the previous object-based implementation) uses: split the widest
dimension of the node's bounding box at its midpoint, falling back to an
object median when the spatial median is degenerate and to a positional halve
when all points coincide.

Because the whole structure is a few flat arrays it is cheap to pickle and to
share across processes, which the node-object tree was not — this is the
storage layer that future sharding/multiprocessing builds on.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.backend import BackendLike, resolve_backend
from repro.core.errors import InvalidParameterError
from repro.core.metric import MetricLike, resolve_metric
from repro.parallel.primitives import segment_ranges as _segment_ranges
from repro.parallel.scheduler import current_tracker


class FlatKDTree:
    """Spatial-median kd-tree stored as structure-of-arrays.

    Parameters
    ----------
    points:
        ``(n, d)`` float64 array (callers normalize through
        :func:`repro.core.points.as_points`).
    leaf_size:
        Maximum number of points in a leaf (>= 1).
    metric:
        The distance metric the tree's derived geometry (``node_radius``,
        point-to-box gaps, k-NN distances) is computed under; a name, a
        :class:`~repro.core.metric.Metric` instance, or ``None`` for
        Euclidean.  The split rule itself (widest box dimension at its
        midpoint) is metric-independent, so the tree *structure* is identical
        for every metric — only the bounds and distances change.
    """

    __slots__ = (
        "points",
        "scoring_points",
        "metric",
        "backend",
        "leaf_size",
        "perm",
        "node_lower",
        "node_upper",
        "node_center",
        "node_radius",
        "node_start",
        "node_end",
        "left_child",
        "right_child",
        "cd_min",
        "cd_max",
        "num_nodes",
        "levels",
    )

    def __init__(
        self,
        points: np.ndarray,
        *,
        leaf_size: int = 1,
        metric: MetricLike = None,
        backend: BackendLike = None,
    ) -> None:
        if leaf_size < 1:
            raise InvalidParameterError("leaf_size must be >= 1")
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise InvalidParameterError("points must be an (n, d) array")
        self.points = points
        self.metric = resolve_metric(metric)
        # The kernel backend rides the tree like the metric does.  Under an
        # exact backend ``scoring_points`` *is* ``points`` (no copy, and all
        # derived node arrays stay float64, byte-identical to the historical
        # engine); under a lowered backend it is the float32 copy the build,
        # the WSPD frontier masks, the BCCP candidate scoring and the k-NN
        # folds all run on — the float64 array remains the source of truth
        # for exact edge-weight refinement.
        self.backend = resolve_backend(backend)
        self.scoring_points = self.backend.lower_points(points)
        self.leaf_size = leaf_size
        self.cd_min: Optional[np.ndarray] = None
        self.cd_max: Optional[np.ndarray] = None
        n = points.shape[0]
        log_n = max(math.log2(n), 1.0) if n > 0 else 1.0
        current_tracker().add(n * log_n, log_n**2, phase="build-tree")
        self._build()

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        # Under a lowered backend the whole build (bounding boxes, split
        # coordinates, partitions) runs on the float32 scoring copy — half
        # the memory traffic of the float64 build; under an exact backend
        # ``scoring_points`` aliases ``points`` and nothing changes.
        points = self.scoring_points
        dtype = self.backend.scoring_dtype
        n, d = points.shape
        leaf_size = self.leaf_size
        cap = max(2 * n, 1)

        perm = np.arange(n, dtype=np.int64)
        node_lower = np.empty((cap, d), dtype=dtype)
        node_upper = np.empty((cap, d), dtype=dtype)
        node_start = np.empty(cap, dtype=np.int64)
        node_end = np.empty(cap, dtype=np.int64)
        left_child = np.full(cap, -1, dtype=np.int64)
        right_child = np.full(cap, -1, dtype=np.int64)

        node_start[0] = 0
        node_end[0] = n
        count = 1
        levels: List[np.ndarray] = []
        active = np.array([0], dtype=np.int64)

        while active.size:
            levels.append(active)
            starts = node_start[active]
            sizes = node_end[active] - starts

            # Segmented bounding boxes of every node on this level.
            gidx = _segment_ranges(starts, sizes)
            offsets = np.cumsum(sizes) - sizes
            pts = points[perm[gidx]]
            node_lower[active] = np.minimum.reduceat(pts, offsets, axis=0)
            node_upper[active] = np.maximum.reduceat(pts, offsets, axis=0)

            split = np.flatnonzero(sizes > leaf_size)
            if split.size == 0:
                break

            # Restrict the element gather to the nodes being split.
            s_ids = active[split]
            s_starts = starts[split]
            s_sizes = sizes[split]
            s_total = int(s_sizes.sum())
            seg = np.repeat(np.arange(split.size, dtype=np.int64), s_sizes)
            local = np.arange(s_total, dtype=np.int64) - np.repeat(
                np.cumsum(s_sizes) - s_sizes, s_sizes
            )
            sgidx = np.repeat(s_starts, s_sizes) + local

            extent = node_upper[s_ids] - node_lower[s_ids]
            dim = np.argmax(extent, axis=1)
            width = extent[np.arange(split.size), dim]
            mid = (
                node_lower[s_ids][np.arange(split.size), dim]
                + node_upper[s_ids][np.arange(split.size), dim]
            ) * 0.5

            coord = points[perm[sgidx], np.repeat(dim, s_sizes)]
            left_flag = coord < np.repeat(mid, s_sizes)
            n_left = np.bincount(
                seg, weights=left_flag, minlength=split.size
            ).astype(np.int64)
            half = s_sizes // 2
            half_per_elem = np.repeat(half, s_sizes)

            # Degenerate splits, mirroring the object-tree rules exactly:
            # zero-width nodes (all points identical on the split axis *and*
            # every other axis, since this is the widest one) are halved in
            # positional order; a degenerate spatial median (all points on one
            # side of the midpoint) falls back to the object median, i.e. a
            # stable sort by coordinate split at the halfway rank.
            flat_case = width <= 0.0
            degen = (~flat_case) & ((n_left == 0) | (n_left == s_sizes))
            secondary = local.copy()
            if flat_case.any():
                mask = flat_case[seg]
                left_flag[mask] = local[mask] < half_per_elem[mask]
            if degen.any():
                order = np.lexsort((local, coord, seg))
                rank = np.empty(s_total, dtype=np.int64)
                rank[order] = local
                mask = degen[seg]
                left_flag[mask] = rank[mask] < half_per_elem[mask]
                secondary[mask] = rank[mask]
            n_left = np.where(flat_case | degen, half, n_left)

            # Segmented stable partition: within each segment left points keep
            # their relative order, then right points keep theirs (matching
            # ``indices[mask]`` / ``indices[~mask]`` of the object tree).
            new_order = np.lexsort((secondary, ~left_flag, seg))
            perm[sgidx] = perm[sgidx[new_order]]

            # Allocate children: ids are assigned level by level, parent
            # before children, left before right.
            n_split = split.size
            left_ids = count + 2 * np.arange(n_split, dtype=np.int64)
            right_ids = left_ids + 1
            count += 2 * n_split
            left_child[s_ids] = left_ids
            right_child[s_ids] = right_ids
            cut = s_starts + n_left
            node_start[left_ids] = s_starts
            node_end[left_ids] = cut
            node_start[right_ids] = cut
            node_end[right_ids] = s_starts + s_sizes

            nxt = np.empty(2 * n_split, dtype=np.int64)
            nxt[0::2] = left_ids
            nxt[1::2] = right_ids
            active = nxt

        self.perm = perm
        self.num_nodes = count
        self.node_lower = node_lower[:count]
        self.node_upper = node_upper[:count]
        self.node_start = node_start[:count]
        self.node_end = node_end[:count]
        self.left_child = left_child[:count]
        self.right_child = right_child[:count]
        extent = self.node_upper - self.node_lower
        self.node_center = (self.node_lower + self.node_upper) * 0.5
        self.node_radius = self.metric.box_radii(extent)
        self.levels = levels

    # -- serialization ---------------------------------------------------------

    #: Arrays that fully determine the built tree (beyond the point set and
    #: construction parameters).  ``node_center`` / ``node_radius`` and the
    #: level schedule are deterministic functions of these and are recomputed
    #: on restore; ``cd_min`` / ``cd_max`` ride along only when annotated.
    STATE_ARRAY_NAMES = (
        "perm",
        "node_lower",
        "node_upper",
        "node_start",
        "node_end",
        "left_child",
        "right_child",
    )

    def state_arrays(self) -> dict:
        """The built tree as a flat ``name -> ndarray`` mapping.

        Together with the point set, ``leaf_size``, metric and backend this
        is everything :meth:`from_state_arrays` needs to reconstruct a tree
        whose queries are byte-identical to this one — without re-running the
        build.
        """
        arrays = {name: getattr(self, name) for name in self.STATE_ARRAY_NAMES}
        if self.cd_min is not None:
            arrays["cd_min"] = self.cd_min
            arrays["cd_max"] = self.cd_max
        return arrays

    @classmethod
    def from_state_arrays(
        cls,
        points: np.ndarray,
        arrays: dict,
        *,
        leaf_size: int,
        metric: MetricLike = None,
        backend: BackendLike = None,
    ) -> "FlatKDTree":
        """Reconstruct a built tree from :meth:`state_arrays` output.

        The level schedule is rebuilt by a breadth-first sweep that mirrors
        the build's child-allocation order exactly (children of each level's
        split nodes, interleaved left/right in split order), and the derived
        sphere geometry is recomputed from the stored boxes, so the restored
        tree traverses byte-identically to the original.
        """
        tree = object.__new__(cls)
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise InvalidParameterError("points must be an (n, d) array")
        tree.points = points
        tree.metric = resolve_metric(metric)
        tree.backend = resolve_backend(backend)
        tree.scoring_points = tree.backend.lower_points(points)
        tree.leaf_size = int(leaf_size)
        dtype = tree.backend.scoring_dtype
        tree.perm = np.ascontiguousarray(arrays["perm"], dtype=np.int64)
        tree.node_lower = np.ascontiguousarray(arrays["node_lower"], dtype=dtype)
        tree.node_upper = np.ascontiguousarray(arrays["node_upper"], dtype=dtype)
        tree.node_start = np.ascontiguousarray(arrays["node_start"], dtype=np.int64)
        tree.node_end = np.ascontiguousarray(arrays["node_end"], dtype=np.int64)
        tree.left_child = np.ascontiguousarray(arrays["left_child"], dtype=np.int64)
        tree.right_child = np.ascontiguousarray(arrays["right_child"], dtype=np.int64)
        tree.num_nodes = int(tree.left_child.shape[0])
        if tree.perm.shape[0] != points.shape[0]:
            raise InvalidParameterError(
                "tree state does not match the point set: "
                f"perm has {tree.perm.shape[0]} entries for {points.shape[0]} points"
            )
        extent = tree.node_upper - tree.node_lower
        tree.node_center = (tree.node_lower + tree.node_upper) * 0.5
        tree.node_radius = tree.metric.box_radii(extent)
        if "cd_min" in arrays:
            tree.cd_min = np.ascontiguousarray(arrays["cd_min"], dtype=dtype)
            tree.cd_max = np.ascontiguousarray(arrays["cd_max"], dtype=dtype)
        else:
            tree.cd_min = None
            tree.cd_max = None

        levels: List[np.ndarray] = []
        active = np.array([0], dtype=np.int64)
        while active.size:
            levels.append(active)
            internal = active[tree.left_child[active] >= 0]
            if internal.size == 0:
                break
            nxt = np.empty(2 * internal.size, dtype=np.int64)
            nxt[0::2] = tree.left_child[internal]
            nxt[1::2] = tree.right_child[internal]
            active = nxt
        tree.levels = levels
        return tree

    # -- structural accessors -------------------------------------------------

    @property
    def size(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    @property
    def height(self) -> int:
        """Length of the longest root-to-leaf path (root alone has height 0)."""
        return len(self.levels) - 1

    @property
    def node_sizes(self) -> np.ndarray:
        return self.node_end - self.node_start

    def point_indices(self, node_id: int) -> np.ndarray:
        """Point indices owned by ``node_id`` (a view into ``perm``)."""
        return self.perm[self.node_start[node_id] : self.node_end[node_id]]

    def leaf_ids(self) -> np.ndarray:
        return np.flatnonzero(self.left_child < 0)

    def is_leaf(self, node_ids: np.ndarray) -> np.ndarray:
        return self.left_child[node_ids] < 0

    # -- segmented / tree-structured reductions --------------------------------

    def node_value_ranges(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-node ``(min, max)`` of a per-point value array, for all nodes.

        Leaf extrema come from one segmented reduction over ``perm`` (leaves
        tile the permutation), and internal nodes are filled by a vectorized
        bottom-up sweep over the recorded levels.  This one primitive powers
        both the core-distance annotation and the per-round connectivity
        snapshots of the GFK/MemoGFK filters.
        """
        values = np.asarray(values)
        if values.shape[0] != self.size:
            raise InvalidParameterError("values must have one entry per point")
        by_pos = values[self.perm]
        out_min = np.empty(self.num_nodes, dtype=values.dtype)
        out_max = np.empty(self.num_nodes, dtype=values.dtype)

        leaves = self.leaf_ids()
        order = np.argsort(self.node_start[leaves], kind="stable")
        leaves = leaves[order]
        offsets = self.node_start[leaves]
        out_min[leaves] = np.minimum.reduceat(by_pos, offsets)
        out_max[leaves] = np.maximum.reduceat(by_pos, offsets)

        for level in reversed(self.levels[:-1]):
            internal = level[self.left_child[level] >= 0]
            if internal.size == 0:
                continue
            left = self.left_child[internal]
            right = self.right_child[internal]
            out_min[internal] = np.minimum(out_min[left], out_min[right])
            out_max[internal] = np.maximum(out_max[left], out_max[right])
        return out_min, out_max

    # -- core-distance annotation (HDBSCAN*) ----------------------------------

    def annotate_core_distances(self, core_distances: np.ndarray) -> None:
        """Fill ``cd_min`` / ``cd_max`` for every node (one vectorized sweep).

        The per-node extrema are stored in the backend's scoring dtype: they
        only ever feed the separation *masks* (never an edge weight), so
        under a lowered backend they ride the float32 fast path with the
        rest of the node arrays.
        """
        core_distances = np.asarray(
            core_distances, dtype=self.backend.scoring_dtype
        )
        if core_distances.shape != (self.size,):
            raise InvalidParameterError("core_distances must have one value per point")
        current_tracker().add(
            self.num_nodes, max(math.log2(self.size + 1), 1.0), phase="core-dist"
        )
        self.cd_min, self.cd_max = self.node_value_ranges(core_distances)

    # -- batched geometric tests ----------------------------------------------

    def min_distances_to_points(
        self, queries: np.ndarray, node_ids: np.ndarray
    ) -> np.ndarray:
        """Minimum box-to-point distance for parallel arrays of (query, node).

        The per-axis gap vector's norm under the tree's metric is the exact
        point-to-box minimum for every norm-induced metric.
        """
        gap = np.maximum(
            np.maximum(
                self.node_lower[node_ids] - queries, queries - self.node_upper[node_ids]
            ),
            0.0,
        )
        return self.metric.diff_norms(gap)

    def mask_within_radii(
        self,
        batch: np.ndarray,
        radii: np.ndarray,
        *,
        strict: bool = False,
    ) -> np.ndarray:
        """Which stored points lie within their *own* radius of any batch row.

        Returns a boolean mask over the tree's points: entry ``x`` is set when
        ``min_s d(x, s) <= radii[x]`` over the rows ``s`` of ``batch``
        (``<`` with ``strict=True``).  This is the touched-region query of the
        incremental engine — with ``radii`` set to the fitted core distances
        it returns exactly the points whose core distance a batched
        insert/delete can perturb.  The traversal prunes a subtree as soon as
        its box-to-batch gap exceeds the subtree's maximum radius (one
        :meth:`node_value_ranges` sweep), and surviving leaf members are
        verified with the exact per-pair metric kernel, so the mask is exact.

        Requires an exact backend: a lowered tree's node boxes bound the
        float32-rounded points, so a box gap could overstate the distance to
        the true float64 points and prune a subtree holding real hits.
        """
        if not self.backend.exact:
            raise InvalidParameterError(
                "mask_within_radii requires an exact backend; the lowered "
                f"backend {self.backend.name!r} rounds node bounds to "
                "float32, which could over-prune true within-radius points"
            )
        out = np.zeros(self.size, dtype=bool)
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[0] == 0 or self.size == 0:
            return out
        radii = np.asarray(radii, dtype=np.float64)
        if radii.shape != (self.size,):
            raise InvalidParameterError("radii must have one value per point")
        # Pruning gaps stay in float64: rounding the batch through a scoring
        # dtype could overstate a box gap and prune a subtree holding true
        # within-radius points, breaking exactness.
        pruning_batch = np.ascontiguousarray(batch, dtype=np.float64)
        node_rmax = self.node_value_ranges(radii)[1]
        chunk = 256

        frontier = np.zeros(1, dtype=np.int64)
        candidates: List[np.ndarray] = []
        while frontier.size:
            gaps = np.full(frontier.size, np.inf, dtype=np.float64)
            for lo in range(0, pruning_batch.shape[0], chunk):
                rows = pruning_batch[lo : lo + chunk]
                rep_nodes = np.repeat(frontier, rows.shape[0])
                tiled = np.tile(rows, (frontier.size, 1))
                gap = self.min_distances_to_points(tiled, rep_nodes)
                np.minimum(
                    gaps, gap.reshape(frontier.size, rows.shape[0]).min(axis=1),
                    out=gaps,
                )
            reach = node_rmax[frontier]
            keep = gaps < reach if strict else gaps <= reach
            frontier = frontier[keep]
            if frontier.size == 0:
                break
            leaf = self.left_child[frontier] < 0
            leaves = frontier[leaf]
            if leaves.size:
                counts = self.node_end[leaves] - self.node_start[leaves]
                candidates.append(
                    self.perm[_segment_ranges(self.node_start[leaves], counts)]
                )
            internal = frontier[~leaf]
            frontier = np.concatenate(
                [self.left_child[internal], self.right_child[internal]]
            )

        if not candidates:
            return out
        cand = np.concatenate(candidates)
        for lo in range(0, cand.shape[0], 4096):
            sub = cand[lo : lo + 4096]
            diff = (
                self.points[sub][:, None, :] - batch[None, :, :]
            ).reshape(-1, batch.shape[1])
            nearest = (
                self.metric.diff_norms(diff)
                .reshape(sub.shape[0], batch.shape[0])
                .min(axis=1)
            )
            hit = nearest < radii[sub] if strict else nearest <= radii[sub]
            out[sub] = hit
        return out

    # -- batched k-nearest-neighbour traversal ---------------------------------

    def query_knn(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k-NN of a block of queries by one batched tree traversal.

        The traversal is level-synchronous over a frontier of (query, node)
        pairs: every iteration prunes the whole frontier against the current
        per-query k-th-distance bounds with array comparisons, folds all leaf
        candidates into the per-query top-k with one segmented merge, and
        expands the surviving internal pairs.  A preliminary vectorized
        root-to-leaf descent seeds the bounds so pruning is effective from the
        first frontier iteration.

        Returns ``(indices, distances)`` of shape ``(len(queries), k)`` with
        neighbours sorted by increasing distance.
        """
        # Queries are lowered to the tree's scoring dtype so the whole
        # traversal (gap pruning, candidate folds) runs in one precision;
        # lowered-mode callers refine the returned distances in float64.
        queries = np.ascontiguousarray(queries, dtype=self.backend.scoring_dtype)
        nq = queries.shape[0]
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        if k > self.size:
            raise InvalidParameterError(
                f"k={k} exceeds the number of points {self.size}"
            )
        dtype = self.backend.scoring_dtype
        best_dist = np.full((nq, k), np.inf, dtype=dtype)
        best_idx = np.full((nq, k), -1, dtype=np.int64)
        bound = np.full(nq, np.inf, dtype=dtype)
        if nq == 0:
            return best_idx, best_dist

        # Seed pass: descend every query to its home leaf and fold that leaf's
        # points into the top-k, so ``bound`` starts tight.
        seed_leaf = self._descend_to_leaf(queries)
        q_all = np.arange(nq, dtype=np.int64)
        self._fold_leaf_candidates(
            queries, q_all, seed_leaf, best_dist, best_idx, bound, k
        )

        # Main frontier traversal from the root.
        frontier_q = q_all
        frontier_n = np.zeros(nq, dtype=np.int64)
        while frontier_q.size:
            md = self.min_distances_to_points(queries[frontier_q], frontier_n)
            keep = md < bound[frontier_q]
            frontier_q = frontier_q[keep]
            frontier_n = frontier_n[keep]
            if frontier_q.size == 0:
                break
            leaf = self.left_child[frontier_n] < 0
            if leaf.any():
                lq = frontier_q[leaf]
                ln = frontier_n[leaf]
                fresh = ln != seed_leaf[lq]  # the seed leaf was already folded
                if fresh.any():
                    self._fold_leaf_candidates(
                        queries, lq[fresh], ln[fresh], best_dist, best_idx, bound, k
                    )
            iq = frontier_q[~leaf]
            inode = frontier_n[~leaf]
            frontier_q = np.concatenate([iq, iq])
            frontier_n = np.concatenate(
                [self.left_child[inode], self.right_child[inode]]
            )
        return best_idx, best_dist

    def _descend_to_leaf(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized root-to-leaf descent choosing the nearer child."""
        node = np.zeros(queries.shape[0], dtype=np.int64)
        while True:
            internal = np.flatnonzero(self.left_child[node] >= 0)
            if internal.size == 0:
                return node
            left = self.left_child[node[internal]]
            right = self.right_child[node[internal]]
            dl = self.min_distances_to_points(queries[internal], left)
            dr = self.min_distances_to_points(queries[internal], right)
            node[internal] = np.where(dl <= dr, left, right)

    def _fold_leaf_candidates(
        self,
        queries: np.ndarray,
        pair_q: np.ndarray,
        pair_n: np.ndarray,
        best_dist: np.ndarray,
        best_idx: np.ndarray,
        bound: np.ndarray,
        k: int,
    ) -> None:
        """Merge the points of leaf pairs into the per-query top-k arrays."""
        counts = self.node_end[pair_n] - self.node_start[pair_n]
        cand_q = np.repeat(pair_q, counts)
        cand_i = self.perm[_segment_ranges(self.node_start[pair_n], counts)]
        diff = self.scoring_points[cand_i] - queries[cand_q]
        cand_d = self.metric.diff_norms(diff)

        # Keep at most k candidates per query before the padded merge.
        order = np.lexsort((cand_d, cand_q))
        cand_q = cand_q[order]
        cand_d = cand_d[order]
        cand_i = cand_i[order]
        uq, grp_start, grp_counts = np.unique(
            cand_q, return_index=True, return_counts=True
        )
        within = np.arange(cand_q.shape[0], dtype=np.int64) - np.repeat(
            grp_start, grp_counts
        )
        keep = within < k
        rows = np.repeat(np.arange(uq.shape[0], dtype=np.int64), grp_counts)[keep]
        cols = within[keep]
        padded_d = np.full((uq.shape[0], k), np.inf, dtype=best_dist.dtype)
        padded_i = np.full((uq.shape[0], k), -1, dtype=np.int64)
        padded_d[rows, cols] = cand_d[keep]
        padded_i[rows, cols] = cand_i[keep]

        merged_d = np.concatenate([best_dist[uq], padded_d], axis=1)
        merged_i = np.concatenate([best_idx[uq], padded_i], axis=1)
        sel = np.argsort(merged_d, axis=1, kind="stable")[:, :k]
        best_dist[uq] = np.take_along_axis(merged_d, sel, axis=1)
        best_idx[uq] = np.take_along_axis(merged_i, sel, axis=1)
        bound[uq] = best_dist[uq, k - 1]
