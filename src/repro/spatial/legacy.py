"""Reference node-object kd-tree (the pre-flat implementation).

This module preserves the original pointer-based tree — one Python object per
node, recursive single-query traversals — exactly as the reproduction first
shipped it.  It is *not* used by any algorithm anymore: the production path is
the array-native :class:`repro.spatial.flat.FlatKDTree`.  It exists so that

* ``benchmarks/bench_flat_tree.py`` can measure the speedup of the flat
  engine against the historical baseline, and
* the equivalence tests can check that both engines produce the same
  neighbourhood structure.

Nothing here charges the work–depth tracker; the production engine owns the
cost accounting.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.core.bounding import BoundingBox, BoundingSphere
from repro.core.errors import InvalidParameterError
from repro.core.points import as_points


class LegacyKDNode:
    """One node of the object tree; a leaf when it has no children."""

    __slots__ = ("node_id", "indices", "box", "sphere", "left", "right")

    def __init__(self, node_id: int, indices: np.ndarray, box: BoundingBox) -> None:
        self.node_id = node_id
        self.indices = indices
        self.box = box
        self.sphere: BoundingSphere = box.to_sphere()
        self.left: Optional["LegacyKDNode"] = None
        self.right: Optional["LegacyKDNode"] = None

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class LegacyKDTree:
    """Spatial-median kd-tree built from per-node Python objects."""

    def __init__(self, points, *, leaf_size: int = 1) -> None:
        if leaf_size < 1:
            raise InvalidParameterError("leaf_size must be >= 1")
        self.points = as_points(points)
        self.leaf_size = leaf_size
        self._nodes: List[LegacyKDNode] = []
        self.root = self._build(np.arange(self.points.shape[0], dtype=np.int64))

    def _new_node(self, indices: np.ndarray) -> LegacyKDNode:
        box = BoundingBox.of_points(self.points[indices])
        node = LegacyKDNode(len(self._nodes), indices, box)
        self._nodes.append(node)
        return node

    def _build(self, indices: np.ndarray) -> LegacyKDNode:
        node = self._new_node(indices)
        stack = [node]
        while stack:
            current = stack.pop()
            if current.size <= self.leaf_size:
                continue
            left_idx, right_idx = self._split(current)
            if left_idx is None:
                continue
            current.left = self._new_node(left_idx)
            current.right = self._new_node(right_idx)
            stack.append(current.left)
            stack.append(current.right)
        return node

    def _split(self, node: LegacyKDNode):
        coords = self.points[node.indices]
        extent = node.box.extent
        dimension = int(np.argmax(extent))
        if extent[dimension] <= 0.0:
            if node.size <= self.leaf_size:
                return None, None
            half = node.size // 2
            return node.indices[:half], node.indices[half:]
        midpoint = (node.box.lower[dimension] + node.box.upper[dimension]) * 0.5
        mask = coords[:, dimension] < midpoint
        left = node.indices[mask]
        right = node.indices[~mask]
        if left.size == 0 or right.size == 0:
            order = np.argsort(coords[:, dimension], kind="stable")
            half = node.size // 2
            left = node.indices[order[:half]]
            right = node.indices[order[half:]]
        return left, right

    @property
    def size(self) -> int:
        return int(self.points.shape[0])


def legacy_knn(
    tree: LegacyKDTree, k: int, *, queries: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-query best-first traversal, exactly as the seed implementation."""
    if k < 1 or k > tree.size:
        raise InvalidParameterError(f"k must be in [1, {tree.size}]")
    query_points = tree.points if queries is None else as_points(queries)
    results = [_query_single(tree, query_points[i], k) for i in range(query_points.shape[0])]
    indices = np.stack([r[0] for r in results])
    distances = np.stack([r[1] for r in results])
    return indices, distances


def _query_single(
    tree: LegacyKDTree, query: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    heap: list = []
    points = tree.points

    def visit(node: LegacyKDNode) -> None:
        if len(heap) == k and -heap[0][0] <= node.box.min_distance_to_point(query):
            return
        if node.is_leaf:
            leaf_points = points[node.indices]
            diffs = leaf_points - query
            dists = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
            for dist, idx in zip(dists, node.indices):
                if len(heap) < k:
                    heapq.heappush(heap, (-float(dist), int(idx)))
                elif dist < -heap[0][0]:
                    heapq.heapreplace(heap, (-float(dist), int(idx)))
            return
        first, second = node.left, node.right
        if second.box.min_distance_to_point(query) < first.box.min_distance_to_point(query):
            first, second = second, first
        visit(first)
        visit(second)

    visit(tree.root)
    ordered = sorted(((-neg, idx) for neg, idx in heap))
    distances = np.array([dist for dist, _ in ordered], dtype=np.float64)
    indices = np.array([idx for _, idx in ordered], dtype=np.int64)
    return indices, distances
