"""Array helpers for incremental repair over a tombstoned kd-tree.

The dynamic engine (:mod:`repro.dynamic.engine`) keeps the fitted WSPD
decomposition of its *base* tree alive across updates and repairs it locally:
deleted base points are tombstoned (``alive`` mask), inserted points live in a
small side buffer, and only pairs whose boxes intersect the touched region
ever get re-examined.  Everything here is the pure-array substrate for that
repair:

* live per-node flags/extrema (one :meth:`FlatKDTree.node_value_ranges`
  sweep each) — the stale node boxes stay put, only the annotations move;
* ragged *alive member* extraction for a batch of nodes;
* a segmented masked BCCP: the exact minimum mutual-reachability pair over
  the alive cross product of each (node, node) pair, evaluated with the
  row-wise :meth:`Metric.exact_edge_weights` kernel — the dynamic engine's
  cold path uses the same kernel for every candidate, so cached and
  recomputed values share one bitwise contract;
* the winner *beat* test — a certified lower bound deciding whether a
  core-distance change anywhere in a pair could undercut its cached winner;
* the singleton descent pairing each buffered point against the base tree
  under the HDBSCAN* separation predicate (conservatively, using the stale
  boxes, which only ever splits deeper — coverage is preserved).

Winner *identity* is free everywhere: the assembled candidate edges are
canonicalized by :func:`repro.mst.canonical_mst_arrays`, which depends only
on the weight-class filtration.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.metric import Metric
from repro.parallel.primitives import segment_ranges as _segment_ranges
from repro.spatial.flat import FlatKDTree


def node_any_flags(flat: FlatKDTree, point_mask: np.ndarray) -> np.ndarray:
    """Per-node boolean: does the node contain any flagged point?"""
    if flat.size == 0:
        return np.zeros(flat.num_nodes, dtype=bool)
    return flat.node_value_ranges(point_mask.astype(np.uint8))[1] > 0


def live_cd_extrema(
    flat: FlatKDTree, core_distances: np.ndarray, alive: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-node core-distance extrema over the *alive* members only.

    Dead members are masked to ``+inf`` / ``-inf`` so they never win a
    reduction; nodes with no alive member get inverted extrema, which is fine
    because every consumer filters such nodes out via :func:`node_any_flags`
    on the alive mask first.
    """
    dtype = flat.backend.scoring_dtype
    cds = np.asarray(core_distances, dtype=dtype)
    lo = flat.node_value_ranges(np.where(alive, cds, np.inf).astype(dtype))[0]
    hi = flat.node_value_ranges(np.where(alive, cds, -np.inf).astype(dtype))[1]
    return lo, hi


def alive_members(
    flat: FlatKDTree, node_ids: np.ndarray, alive: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Ragged alive-member lists for a batch of nodes.

    Returns ``(counts, members)``: ``members`` concatenates, per node in
    input order, the alive point indices of that node (in permutation
    order); ``counts[i]`` is the number contributed by ``node_ids[i]``.
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    if node_ids.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    starts = flat.node_start[node_ids]
    full = (flat.node_end[node_ids] - starts).astype(np.int64)
    members = flat.perm[_segment_ranges(starts, full)]
    if alive.all():
        return full, members
    owner = np.repeat(np.arange(node_ids.size, dtype=np.int64), full)
    keep = alive[members]
    members = members[keep]
    counts = np.bincount(owner[keep], minlength=node_ids.size).astype(np.int64)
    return counts, members


def segmented_min_mr(
    points: np.ndarray,
    core_distances: np.ndarray,
    metric: Metric,
    a_counts: np.ndarray,
    a_members: np.ndarray,
    b_counts: np.ndarray,
    b_members: np.ndarray,
    *,
    chunk_elems: int = 1 << 21,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact minimum mutual-reachability pair per (ragged A, ragged B) pair.

    Every dynamic candidate — cold fit, repair recompute, buffer coverage —
    goes through this kernel, so each pair contributes its *exact* minimum:
    :func:`repro.mst.canonical_mst_arrays` then yields the same filtration
    for any covering decomposition, which is what makes incremental updates
    byte-identical to a cold refit.  (An argmin under the expansion-style
    scoring kernel alone may sit an ulp above the exact minimum, and which
    candidate it picks depends on the decomposition — not reproducible
    across updates.)

    Evaluation is two-phase.  Phase 1 scores each pair's padded cross
    product with the fast batched tensor kernel
    (:meth:`Metric.block_cross_distances`, grouped in power-of-two size
    classes like the BCCP kernel) and splits candidates with a certified
    per-pair error band ``up(x)`` that provably covers the scoring kernel's
    rounding: a candidate whose core-distance term reaches ``up(score)``
    has *exact* value ``cd_ab`` and never needs evaluation (these are the
    bulk of every core-distance-dominated pair, all tied at the same cd);
    the remaining candidates survive only if their banded score reaches the
    pair's certified ceiling.  Phase 2 re-evaluates the survivors
    (typically one or two per pair) with the row-wise
    :meth:`Metric.exact_edge_weights` kernel and takes the exact minimum.
    The result is therefore bitwise independent of the chunking, the
    scoring kernel's rounding, and the thread count.  Every pair must have
    at least one member on each side.
    """
    from repro.parallel.pool import current_workspace

    num = int(a_counts.shape[0])
    win_u = np.empty(num, dtype=np.int64)
    win_v = np.empty(num, dtype=np.int64)
    win_w = np.empty(num, dtype=np.float64)
    if num == 0:
        return win_u, win_v, win_w
    a_counts = np.asarray(a_counts, dtype=np.int64)
    b_counts = np.asarray(b_counts, dtype=np.int64)
    a_off = np.cumsum(a_counts) - a_counts
    b_off = np.cumsum(b_counts) - b_counts
    points = np.asarray(points, dtype=np.float64)
    cds = np.asarray(core_distances, dtype=np.float64)
    dim = int(points.shape[1])
    eps = float(np.finfo(np.float64).eps)
    expansion = metric.name == "euclidean"
    p_order = float(getattr(metric, "p", 1.0))
    # Certified scoring-vs-exact error bands.  Expansion scoring satisfies
    # |score^2 - exact^2| <= E2 with E2 = (16*dim+64)*eps*(|a|^2+|b|^2), so in
    # the value domain |score - exact| <= sqrt(E2max) for a per-pair bound
    # E2max over member norms; S = 2*sqrt(E2max) leaves a 2x margin.  The
    # per-axis scoring kernels accumulate in the same order as the row-wise
    # exact kernel up to summation shape, bounded by a relative band; the
    # factor 8 absorbs 1/(1-x) vs (1+x) asymmetry when inverting it.
    direct_mult = 1.0 + 8.0 * 64.0 * max(p_order, 1.0) * dim * eps
    e2_coeff = (16.0 * dim + 64.0) * eps
    workspace = current_workspace()

    # Group by padded size class so padding waste stays bounded, as in the
    # batched BCCP kernel; results scatter back to the input pair order.
    bits_a = np.ceil(np.log2(np.maximum(a_counts, 1))).astype(np.int64)
    bits_b = np.ceil(np.log2(np.maximum(b_counts, 1))).astype(np.int64)
    order = np.argsort(bits_a * 64 + bits_b, kind="stable")
    sorted_key = (bits_a * 64 + bits_b)[order]
    boundaries = np.flatnonzero(np.diff(sorted_key)) + 1
    group_starts = np.concatenate([[0], boundaries, [order.size]])

    for gidx in range(group_starts.size - 1):
        rows_all = order[group_starts[gidx] : group_starts[gidx + 1]]
        p_a = int(a_counts[rows_all].max())
        p_b = int(b_counts[rows_all].max())
        if p_a == 1 and p_b == 1:
            # Singleton pairs: the lone candidate IS the winner — evaluate
            # it exactly and skip the scoring machinery outright.
            u = a_members[a_off[rows_all]]
            v = b_members[b_off[rows_all]]
            win_u[rows_all] = u
            win_v[rows_all] = v
            win_w[rows_all] = metric.exact_edge_weights(points, u, v, cds)
            continue
        chunk = max(1, chunk_elems // (p_a * p_b))
        for lo in range(0, rows_all.size, chunk):
            rows = rows_all[lo : lo + chunk]
            g = int(rows.size)
            ca, cb = a_counts[rows], b_counts[rows]

            def padded(counts, offsets, members, width):
                # Each row's members are contiguous in the concatenated
                # member array, so padding is a clamped gather: overhang
                # columns repeat the row's last member and are masked off.
                col = np.arange(width, dtype=np.int64)
                idx = offsets[:, None] + np.minimum(
                    col[None, :], counts[:, None] - 1
                )
                return members[idx], col[None, :] < counts[:, None]

            ids_a, valid_a = padded(ca, a_off[rows], a_members, p_a)
            ids_b, valid_b = padded(cb, b_off[rows], b_members, p_b)
            pts_a = np.ascontiguousarray(points[ids_a.ravel()]).reshape(
                g, p_a, dim
            )
            pts_b = np.ascontiguousarray(points[ids_b.ravel()]).reshape(
                g, p_b, dim
            )
            scores = metric.block_cross_distances(pts_a, pts_b, workspace)
            # Per-pair certified band: up(x) >= x + (scoring error at x).
            if expansion:
                sq_a = np.einsum("gpd,gpd->gp", pts_a, pts_a)
                sq_b = np.einsum("gqd,gqd->gq", pts_b, pts_b)
                band = 2.0 * np.sqrt(
                    e2_coeff
                    * (
                        np.where(valid_a, sq_a, 0.0).max(axis=1)
                        + np.where(valid_b, sq_b, 0.0).max(axis=1)
                    )
                )
            else:
                band = None
            # `hi` holds up(scores); `scores` is then overwritten in place
            # with the scored mutual reachability (padded slots become +inf
            # via the inf-padded 2D core-distance gathers, so no 3D validity
            # mask is ever materialised).
            hi = workspace.take("dyn.hi", scores.shape)
            if expansion:
                np.add(scores, band[:, None, None], out=hi)
            else:
                np.multiply(scores, direct_mult, out=hi)
            cd_a2 = np.where(valid_a, cds[ids_a], np.inf)
            cd_b2 = np.where(valid_b, cds[ids_b], np.inf)
            mr = scores
            np.maximum(mr, cd_a2[:, :, None], out=mr)
            np.maximum(mr, cd_b2[:, None, :], out=mr)
            # A candidate whose core-distance term certifiably dominates its
            # distance (mr >= up(score) forces cd_ab = mr >= exact distance)
            # has EXACT value cd_ab = mr — no evaluation needed.  These are
            # the bulk of every core-distance-dominated pair (all tied at the
            # same cd), so they must never reach phase 2.
            dom = mr >= hi
            np.copyto(hi, np.inf)
            np.copyto(hi, mr, where=dom)
            flat_hi = hi.reshape(g, -1)
            cert_arg = flat_hi.argmin(axis=1)
            m_cert = flat_hi[np.arange(g), cert_arg]
            np.copyto(hi, mr)
            np.copyto(hi, np.inf, where=dom)
            m_unc_lo = flat_hi.min(axis=1)
            if expansion:
                ceiling = np.minimum(m_cert, m_unc_lo + band)
                cutoff = ceiling + band
            else:
                ceiling = np.minimum(m_cert, m_unc_lo * direct_mult)
                cutoff = ceiling * direct_mult
            # `hi` has +inf at dominated and padded slots, so this selects
            # exactly the uncertain candidates within band of the ceiling.
            keep_g, keep_a, keep_b = np.nonzero(hi <= cutoff[:, None, None])
            m_unc = np.full(g, np.inf)
            first_u = np.zeros(g, dtype=np.int64)
            first_v = np.zeros(g, dtype=np.int64)
            if keep_g.size:
                cand_u = ids_a[keep_g, keep_a]
                cand_v = ids_b[keep_g, keep_b]
                exact = metric.exact_edge_weights(points, cand_u, cand_v, cds)
                starts = np.flatnonzero(
                    np.concatenate(
                        [np.ones(1, dtype=bool), keep_g[1:] != keep_g[:-1]]
                    )
                )
                mins = np.minimum.reduceat(exact, starts)
                counts_g = np.diff(np.append(starts, keep_g.size))
                grp = np.repeat(
                    np.arange(starts.size, dtype=np.int64), counts_g
                )
                at_min = np.where(
                    exact == mins[grp],
                    np.arange(keep_g.size, dtype=np.int64),
                    keep_g.size,
                )
                first = np.minimum.reduceat(at_min, starts)
                m_unc[keep_g[starts]] = mins
                first_u[keep_g[starts]] = cand_u[first]
                first_v[keep_g[starts]] = cand_v[first]
            take_unc = m_unc <= m_cert
            win_w[rows] = np.where(take_unc, m_unc, m_cert)
            win_u[rows] = np.where(
                take_unc, first_u, ids_a[np.arange(g), cert_arg // p_b]
            )
            win_v[rows] = np.where(
                take_unc, first_v, ids_b[np.arange(g), cert_arg % p_b]
            )
    return win_u, win_v, win_w


def _certified_box_gap_hi(
    flat: FlatKDTree,
    nodes_a: np.ndarray,
    nodes_b: np.ndarray,
    metric: Metric,
) -> np.ndarray:
    """Certified upper bound on the max distance between two node boxes.

    Per axis, ``max|x_a - x_b|`` over the boxes is bounded by
    ``max(hi_a - lo_b, hi_b - lo_a)`` in exact arithmetic; the final factor
    absorbs the rounding of the float subtractions and of the norm
    accumulation, so the returned value dominates every exact member
    distance.  Boxes cover dead members too, which only loosens the bound.
    """
    from repro.parallel.pool import current_workspace

    num = int(nodes_a.shape[0])
    dim = int(flat.node_lower.shape[1])
    eps = float(np.finfo(np.float64).eps)
    p_order = max(float(getattr(metric, "p", 2.0)), 2.0)
    factor = 1.0 + (8.0 * p_order * dim + 32.0) * eps
    name = metric.name
    lower = np.ascontiguousarray(flat.node_lower, dtype=np.float64)
    upper = np.ascontiguousarray(flat.node_upper, dtype=np.float64)
    out = np.empty(num, dtype=np.float64)
    workspace = current_workspace()
    chunk = 1 << 18
    for lo in range(0, num, chunk):
        sl = slice(lo, min(lo + chunk, num))
        r = sl.stop - sl.start
        g = workspace.take("dyn.box.g", (r, dim))
        t = workspace.take("dyn.box.t", (r, dim))
        u = workspace.take("dyn.box.u", (r, dim))
        np.take(upper, nodes_a[sl], axis=0, out=g)
        np.take(lower, nodes_b[sl], axis=0, out=t)
        np.subtract(g, t, out=g)
        np.take(upper, nodes_b[sl], axis=0, out=t)
        np.take(lower, nodes_a[sl], axis=0, out=u)
        np.subtract(t, u, out=t)
        np.maximum(g, t, out=g)
        np.maximum(g, 0.0, out=g)
        if name == "euclidean":
            np.einsum("md,md->m", g, g, out=out[sl])
            np.sqrt(out[sl], out=out[sl])
        elif name == "manhattan":
            g.sum(axis=1, out=out[sl])
        elif name == "chebyshev":
            g.max(axis=1, out=out[sl])
        else:
            p = float(getattr(metric, "p", 2.0))
            np.power(g, p, out=g)
            g.sum(axis=1, out=out[sl])
            np.power(out[sl], 1.0 / p, out=out[sl])
    out *= factor
    return out


def _alive_cd_argmin(
    flat: FlatKDTree, node_ids: np.ndarray, cds: np.ndarray, alive: np.ndarray
) -> np.ndarray:
    """Per node, the alive member (point index) with the smallest core
    distance — first in permutation order on ties.  Every node must hold at
    least one alive member."""
    starts = flat.node_start[node_ids].astype(np.int64)
    lens = (flat.node_end[node_ids] - starts).astype(np.int64)
    spans = flat.perm[_segment_ranges(starts, lens)]
    vals = np.where(alive[spans], cds[spans], np.inf)
    seg_starts = np.cumsum(lens) - lens
    mins = np.minimum.reduceat(vals, seg_starts)
    grp = np.repeat(np.arange(node_ids.size, dtype=np.int64), lens)
    at_min = np.where(
        vals == mins[grp], np.arange(vals.size, dtype=np.int64), vals.size
    )
    first = np.minimum.reduceat(at_min, seg_starts)
    return spans[first]


def masked_pair_winners(
    flat: FlatKDTree,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    alive: np.ndarray,
    core_distances: np.ndarray,
    metric: Metric,
    num_threads,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact minimum mutual-reachability winner per pair, ignoring tombstones.

    Core-distance-dominated pairs — where a certified upper bound on the
    box-to-box distance stays below ``max(min alive cd A, min alive cd B)``
    — resolve at box level: every candidate value is ``>= cdp`` by
    definition of mutual reachability, and the per-side alive cd-argmin
    members certifiably achieve exactly ``cdp``.  (With the repo's
    reachability-aware WSPD most pairs are of this kind.)  The rest are
    reduced to their ragged alive member lists and evaluated with
    :func:`segmented_min_mr` — the single exact winner kernel of the dynamic
    engine, so the recomputed values join the cached ones with the same
    bitwise contract.  Both sides of every pair must hold at least one
    alive point.
    """
    num = int(pair_a.shape[0])
    if num == 0:
        empty_i = np.empty(0, dtype=np.int64)
        return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
    pair_a = np.asarray(pair_a, dtype=np.int64)
    pair_b = np.asarray(pair_b, dtype=np.int64)
    cds = np.asarray(core_distances, dtype=np.float64)
    cd_lo, _ = live_cd_extrema(flat, cds, alive)
    cd_lo = np.asarray(cd_lo, dtype=np.float64)
    cdp = np.maximum(cd_lo[pair_a], cd_lo[pair_b])
    resolved = _certified_box_gap_hi(flat, pair_a, pair_b, metric) <= cdp

    win_u = np.empty(num, dtype=np.int64)
    win_v = np.empty(num, dtype=np.int64)
    win_w = np.empty(num, dtype=np.float64)

    res = np.flatnonzero(resolved)
    if res.size:
        nodes = np.concatenate([pair_a[res], pair_b[res]])
        uniq, inv = np.unique(nodes, return_inverse=True)
        wit = _alive_cd_argmin(flat, uniq, cds, alive)[inv]
        win_u[res] = wit[: res.size]
        win_v[res] = wit[res.size :]
        win_w[res] = cdp[res]

    rest = np.flatnonzero(~resolved)
    if rest.size:
        a_counts, a_members = alive_members(flat, pair_a[rest], alive)
        b_counts, b_members = alive_members(flat, pair_b[rest], alive)
        ru, rv, rw = segmented_min_mr(
            flat.points, cds, metric,
            a_counts, a_members, b_counts, b_members,
        )
        win_u[rest] = ru
        win_v[rest] = rv
        win_w[rest] = rw
    return win_u, win_v, win_w


def winner_beat_mask(
    flat: FlatKDTree,
    nodes: np.ndarray,
    other_nodes: np.ndarray,
    touched_positions: np.ndarray,
    points: np.ndarray,
    core_distances: np.ndarray,
    winner_values: np.ndarray,
) -> np.ndarray:
    """Could a touched member of ``nodes[i]`` undercut the cached winner?

    ``touched_positions`` are the sorted permutation positions of the alive
    points whose core distance changed this update.  For each such member
    ``q`` of ``nodes[i]`` the certified lower bound
    ``L(q) = max(gap(q, box(other)), cd(q), cd_min_live(other))`` bounds every
    candidate ``max(d(q, b), cd(q), cd(b))`` with ``b`` alive in the other
    node from below; the pair needs a winner recompute only when some
    ``L(q) < winner_values[i]``.  ``flat.cd_min`` must already hold the live
    extrema.  The test is one-sided — call it for both orientations.
    """
    out = np.zeros(nodes.shape[0], dtype=bool)
    if nodes.size == 0 or touched_positions.size == 0:
        return out
    lo = np.searchsorted(touched_positions, flat.node_start[nodes], side="left")
    hi = np.searchsorted(touched_positions, flat.node_end[nodes], side="left")
    counts = (hi - lo).astype(np.int64)
    if int(counts.sum()) == 0:
        return out
    rows = _segment_ranges(lo.astype(np.int64), counts)
    pair_of = np.repeat(np.arange(nodes.shape[0], dtype=np.int64), counts)
    q = flat.perm[touched_positions[rows]]
    queries = np.ascontiguousarray(points[q], dtype=flat.backend.scoring_dtype)
    gaps = np.asarray(
        flat.min_distances_to_points(queries, other_nodes[pair_of]),
        dtype=np.float64,
    )
    bound = np.maximum(
        np.maximum(gaps, core_distances[q]),
        np.asarray(flat.cd_min[other_nodes[pair_of]], dtype=np.float64),
    )
    beat = bound < winner_values[pair_of]
    out[np.unique(pair_of[beat])] = True
    return out


def descend_singleton_pairs(
    flat: FlatKDTree,
    queries: np.ndarray,
    query_cds: np.ndarray,
    node_alive: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """HDBSCAN*-separated decomposition of (buffer point × base tree).

    Each query descends from the root; a (point, node) pair is emitted when
    it passes the conservative separation test or the node is a leaf, and is
    split otherwise.  The test treats the query as a zero-radius node and
    uses the *stale* node boxes with the *live* core-distance annotations
    (``flat.cd_min`` / ``flat.cd_max`` must hold the alive extrema): the box
    gap under-estimates the true minimum distance and ``2 * node_radius``
    over-estimates the live diameter, so a pair declared separated is truly
    HDBSCAN*-well-separated with respect to the alive members — errors only
    ever split deeper, never lose coverage.  Subtrees with no alive member
    are dropped.  Returns parallel ``(query_index, node_id)`` arrays.
    """
    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if queries.shape[0] == 0 or flat.size == 0:
        return empty
    scoring = np.ascontiguousarray(queries, dtype=flat.backend.scoring_dtype)
    cds = np.asarray(query_cds, dtype=np.float64)
    cur_q = np.arange(queries.shape[0], dtype=np.int64)
    cur_n = np.zeros(queries.shape[0], dtype=np.int64)
    out_q = []
    out_n = []
    while cur_q.size:
        keep = node_alive[cur_n]
        cur_q = cur_q[keep]
        cur_n = cur_n[keep]
        if cur_q.size == 0:
            break
        gaps = np.asarray(
            flat.min_distances_to_points(scoring[cur_q], cur_n), dtype=np.float64
        )
        diameter = 2.0 * np.asarray(flat.node_radius[cur_n], dtype=np.float64)
        node_lo = np.asarray(flat.cd_min[cur_n], dtype=np.float64)
        node_hi = np.asarray(flat.cd_max[cur_n], dtype=np.float64)
        geometric = gaps >= diameter
        reach_lo = np.maximum(gaps, np.maximum(cds[cur_q], node_lo))
        reach_hi = np.maximum(diameter, np.maximum(cds[cur_q], node_hi))
        separated = geometric | (reach_lo >= reach_hi)
        emit = separated | (flat.left_child[cur_n] < 0)
        out_q.append(cur_q[emit])
        out_n.append(cur_n[emit])
        rest_q = cur_q[~emit]
        rest_n = cur_n[~emit]
        cur_q = np.concatenate([rest_q, rest_q])
        cur_n = np.concatenate(
            [flat.left_child[rest_n], flat.right_child[rest_n]]
        )
    if not out_q:
        return empty
    return np.concatenate(out_q), np.concatenate(out_n)
