"""Incremental insert/delete engine with cold-refit byte-conformance.

``fit_dynamic`` produces an updatable :class:`~repro.serve.state.FitState`;
``insert_batch`` / ``delete_batch`` return an updated state that is
byte-identical to a cold ``fit_dynamic`` of the surviving points.  See
:mod:`repro.dynamic.engine` for the repair model.
"""

from repro.dynamic.engine import (
    SUPPORT_ATTR,
    DynamicSupport,
    delete_batch,
    fit_dynamic,
    insert_batch,
)
from repro.mst.canonical import canonical_mst_arrays

__all__ = [
    "SUPPORT_ATTR",
    "DynamicSupport",
    "canonical_mst_arrays",
    "delete_batch",
    "fit_dynamic",
    "insert_batch",
]
