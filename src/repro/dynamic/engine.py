"""Incremental insert/delete engine over a fitted serving state.

A cold HDBSCAN*/EMST fit is dominated by two global computations — the
all-points core distances and the BCCPs of the full well-separated pair
decomposition.  Under a small batched update almost all of that work is
provably unchanged: a core distance can only move when the update lands
inside the point's current core radius, and a WSPD pair's minimum
mutual-reachability edge can only move when a member dies, a member's core
distance changes, or a certified lower bound says a changed point could
undercut the cached winner.  :func:`insert_batch` / :func:`delete_batch`
exploit exactly that:

* the *base* tree (a leaf-size-1 kd-tree over the points present at the
  last cold fit) is tombstoned, never restructured: deletions flip an
  ``alive`` bit and the live core-distance extrema are re-annotated in one
  sweep.  Its WSPD pair decomposition is cached with per-pair BCCP winners
  and repaired locally per update;
* inserted points go to a side *buffer* paired against the base tree by a
  per-point separation descent and against each other by a tiny WSPD of
  their own; a log-scheduled full rebuild folds the buffer in (or drops
  the tombstones) before either side grows past a fixed fraction of n;
* every update re-assembles the state through one shared path — exact
  candidate edge weights via :meth:`Metric.exact_edge_weights`, the
  canonical MST normal form of :func:`repro.mst.canonical_mst_arrays`, a
  fresh top-down dendrogram and condensed tree — the same path a cold
  :func:`fit_dynamic` takes.  Conformance therefore reduces to both sides
  presenting candidate sets with the same weight-class filtration, which
  the WSPD coverage argument guarantees; the result is **byte-identical**
  to a cold refit of the surviving points, across metrics, thread counts
  and memory budgets.

The cut cache of the returned state starts empty: an update changes ``n``,
so every cached labelling of the previous state is invalid by construction —
full invalidation is exact, not conservative.

States made by :func:`fit_dynamic` carry their repair support with them;
states from :func:`repro.serve.state.fit_state` (or a ``load_state``) are
adopted by running one cold :func:`fit_dynamic` over their points first
(their bruteforce-path core distances are not subset-recomputable, so the
adopting fit re-derives them through the kd-tree path).  A state that has
been updated *from* hands its support to the successor state and reverts to
plain read-only serving.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.backend import BackendLike, resolve_backend
from repro.core.budget import BudgetLike, use_memory_budget
from repro.core.errors import InvalidParameterError, InvalidPointSetError
from repro.core.metric import MetricLike, resolve_metric
from repro.core.points import as_points
from repro.dendrogram.condensed import condense_dendrogram
from repro.dendrogram.topdown import dendrogram_topdown
from repro.dynamic.spatial import (
    alive_members,
    descend_singleton_pairs,
    live_cd_extrema,
    masked_pair_winners,
    node_any_flags,
    segmented_min_mr,
    winner_beat_mask,
)
from repro.hdbscan.core_distance import core_distances
from repro.mst.canonical import canonical_mst_arrays
from repro.mst.kruskal import parallel_argsort
from repro.serve.state import (
    DEFAULT_CUT_CACHE,
    SERVING_LEAF_SIZE,
    FitState,
    _state_fingerprint,
)
from repro.spatial.kdtree import KDTree
from repro.spatial.knn import knn
from repro.wspd.separation import hdbscan_well_separated_mask
from repro.wspd.wspd import compute_wspd_ids, frontier_step

#: Attribute under which a state's repair support travels.
SUPPORT_ATTR = "_dynamic"

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


class DynamicSupport:
    """Mutable repair state riding along with a dynamically-fitted state.

    Point identity is *stable ids*: slots ``0..n_base-1`` are the base
    tree's points, later slots are buffered inserts; ``order`` maps each
    current row to its stable id (deletes compact it, inserts append).
    ``pair_u`` / ``pair_v`` hold the cached BCCP winner (as stable ids) of
    every live base WSPD pair ``(pair_a, pair_b)``.
    """

    def __init__(
        self,
        *,
        metric,
        backend,
        min_pts: int,
        min_cluster_size: int,
        allow_single_cluster: bool,
        base_tree: Optional[KDTree],
        base_alive: np.ndarray,
        stable_points: np.ndarray,
        stable_cd: np.ndarray,
        order: np.ndarray,
        buffer: np.ndarray,
        pair_a: np.ndarray,
        pair_b: np.ndarray,
        pair_u: np.ndarray,
        pair_v: np.ndarray,
        pair_w: np.ndarray,
    ) -> None:
        self.metric = metric
        self.backend = backend
        self.min_pts = int(min_pts)
        self.min_cluster_size = int(min_cluster_size)
        self.allow_single_cluster = bool(allow_single_cluster)
        self.base_tree = base_tree
        self.base_alive = base_alive
        self.stable_points = stable_points
        self.stable_cd = stable_cd
        self.order = order
        self.buffer = buffer
        self.pair_a = pair_a
        self.pair_b = pair_b
        self.pair_u = pair_u
        self.pair_v = pair_v
        self.pair_w = pair_w
        self.node_alive: Optional[np.ndarray] = None
        # Cached ascending-by-weight permutation of ``pair_w``; repaired
        # incrementally so updates merge instead of re-sorting all pairs.
        self.pair_wsort: Optional[np.ndarray] = None

    @property
    def n_base(self) -> int:
        return int(self.base_alive.shape[0])


def _require_exact_backend(backend: BackendLike):
    resolved = resolve_backend(backend)
    if resolved.lowered:
        raise InvalidParameterError(
            "the dynamic engine requires an exact float64 backend; lowered "
            "backends cannot guarantee cold-refit byte-conformance under "
            "subset recomputation"
        )
    return resolved


def _coerce_points(points, dimension: Optional[int] = None) -> np.ndarray:
    raw = np.asarray(points, dtype=np.float64)
    if raw.ndim == 2 and raw.shape[0] == 0:
        if raw.shape[1] < 1:
            raise InvalidPointSetError("points must have at least one column")
        data = np.ascontiguousarray(raw)
    else:
        data = as_points(points)
    if dimension is not None and data.shape[1] != dimension:
        raise InvalidParameterError(
            f"update points have dimension {data.shape[1]}, the fitted state "
            f"has dimension {dimension}"
        )
    return data


def _kth_distances(
    tree: KDTree,
    data: np.ndarray,
    rows: np.ndarray,
    k: int,
    num_threads: Optional[int],
) -> np.ndarray:
    """k-th k-NN distance of the selected rows, bitwise the cold value.

    Mirrors the final line of :func:`repro.hdbscan.core_distance.core_distances`
    (``kdtree`` method, including the ``minPts == 1`` zero shortcut): the
    per-query top-k fold depends only on the query row and the stored point
    multiset, so querying a subset of rows reproduces the all-rows values.
    """
    if rows.size == 0:
        return _EMPTY_F
    if k == 1:
        return np.zeros(rows.size, dtype=np.float64)
    _, distances = knn(tree, k, queries=data[rows], num_threads=num_threads)
    return np.ascontiguousarray(distances[:, -1], dtype=np.float64)


def fit_dynamic(
    points,
    *,
    min_pts: int = 10,
    min_cluster_size: int = 5,
    allow_single_cluster: bool = False,
    metric: MetricLike = None,
    backend: BackendLike = None,
    num_threads: Optional[int] = None,
    memory_budget: BudgetLike = None,
    cut_cache_size: int = DEFAULT_CUT_CACHE,
) -> FitState:
    """Cold fit producing an updatable :class:`FitState` (``method="dynamic"``).

    This is the refit that :func:`insert_batch` / :func:`delete_batch` are
    byte-conformant against.  It differs from
    :func:`repro.serve.state.fit_state` in two deliberate ways: core
    distances go through the kd-tree path (tree-structure independent, hence
    recomputable for an arbitrary subset of points after an update), and the
    MST is emitted in the canonical normal form of
    :func:`repro.mst.canonical_mst_arrays` (a pure function of the
    weight-class filtration, hence reachable by local repair).  Accepts any
    ``n >= 0``, clamping ``minPts`` to ``min(min_pts, n)`` like the HDBSCAN
    drivers do.
    """
    if int(min_pts) < 1:
        raise InvalidParameterError("min_pts must be >= 1")
    if int(min_cluster_size) < 1:
        raise InvalidParameterError("min_cluster_size must be >= 1")
    resolved_metric = resolve_metric(metric)
    resolved_backend = _require_exact_backend(backend)
    data = _coerce_points(points)
    with use_memory_budget(memory_budget):
        return _cold_fit(
            data,
            metric=resolved_metric,
            backend=resolved_backend,
            min_pts=int(min_pts),
            min_cluster_size=int(min_cluster_size),
            allow_single_cluster=bool(allow_single_cluster),
            num_threads=num_threads,
            cut_cache_size=cut_cache_size,
        )


def _cold_fit(
    data: np.ndarray,
    *,
    metric,
    backend,
    min_pts: int,
    min_cluster_size: int,
    allow_single_cluster: bool,
    num_threads: Optional[int],
    cut_cache_size: int,
) -> FitState:
    n = int(data.shape[0])
    if n == 0:
        support = DynamicSupport(
            metric=metric,
            backend=backend,
            min_pts=min_pts,
            min_cluster_size=min_cluster_size,
            allow_single_cluster=allow_single_cluster,
            base_tree=None,
            base_alive=np.zeros(0, dtype=bool),
            stable_points=data,
            stable_cd=_EMPTY_F.copy(),
            order=_EMPTY_I.copy(),
            buffer=_EMPTY_I.copy(),
            pair_a=_EMPTY_I.copy(),
            pair_b=_EMPTY_I.copy(),
            pair_u=_EMPTY_I.copy(),
            pair_v=_EMPTY_I.copy(),
            pair_w=_EMPTY_F.copy(),
        )
        state = FitState(
            points=data,
            tree=None,
            core_distances=_EMPTY_F.copy(),
            mst_u=_EMPTY_I.copy(),
            mst_v=_EMPTY_I.copy(),
            mst_w=_EMPTY_F.copy(),
            dendrogram=None,
            condensed=None,
            min_pts=min_pts,
            min_cluster_size=min_cluster_size,
            allow_single_cluster=allow_single_cluster,
            method="dynamic",
            fingerprint=_state_fingerprint(
                data,
                method="dynamic",
                metric=metric,
                backend=backend,
                memory_budget=None,
                num_threads=num_threads,
                min_pts=min_pts,
                min_cluster_size=min_cluster_size,
                allow_single_cluster=allow_single_cluster,
                leaf_size=SERVING_LEAF_SIZE,
            ),
            cut_cache_size=cut_cache_size,
            metric=metric,
            backend=backend,
        )
        setattr(state, SUPPORT_ATTR, support)
        return state

    serving = KDTree(
        data, leaf_size=SERVING_LEAF_SIZE, metric=metric, backend=backend
    )
    effective = min(min_pts, n)
    cds = core_distances(
        data,
        effective,
        method="kdtree",
        tree=serving,
        num_threads=num_threads,
        metric=metric,
        backend=backend,
    )
    serving.annotate_core_distances(cds)

    base = KDTree(data, leaf_size=1, metric=metric, backend=backend)
    base.annotate_core_distances(cds)
    if n >= 2:
        pair_a, pair_b = compute_wspd_ids(
            base, separation="hdbscan", num_threads=num_threads
        )
    else:
        pair_a, pair_b = _EMPTY_I.copy(), _EMPTY_I.copy()
    if pair_a.size:
        # Exact-min winners (not the expansion-scored BCCP argmin): every
        # dynamic candidate carries its pair's exact minimum, which makes
        # the canonical filtration independent of the decomposition and is
        # what lets a repaired pair set reproduce a cold refit bitwise.
        pair_u, pair_v, pair_w = masked_pair_winners(
            base.flat, pair_a, pair_b, np.ones(n, dtype=bool), cds,
            base.metric, num_threads,
        )
    else:
        pair_u, pair_v = _EMPTY_I.copy(), _EMPTY_I.copy()
        pair_w = _EMPTY_F.copy()

    support = DynamicSupport(
        metric=metric,
        backend=backend,
        min_pts=min_pts,
        min_cluster_size=min_cluster_size,
        allow_single_cluster=allow_single_cluster,
        base_tree=base,
        base_alive=np.ones(n, dtype=bool),
        stable_points=data,
        stable_cd=np.ascontiguousarray(cds, dtype=np.float64).copy(),
        order=np.arange(n, dtype=np.int64),
        buffer=_EMPTY_I.copy(),
        pair_a=np.asarray(pair_a, dtype=np.int64),
        pair_b=np.asarray(pair_b, dtype=np.int64),
        pair_u=pair_u,
        pair_v=pair_v,
        pair_w=pair_w,
    )
    support.node_alive = node_any_flags(base.flat, support.base_alive)
    return _assemble(
        support,
        data,
        serving,
        _EMPTY_I,
        _EMPTY_I,
        _EMPTY_F,
        num_threads=num_threads,
        cut_cache_size=cut_cache_size,
    )


def _merge_by_value(
    values: np.ndarray, sorted_pos: np.ndarray, fresh_pos: np.ndarray
) -> np.ndarray:
    """Merge two position lists into one ascending-by-``values`` permutation.

    ``sorted_pos`` must already be ascending by ``values``; ``fresh_pos`` is
    sorted here.  On ties the fresh positions land before the equal-valued
    sorted ones, which is irrelevant to every consumer (the canonical MST
    sweep partitions by weight class, not by within-class order).
    """
    if fresh_pos.size == 0:
        return sorted_pos
    f_ord = fresh_pos[np.argsort(values[fresh_pos], kind="stable")]
    ins = np.searchsorted(values[sorted_pos], values[f_ord], side="left")
    total = sorted_pos.size + f_ord.size
    out = np.empty(total, dtype=np.int64)
    pos_fresh = ins + np.arange(f_ord.size, dtype=np.int64)
    remaining = np.ones(total, dtype=bool)
    remaining[pos_fresh] = False
    out[pos_fresh] = f_ord
    out[remaining] = sorted_pos
    return out


def _assemble(
    support: DynamicSupport,
    data: np.ndarray,
    serving: KDTree,
    extra_u: np.ndarray,
    extra_v: np.ndarray,
    extra_w: np.ndarray,
    *,
    num_threads: Optional[int],
    cut_cache_size: int,
) -> FitState:
    """Shared state assembly for cold fits and incremental updates.

    Candidates are the cached base-pair winners plus the update's buffer
    winners; every value is an exact per-pair minimum from
    :func:`repro.dynamic.spatial.segmented_min_mr` (row-wise kernel, so a
    value is bitwise independent of when and in which batch it was
    evaluated).  The union is canonicalized into the normal-form MST and
    rolled into a fresh dendrogram, condensed tree and serving state.
    """
    n = int(data.shape[0])
    cds_current = np.ascontiguousarray(
        support.stable_cd[support.order], dtype=np.float64
    )
    if n >= 2:
        cand_u = np.concatenate([support.pair_u, extra_u])
        cand_v = np.concatenate([support.pair_v, extra_v])
        weights = np.concatenate([support.pair_w, extra_w])
        current_of = np.empty(support.stable_points.shape[0], dtype=np.int64)
        current_of[support.order] = np.arange(n, dtype=np.int64)
        # The cached ascending order over pair_w (repaired incrementally
        # alongside the pairs) only needs the handful of buffer winners
        # merged in — re-sorting all candidates every update would dwarf
        # the actual repair work.
        if support.pair_wsort is None:
            support.pair_wsort = parallel_argsort(
                support.pair_w, num_threads=num_threads
            )
        order = _merge_by_value(
            weights,
            support.pair_wsort,
            np.arange(
                support.pair_w.size, weights.size, dtype=np.int64
            ),
        )
        mst_u, mst_v, mst_w = canonical_mst_arrays(
            current_of[cand_u],
            current_of[cand_v],
            weights,
            n,
            num_threads=num_threads,
            order=order,
        )
    else:
        mst_u, mst_v = _EMPTY_I.copy(), _EMPTY_I.copy()
        mst_w = _EMPTY_F.copy()
    dendrogram = dendrogram_topdown((mst_u, mst_v, mst_w), n)
    condensed = condense_dendrogram(dendrogram, support.min_cluster_size)
    state = FitState(
        points=data,
        tree=serving,
        core_distances=cds_current,
        mst_u=mst_u,
        mst_v=mst_v,
        mst_w=mst_w,
        dendrogram=dendrogram,
        condensed=condensed,
        min_pts=support.min_pts,
        min_cluster_size=support.min_cluster_size,
        allow_single_cluster=support.allow_single_cluster,
        method="dynamic",
        fingerprint=_state_fingerprint(
            data,
            method="dynamic",
            metric=support.metric,
            backend=support.backend,
            memory_budget=None,
            num_threads=num_threads,
            min_pts=support.min_pts,
            min_cluster_size=support.min_cluster_size,
            allow_single_cluster=support.allow_single_cluster,
            leaf_size=SERVING_LEAF_SIZE,
        ),
        cut_cache_size=cut_cache_size,
    )
    setattr(state, SUPPORT_ATTR, support)
    return state


def _detach_support(state: FitState) -> DynamicSupport:
    """Take ownership of a state's repair support (it moves, never shares).

    The repair mutates the base tree's annotations and the tombstone mask in
    place, so the support cannot be shared between the predecessor and
    successor states; the predecessor reverts to plain read-only serving
    (updating it again costs one cold adoption fit).
    """
    support = getattr(state, SUPPORT_ATTR)
    delattr(state, SUPPORT_ATTR)
    return support


def _adopt(state: FitState, num_threads: Optional[int]) -> FitState:
    """Return a dynamically-fitted equivalent of ``state``.

    States without repair support (built by :func:`fit_state`, restored by
    ``load_state``, or previously updated *from*) get one cold
    :func:`fit_dynamic` over their current points with their fitted
    parameters.
    """
    if getattr(state, SUPPORT_ATTR, None) is not None:
        return state
    return fit_dynamic(
        state.points,
        min_pts=state.min_pts,
        min_cluster_size=state.min_cluster_size,
        allow_single_cluster=state.allow_single_cluster,
        metric=state.metric,
        backend=state.backend,
        num_threads=num_threads,
        cut_cache_size=state._cut_capacity,
    )


def insert_batch(
    state: FitState,
    new_points,
    *,
    num_threads: Optional[int] = None,
    memory_budget: BudgetLike = None,
) -> FitState:
    """Insert a batch of points into a fitted state without a cold refit.

    Returns a new :class:`FitState` over the old points (same order) with
    the batch appended, byte-identical to
    ``fit_dynamic(np.concatenate([state.points, batch]))`` with the state's
    parameters.  The input state stays valid for reading but hands its
    repair support to the result.
    """
    state = _adopt(state, num_threads)
    batch = _coerce_points(new_points, dimension=state.dimension)
    if batch.shape[0] == 0:
        return state
    with use_memory_budget(memory_budget):
        return _insert(state, batch, num_threads)


def _insert(state: FitState, batch: np.ndarray, num_threads) -> FitState:
    support = getattr(state, SUPPORT_ATTR)
    params = dict(
        metric=support.metric,
        backend=support.backend,
        min_pts=support.min_pts,
        min_cluster_size=support.min_cluster_size,
        allow_single_cluster=support.allow_single_cluster,
        num_threads=num_threads,
        cut_cache_size=state._cut_capacity,
    )
    n_old = state.num_points
    m = int(batch.shape[0])
    n_new = n_old + m
    if n_old == 0:
        return _cold_fit(batch, **params)
    if support.buffer.size + m > max(32, n_new // 8) or support.base_tree is None:
        # Log-scheduled merge: fold the buffer (and tombstones) into a fresh
        # base before the side structures dominate the update cost.
        data = np.ascontiguousarray(np.concatenate([state.points, batch]))
        _detach_support(state)
        return _cold_fit(data, **params)

    support = _detach_support(state)
    eff_old = min(support.min_pts, n_old)
    eff_new = min(support.min_pts, n_new)
    if eff_new != eff_old:
        changed_rows = np.arange(n_old, dtype=np.int64)
    else:
        # An insert can only shrink a core distance, and only if some new
        # point lands strictly inside the old core radius.
        changed_rows = np.flatnonzero(
            state.tree.flat.mask_within_radii(
                batch, state.core_distances, strict=True
            )
        )

    next_slot = support.stable_points.shape[0]
    new_stable = np.arange(next_slot, next_slot + m, dtype=np.int64)
    support.stable_points = np.ascontiguousarray(
        np.concatenate([support.stable_points, batch])
    )
    support.stable_cd = np.concatenate([support.stable_cd, np.zeros(m)])
    support.order = np.concatenate([support.order, new_stable])
    support.buffer = np.concatenate([support.buffer, new_stable])

    data = np.ascontiguousarray(support.stable_points[support.order])
    serving = KDTree(
        data,
        leaf_size=SERVING_LEAF_SIZE,
        metric=support.metric,
        backend=support.backend,
    )
    rows = np.concatenate(
        [changed_rows, np.arange(n_old, n_new, dtype=np.int64)]
    )
    kth = _kth_distances(serving, data, rows, eff_new, num_threads)
    touched_stable = support.order[rows]
    previous = support.stable_cd[touched_stable].copy()
    support.stable_cd[touched_stable] = kth
    changed = kth != previous
    changed[changed_rows.size:] = True  # new points are always "changed"
    changed_stable = touched_stable[changed]
    decreased_stable = touched_stable[kth < previous]
    serving.annotate_core_distances(support.stable_cd[support.order])

    base_changed = changed_stable[changed_stable < support.n_base]
    base_decreased = decreased_stable[decreased_stable < support.n_base]
    _repair_base_pairs(
        support,
        died=_EMPTY_I,
        changed=base_changed,
        decreased=base_decreased,
        num_threads=num_threads,
    )
    extra_u, extra_v, extra_w = _buffer_winners(support, num_threads)
    return _assemble(
        support,
        data,
        serving,
        extra_u,
        extra_v,
        extra_w,
        num_threads=num_threads,
        cut_cache_size=state._cut_capacity,
    )


def delete_batch(
    state: FitState,
    indices,
    *,
    num_threads: Optional[int] = None,
    memory_budget: BudgetLike = None,
) -> FitState:
    """Delete points (by current row index) without a cold refit.

    Surviving points keep their relative order.  Returns a new
    :class:`FitState` byte-identical to ``fit_dynamic`` over the survivors
    with the state's parameters; deleting every point yields a valid empty
    state that :func:`insert_batch` can repopulate.
    """
    state = _adopt(state, num_threads)
    idx = np.atleast_1d(np.asarray(indices))
    if idx.size == 0:
        return state
    if idx.ndim != 1 or not np.issubdtype(idx.dtype, np.integer):
        raise InvalidParameterError("indices must be a 1-d integer array")
    idx = idx.astype(np.int64)
    n_old = state.num_points
    if idx.size and (idx.min() < 0 or idx.max() >= n_old):
        raise InvalidParameterError(
            f"indices must be in [0, {n_old}); got values outside that range"
        )
    if np.unique(idx).size != idx.size:
        raise InvalidParameterError("indices must not contain duplicates")
    with use_memory_budget(memory_budget):
        return _delete(state, idx, num_threads)


def _delete(state: FitState, idx: np.ndarray, num_threads) -> FitState:
    support = getattr(state, SUPPORT_ATTR)
    params = dict(
        metric=support.metric,
        backend=support.backend,
        min_pts=support.min_pts,
        min_cluster_size=support.min_cluster_size,
        allow_single_cluster=support.allow_single_cluster,
        num_threads=num_threads,
        cut_cache_size=state._cut_capacity,
    )
    n_old = state.num_points
    m = int(idx.size)
    n_new = n_old - m
    keep = np.ones(n_old, dtype=bool)
    keep[idx] = False
    if n_new == 0:
        _detach_support(state)
        return _cold_fit(state.points[:0], **params)

    dying_stable = support.order[idx]
    dying_base = dying_stable[dying_stable < support.n_base]
    dead_after = int((~support.base_alive).sum()) + int(dying_base.size)
    if dead_after > max(32, support.n_base // 4):
        data = np.ascontiguousarray(state.points[keep])
        _detach_support(state)
        return _cold_fit(data, **params)

    support = _detach_support(state)
    eff_old = min(support.min_pts, n_old)
    eff_new = min(support.min_pts, n_new)
    if eff_new != eff_old:
        changed_rows_old = np.flatnonzero(keep)
    else:
        # A delete can only grow a core distance, and only for survivors
        # holding a dying point within their old core radius (ties at the
        # radius included — recomputing an unchanged value is harmless).
        hit = state.tree.flat.mask_within_radii(
            state.points[idx], state.core_distances, strict=False
        )
        changed_rows_old = np.flatnonzero(hit & keep)
    shift = np.cumsum(~keep)
    new_rows = (changed_rows_old - shift[changed_rows_old]).astype(np.int64)
    recompute_stable = support.order[changed_rows_old]

    support.order = support.order[keep]
    support.base_alive[dying_base] = False
    dying_buffer = dying_stable[dying_stable >= support.n_base]
    if dying_buffer.size:
        support.buffer = support.buffer[
            ~np.isin(support.buffer, dying_buffer)
        ]

    data = np.ascontiguousarray(support.stable_points[support.order])
    serving = KDTree(
        data,
        leaf_size=SERVING_LEAF_SIZE,
        metric=support.metric,
        backend=support.backend,
    )
    kth = _kth_distances(serving, data, new_rows, eff_new, num_threads)
    previous = support.stable_cd[recompute_stable].copy()
    changed_stable = recompute_stable[kth != previous]
    decreased_stable = recompute_stable[kth < previous]
    support.stable_cd[recompute_stable] = kth
    serving.annotate_core_distances(support.stable_cd[support.order])

    base_changed = changed_stable[changed_stable < support.n_base]
    base_decreased = decreased_stable[decreased_stable < support.n_base]
    _repair_base_pairs(
        support,
        died=dying_base,
        changed=base_changed,
        decreased=base_decreased,
        num_threads=num_threads,
    )
    extra_u, extra_v, extra_w = _buffer_winners(support, num_threads)
    return _assemble(
        support,
        data,
        serving,
        extra_u,
        extra_v,
        extra_w,
        num_threads=num_threads,
        cut_cache_size=state._cut_capacity,
    )


def _resplit(
    flat, a: np.ndarray, b: np.ndarray, node_alive: np.ndarray, num_threads
) -> Tuple[np.ndarray, np.ndarray]:
    """Re-split pairs that lost separation, skipping all-dead subtrees."""

    def predicate(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return hdbscan_well_separated_mask(flat, x, y)

    out_a = []
    out_b = []
    while a.size:
        keep = node_alive[a] & node_alive[b]
        a = a[keep]
        b = b[keep]
        if a.size == 0:
            break
        _, sep_a, sep_b, dup_a, dup_b, a, b = frontier_step(
            flat, a, b, predicate, num_threads=num_threads
        )
        out_a.append(sep_a)
        out_a.append(dup_a)
        out_b.append(sep_b)
        out_b.append(dup_b)
    if not out_a:
        return _EMPTY_I.copy(), _EMPTY_I.copy()
    return np.concatenate(out_a), np.concatenate(out_b)


def _repair_base_pairs(
    support: DynamicSupport,
    *,
    died: np.ndarray,
    changed: np.ndarray,
    decreased: np.ndarray,
    num_threads,
) -> None:
    """Repair the cached base WSPD decomposition after one update.

    Refreshes the live annotations, drops pairs with an all-dead side,
    re-tests (and re-splits, alive-filtered) pairs containing touched
    points, and recomputes winners only where the cached one is invalidated:
    the winner died, its cached value *grew* under the refreshed core
    distances (every other cached candidate was already ≥ the old value, so
    a non-growing winner stays minimal over the unchanged candidates), or
    the certified :func:`winner_beat_mask` bound admits a *decreased* point
    undercutting the (refreshed) value.  Only points whose core distance
    shrank (``decreased``) can undercut a stable winner — every candidate
    value is monotone in its endpoints' core distances, so a pure-growth
    update (deletion) skips the beat test entirely.  Both-leaf pairs are
    singletons whose winner is fixed by membership; only their value is
    refreshed.
    """
    tree = support.base_tree
    if tree is None or support.n_base == 0:
        return
    flat = tree.flat
    alive = support.base_alive
    n_base = support.n_base
    flat.cd_min, flat.cd_max = live_cd_extrema(
        flat, support.stable_cd[:n_base], alive
    )
    node_alive = node_any_flags(flat, alive)
    support.node_alive = node_alive

    pa, pb = support.pair_a, support.pair_b
    wu, wv = support.pair_u, support.pair_v
    ww = support.pair_w
    if pa.size == 0:
        return
    touched = np.zeros(n_base, dtype=bool)
    touched[died] = True
    touched[changed] = True
    alive_pair = node_alive[pa] & node_alive[pb]
    if touched.any():
        node_touched = node_any_flags(flat, touched)
        flagged = alive_pair & (node_touched[pa] | node_touched[pb])
    else:
        flagged = np.zeros(pa.size, dtype=bool)
    if not flagged.any() and alive_pair.all():
        return
    both_leaf = flat.is_leaf(pa) & flat.is_leaf(pb)
    keep_static = np.flatnonzero(alive_pair & (~flagged | both_leaf))
    refresh = np.flatnonzero(flagged & both_leaf)
    if refresh.size:
        ww[refresh] = support.metric.exact_edge_weights(
            support.stable_points, wu[refresh], wv[refresh],
            support.stable_cd,
        )

    test_idx = np.flatnonzero(flagged & ~both_leaf)
    if test_idx.size:
        still = hdbscan_well_separated_mask(flat, pa[test_idx], pb[test_idx])
        ok_idx = test_idx[still]
        new_a, new_b = _resplit(
            flat, pa[test_idx[~still]], pb[test_idx[~still]],
            node_alive, num_threads,
        )
    else:
        ok_idx = _EMPTY_I
        new_a, new_b = _EMPTY_I.copy(), _EMPTY_I.copy()

    changed_mask = np.zeros(n_base, dtype=bool)
    changed_mask[changed] = True
    dead_winner = ~alive[wu[ok_idx]] | ~alive[wv[ok_idx]]
    cd_changed = (
        changed_mask[wu[ok_idx]] | changed_mask[wv[ok_idx]]
    ) & ~dead_winner
    grew = np.zeros(ok_idx.size, dtype=bool)
    chg = np.flatnonzero(cd_changed)
    if chg.size:
        chg_idx = ok_idx[chg]
        v_new = support.metric.exact_edge_weights(
            support.stable_points, wu[chg_idx], wv[chg_idx],
            support.stable_cd,
        )
        grew[chg] = v_new > ww[chg_idx]
        ww[chg_idx] = v_new
    winner_invalid = dead_winner | grew
    stable_idx = ok_idx[~winner_invalid]
    beat = np.zeros(stable_idx.size, dtype=bool)
    decreased_mask = np.zeros(n_base, dtype=bool)
    decreased_mask[decreased] = True
    beat_sources = np.flatnonzero(decreased_mask & alive)
    if stable_idx.size and beat_sources.size:
        inverse = np.empty(n_base, dtype=np.int64)
        inverse[flat.perm] = np.arange(n_base, dtype=np.int64)
        touched_positions = np.sort(inverse[beat_sources])
        values = ww[stable_idx]
        beat = winner_beat_mask(
            flat, pa[stable_idx], pb[stable_idx], touched_positions,
            support.stable_points, support.stable_cd, values,
        ) | winner_beat_mask(
            flat, pb[stable_idx], pa[stable_idx], touched_positions,
            support.stable_points, support.stable_cd, values,
        )

    recompute_idx = np.concatenate([ok_idx[winner_invalid], stable_idx[beat]])
    redo_a = np.concatenate([pa[recompute_idx], new_a])
    redo_b = np.concatenate([pb[recompute_idx], new_b])
    if redo_a.size:
        redo_u, redo_v, redo_w = masked_pair_winners(
            flat, redo_a, redo_b, alive,
            support.stable_cd[:n_base], support.metric, num_threads,
        )
    else:
        redo_u, redo_v = _EMPTY_I.copy(), _EMPTY_I.copy()
        redo_w = _EMPTY_F.copy()

    kept = np.concatenate([keep_static, stable_idx[~beat]])
    support.pair_a = np.concatenate([pa[kept], redo_a])
    support.pair_b = np.concatenate([pb[kept], redo_b])
    support.pair_u = np.concatenate([wu[kept], redo_u])
    support.pair_v = np.concatenate([wv[kept], redo_v])
    support.pair_w = np.concatenate([ww[kept], redo_w])

    # Repair the cached ascending-by-weight permutation: kept pairs with
    # untouched values stay in their old relative order, so only the
    # refreshed/recomputed few need sorting and merging back in.
    ws = support.pair_wsort
    if ws is not None:
        m_old = pa.shape[0]
        dirty = np.zeros(m_old, dtype=bool)
        dirty[refresh] = True
        if chg.size:
            dirty[ok_idx[chg]] = True
        old_to_new = np.full(m_old, -1, dtype=np.int64)
        old_to_new[kept] = np.arange(kept.size, dtype=np.int64)
        clean = ws[(old_to_new[ws] >= 0) & ~dirty[ws]]
        fresh = np.concatenate([
            old_to_new[np.flatnonzero(dirty & (old_to_new >= 0))],
            np.arange(
                kept.size, kept.size + redo_a.size, dtype=np.int64
            ),
        ])
        support.pair_wsort = _merge_by_value(
            support.pair_w, old_to_new[clean], fresh
        )


def _buffer_winners(
    support: DynamicSupport, num_threads
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Candidate winners covering buffer×base and buffer×buffer pairs."""
    buffer = support.buffer
    if buffer.size == 0:
        return _EMPTY_I, _EMPTY_I, _EMPTY_F
    points = np.ascontiguousarray(support.stable_points[buffer])
    cds = np.ascontiguousarray(support.stable_cd[buffer])
    out_u = []
    out_v = []
    out_w = []
    if support.base_tree is not None and support.node_alive is not None:
        flat = support.base_tree.flat
        q_idx, node_ids = descend_singleton_pairs(
            flat, points, cds, support.node_alive
        )
        if q_idx.size:
            b_counts, b_members = alive_members(
                flat, node_ids, support.base_alive
            )
            win_u, win_v, win_w = segmented_min_mr(
                support.stable_points, support.stable_cd, support.metric,
                np.ones(q_idx.size, dtype=np.int64), buffer[q_idx],
                b_counts, b_members,
            )
            out_u.append(win_u)
            out_v.append(win_v)
            out_w.append(win_w)
    if buffer.size >= 2:
        side = KDTree(
            points, leaf_size=1, metric=support.metric, backend=support.backend
        )
        side.annotate_core_distances(cds)
        pair_a, pair_b = compute_wspd_ids(
            side, separation="hdbscan", num_threads=num_threads
        )
        if pair_a.size:
            win_u, win_v, win_w = masked_pair_winners(
                side.flat, pair_a, pair_b,
                np.ones(buffer.size, dtype=bool), cds,
                support.metric, num_threads,
            )
            out_u.append(buffer[win_u])
            out_v.append(buffer[win_v])
            out_w.append(win_w)
    if not out_u:
        return _EMPTY_I, _EMPTY_I, _EMPTY_F
    return np.concatenate(out_u), np.concatenate(out_v), np.concatenate(out_w)
