"""Plain-text table / series formatting for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = "") -> str:
    """Render a fixed-width text table (markdown-ish, readable in a terminal)."""
    string_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def format_scaling_series(
    label: str, thread_counts: Sequence[int], speedups: Sequence[float]
) -> str:
    """One line per thread count: the series behind a speedup-vs-threads plot."""
    parts = [label]
    for threads, speedup in zip(thread_counts, speedups):
        name = f"{threads}" if threads != thread_counts[-1] else f"{threads // 2}h"
        parts.append(f"  p={name:>4}: {speedup:6.2f}x")
    return "\n".join(parts)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)
