"""Shared benchmark harness.

The modules under ``benchmarks/`` (one per paper table/figure) are thin
drivers; the measurement, work–depth calibration, scaling simulation, and
table formatting they share live here so they can also be reused
programmatically (e.g. from the examples or notebooks).
"""

from repro.bench.harness import (
    measure,
    measured_scaling_curve,
    memory_snapshot,
    peak_rss_bytes,
    run_with_tracker,
    scaling_curve,
    phase_breakdown,
    THREAD_COUNTS,
)
from repro.bench.tables import format_table, format_scaling_series

__all__ = [
    "measure",
    "measured_scaling_curve",
    "memory_snapshot",
    "peak_rss_bytes",
    "run_with_tracker",
    "scaling_curve",
    "phase_breakdown",
    "THREAD_COUNTS",
    "format_table",
    "format_scaling_series",
]
