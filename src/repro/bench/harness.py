"""Measurement and scaling-simulation helpers for the benchmark drivers.

Absolute running times are measured directly (single-threaded wall clock).
Two kinds of multi-thread scaling curve are available:

* :func:`scaling_curve` — the *simulated* curve: a run is instrumented with a
  :class:`~repro.parallel.scheduler.WorkDepthTracker` and Brent's bound
  ``T_p = W/p + D`` is evaluated for each thread count, calibrated so that
  ``T_1`` equals the measured single-thread time (see DESIGN.md,
  "Parallelism model").  This reproduces the *shape* of the paper's Figures
  6, 7, 9, 10 out to 48 cores regardless of the local machine.  The paper's
  "48h" configuration (48 cores with hyper-threading) is modelled as 48
  physical cores with a 1.35x effective-parallelism bonus.
* :func:`measured_scaling_curve` — the *measured* curve: the function is
  actually re-run with ``num_threads=p`` for each requested count, sharding
  its batched kernels across the persistent worker pool of
  :mod:`repro.parallel.pool`, and real wall-clock times are recorded.  This
  is what ``benchmarks/bench_parallel_scaling.py`` reports; because the
  sharded kernels are deterministic, the per-count results can be asserted
  byte-identical while the times scale.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.backend import resolve_backend
from repro.core.budget import current_memory_budget, resolve_memory_budget
from repro.core.metric import resolve_metric
from repro.parallel.scheduler import WorkDepthTracker, simulated_time, use_tracker

try:
    import resource
except ImportError:  # pragma: no cover - Windows has no resource module
    resource = None


def peak_rss_bytes() -> Optional[int]:
    """The process's lifetime peak resident set size, in bytes.

    Read from ``resource.getrusage`` (``ru_maxrss`` is kilobytes on Linux,
    bytes on macOS).  Where the ``resource`` module is unavailable, falls
    back to ``tracemalloc``'s traced peak when tracing is active, else
    ``None`` — callers record the value as-is, so artifacts stay honest about
    what was actually measured.

    Note this is a high-water mark for the whole process: it never decreases,
    so deltas across a measured call (``peak_after - peak_before``) only
    attribute growth, not a concurrent baseline.
    """
    if resource is not None:
        peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        return peak * 1024 if sys.platform != "darwin" else peak
    import tracemalloc

    if tracemalloc.is_tracing():  # pragma: no cover - fallback platform path
        return int(tracemalloc.get_traced_memory()[1])
    return None  # pragma: no cover - fallback platform path


def memory_snapshot() -> Dict[str, object]:
    """Current memory facts every benchmark artifact records.

    ``peak_rss_bytes`` is the process high-water mark
    (:func:`peak_rss_bytes`); ``memory_budget`` is the ambient budget's
    canonical spec (``"unbounded"`` without one) and ``budget_peak_bytes``
    the budget's own planned high-water mark, so artifacts can compare
    planned against measured peaks.
    """
    budget = current_memory_budget()
    return {
        "peak_rss_bytes": peak_rss_bytes(),
        "memory_budget": budget.spec(),
        "budget_peak_bytes": int(budget.peak_bytes),
    }


def _memory_spec(kwargs: Dict) -> str:
    """Canonical budget spec of a measured call, for JSON metadata.

    A ``memory_budget`` kwarg wins; otherwise the ambient budget (which is
    what the call will actually run under) is reported.
    """
    budget = kwargs.get("memory_budget")
    if budget is None:
        return current_memory_budget().spec()
    return resolve_memory_budget(budget).spec()


def _metric_spec(kwargs: Dict) -> str:
    """Canonical metric name of a measured call, for JSON metadata.

    Every pipeline in this library defaults to Euclidean, so a missing
    ``metric`` kwarg is reported as ``"euclidean"``.
    """
    return resolve_metric(kwargs.get("metric")).spec()


def _backend_spec(kwargs: Dict) -> Tuple[str, str]:
    """``(backend name, effective scoring dtype)`` of a measured call.

    A missing ``backend`` kwarg reports the ambient default (which is what
    the call will actually run on).  An unavailable compiled backend reports
    its fallback — the backend that really executed — not the requested name.
    """
    backend = resolve_backend(kwargs.get("backend"))
    return backend.name, backend.scoring_dtype.name

#: Thread counts reported in the paper's scaling figures; the final entry is
#: the hyper-threaded configuration ("48h").
THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 24, 36, 48, 96)

#: Thread counts for measured (real wall-clock) scaling runs: small powers of
#: two that commodity CI machines and laptops can actually provide.
MEASURED_THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


def measure(function: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Run ``function`` once and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_with_tracker(function: Callable, *args, **kwargs) -> Tuple[object, WorkDepthTracker, float]:
    """Run ``function`` under a fresh work–depth tracker.

    Returns ``(result, tracker, elapsed_seconds)``.
    """
    tracker = WorkDepthTracker()
    start = time.perf_counter()
    with use_tracker(tracker):
        result = function(*args, **kwargs)
    elapsed = time.perf_counter() - start
    return result, tracker, elapsed


def scaling_curve(
    function: Callable,
    *args,
    thread_counts: Sequence[int] = THREAD_COUNTS,
    hyperthread_last: bool = True,
    **kwargs,
) -> Dict[str, object]:
    """Measured T_1 plus simulated T_p / speedup for each thread count.

    The run is instrumented once; the simulated times are Brent's bound
    calibrated so the single-thread prediction matches the measured wall
    clock.  Returns a dict with keys ``result``, ``t1_seconds``,
    ``thread_counts``, ``times`` and ``speedups``.
    """
    result, tracker, elapsed = run_with_tracker(function, *args, **kwargs)
    work = max(tracker.work, 1.0)
    depth = max(tracker.depth, 1.0)
    seconds_per_op = elapsed / (work + depth)

    times: List[float] = []
    for index, processors in enumerate(thread_counts):
        is_last = index == len(thread_counts) - 1
        factor = 1.35 if (hyperthread_last and is_last) else 1.0
        # The hyper-threaded entry is expressed as physical cores * bonus.
        physical = processors if not (hyperthread_last and is_last) else max(
            processors // 2, 1
        )
        times.append(
            simulated_time(
                work,
                depth,
                physical,
                seconds_per_op=seconds_per_op,
                hyperthread_factor=factor,
            )
        )
    t1 = times[0]
    speedups = [t1 / t for t in times]
    backend_name, scoring_dtype = _backend_spec(kwargs)
    return {
        "result": result,
        "t1_seconds": elapsed,
        "work": work,
        "depth": depth,
        "metric": _metric_spec(kwargs),
        "backend": backend_name,
        "dtype": scoring_dtype,
        "memory_budget": _memory_spec(kwargs),
        "peak_rss_bytes": peak_rss_bytes(),
        "thread_counts": list(thread_counts),
        "times": times,
        "speedups": speedups,
    }


def measured_scaling_curve(
    function: Callable,
    *args,
    thread_counts: Sequence[int] = MEASURED_THREAD_COUNTS,
    repeats: int = 1,
    **kwargs,
) -> Dict[str, object]:
    """Real wall-clock self-relative scaling of a ``num_threads``-aware call.

    Runs ``function(*args, num_threads=p, **kwargs)`` for every ``p`` in
    ``thread_counts`` (``repeats`` times each, keeping the fastest), so every
    entry is a *measured* time with the worker pool actually sized to ``p`` —
    the counterpart to the Brent-bound simulation of :func:`scaling_curve`.

    Returns a dict with ``thread_counts``, ``times``, ``speedups``
    (``T_1 / T_p``) and ``results`` (one per thread count, in order, so
    callers can assert the outputs identical across counts).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times: List[float] = []
    results: List[object] = []
    for processors in thread_counts:
        best = float("inf")
        result = None
        for _ in range(repeats):
            result, elapsed = measure(
                function, *args, num_threads=processors, **kwargs
            )
            best = min(best, elapsed)
        times.append(best)
        results.append(result)
    t1 = times[0]
    backend_name, scoring_dtype = _backend_spec(kwargs)
    return {
        "metric": _metric_spec(kwargs),
        "backend": backend_name,
        "dtype": scoring_dtype,
        "memory_budget": _memory_spec(kwargs),
        "peak_rss_bytes": peak_rss_bytes(),
        "thread_counts": list(thread_counts),
        "times": times,
        "speedups": [t1 / t for t in times],
        "results": results,
    }


def latency_stats(latencies_seconds: Sequence[float]) -> Dict[str, float]:
    """Throughput/latency summary keys every serving artifact records.

    Given per-request wall-clock latencies (seconds), returns ``requests``,
    ``total_seconds``, ``requests_per_second`` and the nearest-rank
    percentiles ``latency_p50_s`` / ``latency_p99_s``.  Percentiles are
    nearest-rank over the measured samples (no interpolation), so a reported
    p99 is always a latency that actually happened.
    """
    latencies = sorted(float(value) for value in latencies_seconds)
    if not latencies:
        raise ValueError("latency_stats requires at least one latency sample")
    total = sum(latencies)

    def nearest_rank(quantile: float) -> float:
        rank = max(1, -(-int(quantile * 100) * len(latencies) // 100))
        return latencies[min(rank, len(latencies)) - 1]

    return {
        "requests": len(latencies),
        "total_seconds": total,
        "requests_per_second": len(latencies) / total if total > 0 else float("inf"),
        "latency_p50_s": nearest_rank(0.50),
        "latency_p99_s": nearest_rank(0.99),
    }


def timed_requests(
    handler: Callable, requests: Sequence
) -> Tuple[List[object], Dict[str, float]]:
    """Answer each request through ``handler``, timing every call.

    Returns ``(responses, stats)`` where ``stats`` is
    :func:`latency_stats` over the per-request wall clocks — the measurement
    loop the serving benchmark and its CI smoke job share.
    """
    responses: List[object] = []
    latencies: List[float] = []
    for request in requests:
        start = time.perf_counter()
        responses.append(handler(request))
        latencies.append(time.perf_counter() - start)
    return responses, latency_stats(latencies)


def phase_breakdown(stats: Dict[str, float]) -> Dict[str, float]:
    """Extract the ``time_<phase>`` entries of a result's stats dict."""
    breakdown = {}
    for key, value in stats.items():
        if key.startswith("time_"):
            breakdown[key[len("time_"):]] = value
    return breakdown
