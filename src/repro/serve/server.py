"""Long-lived query engine over one immutable fit-state.

:class:`ServingEngine` is the read side the CLI ``serve`` mode (and the
serving benchmark) drive: construct it around a :class:`~repro.serve.state.
FitState`, then answer any number of re-cut / label / predict requests off
the read-only arrays.  Requests are plain dicts (JSON objects on the wire)
with an ``op`` field:

``{"op": "recut", "epsilon": 0.25}``
    Flat labels at new cut parameters (``epsilon`` | ``n_clusters`` |
    ``min_cluster_size`` [+ ``allow_single_cluster``]); repeated cuts hit
    the state's LRU and report ``"cached": true``.
``{"op": "labels"}``
    The clustering at the fitted parameters (an EOM recut with defaults).
``{"op": "predict", "points": [[...], ...]}``
    Approximate membership of new points (see
    :func:`repro.serve.predict.approximate_predict`).
``{"op": "update", "insert": [[...], ...], "delete": [i, ...]}``
    Mutate the served point set in place: deletions (current row indices)
    apply first, then insertions append, through the incremental
    :mod:`repro.dynamic` engine — no cold refit.  The resulting state is
    byte-identical to a dynamic fit of the surviving points; the cut cache
    restarts empty and core distances of perturbed neighbourhoods are
    refreshed.  The swap is atomic: reads served concurrently see either
    the old state or the new one, never a partial update.
``{"op": "info"}`` / ``{"op": "stats"}``
    Model card / request counters and cache statistics.

Every response carries ``"ok"``; failures come back as
``{"ok": false, "error": ...}`` instead of taking the server down.  Batches
dispatch onto the persistent :mod:`repro.parallel.pool` worker pool —
read handlers only read the shared state (cut-cache inserts are
lock-guarded), so one FitState serves concurrent requests without copies;
``update`` ops serialize behind a per-engine lock so concurrent updates in
one batch compose instead of overwriting each other.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional

import numpy as np

from repro.core.errors import ReproError
from repro.parallel.pool import parallel_map
from repro.serve.predict import approximate_predict
from repro.serve.state import FitState


class ServingEngine:
    """Answer re-cut / label / predict requests off one fitted state."""

    def __init__(
        self, state: FitState, *, num_threads: Optional[int] = None
    ) -> None:
        self.state = state
        self.num_threads = num_threads
        self.requests_served = 0
        self.requests_failed = 0
        # Updates are read-modify-write on self.state; the lock serializes
        # them so two updates in one concurrent batch cannot both start from
        # the same snapshot and silently drop one another's work.  Readers
        # never take it — they see whichever state reference is current.
        self._update_lock = threading.Lock()

    # -- request handling ----------------------------------------------------

    def handle(self, request: Dict) -> Dict:
        """Answer one request dict; never raises on bad requests."""
        try:
            response = self._dispatch(request)
            response["ok"] = True
        except (
            ReproError,
            AttributeError,
            KeyError,
            TypeError,
            ValueError,
        ) as error:
            self.requests_failed += 1
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}
        self.requests_served += 1
        return response

    def handle_batch(
        self, requests: List[Dict], *, num_threads: Optional[int] = None
    ) -> List[Dict]:
        """Answer a batch concurrently on the shared worker pool.

        Handlers run with inline (single-thread) kernels — the concurrency
        axis is across requests, so one slow predict cannot serialize the
        whole batch behind nested pool submissions.  Responses keep request
        order.
        """
        threads = self.num_threads if num_threads is None else num_threads
        return parallel_map(self.handle, requests, num_threads=threads)

    def _dispatch(self, request: Dict) -> Dict:
        if not isinstance(request, dict):
            raise TypeError("request must be a JSON object")
        op = request.get("op", "recut")
        if op in ("recut", "labels"):
            cut, cached = self.state.recut_with_info(
                epsilon=_maybe(request, "epsilon", float),
                n_clusters=_maybe(request, "n_clusters", int),
                min_cluster_size=_maybe(request, "min_cluster_size", int),
                allow_single_cluster=_maybe(
                    request, "allow_single_cluster", bool
                ),
            )
            return {
                "op": op,
                "kind": cut.kind,
                "cached": cached,
                "num_clusters": cut.num_clusters,
                "num_noise": cut.num_noise,
                "labels": cut.labels.tolist(),
                "probabilities": cut.probabilities.tolist(),
            }
        if op == "predict":
            points = np.asarray(request["points"], dtype=np.float64)
            labels, probabilities = approximate_predict(self.state, points)
            return {
                "op": op,
                "labels": labels.tolist(),
                "probabilities": probabilities.tolist(),
            }
        if op == "update":
            return self._update(request)
        if op == "info":
            state = self.state
            return {
                "op": op,
                "num_points": state.num_points,
                "dimension": state.dimension,
                "min_pts": state.min_pts,
                "min_cluster_size": state.min_cluster_size,
                "allow_single_cluster": state.allow_single_cluster,
                "method": state.method,
                "metric": state.metric.spec(),
                "backend": state.backend.name,
                "points_sha256": state.fingerprint.get("points_sha256"),
            }
        if op == "stats":
            return {
                "op": op,
                "requests_served": self.requests_served,
                "requests_failed": self.requests_failed,
                "cut_cache": self.state.cache_info(),
            }
        raise ValueError(
            f"unknown op {op!r}; expected recut, labels, predict, update, "
            f"info or stats"
        )

    def _update(self, request: Dict) -> Dict:
        # Lazy import: read-only deployments never pay for the dynamic
        # engine, and the circular serve <-> dynamic dependency stays soft.
        from repro.dynamic import delete_batch, insert_batch

        delete = request.get("delete")
        insert = request.get("insert")
        if delete is None and insert is None:
            raise ValueError("update requires at least one of insert, delete")
        with self._update_lock:
            state = self.state
            deleted = 0
            if delete is not None:
                # No dtype coercion: delete_batch rejects non-integer
                # indices, and casting here would silently truncate 0.9 -> 0.
                indices = np.asarray(delete)
                state = delete_batch(
                    state, indices, num_threads=self.num_threads
                )
                deleted = int(indices.size)
            inserted = 0
            if insert is not None:
                batch = np.asarray(insert, dtype=np.float64)
                if batch.ndim == 1:
                    batch = batch.reshape(1, -1)
                if batch.size:
                    state = insert_batch(
                        state, batch, num_threads=self.num_threads
                    )
                    inserted = int(batch.shape[0])
            # Single reference assignment — concurrent readers observe
            # either the old fully-consistent state or the new one.
            self.state = state
        return {
            "op": "update",
            "deleted": deleted,
            "inserted": inserted,
            "num_points": state.num_points,
        }

    # -- stream serving (the CLI loop) ---------------------------------------

    def serve_stream(self, input_stream, output_stream) -> int:
        """Answer JSON-lines requests until EOF; returns requests answered.

        One request object per input line, one response object per output
        line, in order.  Blank lines are skipped; a line that does not parse
        as JSON produces an ``ok: false`` response rather than stopping the
        stream.
        """
        answered = 0
        for line in input_stream:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                response = {"ok": False, "error": f"invalid JSON: {error}"}
                self.requests_failed += 1
            else:
                response = self.handle(request)
            output_stream.write(json.dumps(response) + "\n")
            output_stream.flush()
            answered += 1
        return answered


def _maybe(request: Dict, key: str, convert):
    value = request.get(key)
    return None if value is None else convert(value)
