"""Zero-refit flat clusterings from a fitted state.

A fitted :class:`~repro.serve.state.FitState` already holds everything a new
cut needs: the mutual-reachability MST columns (for DBSCAN* at any
``epsilon``), the SoA dendrogram (for exactly-``k`` single-linkage cuts) and
the columnar condensed tree (for excess-of-mass extraction at any
``min_cluster_size``).  :func:`compute_cut` dispatches between the three —
every path is a scan over preexisting arrays, never a refit — and produces
labels byte-identical to what a cold
:class:`repro.estimators.HDBSCAN`/``fit_predict`` run with the same
parameters would return, because both sides call the very same extraction
primitives on the very same MST/dendrogram.

:func:`cut_key` canonicalizes the parameters into the LRU key the state's
cut cache uses, so semantically identical requests (``epsilon=0.5`` vs
``epsilon=0.50``) share one entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.condensed import (
    condense_dendrogram,
    labels_and_probabilities_from_condensed,
)
from repro.dendrogram.extract import cut_num_clusters, dbscan_star_labels


@dataclass(frozen=True)
class Cut:
    """One flat clustering read off a fitted state.

    ``kind`` is ``"eom"``, ``"epsilon"`` or ``"n_clusters"``; ``params`` is
    the canonical parameter tuple (the LRU key tail).  ``labels`` and
    ``probabilities`` are read-only arrays — cuts are shared through the
    cache across concurrent readers, so nobody may write to them.
    """

    kind: str
    params: Tuple
    labels: np.ndarray
    probabilities: np.ndarray

    @property
    def num_clusters(self) -> int:
        return int(self.labels.max() + 1) if self.labels.size else 0

    @property
    def num_noise(self) -> int:
        return int(np.count_nonzero(self.labels < 0))


def _freeze(array: np.ndarray) -> np.ndarray:
    array = np.asarray(array)
    if array.flags.writeable:
        if not array.flags.owndata:
            array = array.copy()
        array.setflags(write=False)
    return array


def cut_key(
    state,
    *,
    epsilon: Optional[float] = None,
    n_clusters: Optional[int] = None,
    min_cluster_size: Optional[int] = None,
    allow_single_cluster: Optional[bool] = None,
) -> Tuple:
    """Canonical cache key for one set of cut parameters.

    Defaults resolve against the state's fitted parameters before keying, so
    ``recut()`` and ``recut(min_cluster_size=<the fitted value>)`` share one
    cache entry.
    """
    if epsilon is not None and n_clusters is not None:
        raise InvalidParameterError(
            "pass at most one of epsilon and n_clusters to recut"
        )
    if epsilon is not None:
        value = float(epsilon)
        if not np.isfinite(value):
            raise InvalidParameterError(
                f"epsilon must be finite, got {value!r}"
            )
        # -0.0 == 0.0 but hashes into a distinct bytes pattern in some
        # container paths; normalize so both sign variants share one entry.
        value += 0.0
        mcs = (
            state.min_cluster_size
            if min_cluster_size is None
            else int(min_cluster_size)
        )
        if mcs < 1:
            raise InvalidParameterError("min_cluster_size must be >= 1")
        return ("epsilon", value, mcs)
    if n_clusters is not None:
        if min_cluster_size is not None or allow_single_cluster is not None:
            raise InvalidParameterError(
                "n_clusters cuts take no min_cluster_size or "
                "allow_single_cluster"
            )
        k = int(n_clusters)
        if k < 1:
            raise InvalidParameterError("n_clusters must be >= 1")
        return ("n_clusters", k)
    mcs = (
        state.min_cluster_size
        if min_cluster_size is None
        else int(min_cluster_size)
    )
    if mcs < 1:
        raise InvalidParameterError("min_cluster_size must be >= 1")
    asc = (
        state.allow_single_cluster
        if allow_single_cluster is None
        else bool(allow_single_cluster)
    )
    return ("eom", mcs, asc)


def compute_cut(
    state,
    *,
    epsilon: Optional[float] = None,
    n_clusters: Optional[int] = None,
    min_cluster_size: Optional[int] = None,
    allow_single_cluster: Optional[bool] = None,
) -> Cut:
    """One cold cut over the fitted arrays (no caching, no refitting).

    * ``epsilon=`` — the DBSCAN* cut at that density level: byte-identical
      to ``HDBSCAN(epsilon=..., min_cluster_size=...).fit_predict`` on the
      fitted points.  ``min_cluster_size`` defaults to the fitted value.
    * ``n_clusters=`` — exactly-``k`` single-linkage clusters by splitting
      the ``k - 1`` highest dendrogram nodes.
    * neither — excess-of-mass extraction; ``min_cluster_size`` /
      ``allow_single_cluster`` default to the fitted values, and the fitted
      ``min_cluster_size`` reuses the cached condensed tree (any other value
      re-condenses the dendrogram, still refit-free).
    """
    key = cut_key(
        state,
        epsilon=epsilon,
        n_clusters=n_clusters,
        min_cluster_size=min_cluster_size,
        allow_single_cluster=allow_single_cluster,
    )
    kind, params = key[0], key[1:]
    if kind == "epsilon":
        eps, mcs = params
        labels = dbscan_star_labels(
            (state.mst_u, state.mst_v, state.mst_w),
            state.core_distances,
            eps,
            min_cluster_size=mcs,
        )
        probabilities = (labels >= 0).astype(np.float64)
    elif kind == "n_clusters":
        (k,) = params
        if k > state.num_points:
            raise InvalidParameterError(
                f"n_clusters must be in [1, {state.num_points}], got {k}"
            )
        labels = cut_num_clusters(state.dendrogram, k)
        probabilities = (labels >= 0).astype(np.float64)
    else:
        mcs, asc = params
        condensed = (
            state.condensed
            if mcs == state.min_cluster_size
            else condense_dendrogram(state.dendrogram, mcs)
        )
        labels, probabilities = labels_and_probabilities_from_condensed(
            condensed, allow_single_cluster=asc
        )
    return Cut(
        kind=kind,
        params=params,
        labels=_freeze(labels),
        probabilities=_freeze(probabilities),
    )
