"""Fit-once serving layer: zero-refit reads over an immutable fit-state.

The expensive artifact of this engine is the fit (core distances, the
mutual-reachability MST, the dendrogram and its condensed tree); everything
users actually query is derivable from those arrays in micro- to
milliseconds.  This package splits the two apart:

* :func:`fit_state` runs one fit and freezes its artifacts into an immutable
  :class:`FitState` (all structure-of-arrays storage);
* :meth:`FitState.recut` / :func:`compute_cut` answer ``epsilon`` /
  ``n_clusters`` / ``min_cluster_size`` re-cuts off the fitted arrays with
  an LRU for repeated cuts;
* :func:`approximate_predict` drops new points into the fitted hierarchy via
  batched k-NN against the fitted tree;
* :meth:`FitState.save` / :func:`load_state` persist the whole state to one
  checksummed ``.npz`` guarded by the PR-8 run fingerprint
  (:class:`~repro.core.errors.FitStateError` on corruption or mismatch);
* :class:`ServingEngine` wraps it all into the long-lived request loop the
  CLI ``serve`` mode runs.
"""

from repro.serve.predict import PredictTables, approximate_predict
from repro.serve.recut import Cut, compute_cut, cut_key
from repro.serve.server import ServingEngine
from repro.serve.state import (
    DEFAULT_CUT_CACHE,
    SERVING_LEAF_SIZE,
    STATE_FORMAT,
    FitState,
    fit_state,
    load_state,
)

__all__ = [
    "Cut",
    "DEFAULT_CUT_CACHE",
    "FitState",
    "PredictTables",
    "SERVING_LEAF_SIZE",
    "STATE_FORMAT",
    "ServingEngine",
    "approximate_predict",
    "compute_cut",
    "cut_key",
    "fit_state",
    "load_state",
]
