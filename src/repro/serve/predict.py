"""Approximate cluster membership for new points against a fitted state.

Mirrors the semantics of the reference ``approximate_predict`` (hdbscan
library / sklearn's HDBSCAN prediction data): a new point is dropped into
the fitted hierarchy via k-NN against the fitted tree, *without* refitting —
the fitted clustering itself never changes.

For each query ``q``:

* its core distance ``cd(q)`` is the distance to its ``min_pts``-th nearest
  fitted point (for a training point this reproduces the fitted core
  distance exactly, because the fitted definition counts the point itself);
* its nearest fitted neighbour ``p`` supplies the candidate cluster: the
  mutual-reachability radius is ``r = max(d(q, p), cd(q), cd(p))`` and the
  query joins the hierarchy at density ``lambda_q = 1 / r``;
* if ``p`` is noise in the fitted clustering, ``q`` is noise.  Otherwise
  ``q`` inherits ``p``'s cluster if ``lambda_q`` reaches the cluster's birth
  density (it merely *visits* the region if it would fall out before the
  cluster even forms — that is noise), with membership strength
  ``min(lambda_q / lambda_max(cluster), 1)`` exactly like the fitted
  probabilities.

Training points always pass the birth gate: ``lambda_q = 1 / cd(q)`` is at
least the density at which the point left its cluster, which is at least the
cluster's birth density.  So predicting the training set reproduces the
fitted labels — the property the serving benchmark gates with ARI >= 0.95.
Neighbour ties (exact-duplicate query points included) are broken toward the
lowest fitted index, so predictions are byte-deterministic across thread
counts and backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.points import as_points
from repro.dendrogram.condensed import extract_eom_clusters, point_fallout_lambdas
from repro.spatial.knn import knn


@dataclass(frozen=True)
class PredictTables:
    """Per-cluster tables ``approximate_predict`` gates against.

    ``labels`` is the fitted EOM labeling (at the state's fitted
    parameters); ``birth_lambda`` / ``max_lambda`` are indexed by flat label
    and hold each selected cluster's birth density and maximum finite member
    fallout density.
    """

    labels: np.ndarray
    birth_lambda: np.ndarray
    max_lambda: np.ndarray


def build_predict_tables(state) -> PredictTables:
    """Derive the per-label gates from the state's condensed tree.

    ``extract_eom_clusters`` assigns flat label ``i`` to the ``i``-th
    selected condensed cluster in ascending cluster-id order, so the
    stability dict's sorted keys recover the label -> condensed-cluster
    mapping exactly.
    """
    labels, stabilities = extract_eom_clusters(
        state.condensed, allow_single_cluster=state.allow_single_cluster
    )
    chosen = np.array(sorted(stabilities), dtype=np.int64)
    births = state.condensed.births()
    birth_lambda = (
        births[chosen] if chosen.size else np.empty(0, dtype=np.float64)
    )
    point_lambda = point_fallout_lambdas(state.condensed)
    max_lambda = np.zeros(chosen.size, dtype=np.float64)
    for label in range(chosen.size):
        member_lambda = point_lambda[labels == label]
        finite = member_lambda[np.isfinite(member_lambda)]
        max_lambda[label] = float(finite.max()) if finite.size else 0.0
    labels = labels.copy()
    labels.setflags(write=False)
    birth_lambda.setflags(write=False)
    max_lambda.setflags(write=False)
    return PredictTables(
        labels=labels, birth_lambda=birth_lambda, max_lambda=max_lambda
    )


def approximate_predict(
    state,
    points,
    *,
    num_threads: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Labels and membership strengths of new points under a fitted state.

    Returns ``(labels, probabilities)`` of shape ``(len(points),)``: the
    fitted cluster each query would join (``-1`` for noise) and its
    membership strength in ``[0, 1]``.  Queries run as batched k-NN blocks
    against the fitted tree (sharded onto the worker pool when
    ``num_threads > 1``); the fitted state is never modified.
    """
    raw = np.asarray(points, dtype=np.float64)
    if raw.ndim == 2 and raw.shape[0] == 0:
        # An empty batch is a legitimate serving request; as_points would
        # reject it (fits need at least one point, predictions don't).
        queries = raw
    else:
        queries = as_points(points)
    if queries.shape[1] != state.dimension:
        raise InvalidParameterError(
            f"query dimensionality {queries.shape[1]} does not match the "
            f"fitted dimensionality {state.dimension}"
        )
    n_queries = queries.shape[0]
    labels = np.full(n_queries, -1, dtype=np.int64)
    probabilities = np.zeros(n_queries, dtype=np.float64)
    if n_queries == 0 or state.num_points == 0:
        # No fitted points: every query is noise.  Checked before touching
        # the predict tables — an empty state (reachable through the dynamic
        # delete path) has no condensed tree to build them from.
        return labels, probabilities
    tables = state.predict_tables()

    k = min(int(state.min_pts), state.num_points)
    neighbor_idx, neighbor_dist = knn(
        state.tree, k, queries=queries, num_threads=num_threads
    )
    # Equal-distance neighbours (exact duplicates in particular) come back
    # in traversal order, which varies with thread count and backend; break
    # ties toward the lowest fitted index so the prediction is a pure
    # function of the fitted state and the query.
    tie_break = np.lexsort((neighbor_idx, neighbor_dist), axis=-1)
    neighbor_idx = np.take_along_axis(neighbor_idx, tie_break, axis=-1)
    neighbor_dist = np.take_along_axis(neighbor_dist, tie_break, axis=-1)
    nearest = neighbor_idx[:, 0]
    nearest_dist = neighbor_dist[:, 0]
    query_core = neighbor_dist[:, k - 1]
    radius = np.maximum(
        np.maximum(nearest_dist, query_core), state.core_distances[nearest]
    )
    with np.errstate(divide="ignore"):
        lambda_q = np.where(radius > 0.0, 1.0 / np.where(radius > 0.0, radius, 1.0), np.inf)

    candidate = tables.labels[nearest]
    clustered = candidate >= 0
    if clustered.any():
        birth = tables.birth_lambda[candidate[clustered]]
        admitted = lambda_q[clustered] >= birth
        keep = np.flatnonzero(clustered)[admitted]
        labels[keep] = candidate[keep]
        max_lambda = tables.max_lambda[candidate[keep]]
        strengths = np.ones(keep.size, dtype=np.float64)
        positive = max_lambda > 0.0
        strengths[positive] = np.minimum(
            lambda_q[keep][positive] / max_lambda[positive], 1.0
        )
        probabilities[keep] = strengths
    return labels, probabilities
