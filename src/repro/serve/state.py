"""Immutable fit-state: the expensive artifacts of one fit, split out.

The paper's cost model is lopsided: computing the EMST / mutual-reachability
MST and its dendrogram is the expensive part, while everything users actually
query — labels at another ``epsilon``, a different cluster count, membership
of a new point — is derivable from those artifacts in micro- to milliseconds.
:class:`FitState` is that split made explicit.  It freezes the products of
one :func:`repro.hdbscan.api.hdbscan` run into read-only structure-of-arrays
storage:

* the validated point set and its streamed SHA-256 (the PR-8 fingerprint);
* the built :class:`~repro.spatial.flat.FlatKDTree` arrays, re-used for
  ``approximate_predict`` k-NN without rebuilding;
* per-point core distances and the mutual-reachability MST columns;
* the SoA :class:`~repro.dendrogram.structure.Dendrogram` and the columnar
  :class:`~repro.dendrogram.condensed.CondensedTree` at the fitted
  ``min_cluster_size``.

Every read-side operation (:meth:`FitState.recut`,
:func:`repro.serve.predict.approximate_predict`) runs off these arrays with
zero refitting; repeated cuts hit a small thread-safe LRU keyed on the cut
parameters, so a warm re-cut is O(1).  :meth:`FitState.save` /
:func:`load_state` persist everything to a single ``.npz`` with per-array
SHA-256 checksums and the run fingerprint, and loading refuses corrupt or
incompatible files with :class:`~repro.core.errors.FitStateError` — a stale
state must never silently serve wrong answers.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.backend import BackendLike, resolve_backend
from repro.core.budget import BudgetLike
from repro.core.errors import FitStateError, InvalidParameterError
from repro.core.metric import MetricLike, resolve_metric
from repro.core.points import as_points
from repro.dendrogram.condensed import CondensedTree, condense_dendrogram
from repro.dendrogram.structure import Dendrogram
from repro.hdbscan.api import hdbscan
from repro.resilience.checkpoint import (
    ENGINE_VERSION,
    build_fingerprint,
    fingerprint_points,
)
from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDTree

#: Layout version of the ``.npz`` state file (bumped on incompatible change).
STATE_FORMAT = 1

#: Default leaf size of the serving tree.  The fit builds WSPD trees with
#: tiny leaves; ``approximate_predict`` is a plain k-NN workload, which is
#: faster with slightly larger leaves.
SERVING_LEAF_SIZE = 8

#: Default capacity of the per-state cut cache.
DEFAULT_CUT_CACHE = 128

#: Fingerprint fields that must match for a loaded state to be usable.
#: ``num_threads`` and ``memory_budget`` are deliberately absent: the engine
#: is byte-identical across both, so a state fitted on an 8-thread box loads
#: fine on a 2-thread one.
_COMPARED_FIELDS = (
    "engine",
    "algorithm",
    "method",
    "metric",
    "backend",
    "dtype",
    "shape",
    "points_sha256",
    "min_pts",
    "min_cluster_size",
    "allow_single_cluster",
    "leaf_size",
)


class FitState:
    """Read-only artifacts of one HDBSCAN* fit plus the zero-refit read side.

    Construct via :func:`fit_state` (run a fit) or :func:`load_state`
    (restore a saved one); the constructor itself only wires already-built
    parts together.  All array attributes are treated as immutable — the
    read side never writes to them, which is what makes one state safe to
    share across the concurrent request handlers of
    :class:`repro.serve.server.ServingEngine`.
    """

    def __init__(
        self,
        *,
        points: np.ndarray,
        tree: KDTree,
        core_distances: np.ndarray,
        mst_u: np.ndarray,
        mst_v: np.ndarray,
        mst_w: np.ndarray,
        dendrogram: Dendrogram,
        condensed: CondensedTree,
        min_pts: int,
        min_cluster_size: int,
        allow_single_cluster: bool,
        method: str,
        fingerprint: Dict[str, object],
        cut_cache_size: int = DEFAULT_CUT_CACHE,
        metric: MetricLike = None,
        backend: BackendLike = None,
    ) -> None:
        self.points = points
        self.tree = tree
        self.core_distances = core_distances
        self.mst_u = mst_u
        self.mst_v = mst_v
        self.mst_w = mst_w
        self.dendrogram = dendrogram
        self.condensed = condensed
        self.min_pts = int(min_pts)
        self.min_cluster_size = int(min_cluster_size)
        self.allow_single_cluster = bool(allow_single_cluster)
        self.method = str(method)
        self.fingerprint = dict(fingerprint)
        # The empty state (n == 0, produced by the dynamic engine when every
        # point has been deleted) has no tree to borrow the resolved metric
        # and backend from, so they are carried explicitly.
        self._metric = resolve_metric(metric) if tree is None else None
        self._backend = resolve_backend(backend) if tree is None else None
        self._lock = threading.Lock()
        self._cuts: "OrderedDict[tuple, object]" = OrderedDict()
        self._cut_capacity = max(int(cut_cache_size), 1)
        self._cut_hits = 0
        self._cut_misses = 0
        self._predict_tables = None

    # -- basic accessors -----------------------------------------------------

    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    @property
    def metric(self):
        return self.tree.metric if self.tree is not None else self._metric

    @property
    def backend(self):
        return self.tree.backend if self.tree is not None else self._backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FitState(n={self.num_points}, d={self.dimension}, "
            f"min_pts={self.min_pts}, min_cluster_size={self.min_cluster_size}, "
            f"method={self.method!r}, metric={self.metric.spec()!r})"
        )

    # -- zero-refit cuts -----------------------------------------------------

    def recut(
        self,
        *,
        epsilon: Optional[float] = None,
        n_clusters: Optional[int] = None,
        min_cluster_size: Optional[int] = None,
        allow_single_cluster: Optional[bool] = None,
    ):
        """Flat labels for new cut parameters without refitting.

        See :func:`repro.serve.recut.compute_cut` for the parameter
        semantics.  Results are cached in a thread-safe LRU keyed on the
        canonicalized parameters, so a repeated cut is O(1).
        """
        cut, _ = self.recut_with_info(
            epsilon=epsilon,
            n_clusters=n_clusters,
            min_cluster_size=min_cluster_size,
            allow_single_cluster=allow_single_cluster,
        )
        return cut

    def recut_with_info(
        self,
        *,
        epsilon: Optional[float] = None,
        n_clusters: Optional[int] = None,
        min_cluster_size: Optional[int] = None,
        allow_single_cluster: Optional[bool] = None,
    ):
        """Like :meth:`recut` but also reports whether the LRU answered.

        Returns ``(cut, cached)``; the serving engine surfaces ``cached`` in
        its responses so clients (and the benchmark) can tell a warm cut from
        a cold one.
        """
        from repro.serve.recut import compute_cut, cut_key

        key = cut_key(
            self,
            epsilon=epsilon,
            n_clusters=n_clusters,
            min_cluster_size=min_cluster_size,
            allow_single_cluster=allow_single_cluster,
        )
        with self._lock:
            cut = self._cuts.get(key)
            if cut is not None:
                self._cuts.move_to_end(key)
                self._cut_hits += 1
                return cut, True
        # Compute outside the lock: cuts are deterministic, so two threads
        # racing on the same key just do the work twice and store equal
        # results — better than serializing every cold cut.
        cut = compute_cut(
            self,
            epsilon=epsilon,
            n_clusters=n_clusters,
            min_cluster_size=min_cluster_size,
            allow_single_cluster=allow_single_cluster,
        )
        with self._lock:
            self._cut_misses += 1
            self._cuts[key] = cut
            self._cuts.move_to_end(key)
            while len(self._cuts) > self._cut_capacity:
                self._cuts.popitem(last=False)
        return cut, False

    def cache_info(self) -> Dict[str, int]:
        """Hits / misses / current size of the cut LRU."""
        with self._lock:
            return {
                "hits": self._cut_hits,
                "misses": self._cut_misses,
                "size": len(self._cuts),
                "capacity": self._cut_capacity,
            }

    # -- predict support -----------------------------------------------------

    def predict_tables(self):
        """Lazily built per-cluster tables for ``approximate_predict``."""
        from repro.serve.predict import build_predict_tables

        with self._lock:
            tables = self._predict_tables
        if tables is not None:
            return tables
        tables = build_predict_tables(self)
        with self._lock:
            if self._predict_tables is None:
                self._predict_tables = tables
            tables = self._predict_tables
        return tables

    # -- persistence ---------------------------------------------------------

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Every array of the state under a flat, prefixed naming scheme."""
        arrays: Dict[str, np.ndarray] = {
            "points": self.points,
            "core_distances": np.asarray(self.core_distances, dtype=np.float64),
            "mst_u": np.asarray(self.mst_u, dtype=np.int64),
            "mst_v": np.asarray(self.mst_v, dtype=np.int64),
            "mst_w": np.asarray(self.mst_w, dtype=np.float64),
        }
        if self.dendrogram is not None:
            for name, value in self.dendrogram.state_arrays().items():
                arrays[f"dendrogram_{name}"] = value
        if self.condensed is not None:
            for name, value in self.condensed.state_arrays().items():
                arrays[f"condensed_{name}"] = value
        if self.tree is not None:
            for name, value in self.tree.flat.state_arrays().items():
                arrays[f"tree_{name}"] = value
        return arrays

    def save(self, path) -> Path:
        """Persist the state to one checksummed ``.npz`` file, atomically.

        The file carries every array of :meth:`state_arrays`, a JSON metadata
        record with the run fingerprint (including the engine version) and a
        SHA-256 per array.  The write goes to a temporary file that is
        fsynced and renamed into place, so a reader can never observe a
        half-written state under the final name.
        """
        path = Path(path)
        if self.tree is None:
            raise FitStateError(
                "an empty state (0 points) cannot be saved; insert points "
                "first"
            )
        arrays = self.state_arrays()
        meta = {
            "format": STATE_FORMAT,
            "fingerprint": self.fingerprint,
            "checksums": {
                name: fingerprint_points(value) for name, value in arrays.items()
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, __meta__=json.dumps(meta, sort_keys=True), **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


def _state_fingerprint(
    data: np.ndarray,
    *,
    method: str,
    metric: MetricLike,
    backend: BackendLike,
    memory_budget: BudgetLike,
    num_threads: Optional[int],
    min_pts: int,
    min_cluster_size: int,
    allow_single_cluster: bool,
    leaf_size: int,
) -> Dict[str, object]:
    return build_fingerprint(
        data,
        algorithm="serve",
        method=method,
        metric=metric,
        backend=backend,
        memory_budget=memory_budget,
        num_threads=num_threads,
        engine=ENGINE_VERSION,
        min_pts=int(min_pts),
        min_cluster_size=int(min_cluster_size),
        allow_single_cluster=bool(allow_single_cluster),
        leaf_size=int(leaf_size),
    )


def fit_state(
    points,
    *,
    min_pts: int = 10,
    min_cluster_size: int = 5,
    allow_single_cluster: bool = False,
    method: str = "memogfk",
    metric: MetricLike = None,
    backend: BackendLike = None,
    num_threads: Optional[int] = None,
    memory_budget: BudgetLike = None,
    checkpoint_dir=None,
    resume: bool = True,
    max_retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    leaf_size: int = SERVING_LEAF_SIZE,
    cut_cache_size: int = DEFAULT_CUT_CACHE,
    **method_kwargs,
) -> FitState:
    """Run one HDBSCAN* fit and freeze its artifacts into a :class:`FitState`.

    This is the expensive call; everything afterwards
    (:meth:`FitState.recut`, ``approximate_predict``, save/load) is read-only
    and refit-free.  The fit itself goes through the full
    :func:`repro.hdbscan.api.hdbscan` pipeline, so every engine knob
    (``metric``/``backend``/``memory_budget``/checkpointing/fault policy)
    behaves exactly as it does there.  Requires at least two points — a
    serving state for a single point has no hierarchy to cut.
    """
    data = as_points(points, min_points=2)
    result = hdbscan(
        data,
        min_pts=int(min_pts),
        method=method,
        metric=metric,
        backend=backend,
        memory_budget=memory_budget,
        num_threads=num_threads,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        max_retries=max_retries,
        task_timeout=task_timeout,
        **method_kwargs,
    )
    if int(min_cluster_size) < 1:
        raise InvalidParameterError("min_cluster_size must be >= 1")
    condensed = condense_dendrogram(result.dendrogram, int(min_cluster_size))
    # The serving tree is rebuilt at a k-NN-friendly leaf size and annotated
    # with the fitted core distances, so approximate_predict queries prune
    # with the same bounds the fit used.
    tree = KDTree(data, leaf_size=int(leaf_size), metric=metric, backend=backend)
    tree.annotate_core_distances(result.core_distances)
    mst_u, mst_v, mst_w = result.mst.edges.as_arrays()
    return FitState(
        points=data,
        tree=tree,
        core_distances=np.asarray(result.core_distances, dtype=np.float64),
        mst_u=mst_u,
        mst_v=mst_v,
        mst_w=mst_w,
        dendrogram=result.dendrogram,
        condensed=condensed,
        min_pts=int(min_pts),
        min_cluster_size=int(min_cluster_size),
        allow_single_cluster=bool(allow_single_cluster),
        method=str(method),
        fingerprint=_state_fingerprint(
            data,
            method=method,
            metric=metric,
            backend=backend,
            memory_budget=memory_budget,
            num_threads=num_threads,
            min_pts=min_pts,
            min_cluster_size=min_cluster_size,
            allow_single_cluster=allow_single_cluster,
            leaf_size=leaf_size,
        ),
        cut_cache_size=cut_cache_size,
    )


def _corrupt(path, detail: str) -> FitStateError:
    return FitStateError(
        f"fit-state file {os.fspath(path)!r} is corrupt or not a fit-state "
        f"file: {detail}; refit and re-save it"
    )


def _load_arrays(path) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    try:
        with np.load(path, allow_pickle=False) as data:
            if "__meta__" not in data.files:
                raise _corrupt(path, "missing the __meta__ record")
            try:
                meta = json.loads(str(data["__meta__"][()]))
            except (json.JSONDecodeError, ValueError) as error:
                raise _corrupt(path, f"unreadable metadata ({error})") from error
            arrays = {
                name: data[name] for name in data.files if name != "__meta__"
            }
    except FitStateError:
        raise
    except (OSError, zipfile.BadZipFile, ValueError, EOFError) as error:
        raise _corrupt(path, str(error)) from error
    if not isinstance(meta, dict):
        raise _corrupt(path, "metadata is not a JSON object")
    return meta, arrays


def load_state(
    path,
    *,
    metric: MetricLike = None,
    backend: BackendLike = None,
    cut_cache_size: int = DEFAULT_CUT_CACHE,
) -> FitState:
    """Restore a :class:`FitState` saved by :meth:`FitState.save`.

    Verification happens before anything is trusted: the metadata must parse
    and carry a compatible format and engine version, every array must match
    its recorded SHA-256, and the point set must re-hash to the fingerprint's
    ``points_sha256``.  Passing ``metric`` / ``backend`` asserts that the
    saved state was fitted under them — a mismatch raises
    :class:`~repro.core.errors.FitStateError` rather than serving answers
    computed under different geometry.  (The CLI maps this error to exit
    code 2.)
    """
    meta, arrays = _load_arrays(path)
    if meta.get("format") != STATE_FORMAT:
        raise FitStateError(
            f"fit-state file {os.fspath(path)!r} has layout version "
            f"{meta.get('format')!r}; this engine reads version {STATE_FORMAT}"
        )
    fingerprint = meta.get("fingerprint")
    checksums = meta.get("checksums")
    if not isinstance(fingerprint, dict) or not isinstance(checksums, dict):
        raise _corrupt(path, "metadata is missing the fingerprint or checksums")
    if fingerprint.get("engine") != ENGINE_VERSION:
        raise FitStateError(
            f"fit-state file {os.fspath(path)!r} was written by engine "
            f"{fingerprint.get('engine')!r} but this is {ENGINE_VERSION!r}; "
            "refit and re-save it"
        )

    missing = sorted(set(checksums) - set(arrays))
    if missing:
        raise _corrupt(path, f"missing arrays {missing}")
    for name in sorted(checksums):
        actual = fingerprint_points(arrays[name])
        if actual != checksums[name]:
            raise _corrupt(path, f"array {name!r} fails its checksum")

    if metric is not None:
        requested = resolve_metric(metric).spec()
        if requested != fingerprint.get("metric"):
            raise FitStateError(
                f"fit-state was saved under metric "
                f"{fingerprint.get('metric')!r} but {requested!r} was "
                "requested; refit under the requested metric instead"
            )
    if backend is not None:
        requested_backend = resolve_backend(backend).name
        if requested_backend != fingerprint.get("backend"):
            raise FitStateError(
                f"fit-state was saved under backend "
                f"{fingerprint.get('backend')!r} but {requested_backend!r} "
                "was requested; refit under the requested backend instead"
            )

    try:
        saved_metric = resolve_metric(fingerprint.get("metric"))
        saved_backend = resolve_backend(fingerprint.get("backend"))
    except Exception as error:
        raise FitStateError(
            f"fit-state file {os.fspath(path)!r} needs metric "
            f"{fingerprint.get('metric')!r} and backend "
            f"{fingerprint.get('backend')!r}, which this installation "
            f"cannot provide: {error}"
        ) from error

    try:
        points = np.ascontiguousarray(arrays["points"], dtype=np.float64)
        core_distances = np.asarray(arrays["core_distances"], dtype=np.float64)
        leaf_size = int(fingerprint["leaf_size"])
        min_pts = int(fingerprint["min_pts"])
        min_cluster_size = int(fingerprint["min_cluster_size"])
        allow_single_cluster = bool(fingerprint["allow_single_cluster"])
        dendrogram = Dendrogram.from_state_arrays(
            {
                name[len("dendrogram_"):]: value
                for name, value in arrays.items()
                if name.startswith("dendrogram_")
            }
        )
        condensed = CondensedTree.from_state_arrays(
            {
                name[len("condensed_"):]: value
                for name, value in arrays.items()
                if name.startswith("condensed_")
            }
        )
        flat = FlatKDTree.from_state_arrays(
            points,
            {
                name[len("tree_"):]: value
                for name, value in arrays.items()
                if name.startswith("tree_")
            },
            leaf_size=leaf_size,
            metric=saved_metric,
            backend=saved_backend,
        )
    except (KeyError, ValueError, TypeError, IndexError) as error:
        raise _corrupt(path, f"state arrays do not reconstruct ({error})") from error

    if fingerprint_points(points) != fingerprint.get("points_sha256"):
        raise _corrupt(path, "point set does not match the fingerprint hash")

    tree = KDTree.from_flat(flat)
    tree.annotate_core_distances(core_distances)
    return FitState(
        points=points,
        tree=tree,
        core_distances=core_distances,
        mst_u=np.asarray(arrays["mst_u"], dtype=np.int64),
        mst_v=np.asarray(arrays["mst_v"], dtype=np.int64),
        mst_w=np.asarray(arrays["mst_w"], dtype=np.float64),
        dendrogram=dendrogram,
        condensed=condensed,
        min_pts=min_pts,
        min_cluster_size=min_cluster_size,
        allow_single_cluster=allow_single_cluster,
        method=str(fingerprint.get("method", "memogfk")),
        fingerprint=fingerprint,
        cut_cache_size=cut_cache_size,
    )
