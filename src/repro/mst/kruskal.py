"""Kruskal's minimum-spanning-tree algorithm (plain and batched).

``kruskal_batch`` is the PARALLEL_KRUSKAL subroutine of Algorithms 2 and 3:
it receives one batch of edges whose weights are no smaller than those of any
previously processed batch, sorts the batch, and unions across a *shared*
union-find structure, appending accepted edges to a shared output list.
``kruskal`` is the classic single-shot version used by the naive EMST, the
Delaunay EMST, and various baselines.

The batch path is array-native: the batch's weight array is argsorted once
(stable, so ties keep their input order exactly like the previous per-tuple
``list.sort``), the union sweep runs over the sorted index arrays via
:meth:`repro.parallel.unionfind.UnionFind.union_many`, and the accepted edges
are appended to the output with one ``extend_arrays`` call — no per-edge tuple
unpacking or Python sort keys anywhere.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.mst.edges import EdgeList, coerce_edge_arrays
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind

EdgeBatch = Union[
    "EdgeList", Tuple[np.ndarray, np.ndarray, np.ndarray], Iterable[Tuple[int, int, float]]
]


def kruskal_batch_arrays(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    output: EdgeList,
    union_find: UnionFind,
) -> int:
    """Process one batch of edges given as parallel arrays.

    Returns the number of edges accepted into ``output``.  The caller is
    responsible for only passing batches in non-decreasing weight order across
    calls (GFK/MemoGFK guarantee this by construction).
    """
    m = int(u.shape[0])
    if m == 0:
        return 0
    tracker = current_tracker()
    tracker.add(m * max(math.log2(m), 1.0), max(math.log2(m), 1.0), phase="kruskal")
    order = np.argsort(w, kind="stable")
    su = u[order]
    sv = v[order]
    accepted = union_find.union_many(su, sv)
    count = int(np.count_nonzero(accepted))
    if count:
        output.extend_arrays(su[accepted], sv[accepted], w[order][accepted])
    return count


def kruskal_batch(
    edges: EdgeBatch,
    output: EdgeList,
    union_find: UnionFind,
) -> int:
    """Process one batch of edges with a shared union-find.

    ``edges`` may be an :class:`EdgeList`, a ``(u, v, w)`` tuple of parallel
    arrays, or any iterable of ``(u, v, weight)`` tuples; see
    :func:`kruskal_batch_arrays` for the batching contract.
    """
    u, v, w = coerce_edge_arrays(edges)
    return kruskal_batch_arrays(u, v, w, output, union_find)


def kruskal(
    edges: EdgeBatch,
    num_vertices: int,
    *,
    union_find: Optional[UnionFind] = None,
) -> EdgeList:
    """Minimum spanning forest of an explicit edge list.

    Returns the accepted edges (``num_vertices - 1`` of them when the input
    graph is connected).
    """
    union_find = union_find if union_find is not None else UnionFind(num_vertices)
    output = EdgeList()
    kruskal_batch(edges, output, union_find)
    return output
