"""Kruskal's minimum-spanning-tree algorithm (plain and batched).

``kruskal_batch`` is the PARALLEL_KRUSKAL subroutine of Algorithms 2 and 3:
it receives one batch of edges whose weights are no smaller than those of any
previously processed batch, sorts the batch, and unions across a *shared*
union-find structure, appending accepted edges to a shared output list.
``kruskal`` is the classic single-shot version used by the naive EMST, the
Delaunay EMST, and various baselines.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.mst.edges import EdgeList
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind


def kruskal_batch(
    edges: Iterable[Tuple[int, int, float]],
    output: EdgeList,
    union_find: UnionFind,
) -> int:
    """Process one batch of edges with a shared union-find.

    Returns the number of edges accepted into ``output``.  The caller is
    responsible for only passing batches in non-decreasing weight order across
    calls (GFK/MemoGFK guarantee this by construction).
    """
    batch = list(edges)
    m = len(batch)
    if m == 0:
        return 0
    tracker = current_tracker()
    tracker.add(m * max(math.log2(m), 1.0), max(math.log2(m), 1.0), phase="kruskal")
    batch.sort(key=lambda edge: edge[2])
    accepted = 0
    for u, v, weight in batch:
        if union_find.union(int(u), int(v)):
            output.append(int(u), int(v), float(weight))
            accepted += 1
    return accepted


def kruskal(
    edges: Iterable[Tuple[int, int, float]],
    num_vertices: int,
    *,
    union_find: Optional[UnionFind] = None,
) -> EdgeList:
    """Minimum spanning forest of an explicit edge list.

    Returns the accepted edges (``num_vertices - 1`` of them when the input
    graph is connected).
    """
    union_find = union_find if union_find is not None else UnionFind(num_vertices)
    output = EdgeList()
    kruskal_batch(edges, output, union_find)
    return output
