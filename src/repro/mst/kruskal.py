"""Kruskal's minimum-spanning-tree algorithm (plain and batched).

``kruskal_batch`` is the PARALLEL_KRUSKAL subroutine of Algorithms 2 and 3:
it receives one batch of edges whose weights are no smaller than those of any
previously processed batch, sorts the batch, and unions across a *shared*
union-find structure, appending accepted edges to a shared output list.
``kruskal`` is the classic single-shot version used by the naive EMST, the
Delaunay EMST, and various baselines.

The batch path is array-native: the batch's weight array is argsorted once
(stable, so ties keep their input order exactly like the previous per-tuple
``list.sort``), the union sweep runs over the sorted index arrays via
:meth:`repro.parallel.unionfind.UnionFind.union_many`, and the accepted edges
are appended to the output with one ``extend_arrays`` call — no per-edge tuple
unpacking or Python sort keys anywhere.

With ``num_threads > 1`` the argsort itself runs as a parallel chunked merge
sort (:func:`parallel_argsort`): fixed contiguous chunks are stably argsorted
on the worker pool and pairwise-merged with vectorized ``searchsorted``
passes.  Because chunks cover contiguous index ranges and merges break weight
ties in favour of the left (lower-index) run, the resulting permutation is
*exactly* ``np.argsort(w, kind="stable")`` — the threaded Kruskal accepts the
same edges in the same order as the sequential one.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.budget import MemoryBudget, current_memory_budget
from repro.mst.edges import EdgeList, coerce_edge_arrays
from repro.parallel.pool import parallel_map, resolve_num_threads, shard_ranges
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind

#: Rows per sort chunk when no memory budget is active; fixed (never derived
#: from the thread count) so the chunk boundaries — and therefore the merge
#: tree — are deterministic.  A bounded budget shrinks the chunk to its tile
#: share instead, which is equally safe: the chunked merge sort equals
#: ``np.argsort(..., kind="stable")`` at *any* chunk size.
_SORT_CHUNK = 1 << 15

#: Live bytes per row of one sort chunk: the gathered weight slice (8), the
#: chunk's argsort permutation (8) and the merge round's staging copies (16).
_SORT_BYTES_PER_ROW = 32


def _sort_chunk_rows(budget: MemoryBudget, workers: int) -> int:
    """Rows per sort chunk (the historical ``_SORT_CHUNK`` when unbudgeted)."""
    return budget.tile_rows(
        _SORT_BYTES_PER_ROW,
        default_bytes=_SORT_CHUNK * _SORT_BYTES_PER_ROW,
        minimum=1024,
        parts=workers,
        component="sort",
    )


def _merge_runs(
    weights: np.ndarray, left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Stably merge two sorted index runs of one weight array.

    ``left`` must hold strictly smaller original indices than ``right`` (true
    for contiguous chunks merged in order), so on weight ties every element of
    ``left`` precedes every tied element of ``right`` — the stable-sort rule.
    """
    w_left = weights[left]
    w_right = weights[right]
    # Position of each right element: its rank within its own run plus the
    # number of left elements placed before it (ties included, hence 'right').
    pos_right = np.searchsorted(w_left, w_right, side="right")
    pos_right += np.arange(right.size, dtype=np.int64)
    merged = np.empty(left.size + right.size, dtype=np.int64)
    left_slots = np.ones(merged.size, dtype=bool)
    left_slots[pos_right] = False
    merged[pos_right] = right
    merged[left_slots] = left
    return merged


def parallel_argsort(
    weights: np.ndarray, *, num_threads: Optional[int] = None
) -> np.ndarray:
    """``np.argsort(weights, kind="stable")`` as a parallel chunked merge sort.

    Fixed contiguous chunks are stably argsorted (each chunk on a pool
    worker), then pairwise-merged in ``log2(chunks)`` rounds; adjacent runs
    are merged so every left run holds smaller original indices than its
    right partner, which makes the tie-breaking identical to a global stable
    argsort.  Small inputs (or ``num_threads <= 1``) fall back to
    ``np.argsort`` directly; both paths return bit-identical permutations.
    """
    m = int(weights.shape[0])
    workers = resolve_num_threads(num_threads)
    chunk = _sort_chunk_rows(current_memory_budget(), workers)
    if workers == 1 or m < 2 * chunk:
        return np.argsort(weights, kind="stable")

    def sort_chunk(span: Tuple[int, int]) -> np.ndarray:
        lo, hi = span
        return lo + np.argsort(weights[lo:hi], kind="stable")

    runs: List[np.ndarray] = parallel_map(
        sort_chunk, shard_ranges(m, chunk), num_threads=num_threads
    )
    while len(runs) > 1:
        pairs = [(runs[i], runs[i + 1]) for i in range(0, len(runs) - 1, 2)]
        merged = parallel_map(
            lambda pair: _merge_runs(weights, pair[0], pair[1]),
            pairs,
            num_threads=num_threads,
        )
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    return runs[0]

EdgeBatch = Union[
    "EdgeList", Tuple[np.ndarray, np.ndarray, np.ndarray], Iterable[Tuple[int, int, float]]
]


def kruskal_batch_arrays(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    output: EdgeList,
    union_find: UnionFind,
    *,
    num_threads: Optional[int] = None,
) -> int:
    """Process one batch of edges given as parallel arrays.

    Returns the number of edges accepted into ``output``.  The caller is
    responsible for only passing batches in non-decreasing weight order across
    calls (GFK/MemoGFK guarantee this by construction).  ``num_threads``
    parallelizes the weight sort (:func:`parallel_argsort`); the union sweep
    is inherently sequential and unaffected.
    """
    m = int(u.shape[0])
    if m == 0:
        return 0
    tracker = current_tracker()
    tracker.add(m * max(math.log2(m), 1.0), max(math.log2(m), 1.0), phase="kruskal")
    order = parallel_argsort(w, num_threads=num_threads)
    su = u[order]
    sv = v[order]
    accepted = union_find.union_many(su, sv)
    count = int(np.count_nonzero(accepted))
    if count:
        output.extend_arrays(su[accepted], sv[accepted], w[order][accepted])
    return count


def kruskal_filtered_arrays(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    output: EdgeList,
    union_find: UnionFind,
    *,
    num_threads: Optional[int] = None,
    chunk_size: int = 1 << 16,
) -> int:
    """Kruskal over one large candidate edge array, with vectorized pruning.

    Semantically identical to :func:`kruskal_batch_arrays` — same sorted
    order, same union-find, same accepted edge set — but engineered for the
    oversized candidate lists the approximate EMST produces, where the
    candidates outnumber the ``n - 1`` survivors by an order of magnitude:

    * the sorted edges are processed in fixed chunks, and before each chunk's
      sequential union sweep a component snapshot
      (:meth:`~repro.parallel.unionfind.UnionFind.roots`) discards every edge
      whose endpoints are already connected — edges the per-edge sweep would
      reject one Python iteration at a time;
    * once the union-find reaches a single component no later edge can be
      accepted, so the remaining chunks are skipped entirely.

    Both optimizations only skip edges Kruskal would reject, so the result is
    byte-identical to the plain batch at any ``num_threads`` and any
    ``chunk_size``.  Returns the number of edges accepted into ``output``.
    """
    m = int(u.shape[0])
    if m == 0:
        return 0
    tracker = current_tracker()
    tracker.add(m * max(math.log2(m), 1.0), max(math.log2(m), 1.0), phase="kruskal")
    order = parallel_argsort(w, num_threads=num_threads)
    su = u[order]
    sv = v[order]
    sw = w[order]
    count = 0
    for lo in range(0, m, chunk_size):
        if union_find.num_components == 1:
            break
        hi = min(lo + chunk_size, m)
        roots = union_find.roots()
        cu = su[lo:hi]
        cv = sv[lo:hi]
        keep = roots[cu] != roots[cv]
        if not keep.any():
            continue
        ku = cu[keep]
        kv = cv[keep]
        accepted = union_find.union_many(ku, kv)
        hits = int(np.count_nonzero(accepted))
        if hits:
            output.extend_arrays(ku[accepted], kv[accepted], sw[lo:hi][keep][accepted])
            count += hits
    return count


def kruskal_batch(
    edges: EdgeBatch,
    output: EdgeList,
    union_find: UnionFind,
    *,
    num_threads: Optional[int] = None,
) -> int:
    """Process one batch of edges with a shared union-find.

    ``edges`` may be an :class:`EdgeList`, a ``(u, v, w)`` tuple of parallel
    arrays, or any iterable of ``(u, v, weight)`` tuples; see
    :func:`kruskal_batch_arrays` for the batching contract.
    """
    u, v, w = coerce_edge_arrays(edges)
    return kruskal_batch_arrays(u, v, w, output, union_find, num_threads=num_threads)


def kruskal(
    edges: EdgeBatch,
    num_vertices: int,
    *,
    union_find: Optional[UnionFind] = None,
    num_threads: Optional[int] = None,
) -> EdgeList:
    """Minimum spanning forest of an explicit edge list.

    Returns the accepted edges (``num_vertices - 1`` of them when the input
    graph is connected).
    """
    union_find = union_find if union_find is not None else UnionFind(num_vertices)
    output = EdgeList()
    kruskal_batch(edges, output, union_find, num_threads=num_threads)
    return output
