"""Borůvka's minimum-spanning-tree algorithm on an explicit edge list.

Each round finds, for every component, its lightest outgoing edge (a
WRITE_MIN-style reduction) and contracts all of them at once; the number of
components at least halves every round, so there are O(log n) rounds.  This is
the MST engine behind the dual-tree Borůvka EMST baseline and also serves as
an independent cross-check of Kruskal in the test suite.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

import numpy as np

from repro.mst.edges import EdgeList
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind


def boruvka(edges: Iterable[Tuple[int, int, float]], num_vertices: int) -> EdgeList:
    """Minimum spanning forest of the given edge list via Borůvka rounds.

    Ties are broken by edge index so the result is deterministic even when
    several edges share a weight (any tie-break yields *an* MST; determinism
    keeps tests simple).
    """
    edge_array = [(int(u), int(v), float(w)) for u, v, w in edges]
    m = len(edge_array)
    union_find = UnionFind(num_vertices)
    output = EdgeList()
    if m == 0:
        return output

    tracker = current_tracker()
    while union_find.num_components > 1:
        tracker.add(m, max(math.log2(max(m, 2)), 1.0), phase="boruvka")
        # Lightest outgoing edge per component: (weight, edge index).
        best = {}
        for index, (u, v, w) in enumerate(edge_array):
            root_u = union_find.find(u)
            root_v = union_find.find(v)
            if root_u == root_v:
                continue
            key = (w, index)
            if root_u not in best or key < best[root_u]:
                best[root_u] = key
            if root_v not in best or key < best[root_v]:
                best[root_v] = key
        if not best:
            break  # remaining components are disconnected from each other
        merged_any = False
        for _, index in best.values():
            u, v, w = edge_array[index]
            if union_find.union(u, v):
                output.append(u, v, w)
                merged_any = True
        if not merged_any:
            break
    return output
