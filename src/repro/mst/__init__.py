"""Minimum-spanning-tree substrate.

The EMST and HDBSCAN* algorithms all reduce, eventually, to running an MST
computation over a (usually small) explicit edge list: batched Kruskal with a
shared union-find (the subroutine of GFK / MemoGFK), plus Borůvka and Prim
implementations used as independent references and by the baselines.
"""

from repro.mst.edges import (
    Edge,
    EdgeList,
    coerce_edge_arrays,
    edges_from_arrays,
    total_weight,
)
from repro.mst.kruskal import (
    kruskal,
    kruskal_batch,
    kruskal_batch_arrays,
    kruskal_filtered_arrays,
)
from repro.mst.boruvka import boruvka
from repro.mst.canonical import canonical_mst_arrays
from repro.mst.prim import prim, prim_order
from repro.mst.validation import is_spanning_tree

__all__ = [
    "Edge",
    "EdgeList",
    "coerce_edge_arrays",
    "edges_from_arrays",
    "total_weight",
    "kruskal",
    "kruskal_batch",
    "kruskal_batch_arrays",
    "kruskal_filtered_arrays",
    "boruvka",
    "canonical_mst_arrays",
    "prim",
    "prim_order",
    "is_spanning_tree",
]
