"""Canonical normal form for mutual-reachability MSTs.

The incremental engine and a cold refit generally discover *different* MSTs:
mutual-reachability graphs are full of exact weight ties (every pair whose
distance is dominated by the same core distance shares a weight, duplicate
points tie at zero), and which tied edge a run picks depends on the order
BCCP candidates were produced in — the one thing an incremental repair
cannot reproduce.  What *is* invariant is the weight-class filtration: for
any candidate edge set that is (a) a superset of some MST of the graph, or
(b) the exact per-pair BCCP values of a covering well-separated
decomposition, running Kruskal and looking only at the *partition of the
points after each weight class* gives the same sequence of partitions as
Kruskal over the complete graph.  Every quantity the serving layer derives —
DBSCAN* components at any epsilon, single-linkage cuts, condensed-tree
stabilities, EOM labels — is a function of that filtration, not of the
particular tied edges.

:func:`canonical_mst_arrays` therefore synthesizes one distinguished MST
*from the filtration alone*: weight classes are processed in increasing
order; within a class, each group of blocks that the class merges is ordered
by block minimum and chained left to right, with every synthesized edge
running between block-minimum representatives.  Two runs that agree on the
filtration — a cold fit and any interleaved insert/delete sequence reaching
the same point set — produce byte-identical edge arrays, and therefore
byte-identical dendrograms, condensed trees and labels downstream.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.mst.kruskal import parallel_argsort
from repro.parallel.unionfind import UnionFind


def _canonical_sweep(
    tu: np.ndarray, tv: np.ndarray, tw: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resynthesize accepted Kruskal edges into the canonical normal form.

    ``tu/tv/tw`` are the ``n - 1`` accepted edges in non-decreasing weight
    order.  The sweep re-runs the merges with a union-find that tracks the
    minimum element of every component; each weight class is resolved into
    its block-merge groups, and the emitted edges depend only on the blocks
    (never on which tied input edge caused a merge).  Classes of a single
    edge — the overwhelmingly common case on continuous data — take the
    inlined fast path.
    """
    m = int(tu.shape[0])
    out_u = np.empty(m, dtype=np.int64)
    out_v = np.empty(m, dtype=np.int64)
    out_w = np.empty(m, dtype=np.float64)
    if m == 0:
        return out_u, out_v, out_w
    parent = np.arange(n, dtype=np.int64)
    rank = np.zeros(n, dtype=np.int8)
    comp_min = np.arange(n, dtype=np.int64)
    u_list = tu.tolist()
    v_list = tv.tolist()
    w_list = tw.tolist()

    def find(x: int) -> int:
        while True:
            p = parent[x]
            if p == x:
                return x
            gp = parent[p]
            parent[x] = gp  # path halving
            x = gp

    def union(rx: int, ry: int) -> int:
        low = comp_min[rx]
        if comp_min[ry] < low:
            low = comp_min[ry]
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        comp_min[rx] = low
        return rx

    out = 0
    i = 0
    while i < m:
        weight = w_list[i]
        j = i + 1
        while j < m and w_list[j] == weight:
            j += 1
        if j == i + 1:
            # Single-edge class: one merge of two blocks.
            ru = find(u_list[i])
            rv = find(v_list[i])
            a = comp_min[ru]
            b = comp_min[rv]
            if a > b:
                a, b = b, a
            out_u[out] = a
            out_v[out] = b
            out_w[out] = weight
            out += 1
            union(ru, rv)
        else:
            # Multi-edge class: group the participating blocks, then chain
            # each group's blocks in ascending block-minimum order.  The
            # grouping is over block *roots* (partition data), so any tied
            # input edges producing the same partition yield the same output.
            local: dict = {}
            group_parent: list = []
            for t in range(i, j):
                for root in (find(u_list[t]), find(v_list[t])):
                    if root not in local:
                        local[root] = len(group_parent)
                        group_parent.append(len(group_parent))

            def gfind(x: int) -> int:
                while group_parent[x] != x:
                    group_parent[x] = group_parent[group_parent[x]]
                    x = group_parent[x]
                return x

            for t in range(i, j):
                ga = gfind(local[find(u_list[t])])
                gb = gfind(local[find(v_list[t])])
                if ga != gb:
                    group_parent[gb] = ga
            groups: dict = {}
            for root, slot in local.items():
                groups.setdefault(gfind(slot), []).append(root)
            chains = []
            for members in groups.values():
                if len(members) < 2:
                    continue
                members.sort(key=lambda root: comp_min[root])
                chains.append(members)
            chains.sort(key=lambda members: comp_min[members[0]])
            for members in chains:
                head = members[0]
                for other in members[1:]:
                    a = comp_min[head]
                    b = comp_min[other]
                    if a > b:
                        a, b = b, a
                    out_u[out] = a
                    out_v[out] = b
                    out_w[out] = weight
                    out += 1
                    head = union(head, other)
        i = j
    if out != m:
        raise InvalidParameterError(
            "canonicalization changed the merge count; the input edges were "
            "not a spanning forest sweep"
        )
    return out_u, out_v, out_w


def canonical_mst_arrays(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    num_points: int,
    *,
    num_threads: Optional[int] = None,
    order: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical MST of a candidate edge set, as ``(u, v, w)`` arrays.

    ``u/v/w`` may be any candidate edge collection whose weight-class
    filtration matches the underlying graph's (an MST produced by any of the
    engine's methods, or the BCCP values of a covering well-separated
    decomposition — supersets are fine, Kruskal discards the slack).  The
    output is sorted by ``(w, u, v)`` with ``u < v`` per edge and is a pure
    function of the filtration, so two candidate sets inducing the same
    partitions produce byte-identical arrays.

    ``order``, when given, must be some ascending-by-``w`` permutation of the
    edges; the caller can maintain one incrementally (the canonical output
    only depends on the weight-class partition sweep, so *which* ascending
    permutation is supplied never changes the result).

    Raises :class:`~repro.core.errors.InvalidParameterError` when the
    candidates do not connect all ``num_points`` points.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    if num_points < 0:
        raise InvalidParameterError("num_points must be >= 0")
    empty = (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
    )
    if num_points <= 1:
        return empty
    if order is None:
        order = parallel_argsort(w, num_threads=num_threads)
    su = u[order]
    sv = v[order]
    sw = w[order]
    union_find = UnionFind(num_points)
    # Chunked union sweep with component-snapshot pruning (the
    # kruskal_filtered_arrays trick): candidate sets here outnumber the
    # n - 1 survivors by orders of magnitude, and pruning only skips edges
    # the per-edge sweep would reject, so the accepted set is identical.
    chunk = 1 << 16
    kept_u = []
    kept_v = []
    kept_w = []
    for lo in range(0, int(su.shape[0]), chunk):
        if union_find.num_components == 1:
            break
        hi = min(lo + chunk, int(su.shape[0]))
        roots = union_find.roots()
        cu = su[lo:hi]
        cv = sv[lo:hi]
        keep = roots[cu] != roots[cv]
        if not keep.any():
            continue
        ku = cu[keep]
        kv = cv[keep]
        accepted = union_find.union_many(ku, kv)
        if accepted.any():
            kept_u.append(ku[accepted])
            kept_v.append(kv[accepted])
            kept_w.append(sw[lo:hi][keep][accepted])
    empty_i = np.empty(0, dtype=np.int64)
    tu = np.concatenate(kept_u) if kept_u else empty_i
    tv = np.concatenate(kept_v) if kept_v else empty_i.copy()
    tw = np.concatenate(kept_w) if kept_w else np.empty(0, dtype=np.float64)
    if int(tu.shape[0]) != num_points - 1:
        raise InvalidParameterError(
            f"candidate edges span {num_points - int(tu.shape[0])} components; "
            f"a connected candidate set over {num_points} points is required"
        )
    return _canonical_sweep(tu, tv, tw, num_points)
