"""Spanning-tree validation helpers used by tests and benchmarks."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.parallel.unionfind import UnionFind


def is_spanning_tree(edges: Iterable[Tuple[int, int, float]], num_vertices: int) -> bool:
    """True when ``edges`` form a spanning tree of ``num_vertices`` vertices.

    Checks the two defining properties: exactly ``n - 1`` edges and no cycles
    (equivalently, a single connected component).
    """
    union_find = UnionFind(num_vertices)
    count = 0
    for u, v, _ in edges:
        count += 1
        if not union_find.union(int(u), int(v)):
            return False
    return count == num_vertices - 1 and union_find.num_components == 1
