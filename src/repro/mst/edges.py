"""Edge containers shared by the MST code and the clustering layers.

Edges are stored in structure-of-arrays form (:class:`EdgeList`) backed by
growable NumPy buffers (capacity doubling, like a C++ vector), because the
downstream consumers — Kruskal batches, dendrogram construction, reachability
plots — all want whole weight/endpoint arrays rather than Python objects.
Array-producing stages append whole batches with :meth:`EdgeList.extend_arrays`
and consumers read zero-copy views via :meth:`EdgeList.as_arrays`; a scalar
:class:`Edge` named tuple is provided for readability at API boundaries.

Growth policy (see :mod:`repro.core.buffers` for the shared contract): the
three parallel buffers start at 16 slots and double on demand, so capacity is
always less than twice the live count after any batch append;
:meth:`EdgeList.as_arrays` never shrinks — it returns views over the live
prefix — and :meth:`EdgeList.shrink_to_fit` releases the over-allocation
explicitly.  :attr:`EdgeList.capacity` / :attr:`EdgeList.nbytes` make the
over-allocation observable.  Under a bounded ambient
:class:`~repro.core.budget.MemoryBudget`, buffers past the budget's spill
threshold are transparently memmap-backed on disk (spill-to-disk mode);
every accessor behaves identically either way.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Tuple

import numpy as np

from repro.core.buffers import (
    buffers_nbytes,
    ensure_capacity,
    readonly_view,
    shrink_buffers,
)

_INITIAL_CAPACITY = 16


class Edge(NamedTuple):
    """An undirected weighted edge between two point indices."""

    u: int
    v: int
    weight: float


class EdgeList:
    """A growable structure-of-arrays edge container (NumPy buffers)."""

    __slots__ = ("_u", "_v", "_w", "_n")

    def __init__(self, edges: Iterable[Tuple[int, int, float]] = ()) -> None:
        self._u = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._v = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._w = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0
        self.extend(edges)

    # -- growth ----------------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        ensure_capacity(self, ("_u", "_v", "_w"), self._n, self._n + extra)

    @property
    def capacity(self) -> int:
        """Allocated slots (>= ``len(self)``; grows by doubling)."""
        return int(self._u.shape[0])

    @property
    def nbytes(self) -> int:
        """Total allocated bytes across the three buffers (capacity-based)."""
        return buffers_nbytes(self, ("_u", "_v", "_w"))

    def shrink_to_fit(self) -> None:
        """Release the doubling over-allocation down to the live count.

        Previously returned views stay valid (they pin the old storage);
        subsequent :meth:`as_arrays` views come from the trimmed buffers.
        """
        shrink_buffers(self, ("_u", "_v", "_w"), self._n, _INITIAL_CAPACITY)

    # -- construction ----------------------------------------------------------

    def append(self, u: int, v: int, weight: float) -> None:
        self._reserve(1)
        n = self._n
        self._u[n] = u
        self._v[n] = v
        self._w[n] = weight
        self._n = n + 1

    def extend(self, edges: Iterable[Tuple[int, int, float]]) -> None:
        if isinstance(edges, EdgeList):
            u, v, w = edges.as_arrays()
            self.extend_arrays(u, v, w)
            return
        for u, v, w in edges:
            self.append(u, v, w)

    def extend_arrays(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> None:
        """Append a whole batch of edges given as parallel arrays."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if u.shape != v.shape or u.shape != w.shape or u.ndim != 1:
            raise ValueError("endpoint and weight arrays must be parallel 1-d arrays")
        m = u.shape[0]
        self._reserve(m)
        n = self._n
        self._u[n : n + m] = u
        self._v[n : n + m] = v
        self._w[n : n + m] = w
        self._n = n + m

    # -- scalar access ---------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Edge]:
        u, v, w = self.as_arrays()
        for i in range(self._n):
            yield Edge(int(u[i]), int(v[i]), float(w[i]))

    def __getitem__(self, index: int) -> Edge:
        if not -self._n <= index < self._n:
            raise IndexError("edge index out of range")
        index %= self._n
        return Edge(int(self._u[index]), int(self._v[index]), float(self._w[index]))

    # -- array access ----------------------------------------------------------

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(u, v, weight)`` read-only views over the live buffers."""
        n = self._n
        return (
            readonly_view(self._u, n),
            readonly_view(self._v, n),
            readonly_view(self._w, n),
        )

    @property
    def endpoints(self) -> np.ndarray:
        """``(m, 2)`` integer array of endpoints."""
        return np.column_stack([self._u[: self._n], self._v[: self._n]])

    @property
    def weights(self) -> np.ndarray:
        """``(m,)`` float array of weights (a read-only view)."""
        return readonly_view(self._w, self._n)

    def sorted_by_weight(self) -> "EdgeList":
        """A new edge list sorted by non-decreasing weight (stable)."""
        u, v, w = self.as_arrays()
        order = np.argsort(w, kind="stable")
        result = EdgeList()
        result.extend_arrays(u[order], v[order], w[order])
        return result

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.endpoints, self.weights

    # -- lifecycle -------------------------------------------------------------

    def release(self) -> None:
        """Drop the backing buffers and reset to an empty list.

        Under a bounded memory budget the buffers may be spill-file memmaps;
        releasing them promptly (the MST drivers do this in ``finally``
        blocks) unmaps the spill files even when a fit dies mid-round, so an
        aborted run cannot hold disk mappings until garbage collection gets
        around to it.  Previously returned views keep the old storage alive
        until *they* are dropped; the list itself is empty and reusable.
        """
        self._u = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._v = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._w = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0


def edges_from_arrays(endpoints: np.ndarray, weights: np.ndarray) -> EdgeList:
    """Build an :class:`EdgeList` from an ``(m, 2)`` index array and weights."""
    endpoints = np.asarray(endpoints, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if endpoints.shape[0] != weights.shape[0]:
        raise ValueError("endpoints and weights must have the same length")
    edge_list = EdgeList()
    edge_list.extend_arrays(endpoints[:, 0], endpoints[:, 1], weights)
    return edge_list


def coerce_edge_arrays(edges) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize any edge collection to ``(u, v, weight)`` arrays.

    Accepts an :class:`EdgeList` (zero-copy views), a ``(u, v, w)`` tuple of
    parallel arrays, or any iterable of ``(u, v, weight)`` tuples.
    """
    if isinstance(edges, EdgeList):
        return edges.as_arrays()
    if (
        isinstance(edges, tuple)
        and len(edges) == 3
        and all(isinstance(part, np.ndarray) for part in edges)
    ):
        u, v, w = edges
        return (
            np.asarray(u, dtype=np.int64),
            np.asarray(v, dtype=np.int64),
            np.asarray(w, dtype=np.float64),
        )
    materialized = list(edges)
    if not materialized:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    u = np.fromiter((edge[0] for edge in materialized), dtype=np.int64, count=len(materialized))
    v = np.fromiter((edge[1] for edge in materialized), dtype=np.int64, count=len(materialized))
    w = np.fromiter((edge[2] for edge in materialized), dtype=np.float64, count=len(materialized))
    return u, v, w


def total_weight(edges: Iterable[Edge]) -> float:
    """Sum of edge weights (the quantity MSTs of the same graph share)."""
    if isinstance(edges, EdgeList):
        return float(edges.weights.sum())
    return float(sum(edge[2] for edge in edges))
