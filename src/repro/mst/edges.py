"""Edge containers shared by the MST code and the clustering layers.

Edges are stored in structure-of-arrays form (:class:`EdgeList`) because the
downstream consumers (Kruskal batches, dendrogram construction, reachability
plots) all want NumPy-sortable weight arrays; a scalar :class:`Edge` named
tuple is provided for readability at API boundaries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple, Tuple

import numpy as np


class Edge(NamedTuple):
    """An undirected weighted edge between two point indices."""

    u: int
    v: int
    weight: float


class EdgeList:
    """A growable structure-of-arrays edge container."""

    def __init__(self, edges: Iterable[Tuple[int, int, float]] = ()) -> None:
        self._u: List[int] = []
        self._v: List[int] = []
        self._w: List[float] = []
        for u, v, w in edges:
            self.append(u, v, w)

    def append(self, u: int, v: int, weight: float) -> None:
        self._u.append(int(u))
        self._v.append(int(v))
        self._w.append(float(weight))

    def extend(self, edges: Iterable[Tuple[int, int, float]]) -> None:
        for u, v, w in edges:
            self.append(u, v, w)

    def __len__(self) -> int:
        return len(self._w)

    def __iter__(self) -> Iterator[Edge]:
        for u, v, w in zip(self._u, self._v, self._w):
            yield Edge(u, v, w)

    def __getitem__(self, index: int) -> Edge:
        return Edge(self._u[index], self._v[index], self._w[index])

    @property
    def endpoints(self) -> np.ndarray:
        """``(m, 2)`` integer array of endpoints."""
        return np.column_stack(
            [np.asarray(self._u, dtype=np.int64), np.asarray(self._v, dtype=np.int64)]
        ) if self._u else np.empty((0, 2), dtype=np.int64)

    @property
    def weights(self) -> np.ndarray:
        """``(m,)`` float array of weights."""
        return np.asarray(self._w, dtype=np.float64)

    def sorted_by_weight(self) -> "EdgeList":
        """A new edge list sorted by non-decreasing weight (stable)."""
        order = np.argsort(self.weights, kind="stable")
        result = EdgeList()
        for index in order:
            result.append(self._u[index], self._v[index], self._w[index])
        return result

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.endpoints, self.weights


def edges_from_arrays(endpoints: np.ndarray, weights: np.ndarray) -> EdgeList:
    """Build an :class:`EdgeList` from an ``(m, 2)`` index array and weights."""
    endpoints = np.asarray(endpoints, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if endpoints.shape[0] != weights.shape[0]:
        raise ValueError("endpoints and weights must have the same length")
    edge_list = EdgeList()
    for (u, v), w in zip(endpoints, weights):
        edge_list.append(int(u), int(v), float(w))
    return edge_list


def total_weight(edges: Iterable[Edge]) -> float:
    """Sum of edge weights (the quantity MSTs of the same graph share)."""
    return float(sum(edge.weight for edge in edges))
