"""Prim's algorithm on an explicit (sparse) graph.

The paper uses Prim's traversal order of the HDBSCAN* MST to *define* the
reachability plot, and the sequential reference for dendrogram/reachability
construction runs Prim on the n-1 tree edges.  ``prim`` computes an MST of an
arbitrary edge list; ``prim_order`` runs Prim restricted to a tree and returns
the visit order together with the attachment weights, i.e. exactly the
reachability plot of Section 2.1.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.mst.edges import Edge, EdgeList
from repro.parallel.scheduler import current_tracker


def _adjacency(edges: Iterable[Tuple[int, int, float]]) -> Dict[int, List[Tuple[int, float]]]:
    adjacency: Dict[int, List[Tuple[int, float]]] = {}
    for u, v, w in edges:
        adjacency.setdefault(int(u), []).append((int(v), float(w)))
        adjacency.setdefault(int(v), []).append((int(u), float(w)))
    return adjacency


def prim(edges: Iterable[Tuple[int, int, float]], num_vertices: int, *, start: int = 0) -> EdgeList:
    """Minimum spanning forest by Prim's algorithm with a binary heap.

    Vertices unreachable from ``start`` are seeded as new roots so the result
    is a spanning forest of the whole vertex set.
    """
    adjacency = _adjacency(edges)
    tracker = current_tracker()
    visited = np.zeros(num_vertices, dtype=bool)
    output = EdgeList()

    def grow(root: int) -> None:
        visited[root] = True
        heap: List[Tuple[float, int, int]] = []
        for neighbor, weight in adjacency.get(root, []):
            heapq.heappush(heap, (weight, root, neighbor))
        while heap:
            weight, origin, target = heapq.heappop(heap)
            tracker.add(math.log2(len(heap) + 2), 1.0, phase="prim")
            if visited[target]:
                continue
            visited[target] = True
            output.append(origin, target, weight)
            for neighbor, next_weight in adjacency.get(target, []):
                if not visited[neighbor]:
                    heapq.heappush(heap, (next_weight, target, neighbor))

    grow(start)
    for vertex in range(num_vertices):
        if not visited[vertex]:
            grow(vertex)
    return output


def prim_order(
    tree_edges: Iterable[Tuple[int, int, float]],
    num_vertices: int,
    *,
    start: int = 0,
) -> Tuple[List[int], List[float]]:
    """Prim's visit order over a tree, with attachment weights.

    Returns ``(order, reachability)`` where ``order[0] == start`` and
    ``reachability[i]`` is the weight of the edge that attached ``order[i]``
    to the already-visited set (``inf`` for the starting point), which is the
    reachability-plot bar height of that point.
    """
    adjacency = _adjacency(tree_edges)
    visited = set()
    order: List[int] = []
    reachability: List[float] = []
    heap: List[Tuple[float, int]] = [(float("inf"), start)]
    best: Dict[int, float] = {start: float("inf")}
    tracker = current_tracker()
    while heap:
        weight, vertex = heapq.heappop(heap)
        tracker.add(math.log2(len(heap) + 2), 1.0, phase="prim")
        if vertex in visited:
            continue
        visited.add(vertex)
        order.append(vertex)
        reachability.append(weight)
        for neighbor, edge_weight in adjacency.get(vertex, []):
            if neighbor in visited:
                continue
            if edge_weight < best.get(neighbor, float("inf")):
                best[neighbor] = edge_weight
                heapq.heappush(heap, (edge_weight, neighbor))
    return order, reachability
