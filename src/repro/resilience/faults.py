"""Deterministic fault injection for the resilience test harness.

Production code cannot be trusted to recover from failures nobody can
reproduce, so the chaos suite drives every failure path through *named,
deterministic injection points* compiled into the engine's risky sites:

* ``kill-worker`` — the pool worker executing the matched task dies (the
  thread exits with the task claimed but unfinished), exercising the
  :class:`~repro.parallel.pool.WorkerPool` death detection / retry / serial
  fallback ladder.  ``scope=any`` extends the fault to the serial rescue
  path, which is how tests reach ``WorkerFailedError``.
* ``spill-os-error`` — the matched spill-to-disk allocation raises
  ``OSError`` (the budget then falls back to RAM with a warning).
* ``spill-ram-fail`` — the RAM fallback of a failed spill raises
  ``MemoryError`` (the budget then raises the typed ``SpillIOError``).
* ``truncate-checkpoint`` — the matched committed checkpoint phase file is
  truncated in place, simulating a torn write that the resume path must
  detect by checksum (``CheckpointCorruptError``).
* ``crash-after-phase`` — raises :class:`InjectedCrashError` immediately
  after the matched phase commit, simulating the process dying at a phase
  boundary (the kill-and-resume identity tests are built on this).
* ``no-numba`` — while active, the compiled backend reports itself
  unavailable, simulating numba import failure mid-session (resolution then
  takes the documented numpy-fallback path).

Faults are matched *deterministically*: each fault keeps its own occurrence
counter (per ``phase`` for the checkpoint kinds) and fires on occurrences
``at .. at+times-1`` of its injection point, so a failing chaos cell is
reproducible from its spec string alone.  Plans are enabled either with the
:func:`inject_faults` context manager (tests) or the ``REPRO_FAULTS``
environment variable (subprocess chaos runs), e.g.::

    REPRO_FAULTS="crash-after-phase:phase=mst" python -m repro hdbscan ...

    with inject_faults("kill-worker:at=2;spill-os-error"):
        ...

The check helpers are no-ops (one module-attribute read) when no plan is
active, so instrumented hot paths pay nothing in production.
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.errors import InvalidParameterError

#: Injection-point names the parser accepts.
FAULT_KINDS = (
    "kill-worker",
    "spill-os-error",
    "spill-ram-fail",
    "truncate-checkpoint",
    "crash-after-phase",
    "no-numba",
)

#: ``times=inf`` in a spec string — the fault fires on every occurrence.
UNLIMITED = -1


class InjectedCrashError(RuntimeError):
    """A simulated hard crash (process death) raised by ``crash-after-phase``.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`: nothing in
    the engine may catch and recover from it — it stands in for ``kill -9``
    in the in-process kill-and-resume tests.
    """


class _InjectedWorkerDeath(BaseException):
    """Internal marker the pool's serial rescue path dies with under
    ``kill-worker:scope=any``.  A ``BaseException`` so no task-level handler
    in user functions can accidentally absorb it."""


class Fault:
    """One armed injection point with its own deterministic occurrence counter."""

    __slots__ = ("kind", "at", "times", "phase", "scope", "seen", "fired")

    def __init__(
        self,
        kind: str,
        *,
        at: int = 0,
        times: int = 1,
        phase: Optional[str] = None,
        scope: str = "worker",
    ) -> None:
        if kind not in FAULT_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {kind!r}; choose from {sorted(FAULT_KINDS)}"
            )
        if scope not in ("worker", "any"):
            raise InvalidParameterError(
                f"fault scope must be 'worker' or 'any', got {scope!r}"
            )
        self.kind = kind
        self.at = int(at)
        self.times = int(times)
        self.phase = phase
        self.scope = scope
        #: Occurrences of this injection point seen so far (phase-filtered).
        self.seen = 0
        #: Occurrences that actually fired.
        self.fired = 0

    def spec(self) -> str:
        parts = [self.kind]
        options = []
        if self.at:
            options.append(f"at={self.at}")
        if self.times != 1:
            options.append(f"times={'inf' if self.times < 0 else self.times}")
        if self.phase is not None:
            options.append(f"phase={self.phase}")
        if self.scope != "worker":
            options.append(f"scope={self.scope}")
        return parts[0] + (":" + ",".join(options) if options else "")

    def __repr__(self) -> str:
        return f"Fault({self.spec()!r})"


class FaultPlan:
    """A set of armed faults plus the record of everything that fired."""

    def __init__(self, faults: List[Fault]) -> None:
        self._faults: Dict[str, List[Fault]] = {}
        for fault in faults:
            self._faults.setdefault(fault.kind, []).append(fault)
        self._lock = threading.Lock()
        #: ``(kind, context)`` tuples of every fired occurrence, in order.
        self.events: List[Tuple[str, dict]] = []

    @property
    def faults(self) -> List[Fault]:
        return [fault for group in self._faults.values() for fault in group]

    def fire(self, kind: str, **context) -> Optional[Fault]:
        """Count one occurrence of injection point ``kind``; return the fault
        to apply, if any armed fault matches this occurrence."""
        group = self._faults.get(kind)
        if not group:
            return None
        with self._lock:
            for fault in group:
                if fault.phase is not None and context.get("phase") != fault.phase:
                    continue
                if fault.scope == "worker" and context.get("serial"):
                    continue
                index = fault.seen
                fault.seen += 1
                if index < fault.at:
                    continue
                if fault.times >= 0 and index >= fault.at + fault.times:
                    continue
                fault.fired += 1
                self.events.append((kind, dict(context)))
                return fault
        return None

    def enabled(self, kind: str) -> bool:
        """Whether any fault of ``kind`` is armed (non-counting query, used by
        switch-like faults such as ``no-numba``)."""
        return bool(self._faults.get(kind))


def parse_fault_spec(spec: Union[str, Fault, FaultPlan]) -> FaultPlan:
    """Compile a spec string into a :class:`FaultPlan`.

    Grammar: ``kind[:key=value[,key=value...]]`` joined by ``;``.  Keys are
    ``at`` (first matching occurrence, default 0), ``times`` (occurrence
    count, ``inf`` for every occurrence), ``phase`` (checkpoint kinds) and
    ``scope`` (``kill-worker``: ``worker`` or ``any``).
    """
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, Fault):
        return FaultPlan([spec])
    faults = []
    for clause in str(spec).split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, options = clause.partition(":")
        kwargs: Dict[str, Union[int, str]] = {}
        for option in filter(None, (part.strip() for part in options.split(","))):
            key, separator, value = option.partition("=")
            if not separator:
                raise InvalidParameterError(
                    f"malformed fault option {option!r} in {clause!r} "
                    "(expected key=value)"
                )
            key = key.strip()
            value = value.strip()
            if key in ("at", "times"):
                kwargs[key] = UNLIMITED if value == "inf" else int(value)
            elif key in ("phase", "scope"):
                kwargs[key] = value
            else:
                raise InvalidParameterError(
                    f"unknown fault option {key!r} in {clause!r}"
                )
        faults.append(Fault(kind.strip(), **kwargs))
    return FaultPlan(faults)


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------

_active_plan: Optional[FaultPlan] = None
_activation_lock = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or ``None`` (the production state)."""
    return _active_plan


@contextmanager
def inject_faults(spec: Union[str, Fault, FaultPlan]) -> Iterator[FaultPlan]:
    """Arm a fault plan for the duration of the block (tests use this).

    Plans do not nest — arming inside an armed scope replaces the outer plan
    for the inner block, which keeps occurrence counting unambiguous.
    """
    global _active_plan
    plan = parse_fault_spec(spec)
    with _activation_lock:
        previous = _active_plan
        _active_plan = plan
    try:
        yield plan
    finally:
        with _activation_lock:
            _active_plan = previous


def fault_check(kind: str, **context) -> Optional[Fault]:
    """Count one occurrence of injection point ``kind`` against the active
    plan.  Returns the matched fault or ``None``; free when no plan is armed."""
    plan = _active_plan
    if plan is None:
        return None
    return plan.fire(kind, **context)


def fault_enabled(kind: str) -> bool:
    """Non-counting switch query against the active plan (``no-numba``)."""
    plan = _active_plan
    return plan is not None and plan.enabled(kind)


def _plan_from_environment() -> Optional[FaultPlan]:
    """Arm ``REPRO_FAULTS`` at import (subprocess chaos runs set it).

    A malformed spec warns and stays unarmed rather than making the package
    unimportable.
    """
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    try:
        return parse_fault_spec(spec)
    except InvalidParameterError as error:
        warnings.warn(
            f"ignoring REPRO_FAULTS: {error}", RuntimeWarning, stacklevel=2
        )
        return None


_active_plan = _plan_from_environment()
