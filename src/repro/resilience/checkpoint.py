"""Phase-level checkpoint/resume for the long-running pipelines.

A fit at out-of-core scale runs for minutes to hours; a crash near the end
must not lose the finished phases.  :class:`CheckpointManager` persists each
completed pipeline phase — the SoA arrays it produced plus a small metadata
dict — under one checkpoint directory, guarded by a *manifest*:

``manifest.json``
    The run fingerprint (streamed SHA-256 of the input points, method,
    metric, backend, dtype, ``num_threads``, memory-budget spec, engine
    version) plus, per completed phase, the phase file name, its SHA-256 and
    its metadata.
``phase-<name>.npz``
    The phase's arrays, written with ``np.savez`` to a temporary file that is
    fsynced and atomically renamed into place — a reader can never observe a
    half-written phase file under its final name.

Resume semantics: reopening a checkpoint directory with the *same*
fingerprint skips every phase already recorded in the manifest; because each
phase's arrays are restored bit-for-bit and everything downstream of a phase
is deterministic, a resumed run produces **byte-identical** output to an
uninterrupted one.  A fingerprint mismatch raises
:class:`~repro.core.errors.CheckpointMismatchError` (fail fast — resuming
someone else's state could silently produce wrong results), and a corrupt or
truncated phase file is always detected by checksum before any array is
trusted (:class:`~repro.core.errors.CheckpointCorruptError`).

The ``truncate-checkpoint`` and ``crash-after-phase`` faults of
:mod:`repro.resilience.faults` hook the commit path so the chaos suite can
simulate torn writes and phase-boundary process deaths deterministically.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    InvalidParameterError,
)
from repro.resilience.faults import InjectedCrashError, fault_check

#: Version stamp of the checkpoint layout *and* of the engine's deterministic
#: pipeline.  Part of every fingerprint: a checkpoint written by an engine
#: whose phase semantics changed must not be resumed byte-identically.
ENGINE_VERSION = "repro-engine-8"

_MANIFEST_NAME = "manifest.json"
_PHASE_NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9-]*$")
_HASH_CHUNK_BYTES = 16 << 20


def fingerprint_points(points: np.ndarray) -> str:
    """Streamed SHA-256 of a point array's dtype, shape and contents.

    Chunked over rows so memory-mapped out-of-core inputs hash without being
    pulled into RAM; the dtype/shape header makes reinterpretations of the
    same bytes distinct.
    """
    points = np.asarray(points)
    digest = hashlib.sha256()
    digest.update(f"{points.dtype.str}|{points.shape}".encode())
    if points.size:
        contiguous = points if points.flags.c_contiguous else np.ascontiguousarray(points)
        rows_per_chunk = max(1, _HASH_CHUNK_BYTES // max(contiguous[:1].nbytes, 1))
        for start in range(0, contiguous.shape[0], rows_per_chunk):
            digest.update(memoryview(contiguous[start : start + rows_per_chunk]).cast("B"))
    return digest.hexdigest()


def build_fingerprint(
    points: np.ndarray,
    *,
    algorithm: str,
    method: str,
    metric=None,
    backend=None,
    memory_budget=None,
    num_threads=None,
    **extra,
) -> Dict[str, object]:
    """The run-identity dict the api layers hand to :class:`CheckpointManager`.

    Every knob that can change the engine's *bytes* is canonicalized here —
    the input array (streamed hash + dtype + shape), the algorithm and method,
    the metric/backend/budget specs, the resolved thread count and any
    method-specific extras — so two runs share a checkpoint directory exactly
    when resuming one from the other is byte-identical by construction.
    (Imports are local: this module sits below the metric/backend/budget
    modules in the layering and must stay importable from any of them.)
    """
    from repro.core.backend import resolve_backend
    from repro.core.budget import resolve_memory_budget
    from repro.core.metric import resolve_metric
    from repro.parallel.pool import resolve_num_threads

    points = np.asarray(points)
    fingerprint: Dict[str, object] = {
        "algorithm": str(algorithm),
        "method": str(method),
        "metric": resolve_metric(metric).spec(),
        "backend": resolve_backend(backend).name,
        "dtype": points.dtype.str,
        "shape": list(points.shape),
        "points_sha256": fingerprint_points(points),
        "num_threads": resolve_num_threads(num_threads),
        "memory_budget": resolve_memory_budget(memory_budget).spec(),
    }
    fingerprint.update(extra)
    return fingerprint


def _hash_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK_BYTES)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_directory(path: Path) -> None:
    """Flush a directory entry after a rename (best effort off POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(fd)


class CheckpointManager:
    """Atomic, checksummed phase storage under one checkpoint directory.

    Parameters
    ----------
    directory:
        Checkpoint directory (created if missing).  One directory holds one
        run's state; concurrent runs need distinct directories.
    fingerprint:
        Flat JSON-serializable dict identifying the run (see
        :data:`ENGINE_VERSION` and the api layers' fingerprint builders).
    resume:
        With ``True`` (default) an existing manifest with a matching
        fingerprint is reused and its completed phases are served; with
        ``False`` any existing state is discarded and the run starts fresh.
        A *mismatching* manifest always raises — pass ``resume=False`` (or
        delete the directory) to overwrite it deliberately.
    """

    def __init__(
        self,
        directory,
        fingerprint: Dict[str, object],
        *,
        resume: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = dict(fingerprint)
        self.fingerprint.setdefault("engine", ENGINE_VERSION)
        self._phases: Dict[str, dict] = {}
        existing = self._read_manifest()
        if existing is not None:
            recorded = existing.get("fingerprint", {})
            if recorded != self.fingerprint:
                if resume:
                    differing = sorted(
                        key
                        for key in set(recorded) | set(self.fingerprint)
                        if recorded.get(key) != self.fingerprint.get(key)
                    )
                    raise CheckpointMismatchError(
                        f"checkpoint at {self.directory} was written by an "
                        f"incompatible run (differing fields: "
                        f"{', '.join(differing) or 'all'}); delete the "
                        "directory or pass resume=False to start over"
                    )
            elif resume:
                self._phases = dict(existing.get("phases", {}))
        self._write_manifest()

    # -- manifest --------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    def _read_manifest(self) -> Optional[dict]:
        path = self.manifest_path
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise CheckpointCorruptError(
                f"checkpoint manifest {path} is unreadable ({error}); delete "
                "the checkpoint directory to start over"
            ) from error
        if not isinstance(manifest, dict) or "fingerprint" not in manifest:
            raise CheckpointCorruptError(
                f"checkpoint manifest {path} is malformed; delete the "
                "checkpoint directory to start over"
            )
        return manifest

    def _write_manifest(self) -> None:
        manifest = {
            "format": 1,
            "fingerprint": self.fingerprint,
            "phases": self._phases,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=_MANIFEST_NAME + ".tmp-"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _fsync_directory(self.directory)

    # -- phases ----------------------------------------------------------------

    @property
    def completed_phases(self) -> Tuple[str, ...]:
        return tuple(self._phases)

    def has_phase(self, name: str) -> bool:
        return name in self._phases

    def _phase_path(self, name: str) -> Path:
        if not _PHASE_NAME_PATTERN.match(name):
            raise InvalidParameterError(
                f"invalid checkpoint phase name {name!r} (want lowercase "
                "letters, digits and dashes)"
            )
        return self.directory / f"phase-{name}.npz"

    def save_phase(
        self,
        name: str,
        arrays: Dict[str, np.ndarray],
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        """Atomically persist one completed phase (overwriting any previous
        record of the same phase, e.g. the per-round MST snapshots)."""
        path = self._phase_path(name)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, prefix=path.name + ".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **{key: np.asarray(value) for key, value in arrays.items()})
                handle.flush()
                os.fsync(handle.fileno())
            checksum = _hash_file(Path(tmp_name))
            nbytes = os.path.getsize(tmp_name)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _fsync_directory(self.directory)
        self._phases[name] = {
            "file": path.name,
            "sha256": checksum,
            "nbytes": int(nbytes),
            "meta": dict(meta or {}),
        }
        self._write_manifest()
        if fault_check("truncate-checkpoint", phase=name) is not None:
            # Simulate a torn write surviving past the commit: keep the
            # manifest's full-file checksum but halve the file on disk.
            with open(path, "r+b") as handle:
                handle.truncate(max(nbytes // 2, 1))
        if fault_check("crash-after-phase", phase=name) is not None:
            raise InjectedCrashError(
                f"injected crash after checkpoint phase {name!r}"
            )

    def load_phase(self, name: str) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """Load a completed phase's arrays and metadata, verifying integrity.

        Every load re-checksums the file against the manifest before trusting
        a single byte; corruption, truncation or a missing file raise
        :class:`CheckpointCorruptError`.
        """
        record = self._phases.get(name)
        if record is None:
            raise CheckpointCorruptError(
                f"checkpoint phase {name!r} is not recorded in {self.manifest_path}"
            )
        path = self.directory / record["file"]
        if not path.exists():
            raise CheckpointCorruptError(
                f"checkpoint phase file {path} is missing; delete the "
                "checkpoint directory to start over"
            )
        if os.path.getsize(path) != record["nbytes"] or _hash_file(path) != record["sha256"]:
            raise CheckpointCorruptError(
                f"checkpoint phase file {path} is corrupt or truncated "
                "(checksum mismatch); delete the checkpoint directory to "
                "start over"
            )
        try:
            with np.load(path, allow_pickle=False) as payload:
                arrays = {key: payload[key] for key in payload.files}
        except (OSError, ValueError, KeyError) as error:
            raise CheckpointCorruptError(
                f"checkpoint phase file {path} could not be decoded ({error})"
            ) from error
        return arrays, dict(record.get("meta", {}))

    def remove_phase(self, name: str) -> None:
        """Drop a phase record and its file (used to retire the per-round MST
        snapshots once the final MST phase is committed)."""
        record = self._phases.pop(name, None)
        if record is None:
            return
        self._write_manifest()
        try:
            os.unlink(self.directory / record["file"])
        except OSError:
            pass
