"""Fault-tolerant execution: checkpoint/resume and deterministic fault injection.

Long-running fits must survive the failures a production deployment actually
sees — a worker dying mid-shard, a disk refusing a spill, the process being
killed at minute 50.  This package provides the two halves of that story:

* :mod:`repro.resilience.checkpoint` — phase-level checkpoint/resume for
  ``emst()`` / ``hdbscan()``: atomic, checksummed phase files plus a
  fingerprinted manifest, with byte-identical resume semantics.
* :mod:`repro.resilience.faults` — deterministic, seedable fault injection
  points compiled into the engine's risky sites, driving the chaos test
  suite (worker deaths, spill I/O errors, torn checkpoint writes,
  phase-boundary crashes, numba import failure).

The WorkerPool half of fault tolerance (death detection, deterministic shard
retry, serial fallback, per-task timeouts) lives with the pool in
:mod:`repro.parallel.pool`; the typed errors live in :mod:`repro.errors`.
"""

from repro.resilience.checkpoint import (
    ENGINE_VERSION,
    CheckpointManager,
    build_fingerprint,
    fingerprint_points,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    InjectedCrashError,
    active_plan,
    fault_check,
    fault_enabled,
    inject_faults,
    parse_fault_spec,
)

__all__ = [
    "ENGINE_VERSION",
    "CheckpointManager",
    "build_fingerprint",
    "fingerprint_points",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedCrashError",
    "active_plan",
    "fault_check",
    "fault_enabled",
    "inject_faults",
    "parse_fault_spec",
]
