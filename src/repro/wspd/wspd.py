"""Well-separated pair decomposition (Algorithm 1 of the paper).

``compute_wspd`` walks the kd-tree exactly as the paper's pseudocode does:
for every internal node it calls FIND_PAIR on its two children; FIND_PAIR
records the pair if it is well-separated, and otherwise splits the child with
the larger bounding sphere and recurses on both halves.  The recursion is
executed iteratively with an explicit stack (the paper spawns parallel tasks
at the same places; the work–depth tracker is charged accordingly).

Two separation criteria are supported via ``separation``:

* ``"geometric"`` — the standard definition used for EMST;
* ``"hdbscan"``  — the paper's new disjunctive definition used for HDBSCAN*,
  which requires the tree to carry core-distance annotations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.errors import InvalidParameterError, NotComputedError
from repro.parallel.scheduler import current_tracker
from repro.spatial.kdtree import KDNode, KDTree
from repro.wspd.separation import hdbscan_well_separated, well_separated


@dataclass(frozen=True)
class WellSeparatedPair:
    """A recorded pair ``(A, B)`` of kd-tree nodes."""

    node_a: KDNode
    node_b: KDNode

    @property
    def cardinality(self) -> int:
        """``|A| + |B|``, the quantity GFK batches pairs by."""
        return self.node_a.size + self.node_b.size


def _separation_predicate(
    tree: KDTree, separation: str, s: float
) -> Callable[[KDNode, KDNode], bool]:
    if separation == "geometric":
        return lambda a, b: well_separated(a, b, s)
    if separation == "hdbscan":
        if not tree.has_core_distances:
            raise NotComputedError(
                "hdbscan separation requires annotate_core_distances() on the tree"
            )
        return hdbscan_well_separated
    raise InvalidParameterError(
        f"separation must be 'geometric' or 'hdbscan', got {separation!r}"
    )


def iterate_wspd(
    tree: KDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
) -> Iterator[WellSeparatedPair]:
    """Yield the WSPD pairs of ``tree`` one at a time (Algorithm 1).

    The generator form lets MemoGFK-style callers consume pairs without ever
    materializing the full decomposition.
    """
    predicate = _separation_predicate(tree, separation, s)
    if tree.leaf_size != 1 and any(leaf.size > 1 for leaf in tree.leaves()):
        raise InvalidParameterError(
            "the WSPD requires a kd-tree built with leaf_size=1: pairs of points "
            "inside a multi-point leaf would never be covered by the decomposition"
        )
    tracker = current_tracker()
    n = max(tree.size, 2)
    tracker.add(0.0, max(math.log2(n), 1.0), phase="wspd")

    # Stage 1 (WSPD procedure): one FIND_PAIR call per internal node.
    internal_nodes = [node for node in tree.nodes() if not node.is_leaf]
    tracker.add(len(internal_nodes), max(math.log2(n), 1.0), phase="wspd")

    for node in internal_nodes:
        # Stage 2 (FIND_PAIR): explicit stack in place of parallel recursion.
        # Each stack element is an independent parallel task in the modelled
        # algorithm, so only work (not depth) is charged per visit; the
        # O(log n) recursion depth was charged once above.
        stack: List[Tuple[KDNode, KDNode]] = [(node.left, node.right)]
        while stack:
            p, q = stack.pop()
            tracker.add(1, 0, phase="wspd")
            if p.sphere.diameter < q.sphere.diameter:
                p, q = q, p
            if predicate(p, q):
                yield WellSeparatedPair(p, q)
            else:
                # Split the node with the larger bounding sphere.  A leaf
                # cannot be split; in that case split the other node instead
                # (this only happens with duplicate points).
                if p.is_leaf:
                    p, q = q, p
                if p.is_leaf:
                    # Both singletons and not well separated: duplicates.
                    # Record them anyway so the decomposition covers the pair.
                    yield WellSeparatedPair(p, q)
                    continue
                stack.append((p.left, q))
                stack.append((p.right, q))


def compute_wspd(
    tree: KDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
) -> List[WellSeparatedPair]:
    """Materialize the full list of WSPD pairs (what the GFK baseline needs)."""
    return list(iterate_wspd(tree, separation=separation, s=s))


def count_wspd_pairs(
    tree: KDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
) -> int:
    """Number of pairs the decomposition produces, without storing them."""
    count = 0
    for _ in iterate_wspd(tree, separation=separation, s=s):
        count += 1
    return count


def validate_wspd_realization(tree: KDTree, pairs: List[WellSeparatedPair]) -> bool:
    """Check the realization property: every unordered point pair is covered
    by exactly one well-separated pair.

    This is an O(sum |A||B|) check used by the test suite on small inputs; it
    returns True when properties (2)–(4) of the paper's Section 2.3 hold.
    """
    n = tree.size
    covered = {}
    for pair in pairs:
        for i in pair.node_a.indices:
            for j in pair.node_b.indices:
                if i == j:
                    return False
                key = (min(int(i), int(j)), max(int(i), int(j)))
                if key in covered:
                    return False
                covered[key] = True
    expected = n * (n - 1) // 2
    return len(covered) == expected
