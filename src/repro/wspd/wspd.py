"""Well-separated pair decomposition (Algorithm 1 of the paper).

The decomposition walks the kd-tree exactly as the paper's pseudocode does:
for every internal node it calls FIND_PAIR on its two children; FIND_PAIR
records the pair if it is well-separated, and otherwise splits the child with
the larger bounding sphere and recurses on both halves.

The walk is executed *frontier-at-a-time* over the flat array engine: every
round holds the whole set of pending (A, B) pairs as two node-id arrays,
evaluates the separation predicate for all of them with one vectorized mask,
records the separated pairs, and expands the rest — the same visits the
paper's parallel recursion performs, charged identically to the work–depth
tracker, but with NumPy array operations in place of per-node Python calls.

Two separation criteria are supported via ``separation``:

* ``"geometric"`` — the standard definition used for EMST;
* ``"hdbscan"``  — the paper's new disjunctive definition used for HDBSCAN*,
  which requires the tree to carry core-distance annotations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.budget import current_memory_budget
from repro.core.errors import InvalidParameterError, NotComputedError
from repro.parallel import pool as _pool
from repro.parallel.pool import map_shards, resolve_num_threads
from repro.parallel.scheduler import current_tracker
from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDNode, KDTree
from repro.wspd.separation import (
    epsilon_certified_mask,
    hdbscan_well_separated_mask,
    well_separated_mask,
)


@dataclass(frozen=True)
class WellSeparatedPair:
    """A recorded pair ``(A, B)`` of kd-tree nodes."""

    node_a: KDNode
    node_b: KDNode

    @property
    def cardinality(self) -> int:
        """``|A| + |B|``, the quantity GFK batches pairs by."""
        return self.node_a.size + self.node_b.size


PairMask = Callable[[np.ndarray, np.ndarray], np.ndarray]


def separation_mask(
    flat: FlatKDTree, separation: str, s: float, epsilon: Optional[float] = None
) -> PairMask:
    """Vectorized separation predicate over node-id arrays of ``flat``.

    ``"geometric"`` and ``"hdbscan"`` are the paper's two notions;
    ``"epsilon-certified"`` (requires ``epsilon``) is the approximation
    subsystem's notion — classically separated *and* the representative edge
    certified within ``(1 + ε)`` of the pair's BCCP — used by
    :func:`repro.approx.emst.approx_emst`.
    """
    if separation == "geometric":
        return lambda a, b: well_separated_mask(flat, a, b, s)
    if separation == "hdbscan":
        if flat.cd_min is None:
            raise NotComputedError(
                "hdbscan separation requires annotate_core_distances() on the tree"
            )
        return lambda a, b: hdbscan_well_separated_mask(flat, a, b)
    if separation == "epsilon-certified":
        if epsilon is None:
            raise InvalidParameterError(
                "epsilon-certified separation requires an epsilon value"
            )
        return lambda a, b: epsilon_certified_mask(flat, a, b, s, epsilon)
    raise InvalidParameterError(
        "separation must be 'geometric', 'hdbscan' or 'epsilon-certified', "
        f"got {separation!r}"
    )


#: Live bytes per frontier pair inside one predicate/bound shard: the two
#: int64 id slices, the boolean (or float64) output slice, and the gathered
#: per-node geometry temporaries (centers, radii, extents) the separation
#: predicates materialize.
_PAIR_SHARD_BYTES_PER_ROW = 128


def pair_chunk_size(num_threads: Optional[int] = None) -> int:
    """Pairs per frontier shard (``DEFAULT_CHUNK`` when unbudgeted).

    Shared by the WSPD separation sweeps and the MemoGFK bound sweeps: the
    unbudgeted size is ``repro.parallel.pool.DEFAULT_CHUNK`` (read at call
    time, so tests can lower it); a bounded ambient memory budget derives the
    shard from its tile share instead.  The sharded kernels are elementwise,
    so every chunk size yields byte-identical results.
    """
    budget = current_memory_budget()
    return budget.tile_rows(
        _PAIR_SHARD_BYTES_PER_ROW,
        default_bytes=_pool.DEFAULT_CHUNK * _PAIR_SHARD_BYTES_PER_ROW,
        minimum=256,
        parts=resolve_num_threads(num_threads),
        component="wspd",
    )


def evaluate_pair_mask(
    predicate: PairMask,
    a: np.ndarray,
    b: np.ndarray,
    *,
    num_threads: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Evaluate an elementwise pair predicate, sharded on the worker pool.

    The frontier is cut at fixed chunk boundaries (independent of the thread
    count; defaulting to ``repro.parallel.pool.DEFAULT_CHUNK``, read at call
    time, scaled down under a bounded ambient memory budget) and every shard
    writes its slice of one output mask, so the result is byte-identical to
    ``predicate(a, b)`` at any ``num_threads`` — the predicates are purely
    elementwise over the pair arrays, so *any* chunk size returns the same
    mask.
    """
    if chunk_size is None:
        chunk_size = pair_chunk_size(num_threads)
    m = int(a.size)
    if resolve_num_threads(num_threads) == 1 or m < 2 * chunk_size:
        return predicate(a, b)
    out = np.empty(m, dtype=bool)

    def shard(lo: int, hi: int) -> None:
        out[lo:hi] = predicate(a[lo:hi], b[lo:hi])

    map_shards(shard, m, num_threads=num_threads, chunk_size=chunk_size)
    return out


def frontier_step(
    flat: FlatKDTree,
    a: np.ndarray,
    b: np.ndarray,
    predicate: PairMask,
    *,
    num_threads: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One FIND_PAIR round over a frontier of pending node pairs.

    Orients every pair so the node with the larger bounding sphere comes
    first, evaluates the separation ``predicate`` for the whole frontier
    (sharded over the worker pool when ``num_threads > 1``; the select and
    expansion steps stay whole-frontier, so the outputs are identical at any
    thread count), and splits it three ways: the separated pairs, the
    both-leaf pairs (duplicate points — unsplittable yet not separated), and
    the expansion of everything else (larger node replaced by its two
    children).  This is the single traversal kernel shared by the WSPD
    construction and the MemoGFK GETRHO / GETPAIRS sweeps, which keeps the
    three in floating-point lockstep.

    Returns ``(separated, sep_a, sep_b, dup_a, dup_b, next_a, next_b)``.
    ``separated`` is a mask over the *input* frontier order (preserved by the
    orientation swap), so symmetric per-pair values computed before the call
    — e.g. the ρ lower bounds — can be gathered with it.
    """
    left_child = flat.left_child
    right_child = flat.right_child
    swap = flat.node_radius[a] < flat.node_radius[b]
    a, b = np.where(swap, b, a), np.where(swap, a, b)
    separated = evaluate_pair_mask(predicate, a, b, num_threads=num_threads)
    sep_a, sep_b = a[separated], b[separated]
    a, b = a[~separated], b[~separated]
    # Split the node with the larger bounding sphere.  A leaf cannot be
    # split; in that case split the other node instead (this only happens
    # with duplicate points).
    a_leaf = left_child[a] < 0
    a, b = np.where(a_leaf, b, a), np.where(a_leaf, a, b)
    both_leaf = left_child[a] < 0
    dup_a, dup_b = a[both_leaf], b[both_leaf]
    a, b = a[~both_leaf], b[~both_leaf]
    next_a = np.concatenate([left_child[a], right_child[a]])
    next_b = np.concatenate([b, b])
    return separated, sep_a, sep_b, dup_a, dup_b, next_a, next_b


def _check_wspd_tree(tree: KDTree) -> None:
    if tree.leaf_size != 1 and int(tree.flat.node_sizes[tree.flat.leaf_ids()].max()) > 1:
        raise InvalidParameterError(
            "the WSPD requires a kd-tree built with leaf_size=1: pairs of points "
            "inside a multi-point leaf would never be covered by the decomposition"
        )


def iterate_wspd_ids(
    flat: FlatKDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
    epsilon: Optional[float] = None,
    predicate: Optional[PairMask] = None,
    num_threads: Optional[int] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield the WSPD of ``flat`` as batches of node-id array pairs.

    Each yielded ``(a_ids, b_ids)`` batch holds the pairs recorded during one
    frontier round; concatenating all batches gives the full decomposition.
    This is the array-native core that :func:`iterate_wspd`,
    :func:`compute_wspd_ids` and the GFK driver all share.  ``num_threads``
    shards each round's separation test over the worker pool; the yielded
    batches are byte-identical at any setting.  ``epsilon`` parameterizes the
    ``"epsilon-certified"`` separation; ``predicate`` overrides the named
    separation with a custom pair mask (the approximate HDBSCAN* pipeline
    supplies its mutual-reachability certificate this way) — coverage is
    guaranteed for any predicate because unsplittable pairs are always
    recorded.
    """
    if predicate is None:
        predicate = separation_mask(flat, separation, s, epsilon)
    tracker = current_tracker()
    n = max(flat.size, 2)
    log_n = max(math.log2(n), 1.0)
    tracker.add(0.0, log_n, phase="wspd")

    # Stage 1 (WSPD procedure): one FIND_PAIR call per internal node.
    internal = np.flatnonzero(flat.left_child >= 0)
    tracker.add(float(internal.size), log_n, phase="wspd")
    if internal.size == 0:
        return

    # Stage 2 (FIND_PAIR): one frontier of pending pairs in place of the
    # parallel recursion.  Every frontier element is an independent parallel
    # task in the modelled algorithm, so only work (not depth) is charged per
    # visit; the O(log n) recursion depth was charged once above.
    a = flat.left_child[internal]
    b = flat.right_child[internal]
    while a.size:
        tracker.add(float(a.size), 0, phase="wspd")
        _, sep_a, sep_b, dup_a, dup_b, a, b = frontier_step(
            flat, a, b, predicate, num_threads=num_threads
        )
        if sep_a.size:
            yield sep_a, sep_b
        if dup_a.size:
            # Both singletons and not well separated: duplicates.  Record
            # them anyway so the decomposition covers the pair.
            yield dup_a, dup_b


def iterate_wspd(
    tree: KDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
) -> Iterator[WellSeparatedPair]:
    """Yield the WSPD pairs of ``tree`` one at a time (Algorithm 1).

    The generator form lets MemoGFK-style callers consume pairs without ever
    materializing the full decomposition; internally pairs are produced a
    vectorized frontier round at a time.
    """
    _check_wspd_tree(tree)
    for a_ids, b_ids in iterate_wspd_ids(tree.flat, separation=separation, s=s):
        for a_id, b_id in zip(a_ids.tolist(), b_ids.tolist()):
            yield WellSeparatedPair(tree.node(a_id), tree.node(b_id))


def compute_wspd_ids(
    tree: KDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
    epsilon: Optional[float] = None,
    predicate: Optional[PairMask] = None,
    num_threads: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The full decomposition as two parallel node-id arrays."""
    _check_wspd_tree(tree)
    batches = list(
        iterate_wspd_ids(
            tree.flat,
            separation=separation,
            s=s,
            epsilon=epsilon,
            predicate=predicate,
            num_threads=num_threads,
        )
    )
    if not batches:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return (
        np.concatenate([batch[0] for batch in batches]),
        np.concatenate([batch[1] for batch in batches]),
    )


def compute_wspd(
    tree: KDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
) -> List[WellSeparatedPair]:
    """Materialize the full list of WSPD pairs (what the naive baseline needs)."""
    return list(iterate_wspd(tree, separation=separation, s=s))


def count_wspd_pairs(
    tree: KDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
) -> int:
    """Number of pairs the decomposition produces, without storing them."""
    _check_wspd_tree(tree)
    return sum(
        int(batch[0].size)
        for batch in iterate_wspd_ids(tree.flat, separation=separation, s=s)
    )


def validate_wspd_realization(tree: KDTree, pairs: List[WellSeparatedPair]) -> bool:
    """Check the realization property: every unordered point pair is covered
    by exactly one well-separated pair.

    This is an O(sum |A||B|) check used by the test suite on small inputs; it
    returns True when properties (2)–(4) of the paper's Section 2.3 hold.
    """
    n = tree.size
    covered = {}
    for pair in pairs:
        for i in pair.node_a.indices:
            for j in pair.node_b.indices:
                if i == j:
                    return False
                key = (min(int(i), int(j)), max(int(i), int(j)))
                if key in covered:
                    return False
                covered[key] = True
    expected = n * (n - 1) // 2
    return len(covered) == expected
