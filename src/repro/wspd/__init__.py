"""Well-separated pair decomposition (WSPD) and bichromatic closest pairs.

This package implements Algorithm 1 of the paper (parallel WSPD over a
spatial-median kd-tree), the two notions of well-separation used in the paper
(the standard Callahan–Kosaraju geometric separation, and the new
HDBSCAN*-specific disjunction of geometric separation and mutual
unreachability), and exact BCCP / BCCP* computations with the bounding-sphere
distance bounds that MemoGFK's pruned traversals rely on.
"""

from repro.wspd.separation import (
    node_distance,
    node_max_distance,
    well_separated,
    geometrically_separated,
    mutually_unreachable,
    hdbscan_well_separated,
    node_distances,
    node_max_distances,
    well_separated_mask,
    geometrically_separated_mask,
    mutually_unreachable_mask,
    hdbscan_well_separated_mask,
)
from repro.wspd.bccp import BCCPResult, bccp, bccp_star, bccp_batch, BCCPCache
from repro.wspd.wspd import (
    WellSeparatedPair,
    compute_wspd,
    compute_wspd_ids,
    count_wspd_pairs,
)

__all__ = [
    "node_distance",
    "node_max_distance",
    "well_separated",
    "geometrically_separated",
    "mutually_unreachable",
    "hdbscan_well_separated",
    "node_distances",
    "node_max_distances",
    "well_separated_mask",
    "geometrically_separated_mask",
    "mutually_unreachable_mask",
    "hdbscan_well_separated_mask",
    "BCCPResult",
    "bccp",
    "bccp_star",
    "bccp_batch",
    "BCCPCache",
    "WellSeparatedPair",
    "compute_wspd",
    "compute_wspd_ids",
    "count_wspd_pairs",
]
