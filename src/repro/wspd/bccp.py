"""Bichromatic closest pair (BCCP) and its mutual-reachability variant (BCCP*).

Given two kd-tree nodes ``A`` and ``B``, BCCP returns the pair of points
``(u, v)`` with ``u in A`` and ``v in B`` minimizing the Euclidean distance;
BCCP* minimizes the *mutual reachability* distance
``max(cd(u), cd(v), d(u, v))`` instead.  Both are computed exactly by
evaluating all ``|A| * |B|`` candidate distances, which is how the paper's
implementation computes them as well (the theoretical subquadratic BCCP is
impractical and unimplemented there too).

Two kernel shapes are provided:

* the scalar kernels :func:`bccp` / :func:`bccp_star` evaluate one node pair
  with one ``(|A|, |B|)`` distance matrix — the reference used by baselines
  and tests;
* the batched kernel :func:`bccp_batch` evaluates *arrays* of node pairs
  against the :class:`~repro.spatial.flat.FlatKDTree` SoA layout: pairs are
  grouped by padded size class and each class is resolved by the tree's
  :class:`~repro.core.backend.KernelBackend` — the numpy backend with one 3-d
  ``einsum`` + one masked ``argmin``, the numba backend with a compiled
  per-pair scan that never materializes the distance tensor — with no
  per-pair Python dispatch either way.  This is what the GFK / MemoGFK round
  drivers submit whole frontiers to.  Under a lowered (float32) backend the
  scan runs on the tree's ``scoring_points``; the winning pairs' weights are
  always re-evaluated in exact float64.

Both shapes share :func:`repro.core.distance.exact_edge_weights` for the
winning pair's weight, so the cancellation-prone matrix expansion never leaks
into an MST edge weight and the two paths agree bit-for-bit.

Results are memoized in a :class:`BCCPCache` keyed by unordered node-id
pairs — matching the paper's remark that "we cache the BCCP results of pairs
to avoid repeated computations" — stored as sorted key/result *arrays* so a
whole round's frontier is partitioned into hits and misses with one
``searchsorted`` instead of per-pair dict probes.

Every kernel takes its distance from the tree's pluggable metric
(:attr:`FlatKDTree.metric`): the scalar kernels use the metric's dense
``cross_distances``, the batched kernel its block tensor, and the exact
re-evaluation its difference-and-norm pass.  A cache is bound to one
``(tree, metric)`` pair — the metric is part of its identity, so results
computed under different metrics can never mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.budget import current_memory_budget
from repro.parallel.pool import current_workspace, parallel_map, resolve_num_threads
from repro.parallel.scheduler import current_tracker
from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDNode, KDTree

#: Soft cap on the number of padded distance entries one batched class chunk
#: may materialize (8M float64 entries = 64 MB) when no memory budget is
#: active; a bounded ambient budget shrinks the cap to its tile share.
_BATCH_CHUNK_ELEMENTS = 8_000_000

#: Node pairs whose own ``|A| * |B|`` distance matrix reaches this many
#: entries are evaluated individually: one kernel dispatch is already
#: amortized and padding them against a size class would only waste work.
_LARGE_PAIR_ELEMENTS = 16_384


@dataclass(frozen=True)
class BCCPResult:
    """Closest pair between two nodes.

    ``point_a`` / ``point_b`` are indices into the original point array;
    ``distance`` is the minimized quantity (Euclidean for BCCP, mutual
    reachability for BCCP*).
    """

    point_a: int
    point_b: int
    distance: float

    def as_edge(self) -> Tuple[int, int, float]:
        return self.point_a, self.point_b, self.distance


def bccp(tree: KDTree, a: KDNode, b: KDNode) -> BCCPResult:
    """Exact bichromatic closest pair between nodes ``a`` and ``b``.

    The minimized distance is taken under the tree's metric.
    """
    points_a = tree.points[a.indices]
    points_b = tree.points[b.indices]
    current_tracker().add(a.size * b.size, 1.0, phase="bccp")
    distances = tree.metric.cross_distances(points_a, points_b)
    flat = int(np.argmin(distances))
    i, j = divmod(flat, distances.shape[1])
    point_a = int(a.indices[i])
    point_b = int(b.indices[j])
    exact = float(tree.metric.exact_edge_weights(tree.points, [point_a], [point_b])[0])
    return BCCPResult(point_a=point_a, point_b=point_b, distance=exact)


def bccp_star(tree: KDTree, a: KDNode, b: KDNode, core_distances: np.ndarray) -> BCCPResult:
    """Exact BCCP under the mutual reachability distance.

    ``core_distances[i]`` is the core distance of point ``i``; the minimized
    quantity is ``max(cd(u), cd(v), d(u, v))``.
    """
    points_a = tree.points[a.indices]
    points_b = tree.points[b.indices]
    current_tracker().add(a.size * b.size, 1.0, phase="bccp")
    distances = tree.metric.cross_distances(points_a, points_b)
    cd_a = core_distances[a.indices]
    cd_b = core_distances[b.indices]
    mutual = np.maximum(distances, np.maximum(cd_a[:, None], cd_b[None, :]))
    flat = int(np.argmin(mutual))
    i, j = divmod(flat, mutual.shape[1])
    point_a = int(a.indices[i])
    point_b = int(b.indices[j])
    exact = float(
        tree.metric.exact_edge_weights(
            tree.points, [point_a], [point_b], core_distances
        )[0]
    )
    return BCCPResult(point_a=point_a, point_b=point_b, distance=exact)


def bccp_batch(
    flat: FlatKDTree,
    a_ids: np.ndarray,
    b_ids: np.ndarray,
    core_distances: Optional[np.ndarray] = None,
    *,
    num_threads: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact BCCP (or BCCP* with ``core_distances``) of whole node-pair arrays.

    Pairs are grouped by padded size class ``(pad(|A|), pad(|B|))`` (padding
    to the next power of two) and every class is evaluated with one batched
    distance tensor built from the same kernels as the scalar path (einsum
    row norms, batched BLAS matmul cross terms, clamp, sqrt); padded slots
    are masked to ``+inf`` so the row-major ``argmin`` selects exactly the
    entry the scalar kernel would, including tie-breaking at equal distances.
    The winning pairs are re-evaluated with the shared cancellation-safe
    exact kernel.

    With ``num_threads > 1`` the size-class chunks (and the individually
    evaluated large pairs) are dispatched as independent tasks on the
    persistent worker pool.  Every task resolves a disjoint set of output
    rows, each row's winner depends only on that pair's own padded distance
    block, and the class padding is computed before chunking — so the result
    arrays are byte-identical at any thread count.

    Returns ``(point_a, point_b, distance)`` arrays aligned with the input
    pair order.
    """
    a_ids = np.asarray(a_ids, dtype=np.int64)
    b_ids = np.asarray(b_ids, dtype=np.int64)
    m = a_ids.size
    out_pa = np.empty(m, dtype=np.int64)
    out_pb = np.empty(m, dtype=np.int64)
    if m == 0:
        return out_pa, out_pb, np.empty(0, dtype=np.float64)

    metric = flat.metric
    backend = flat.backend
    points = flat.points
    # Candidate scoring runs on the backend's scoring view of the points
    # (aliases ``points`` for exact backends, float32 copy for lowered ones);
    # the winners' reported weights always come from the float64 ``points``.
    scoring_points = flat.scoring_points
    perm = flat.perm
    start_a = flat.node_start[a_ids]
    start_b = flat.node_start[b_ids]
    size_a = flat.node_end[a_ids] - start_a
    size_b = flat.node_end[b_ids] - start_b
    current_tracker().add(float((size_a * size_b).sum()), 1.0, phase="bccp")
    scoring_cd = None
    if core_distances is not None:
        core_distances = np.asarray(core_distances, dtype=np.float64)
        scoring_cd = np.asarray(core_distances, dtype=backend.scoring_dtype)

    # Pairs whose own distance matrix is already large amortize one kernel
    # dispatch by themselves; evaluating them individually avoids any padding
    # waste.  Everything else is grouped into power-of-two size classes and
    # padded only up to the class's actual maxima.  Each (sub, p_a, p_b) task
    # resolves a disjoint set of output rows, so the task list can run inline
    # or on the worker pool with identical results.
    workers = resolve_num_threads(num_threads)
    budget = current_memory_budget()
    chunk_elements = budget.tile_elements(
        np.float64,
        default_elements=_BATCH_CHUNK_ELEMENTS,
        parts=workers,
        component="bccp",
    )
    pair_work = size_a * size_b
    tasks: list = []
    for row in np.flatnonzero(pair_work >= _LARGE_PAIR_ELEMENTS):
        sub = np.array([row], dtype=np.int64)
        # A single pair's |A| x |B| matrix is the irreducible tile: splitting
        # it could change BLAS blocking and argmin tie-breaking, so it stays
        # whole and any overshoot of the tile ceiling is recorded honestly.
        budget.note_allocation(int(pair_work[row]) * 8)
        tasks.append((sub, int(size_a[row]), int(size_b[row])))

    small = np.flatnonzero(pair_work < _LARGE_PAIR_ELEMENTS)
    if small.size:
        bits_a = np.ceil(np.log2(np.maximum(size_a, 1))).astype(np.int64)
        bits_b = np.ceil(np.log2(np.maximum(size_b, 1))).astype(np.int64)
        class_key = (bits_a * 64 + bits_b)[small]
        order = small[np.argsort(class_key, kind="stable")]
        sorted_key = np.sort(class_key, kind="stable")
        boundaries = np.flatnonzero(np.diff(sorted_key)) + 1
        group_starts = np.concatenate([[0], boundaries, [order.size]])

        for g in range(group_starts.size - 1):
            rows = order[group_starts[g] : group_starts[g + 1]]
            # Padding is fixed per class *before* chunking, so chunk
            # boundaries cannot change any row's padded block or its argmin.
            p_a = int(size_a[rows].max())
            p_b = int(size_b[rows].max())
            # Chunk so one class never materializes an oversized tensor; with
            # several workers, split further so the class load-balances.
            chunk = max(1, chunk_elements // (p_a * p_b))
            if workers > 1:
                balanced = -(-int(rows.size) // (4 * workers))
                chunk = max(1, min(chunk, balanced))
            for lo in range(0, rows.size, chunk):
                tasks.append((rows[lo : lo + chunk], p_a, p_b))

    def run_task(task) -> None:
        sub, p_a, p_b = task
        backend.bccp_class(
            metric,
            scoring_points,
            perm,
            scoring_cd,
            start_a[sub],
            size_a[sub],
            start_b[sub],
            size_b[sub],
            p_a,
            p_b,
            sub,
            out_pa,
            out_pb,
            current_workspace(),
        )

    parallel_map(run_task, tasks, num_threads=workers)
    weights = metric.exact_edge_weights(points, out_pa, out_pb, core_distances)
    return out_pa, out_pb, weights


class BCCPCache:
    """Memoization of BCCP / BCCP* results keyed by unordered node-id pairs.

    Storage is array-native: one sorted int64 key array (``min_id * num_nodes
    + max_id``) with aligned endpoint/weight result columns.  A whole round's
    frontier is partitioned into cache hits and misses with one vectorized
    ``searchsorted``, the unique misses are evaluated by the batched kernel,
    and the new results are merged back into the sorted store — there is no
    per-pair dict traffic on the hot path.

    The cache also counts distance evaluations, which the memory/ablation
    benchmarks use to quantify how many BCCPs each EMST variant avoided.

    Growth policy: the four result columns are rebuilt on every merge (the
    store must stay sorted), so there is no over-allocation to shrink —
    capacity always equals the live count and :attr:`nbytes` is exact.  Under
    a bounded ambient :class:`~repro.core.budget.MemoryBudget`, a store past
    the budget's spill threshold is kept in unlinked temporary-file memmaps
    (spill-to-disk mode) and its footprint is registered as the
    ``"bccp_cache"`` reservation so tile sizing leaves room for it; every
    accessor behaves identically either way.
    """

    def __init__(
        self,
        tree: KDTree,
        *,
        core_distances: Optional[np.ndarray] = None,
        num_threads: Optional[int] = None,
    ) -> None:
        """``num_threads`` is forwarded to every :func:`bccp_batch` call the
        cache issues, so one knob threads a whole driver's BCCP work."""
        self._tree = tree
        self._flat = tree.flat
        #: The metric every cached result was computed under (part of the
        #: cache's identity: one cache never serves two metrics).
        self.metric = tree.metric
        self._num_threads = num_threads
        self._core_distances = (
            None
            if core_distances is None
            else np.asarray(core_distances, dtype=np.float64)
        )
        self._keys = np.empty(0, dtype=np.int64)
        self._point_a = np.empty(0, dtype=np.int64)
        self._point_b = np.empty(0, dtype=np.int64)
        self._weights = np.empty(0, dtype=np.float64)
        self.num_bccp_calls = 0
        self.num_distance_evaluations = 0

    @property
    def uses_mutual_reachability(self) -> bool:
        return self._core_distances is not None

    def _pair_keys(self, a_ids: np.ndarray, b_ids: np.ndarray) -> np.ndarray:
        lo = np.minimum(a_ids, b_ids)
        hi = np.maximum(a_ids, b_ids)
        return lo * np.int64(self._flat.num_nodes) + hi

    def get_batch(
        self, a_ids: np.ndarray, b_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """BCCP (or BCCP*) of a whole frontier of node pairs at once.

        Returns ``(point_a, point_b, distance)`` arrays aligned with the input
        order.  Cached pairs are served from the sorted store; the remaining
        unique pairs are evaluated with one :func:`bccp_batch` call (oriented
        by their first occurrence, like repeated scalar calls would be) and
        merged into the store.
        """
        a_ids = np.asarray(a_ids, dtype=np.int64)
        b_ids = np.asarray(b_ids, dtype=np.int64)
        m = a_ids.size
        out_pa = np.empty(m, dtype=np.int64)
        out_pb = np.empty(m, dtype=np.int64)
        out_w = np.empty(m, dtype=np.float64)
        if m == 0:
            return out_pa, out_pb, out_w

        keys = self._pair_keys(a_ids, b_ids)
        pos = np.searchsorted(self._keys, keys)
        pos_clipped = np.minimum(pos, max(self._keys.size - 1, 0))
        hit = (
            (self._keys[pos_clipped] == keys)
            if self._keys.size
            else np.zeros(m, dtype=bool)
        )
        hit_pos = pos_clipped[hit]
        out_pa[hit] = self._point_a[hit_pos]
        out_pb[hit] = self._point_b[hit_pos]
        out_w[hit] = self._weights[hit_pos]

        miss = ~hit
        if miss.any():
            miss_idx = np.flatnonzero(miss)
            miss_keys = keys[miss_idx]
            unique_keys, first, inverse = np.unique(
                miss_keys, return_index=True, return_inverse=True
            )
            eval_a = a_ids[miss_idx[first]]
            eval_b = b_ids[miss_idx[first]]
            sizes = self._flat.node_sizes
            self.num_bccp_calls += int(unique_keys.size)
            self.num_distance_evaluations += int(
                (sizes[eval_a] * sizes[eval_b]).sum()
            )
            pa, pb, w = bccp_batch(
                self._flat,
                eval_a,
                eval_b,
                self._core_distances,
                num_threads=self._num_threads,
            )
            out_pa[miss_idx] = pa[inverse]
            out_pb[miss_idx] = pb[inverse]
            out_w[miss_idx] = w[inverse]
            self._insert(unique_keys, pa, pb, w)
        return out_pa, out_pb, out_w

    @property
    def nbytes(self) -> int:
        """Exact bytes held by the four store columns (no over-allocation)."""
        return int(
            self._keys.nbytes
            + self._point_a.nbytes
            + self._point_b.nbytes
            + self._weights.nbytes
        )

    @staticmethod
    def _store(column: np.ndarray, budget) -> np.ndarray:
        """Final storage for a merged column: RAM, or spilled past threshold."""
        if not budget.wants_spill(column.nbytes):
            return column
        spilled = budget.allocate(column.shape[0], column.dtype)
        spilled[:] = column
        return spilled

    def _insert(
        self,
        keys: np.ndarray,
        point_a: np.ndarray,
        point_b: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """Merge new (already unique, sorted) results into the sorted store."""
        budget = current_memory_budget()
        merged_keys = np.concatenate([self._keys, keys])
        order = np.argsort(merged_keys, kind="stable")
        self._keys = self._store(merged_keys[order], budget)
        self._point_a = self._store(
            np.concatenate([self._point_a, point_a])[order], budget
        )
        self._point_b = self._store(
            np.concatenate([self._point_b, point_b])[order], budget
        )
        self._weights = self._store(
            np.concatenate([self._weights, weights])[order], budget
        )
        if budget.bounded:
            budget.reserve("bccp_cache", self.nbytes)

    def close(self) -> None:
        """Release the store columns and the ``"bccp_cache"`` reservation.

        The MST drivers call this in ``finally`` blocks: under a bounded
        budget the columns may be spill-file memmaps, and dropping them here
        unmaps the spill files deterministically even when a fit dies
        mid-round (instead of whenever garbage collection notices).  The
        cache is empty but usable afterwards; the evaluation counters are
        kept so post-mortem statistics stay truthful.
        """
        self._keys = np.empty(0, dtype=np.int64)
        self._point_a = np.empty(0, dtype=np.int64)
        self._point_b = np.empty(0, dtype=np.int64)
        self._weights = np.empty(0, dtype=np.float64)
        budget = current_memory_budget()
        if budget.bounded:
            budget.release("bccp_cache")

    def get(self, a: KDNode, b: KDNode) -> BCCPResult:
        """BCCP (or BCCP*, if core distances were supplied) of one node pair."""
        pa, pb, w = self.get_batch(
            np.array([a.node_id], dtype=np.int64),
            np.array([b.node_id], dtype=np.int64),
        )
        return BCCPResult(point_a=int(pa[0]), point_b=int(pb[0]), distance=float(w[0]))

    def __len__(self) -> int:
        return int(self._keys.size)
