"""Bichromatic closest pair (BCCP) and its mutual-reachability variant (BCCP*).

Given two kd-tree nodes ``A`` and ``B``, BCCP returns the pair of points
``(u, v)`` with ``u in A`` and ``v in B`` minimizing the Euclidean distance;
BCCP* minimizes the *mutual reachability* distance
``max(cd(u), cd(v), d(u, v))`` instead.  Both are computed exactly by
evaluating all ``|A| * |B|`` candidate distances with one vectorized kernel,
which is how the paper's implementation computes them as well (the theoretical
subquadratic BCCP is impractical and unimplemented there too).

Results are memoized in a :class:`BCCPCache` keyed by node ids, matching the
paper's remark that "we cache the BCCP results of pairs to avoid repeated
computations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.distance import cross_distances
from repro.parallel.scheduler import current_tracker
from repro.spatial.kdtree import KDNode, KDTree


@dataclass(frozen=True)
class BCCPResult:
    """Closest pair between two nodes.

    ``point_a`` / ``point_b`` are indices into the original point array;
    ``distance`` is the minimized quantity (Euclidean for BCCP, mutual
    reachability for BCCP*).
    """

    point_a: int
    point_b: int
    distance: float

    def as_edge(self) -> Tuple[int, int, float]:
        return self.point_a, self.point_b, self.distance


def bccp(tree: KDTree, a: KDNode, b: KDNode) -> BCCPResult:
    """Exact Euclidean bichromatic closest pair between nodes ``a`` and ``b``."""
    points_a = tree.points[a.indices]
    points_b = tree.points[b.indices]
    current_tracker().add(a.size * b.size, 1.0, phase="bccp")
    distances = cross_distances(points_a, points_b)
    flat = int(np.argmin(distances))
    i, j = divmod(flat, distances.shape[1])
    # Recompute the winning distance directly: the matrix kernel loses a few
    # digits to cancellation, and MST edge weights should be exact.
    exact = float(np.linalg.norm(points_a[i] - points_b[j]))
    return BCCPResult(
        point_a=int(a.indices[i]),
        point_b=int(b.indices[j]),
        distance=exact,
    )


def bccp_star(tree: KDTree, a: KDNode, b: KDNode, core_distances: np.ndarray) -> BCCPResult:
    """Exact BCCP under the mutual reachability distance.

    ``core_distances[i]`` is the core distance of point ``i``; the minimized
    quantity is ``max(cd(u), cd(v), d(u, v))``.
    """
    points_a = tree.points[a.indices]
    points_b = tree.points[b.indices]
    current_tracker().add(a.size * b.size, 1.0, phase="bccp")
    distances = cross_distances(points_a, points_b)
    cd_a = core_distances[a.indices]
    cd_b = core_distances[b.indices]
    mutual = np.maximum(distances, np.maximum(cd_a[:, None], cd_b[None, :]))
    flat = int(np.argmin(mutual))
    i, j = divmod(flat, mutual.shape[1])
    exact = max(
        float(np.linalg.norm(points_a[i] - points_b[j])),
        float(cd_a[i]),
        float(cd_b[j]),
    )
    return BCCPResult(
        point_a=int(a.indices[i]),
        point_b=int(b.indices[j]),
        distance=exact,
    )


class BCCPCache:
    """Memoization of BCCP / BCCP* results keyed by unordered node-id pairs.

    The cache also counts distance evaluations, which the memory/ablation
    benchmarks use to quantify how many BCCPs each EMST variant avoided.
    """

    def __init__(
        self,
        tree: KDTree,
        *,
        core_distances: Optional[np.ndarray] = None,
    ) -> None:
        self._tree = tree
        self._core_distances = core_distances
        self._cache: Dict[Tuple[int, int], BCCPResult] = {}
        self.num_bccp_calls = 0
        self.num_distance_evaluations = 0

    @property
    def uses_mutual_reachability(self) -> bool:
        return self._core_distances is not None

    def _key(self, a: KDNode, b: KDNode) -> Tuple[int, int]:
        if a.node_id <= b.node_id:
            return (a.node_id, b.node_id)
        return (b.node_id, a.node_id)

    def get(self, a: KDNode, b: KDNode) -> BCCPResult:
        """BCCP (or BCCP*, if core distances were supplied) of the node pair."""
        key = self._key(a, b)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.num_bccp_calls += 1
        self.num_distance_evaluations += a.size * b.size
        if self._core_distances is None:
            result = bccp(self._tree, a, b)
        else:
            result = bccp_star(self._tree, a, b, self._core_distances)
        self._cache[key] = result
        return result

    def __len__(self) -> int:
        return len(self._cache)
