"""Well-separation predicates.

Three predicates appear in the paper:

* ``well_separated(A, B, s)`` — the classical Callahan–Kosaraju definition:
  both sets fit in spheres of radius ``r`` and the gap between the spheres is
  at least ``s * r`` (the paper fixes ``s = 2``).
* ``geometrically_separated(A, B)`` — ``d(A, B) >= max(A_diam, B_diam)``,
  which for the sphere-based bounds used here coincides with ``s = 2``
  separation; Section 3.2.2 phrases the HDBSCAN* condition this way.
* ``mutually_unreachable(A, B)`` —
  ``max(d(A, B), cd_min(A), cd_min(B)) >=
  max(A_diam, B_diam, cd_max(A), cd_max(B))``.

The HDBSCAN* notion of well-separation (``hdbscan_well_separated``) is the
disjunction of the last two; because the WSPD recursion stops as soon as a
pair is well-separated, the weaker (disjunctive) predicate terminates earlier
and produces fewer pairs — the source of the paper's space savings.

Every predicate exists in two forms: a scalar form over :class:`KDNode` views
(used by pair-at-a-time callers and the tests) and a ``*_mask`` form over
parallel arrays of node ids of a :class:`~repro.spatial.flat.FlatKDTree`,
which evaluates the predicate for a whole traversal frontier with a handful
of array operations.  Both forms apply the identical floating-point formulas
to the identical stored centers/radii, so they agree bit-for-bit.

Every predicate is metric-general: the node radii are stored under the
tree's metric and the center gaps are computed with the same metric's norm,
so the sphere-based bounds (triangle inequality only) hold for any of the
norm-induced metrics in :mod:`repro.core.metric`.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import NotComputedError
from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDNode


def node_distance(a: KDNode, b: KDNode) -> float:
    """``d(A, B)``: minimum distance between the nodes' bounding spheres."""
    return a.sphere.distance(b.sphere)


def node_max_distance(a: KDNode, b: KDNode) -> float:
    """``d_max(A, B)``: maximum distance between points of the bounding spheres."""
    return a.sphere.max_distance(b.sphere)


def well_separated(a: KDNode, b: KDNode, s: float = 2.0) -> bool:
    """Classical well-separation with separation constant ``s``."""
    return a.sphere.well_separated_from(b.sphere, s)


def geometrically_separated(a: KDNode, b: KDNode) -> bool:
    """``d(A, B) >= max(A_diam, B_diam)`` (equivalent to ``s = 2``)."""
    return node_distance(a, b) >= max(a.diameter, b.diameter)


def mutually_unreachable(a: KDNode, b: KDNode) -> bool:
    """Mutual-unreachability condition of Section 3.2.2.

    Requires the kd-tree to have been annotated with core distances
    (:meth:`repro.spatial.kdtree.KDTree.annotate_core_distances`).
    """
    if a.cd_min is None or b.cd_min is None:
        raise NotComputedError(
            "mutually_unreachable requires core-distance annotations on the tree"
        )
    lhs = max(node_distance(a, b), a.cd_min, b.cd_min)
    rhs = max(a.diameter, b.diameter, a.cd_max, b.cd_max)
    return lhs >= rhs


def hdbscan_well_separated(a: KDNode, b: KDNode) -> bool:
    """The paper's new notion: geometrically separated OR mutually unreachable."""
    if geometrically_separated(a, b):
        return True
    return mutually_unreachable(a, b)


# ---------------------------------------------------------------------------
# Array forms over flat-tree node-id frontiers
# ---------------------------------------------------------------------------

def center_gaps(flat: FlatKDTree, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distances between the bounding-sphere centers of node-id arrays.

    Computed under the tree's metric, so every sphere-based bound below is
    metric-correct (the radii stored on the flat tree are already derived
    under the same metric).
    """
    diff = flat.node_center[a] - flat.node_center[b]
    return flat.metric.diff_norms(diff)


def node_distances(flat: FlatKDTree, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``d(A, B)`` for parallel node-id arrays (sphere minimum distances)."""
    return np.maximum(
        center_gaps(flat, a, b) - flat.node_radius[a] - flat.node_radius[b], 0.0
    )


def node_max_distances(flat: FlatKDTree, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``d_max(A, B)`` for parallel node-id arrays."""
    return center_gaps(flat, a, b) + flat.node_radius[a] + flat.node_radius[b]


def well_separated_mask(
    flat: FlatKDTree, a: np.ndarray, b: np.ndarray, s: float = 2.0
) -> np.ndarray:
    """Classical well-separation of every pair in a frontier at once."""
    r = np.maximum(flat.node_radius[a], flat.node_radius[b])
    return center_gaps(flat, a, b) - 2.0 * r >= s * r


def geometrically_separated_mask(
    flat: FlatKDTree, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """``d(A, B) >= max(A_diam, B_diam)`` over a frontier of node pairs."""
    diameters = 2.0 * np.maximum(flat.node_radius[a], flat.node_radius[b])
    return node_distances(flat, a, b) >= diameters


def mutually_unreachable_mask(
    flat: FlatKDTree, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Mutual-unreachability of every pair in a frontier at once."""
    if flat.cd_min is None or flat.cd_max is None:
        raise NotComputedError(
            "mutually_unreachable requires core-distance annotations on the tree"
        )
    lhs = np.maximum(
        node_distances(flat, a, b), np.maximum(flat.cd_min[a], flat.cd_min[b])
    )
    rhs = np.maximum(
        2.0 * np.maximum(flat.node_radius[a], flat.node_radius[b]),
        np.maximum(flat.cd_max[a], flat.cd_max[b]),
    )
    return lhs >= rhs


def hdbscan_well_separated_mask(
    flat: FlatKDTree, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Disjunctive HDBSCAN* separation over a frontier of node pairs."""
    return geometrically_separated_mask(flat, a, b) | mutually_unreachable_mask(
        flat, a, b
    )
