"""Well-separation predicates.

Three predicates appear in the paper:

* ``well_separated(A, B, s)`` — the classical Callahan–Kosaraju definition:
  both sets fit in spheres of radius ``r`` and the gap between the spheres is
  at least ``s * r`` (the paper fixes ``s = 2``).
* ``geometrically_separated(A, B)`` — ``d(A, B) >= max(A_diam, B_diam)``,
  which for the sphere-based bounds used here coincides with ``s = 2``
  separation; Section 3.2.2 phrases the HDBSCAN* condition this way.
* ``mutually_unreachable(A, B)`` —
  ``max(d(A, B), cd_min(A), cd_min(B)) >=
  max(A_diam, B_diam, cd_max(A), cd_max(B))``.

The HDBSCAN* notion of well-separation (``hdbscan_well_separated``) is the
disjunction of the last two; because the WSPD recursion stops as soon as a
pair is well-separated, the weaker (disjunctive) predicate terminates earlier
and produces fewer pairs — the source of the paper's space savings.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import NotComputedError
from repro.spatial.kdtree import KDNode


def node_distance(a: KDNode, b: KDNode) -> float:
    """``d(A, B)``: minimum distance between the nodes' bounding spheres."""
    return a.sphere.distance(b.sphere)


def node_max_distance(a: KDNode, b: KDNode) -> float:
    """``d_max(A, B)``: maximum distance between points of the bounding spheres."""
    return a.sphere.max_distance(b.sphere)


def well_separated(a: KDNode, b: KDNode, s: float = 2.0) -> bool:
    """Classical well-separation with separation constant ``s``."""
    return a.sphere.well_separated_from(b.sphere, s)


def geometrically_separated(a: KDNode, b: KDNode) -> bool:
    """``d(A, B) >= max(A_diam, B_diam)`` (equivalent to ``s = 2``)."""
    return node_distance(a, b) >= max(a.diameter, b.diameter)


def mutually_unreachable(a: KDNode, b: KDNode) -> bool:
    """Mutual-unreachability condition of Section 3.2.2.

    Requires the kd-tree to have been annotated with core distances
    (:meth:`repro.spatial.kdtree.KDTree.annotate_core_distances`).
    """
    if a.cd_min is None or b.cd_min is None:
        raise NotComputedError(
            "mutually_unreachable requires core-distance annotations on the tree"
        )
    lhs = max(node_distance(a, b), a.cd_min, b.cd_min)
    rhs = max(a.diameter, b.diameter, a.cd_max, b.cd_max)
    return lhs >= rhs


def hdbscan_well_separated(a: KDNode, b: KDNode) -> bool:
    """The paper's new notion: geometrically separated OR mutually unreachable."""
    if geometrically_separated(a, b):
        return True
    return mutually_unreachable(a, b)
