"""Well-separation predicates.

Three predicates appear in the paper:

* ``well_separated(A, B, s)`` — the classical Callahan–Kosaraju definition:
  both sets fit in spheres of radius ``r`` and the gap between the spheres is
  at least ``s * r`` (the paper fixes ``s = 2``).
* ``geometrically_separated(A, B)`` — ``d(A, B) >= max(A_diam, B_diam)``,
  which for the sphere-based bounds used here coincides with ``s = 2``
  separation; Section 3.2.2 phrases the HDBSCAN* condition this way.
* ``mutually_unreachable(A, B)`` —
  ``max(d(A, B), cd_min(A), cd_min(B)) >=
  max(A_diam, B_diam, cd_max(A), cd_max(B))``.

The HDBSCAN* notion of well-separation (``hdbscan_well_separated``) is the
disjunction of the last two; because the WSPD recursion stops as soon as a
pair is well-separated, the weaker (disjunctive) predicate terminates earlier
and produces fewer pairs — the source of the paper's space savings.

Every predicate exists in two forms: a scalar form over :class:`KDNode` views
(used by pair-at-a-time callers and the tests) and a ``*_mask`` form over
parallel arrays of node ids of a :class:`~repro.spatial.flat.FlatKDTree`,
which evaluates the predicate for a whole traversal frontier with a handful
of array operations.  Both forms apply the identical floating-point formulas
to the identical stored centers/radii, so they agree bit-for-bit.

Every predicate is metric-general: the node radii are stored under the
tree's metric and the center gaps are computed with the same metric's norm,
so the sphere-based bounds (triangle inequality only) hold for any of the
norm-induced metrics in :mod:`repro.core.metric`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.errors import NotComputedError
from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDNode


def node_distance(a: KDNode, b: KDNode) -> float:
    """``d(A, B)``: minimum distance between the nodes' bounding spheres."""
    return a.sphere.distance(b.sphere)


def node_max_distance(a: KDNode, b: KDNode) -> float:
    """``d_max(A, B)``: maximum distance between points of the bounding spheres."""
    return a.sphere.max_distance(b.sphere)


def well_separated(a: KDNode, b: KDNode, s: float = 2.0) -> bool:
    """Classical well-separation with separation constant ``s``."""
    return a.sphere.well_separated_from(b.sphere, s)


def geometrically_separated(a: KDNode, b: KDNode) -> bool:
    """``d(A, B) >= max(A_diam, B_diam)`` (equivalent to ``s = 2``)."""
    return node_distance(a, b) >= max(a.diameter, b.diameter)


def mutually_unreachable(a: KDNode, b: KDNode) -> bool:
    """Mutual-unreachability condition of Section 3.2.2.

    Requires the kd-tree to have been annotated with core distances
    (:meth:`repro.spatial.kdtree.KDTree.annotate_core_distances`).
    """
    if a.cd_min is None or b.cd_min is None:
        raise NotComputedError(
            "mutually_unreachable requires core-distance annotations on the tree"
        )
    lhs = max(node_distance(a, b), a.cd_min, b.cd_min)
    rhs = max(a.diameter, b.diameter, a.cd_max, b.cd_max)
    return lhs >= rhs


def hdbscan_well_separated(a: KDNode, b: KDNode) -> bool:
    """The paper's new notion: geometrically separated OR mutually unreachable."""
    if geometrically_separated(a, b):
        return True
    return mutually_unreachable(a, b)


# ---------------------------------------------------------------------------
# Array forms over flat-tree node-id frontiers
# ---------------------------------------------------------------------------

def center_gaps(flat: FlatKDTree, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distances between the bounding-sphere centers of node-id arrays.

    Computed under the tree's metric, so every sphere-based bound below is
    metric-correct (the radii stored on the flat tree are already derived
    under the same metric).
    """
    diff = flat.node_center[a] - flat.node_center[b]
    return flat.metric.diff_norms(diff)


def node_distances(flat: FlatKDTree, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``d(A, B)`` for parallel node-id arrays (sphere minimum distances)."""
    return np.maximum(
        center_gaps(flat, a, b) - flat.node_radius[a] - flat.node_radius[b], 0.0
    )


def node_max_distances(flat: FlatKDTree, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``d_max(A, B)`` for parallel node-id arrays."""
    return center_gaps(flat, a, b) + flat.node_radius[a] + flat.node_radius[b]


def well_separated_mask(
    flat: FlatKDTree, a: np.ndarray, b: np.ndarray, s: float = 2.0
) -> np.ndarray:
    """Classical well-separation of every pair in a frontier at once."""
    r = np.maximum(flat.node_radius[a], flat.node_radius[b])
    return center_gaps(flat, a, b) - 2.0 * r >= s * r


def geometrically_separated_mask(
    flat: FlatKDTree, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """``d(A, B) >= max(A_diam, B_diam)`` over a frontier of node pairs."""
    diameters = 2.0 * np.maximum(flat.node_radius[a], flat.node_radius[b])
    return node_distances(flat, a, b) >= diameters


def mutually_unreachable_mask(
    flat: FlatKDTree, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Mutual-unreachability of every pair in a frontier at once."""
    if flat.cd_min is None or flat.cd_max is None:
        raise NotComputedError(
            "mutually_unreachable requires core-distance annotations on the tree"
        )
    lhs = np.maximum(
        node_distances(flat, a, b), np.maximum(flat.cd_min[a], flat.cd_min[b])
    )
    rhs = np.maximum(
        2.0 * np.maximum(flat.node_radius[a], flat.node_radius[b]),
        np.maximum(flat.cd_max[a], flat.cd_max[b]),
    )
    return lhs >= rhs


def hdbscan_well_separated_mask(
    flat: FlatKDTree, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Disjunctive HDBSCAN* separation over a frontier of node pairs."""
    return geometrically_separated_mask(flat, a, b) | mutually_unreachable_mask(
        flat, a, b
    )


#: Pairs whose ``|A| · |B|`` does not exceed this are recorded by the
#: ε-certified separation even when uncertified: refining such a pair with
#: one exact (batched) BCCP costs at most this many distance evaluations,
#: which is cheaper than splitting it further — and it bounds the
#: decomposition by the classical ``s``-separated one, so tiny ε can never
#: degenerate into a near-quadratic recursion.
SMALL_PAIR_CAP = 64


def node_representatives(flat: FlatKDTree) -> np.ndarray:
    """Center-nearest representative point (original index) of every node.

    For each kd-tree node, the point of its ``perm`` slice closest to the
    node's bounding-sphere center — the representative that makes the
    ε-certificates of the approximation subsystem tight (an arbitrary corner
    point can sit a full diameter off-center; the center-nearest point is
    within the radius by construction).  Computed in one vectorized pass:
    every (node, member point) row — ``O(n log n)`` rows for a balanced
    tree — is materialized with segment arithmetic, distances to the owning
    node's center are taken under the tree's metric, and a lexsort picks
    each segment's argmin (ties broken towards the first point, so
    single-point nodes and degenerate geometry stay deterministic).
    """
    sizes = flat.node_end - flat.node_start
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
    segment = np.repeat(np.arange(flat.num_nodes, dtype=np.int64), sizes)
    within = np.arange(int(sizes.sum()), dtype=np.int64) - starts[segment]
    rows = flat.node_start[segment] + within
    members = flat.perm[rows]
    distances = flat.metric.diff_norms(
        flat.points[members] - flat.node_center[segment]
    )
    order = np.lexsort((within, distances, segment))
    first = starts  # one winner per segment, at the segment's start after the sort
    representatives = np.empty(flat.num_nodes, dtype=np.int64)
    representatives[segment[order[first]]] = members[order[first]]
    return representatives


def representative_distances(
    flat: FlatKDTree,
    a: np.ndarray,
    b: np.ndarray,
    representatives: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Distance between the representatives of every pair of a node-id
    frontier.

    ``representatives`` maps node id to a point index
    (:func:`node_representatives`); without it the deterministic first point
    of each node's ``perm`` slice is used.  Weights come from the metric's
    exact (cancellation-safe) kernel because they can end up as MST edge
    weights.
    """
    if representatives is None:
        rep_a = flat.perm[flat.node_start[a]]
        rep_b = flat.perm[flat.node_start[b]]
    else:
        rep_a = representatives[a]
        rep_b = representatives[b]
    return flat.metric.exact_edge_weights(flat.points, rep_a, rep_b)


def box_gaps(flat: FlatKDTree, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Minimum box-to-box distance of node-id arrays under the tree's metric.

    The norm of the per-axis gap vector between the axis-aligned bounding
    boxes — a valid (and usually far tighter than sphere-based) lower bound
    on every cross distance for any norm-induced metric.
    """
    gap = np.maximum(
        flat.node_lower[a] - flat.node_upper[b],
        flat.node_lower[b] - flat.node_upper[a],
    )
    np.maximum(gap, 0.0, out=gap)
    return flat.metric.diff_norms(gap)


def bccp_lower_bounds(
    flat: FlatKDTree,
    a: np.ndarray,
    b: np.ndarray,
    rep_distances: np.ndarray,
) -> np.ndarray:
    """Per-pair lower bound on ``BCCP(A, B)`` from stored bounding geometry.

    ``max(boxgap(A, B), d(rep) − diam(A) − diam(B))``: the box gap bounds
    every cross distance from below, and by the triangle inequality no cross
    pair can undercut the representative edge by more than the two (sphere)
    diameters.  Valid for every norm-induced metric.
    """
    diameters = 2.0 * (flat.node_radius[a] + flat.node_radius[b])
    return np.maximum(box_gaps(flat, a, b), rep_distances - diameters)


def epsilon_certified_mask(
    flat: FlatKDTree,
    a: np.ndarray,
    b: np.ndarray,
    s: float,
    epsilon: float,
    representatives: Optional[np.ndarray] = None,
) -> np.ndarray:
    """ε-certified separation: classically separated AND (the representative
    edge is provably within ``(1 + ε)`` of the pair's BCCP, OR the pair is
    small enough to refine exactly).

    This is the approximation subsystem's third notion of well-separation
    (next to ``geometric`` and the paper's disjunctive ``hdbscan`` notion):
    the FIND_PAIR recursion keeps splitting a pair until its deterministic
    representative edge is certified against the geometric lower bound of
    :func:`bccp_lower_bounds` — so small ε splits deeper and produces more
    pairs — except that pairs of at most :data:`SMALL_PAIR_CAP` candidate
    distances are recorded regardless (the consumer refines them with one
    exact batched BCCP, per-pair factor 1, which caps the recursion at the
    classical decomposition's granularity).  Every recorded pair therefore
    contributes a candidate edge within ``(1 + ε)`` of its bichromatic
    closest pair while remaining classically well-separated, which is
    exactly what the (1+ε)-approximate EMST argument needs.
    """
    rep = representative_distances(flat, a, b, representatives)
    certified = rep <= (1.0 + epsilon) * bccp_lower_bounds(flat, a, b, rep)
    small = flat.node_sizes[a] * flat.node_sizes[b] <= SMALL_PAIR_CAP
    return well_separated_mask(flat, a, b, s) & (certified | small)
