"""Brute-force EMST: Kruskal over the complete Euclidean graph.

This is the ground truth used by the test suite (every other EMST variant must
produce a tree of identical total weight) and the "naive O(n^2) space"
comparison point the paper contrasts its memory usage against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.distance import pairwise_distances
from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal
from repro.parallel.scheduler import current_tracker


def emst_bruteforce(
    points, *, num_threads: Optional[int] = None, metric: MetricLike = None
) -> EMSTResult:
    """Exact metric MST by sorting all ``n (n - 1) / 2`` pairwise distances.

    Memory use is Θ(n^2); intended for reference/testing on small inputs.
    ``num_threads`` parallelizes the Kruskal weight sort; ``metric`` selects
    the distance (Euclidean by default).
    """
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "bruteforce")
    current_tracker().add(float(n) * n, 1.0, phase="bruteforce")
    distances = pairwise_distances(data, metric)
    upper_i, upper_j = np.triu_indices(n, k=1)
    weights = distances[upper_i, upper_j]
    order = np.argsort(weights, kind="stable")
    edges = zip(upper_i[order], upper_j[order], weights[order])
    tree_edges = kruskal(edges, n, num_threads=num_threads)
    return EMSTResult(tree_edges, n, "bruteforce", stats={"distance_evaluations": n * n})
