"""Result container shared by every EMST / HDBSCAN* MST algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.mst.edges import EdgeList, total_weight
from repro.mst.validation import is_spanning_tree


@dataclass
class EMSTResult:
    """A spanning tree over ``num_points`` points plus bookkeeping statistics.

    Attributes
    ----------
    edges:
        The ``n - 1`` tree edges (point-index endpoints, Euclidean or mutual
        reachability weights depending on the producing algorithm).
    num_points:
        Number of input points.
    method:
        Name of the algorithm that produced the tree.
    stats:
        Free-form counters exposed for benchmarks: WSPD pairs generated, pairs
        materialized, BCCP calls, distance evaluations, number of GFK rounds,
        per-phase timings, etc.
    """

    edges: EdgeList
    num_points: int
    method: str
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def total_weight(self) -> float:
        """Sum of the tree's edge weights."""
        return total_weight(self.edges)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def is_spanning_tree(self) -> bool:
        """Whether the edges form a spanning tree over all points."""
        if self.num_points == 1:
            return len(self.edges) == 0
        return is_spanning_tree(self.edges, self.num_points)

    def edge_arrays(self):
        """``(endpoints, weights)`` NumPy views of the tree edges."""
        return self.edges.to_arrays()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EMSTResult(method={self.method!r}, n={self.num_points}, "
            f"edges={self.num_edges}, weight={self.total_weight:.6g})"
        )
