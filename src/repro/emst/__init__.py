"""Euclidean minimum spanning tree algorithms.

The variants evaluated in Section 5 of the paper, plus two reference
baselines:

* :func:`~repro.emst.naive.emst_naive` — EMST-Naive: compute the BCCP edge of
  every WSPD pair, then run one MST pass over all of them.
* :func:`~repro.emst.gfk.emst_gfk` — EMST-GFK (Algorithm 2): parallel
  GeoFilterKruskal over a materialized WSPD.
* :func:`~repro.emst.memogfk.emst_memogfk` — EMST-MemoGFK (Algorithm 3): the
  memory-optimized variant that retrieves only the pairs needed each round via
  pruned kd-tree traversals.
* :func:`~repro.emst.delaunay_emst.emst_delaunay` — 2D-only EMST via the
  Delaunay triangulation (Appendix A.1).
* :func:`~repro.emst.dualtree_boruvka.emst_dualtree_boruvka` — kd-tree Borůvka
  baseline standing in for mlpack's Dual-Tree Borůvka (Table 3).
* :func:`~repro.emst.brute.emst_bruteforce` — O(n^2) complete-graph Kruskal,
  the ground truth the test suite compares everything against.

:func:`~repro.emst.api.emst` is the public front door that picks a method.
"""

from repro.emst.result import EMSTResult
from repro.emst.brute import emst_bruteforce
from repro.emst.naive import emst_naive
from repro.emst.gfk import emst_gfk
from repro.emst.memogfk import emst_memogfk
from repro.emst.delaunay_emst import emst_delaunay
from repro.emst.dualtree_boruvka import emst_dualtree_boruvka
from repro.emst.api import emst, EMST_METHODS

__all__ = [
    "EMSTResult",
    "emst_bruteforce",
    "emst_naive",
    "emst_gfk",
    "emst_memogfk",
    "emst_delaunay",
    "emst_dualtree_boruvka",
    "emst",
    "EMST_METHODS",
]
