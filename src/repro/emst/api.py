"""Public EMST entry point.

``emst(points, method=...)`` dispatches to one of the implementations; the
default is MemoGFK, the paper's fastest method.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.errors import InvalidParameterError
from repro.emst.brute import emst_bruteforce
from repro.emst.delaunay_emst import emst_delaunay
from repro.emst.dualtree_boruvka import emst_dualtree_boruvka
from repro.emst.gfk import emst_gfk
from repro.emst.memogfk import emst_memogfk
from repro.emst.naive import emst_naive
from repro.emst.result import EMSTResult

EMST_METHODS: Dict[str, Callable[..., EMSTResult]] = {
    "memogfk": emst_memogfk,
    "gfk": emst_gfk,
    "naive": emst_naive,
    "delaunay": emst_delaunay,
    "dualtree-boruvka": emst_dualtree_boruvka,
    "bruteforce": emst_bruteforce,
}


def emst(points, *, method: str = "memogfk", **kwargs) -> EMSTResult:
    """Compute the Euclidean minimum spanning tree of a point set.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of points.
    method:
        One of ``"memogfk"`` (default, Algorithm 3), ``"gfk"`` (Algorithm 2),
        ``"naive"``, ``"delaunay"`` (2D only), ``"dualtree-boruvka"`` or
        ``"bruteforce"``.
    kwargs:
        Forwarded to the selected implementation.  Every method accepts
        ``num_threads``: the number of worker threads the batched kernels
        (WSPD traversals, BCCP size-class tensors, k-NN blocks, Kruskal
        weight sorts) shard onto via the persistent pool of
        :mod:`repro.parallel.pool`.  Sharding uses fixed chunk boundaries
        and stable reduction order, so the returned tree is byte-identical
        at any thread count.  ``leaf_size`` and other per-method options
        pass through unchanged.

    Returns
    -------
    EMSTResult
        The spanning tree edges plus per-method statistics.
    """
    try:
        implementation = EMST_METHODS[method]
    except KeyError:
        raise InvalidParameterError(
            f"unknown EMST method {method!r}; choose from {sorted(EMST_METHODS)}"
        ) from None
    return implementation(points, **kwargs)
