"""Public EMST entry point.

``emst(points, method=...)`` dispatches to one of the implementations; the
default is MemoGFK, the paper's fastest method.  Input validation and
coercion happen once, here at the boundary: lists, float32 arrays and
:class:`~repro.core.points.PointSet` instances are normalized to one
contiguous float64 array (with a clear error for NaN/inf/empty inputs)
before any implementation runs, so every method sees identical inputs.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.backend import BackendLike, use_backend
from repro.core.budget import BudgetLike, use_memory_budget
from repro.core.errors import InvalidParameterError
from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.brute import emst_bruteforce
from repro.emst.delaunay_emst import emst_delaunay
from repro.emst.dualtree_boruvka import emst_dualtree_boruvka
from repro.emst.gfk import emst_gfk
from repro.emst.memogfk import emst_memogfk
from repro.emst.naive import emst_naive
from repro.emst.result import EMSTResult


def _emst_wspd_approx(points, **kwargs) -> EMSTResult:
    """(1+ε)-approximate EMST (``epsilon=``, ``representative=`` kwargs).

    Imported lazily: :mod:`repro.approx` consumes the whole exact engine, so
    a module-level import here would cycle through the package inits.
    """
    from repro.approx.emst import emst_wspd_approx

    return emst_wspd_approx(points, **kwargs)


EMST_METHODS: Dict[str, Callable[..., EMSTResult]] = {
    "memogfk": emst_memogfk,
    "gfk": emst_gfk,
    "naive": emst_naive,
    "delaunay": emst_delaunay,
    "dualtree-boruvka": emst_dualtree_boruvka,
    "bruteforce": emst_bruteforce,
    "wspd-approx": _emst_wspd_approx,
}


def emst(
    points,
    *,
    method: str = "memogfk",
    metric: MetricLike = None,
    backend: BackendLike = None,
    memory_budget: BudgetLike = None,
    **kwargs,
) -> EMSTResult:
    """Compute the minimum spanning tree of a point set under a metric.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of points (coerced to contiguous float64 once,
        here; NaN/inf/empty inputs raise ``InvalidPointSetError``).
    method:
        One of ``"memogfk"`` (default, Algorithm 3), ``"gfk"`` (Algorithm 2),
        ``"naive"``, ``"delaunay"`` (2D Euclidean only),
        ``"dualtree-boruvka"``, ``"bruteforce"``, or ``"wspd-approx"`` (the
        (1+ε)-approximate tree of :func:`repro.approx.emst.approx_emst`;
        takes ``epsilon=`` and ``representative=``).
    metric:
        Distance metric: a name (``"euclidean"``, ``"manhattan"``,
        ``"chebyshev"``, ``"minkowski:p"``), a
        :class:`~repro.core.metric.Metric` instance, or ``None`` for
        Euclidean.  The Euclidean path is byte-identical to the historical
        Euclidean-only engine.
    backend:
        Kernel backend: a name (``"numpy"``, ``"numba"``, ``"numpy-f32"``,
        ``"numba-f32"``), a :class:`~repro.core.backend.KernelBackend`
        instance, or ``None`` for the ambient default (see
        :func:`repro.core.backend.use_backend`; initialized from the
        ``REPRO_BACKEND`` environment variable).  Exact (float64-scoring)
        backends return byte-identical trees; lowered (``-f32``) backends
        score candidates in float32 and re-evaluate every surviving edge in
        exact float64.  Selecting an uninstalled compiled backend falls back
        to its numpy equivalent with a ``BackendFallbackWarning``.
    memory_budget:
        Bytes ceiling for the engine's tiled kernels and growable buffers:
        an int, a size string (``"512M"``, ``"2G"``), a
        :class:`~repro.core.budget.MemoryBudget` instance, or ``None`` for
        the ambient default (see
        :func:`repro.core.budget.use_memory_budget`; initialized from the
        ``REPRO_MEMORY_BUDGET`` environment variable, unbounded otherwise).
        The budget changes only tile/chunk sizes and enables spill-to-disk
        for edge buffers past its threshold, so the returned tree is
        **byte-identical** to the unbudgeted engine at any budget that
        admits at least one tile (smaller budgets clamp, they never error).
    kwargs:
        Forwarded to the selected implementation.  Every method accepts
        ``num_threads``: the number of worker threads the batched kernels
        (WSPD traversals, BCCP size-class tensors, k-NN blocks, Kruskal
        weight sorts) shard onto via the persistent pool of
        :mod:`repro.parallel.pool`.  Sharding uses fixed chunk boundaries
        and stable reduction order, so the returned tree is byte-identical
        at any thread count.  ``leaf_size`` and other per-method options
        pass through unchanged.

    Returns
    -------
    EMSTResult
        The spanning tree edges plus per-method statistics.
    """
    try:
        implementation = EMST_METHODS[method]
    except KeyError:
        raise InvalidParameterError(
            f"unknown EMST method {method!r}; choose from {sorted(EMST_METHODS)}"
        ) from None
    # The budget must be ambient before input coercion so the streamed
    # finiteness check and any spilled buffers are governed by it too.
    with use_memory_budget(memory_budget):
        data = as_points(points, min_points=1)
        # One scope covers the whole pipeline: every tree the implementation
        # builds snapshots this backend, with no per-method plumbing.
        with use_backend(backend):
            return implementation(data, metric=metric, **kwargs)
