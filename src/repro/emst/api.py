"""Public EMST entry point.

``emst(points, method=...)`` dispatches to one of the implementations; the
default is MemoGFK, the paper's fastest method.  Input validation and
coercion happen once, here at the boundary: lists, float32 arrays and
:class:`~repro.core.points.PointSet` instances are normalized to one
contiguous float64 array (with a clear error for NaN/inf/empty inputs)
before any implementation runs, so every method sees identical inputs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.backend import BackendLike, use_backend
from repro.core.budget import BudgetLike, use_memory_budget
from repro.core.errors import InvalidParameterError
from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.brute import emst_bruteforce
from repro.emst.delaunay_emst import emst_delaunay
from repro.emst.dualtree_boruvka import emst_dualtree_boruvka
from repro.emst.gfk import emst_gfk
from repro.emst.memogfk import ROUND_PHASE, emst_memogfk
from repro.emst.naive import emst_naive
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.parallel.pool import use_pool_policy
from repro.resilience.checkpoint import CheckpointManager, build_fingerprint


def _shrunk(result: EMSTResult) -> EMSTResult:
    """Drop the edge buffers' doubling over-allocation before returning.

    The fit is over when a result crosses this boundary; long-lived holders
    (the serving layer) should pin only live edge data.
    """
    result.edges.shrink_to_fit()
    return result


def _emst_wspd_approx(points, **kwargs) -> EMSTResult:
    """(1+ε)-approximate EMST (``epsilon=``, ``representative=`` kwargs).

    Imported lazily: :mod:`repro.approx` consumes the whole exact engine, so
    a module-level import here would cycle through the package inits.
    """
    from repro.approx.emst import emst_wspd_approx

    return emst_wspd_approx(points, **kwargs)


EMST_METHODS: Dict[str, Callable[..., EMSTResult]] = {
    "memogfk": emst_memogfk,
    "gfk": emst_gfk,
    "naive": emst_naive,
    "delaunay": emst_delaunay,
    "dualtree-boruvka": emst_dualtree_boruvka,
    "bruteforce": emst_bruteforce,
    "wspd-approx": _emst_wspd_approx,
}


def emst(
    points,
    *,
    method: str = "memogfk",
    metric: MetricLike = None,
    backend: BackendLike = None,
    memory_budget: BudgetLike = None,
    checkpoint_dir=None,
    resume: bool = True,
    max_retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    **kwargs,
) -> EMSTResult:
    """Compute the minimum spanning tree of a point set under a metric.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of points (coerced to contiguous float64 once,
        here; NaN/inf/empty inputs raise ``InvalidPointSetError``).
    method:
        One of ``"memogfk"`` (default, Algorithm 3), ``"gfk"`` (Algorithm 2),
        ``"naive"``, ``"delaunay"`` (2D Euclidean only),
        ``"dualtree-boruvka"``, ``"bruteforce"``, or ``"wspd-approx"`` (the
        (1+ε)-approximate tree of :func:`repro.approx.emst.approx_emst`;
        takes ``epsilon=`` and ``representative=``).
    metric:
        Distance metric: a name (``"euclidean"``, ``"manhattan"``,
        ``"chebyshev"``, ``"minkowski:p"``), a
        :class:`~repro.core.metric.Metric` instance, or ``None`` for
        Euclidean.  The Euclidean path is byte-identical to the historical
        Euclidean-only engine.
    backend:
        Kernel backend: a name (``"numpy"``, ``"numba"``, ``"numpy-f32"``,
        ``"numba-f32"``), a :class:`~repro.core.backend.KernelBackend`
        instance, or ``None`` for the ambient default (see
        :func:`repro.core.backend.use_backend`; initialized from the
        ``REPRO_BACKEND`` environment variable).  Exact (float64-scoring)
        backends return byte-identical trees; lowered (``-f32``) backends
        score candidates in float32 and re-evaluate every surviving edge in
        exact float64.  Selecting an uninstalled compiled backend falls back
        to its numpy equivalent with a ``BackendFallbackWarning``.
    memory_budget:
        Bytes ceiling for the engine's tiled kernels and growable buffers:
        an int, a size string (``"512M"``, ``"2G"``), a
        :class:`~repro.core.budget.MemoryBudget` instance, or ``None`` for
        the ambient default (see
        :func:`repro.core.budget.use_memory_budget`; initialized from the
        ``REPRO_MEMORY_BUDGET`` environment variable, unbounded otherwise).
        The budget changes only tile/chunk sizes and enables spill-to-disk
        for edge buffers past its threshold, so the returned tree is
        **byte-identical** to the unbudgeted engine at any budget that
        admits at least one tile (smaller budgets clamp, they never error).
    checkpoint_dir:
        Directory for phase-level checkpoint/resume (see
        :mod:`repro.resilience`).  When given, the finished MST (and, for
        MemoGFK, every completed filter round) is committed atomically with
        a checksum, and a rerun over the same directory with the same
        fingerprint — same points, method, metric, backend, dtype, thread
        count and budget — skips the completed work and returns a
        **byte-identical** tree.  A mismatching fingerprint raises
        ``CheckpointMismatchError``; corrupt or truncated state raises
        ``CheckpointCorruptError``.
    resume:
        With ``False`` an existing checkpoint in ``checkpoint_dir`` is
        discarded and the run starts fresh (default ``True``: reuse it).
    max_retries:
        Worker-death events one pooled batch absorbs by respawn-and-retry
        before degrading to the serial fallback (``None`` keeps the ambient
        :func:`repro.parallel.pool.use_pool_policy` default of 2).
    task_timeout:
        Seconds a pooled batch may go with no task completing before the run
        fails with ``WorkerFailedError`` (``None``: no time limit; worker
        *deaths* are still detected and retried immediately either way).
    kwargs:
        Forwarded to the selected implementation.  Every method accepts
        ``num_threads``: the number of worker threads the batched kernels
        (WSPD traversals, BCCP size-class tensors, k-NN blocks, Kruskal
        weight sorts) shard onto via the persistent pool of
        :mod:`repro.parallel.pool`.  Sharding uses fixed chunk boundaries
        and stable reduction order, so the returned tree is byte-identical
        at any thread count.  ``leaf_size`` and other per-method options
        pass through unchanged.

    Returns
    -------
    EMSTResult
        The spanning tree edges plus per-method statistics.
    """
    try:
        implementation = EMST_METHODS[method]
    except KeyError:
        raise InvalidParameterError(
            f"unknown EMST method {method!r}; choose from {sorted(EMST_METHODS)}"
        ) from None
    # The budget must be ambient before input coercion so the streamed
    # finiteness check and any spilled buffers are governed by it too.
    with use_memory_budget(memory_budget):
        data = as_points(points, min_points=1)
        # One scope covers the whole pipeline: every tree the implementation
        # builds snapshots this backend, with no per-method plumbing; the pool
        # policy scope does the same for the fault-tolerance knobs.
        with use_backend(backend), use_pool_policy(max_retries, task_timeout):
            if checkpoint_dir is None:
                return _shrunk(implementation(data, metric=metric, **kwargs))
            checkpoint = CheckpointManager(
                checkpoint_dir,
                build_fingerprint(
                    data,
                    algorithm="emst",
                    method=method,
                    metric=metric,
                    backend=backend,
                    memory_budget=memory_budget,
                    num_threads=kwargs.get("num_threads"),
                    options=repr(
                        sorted(
                            (key, value)
                            for key, value in kwargs.items()
                            if key != "num_threads"
                        )
                    ),
                ),
                resume=resume,
            )
            if checkpoint.has_phase("mst"):
                arrays, meta = checkpoint.load_phase("mst")
                edges = EdgeList()
                edges.extend_arrays(arrays["u"], arrays["v"], arrays["w"])
                return _shrunk(
                    EMSTResult(
                        edges, data.shape[0], method, stats=dict(meta.get("stats", {}))
                    )
                )
            if method == "memogfk":
                # MemoGFK checkpoints every filter round, so even a kill
                # mid-MST resumes at the last finished round.
                kwargs = dict(kwargs, checkpoint=checkpoint)
            result = implementation(data, metric=metric, **kwargs)
            u, v, w = result.edges.as_arrays()
            checkpoint.save_phase("mst", {"u": u, "v": v, "w": w}, {"stats": result.stats})
            checkpoint.remove_phase(ROUND_PHASE)
            return _shrunk(result)
