"""Dual-tree-style Borůvka EMST baseline.

The paper compares its sequential running times against mlpack's Dual-Tree
Borůvka implementation (March et al., Table 3).  mlpack is not available in
this reproduction, so this module provides the stand-in: Borůvka's algorithm
where each round finds, for every component, its lightest outgoing edge using
kd-tree nearest-neighbour queries that prune subtrees entirely contained in
the query point's own component.

Each round therefore costs roughly O(n log n) distance work and the number of
components halves per round, mirroring the structure (and practical behaviour)
of the dual-tree algorithm at the scale this reproduction runs at.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind
from repro.spatial.kdtree import KDNode, KDTree


def _annotate_components(tree: KDTree, labels: np.ndarray) -> dict:
    """For every node, the single component label of its points, or -1 if mixed."""
    purity = {}
    for node in reversed(list(tree.nodes())):
        if node.is_leaf:
            unique = np.unique(labels[node.indices])
            purity[node.node_id] = int(unique[0]) if unique.shape[0] == 1 else -1
        else:
            left = purity[node.left.node_id]
            right = purity[node.right.node_id]
            purity[node.node_id] = left if (left == right and left != -1) else -1
    return purity


def _nearest_foreign(
    tree: KDTree,
    purity: dict,
    labels: np.ndarray,
    query_index: int,
    query_label: int,
):
    """Nearest neighbour of a point that lies in a different component."""
    points = tree.points
    metric = tree.metric
    sphere_metric = tree.sphere_metric
    query = points[query_index]
    best_distance = math.inf
    best_index = -1

    def visit(node: KDNode) -> None:
        nonlocal best_distance, best_index
        if purity[node.node_id] == query_label:
            return
        if node.box.min_distance_to_point(query, sphere_metric) >= best_distance:
            return
        if node.is_leaf:
            candidates = node.indices[labels[node.indices] != query_label]
            if candidates.shape[0] == 0:
                return
            diffs = points[candidates] - query
            dists = metric.diff_norms(diffs)
            local_best = int(np.argmin(dists))
            if dists[local_best] < best_distance:
                best_distance = float(dists[local_best])
                best_index = int(candidates[local_best])
            return
        first, second = node.left, node.right
        if second.box.min_distance_to_point(query, sphere_metric) < first.box.min_distance_to_point(query, sphere_metric):
            first, second = second, first
        visit(first)
        visit(second)

    visit(tree.root)
    return best_index, best_distance


def emst_dualtree_boruvka(
    points,
    *,
    leaf_size: int = 16,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
) -> EMSTResult:
    """Exact metric MST via kd-tree Borůvka with component pruning.

    ``num_threads`` is accepted so the public ``emst(...)`` knob is uniform
    across methods; the point-by-point Borůvka search itself is sequential.
    ``metric`` selects the distance (Euclidean by default).
    """
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "dualtree-boruvka")

    timings = {}
    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size, metric=metric)
    timings["build-tree"] = time.perf_counter() - start

    tracker = current_tracker()
    union_find = UnionFind(n)
    output = EdgeList()
    rounds = 0

    start = time.perf_counter()
    while union_find.num_components > 1:
        rounds += 1
        labels = union_find.component_labels()
        purity = _annotate_components(tree, labels)
        tracker.add(n * max(math.log2(n), 1.0), max(math.log2(n), 1.0), phase="boruvka")

        # Lightest outgoing edge per component, found point by point.
        best = {}
        for index in range(n):
            label = int(labels[index])
            neighbor, distance = _nearest_foreign(tree, purity, labels, index, label)
            if neighbor < 0:
                continue
            key = best.get(label)
            if key is None or distance < key[0]:
                best[label] = (distance, index, neighbor)

        merged = False
        for distance, u, v in sorted(best.values()):
            if union_find.union(u, v):
                output.append(u, v, distance)
                merged = True
        if not merged:
            break
    timings["boruvka"] = time.perf_counter() - start

    stats = {"rounds": rounds}
    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(output, n, "dualtree-boruvka", stats=stats)
