"""EMST-GFK: parallel GeoFilterKruskal over a materialized WSPD (Algorithm 2).

The algorithm proceeds in rounds.  In each round it

1. splits the remaining WSPD pairs into the "cheap" pairs ``S_l`` with
   cardinality ``|A| + |B| <= beta`` and the rest ``S_u``;
2. computes ``rho_hi``, the minimum bounding-sphere distance of the pairs in
   ``S_u`` (a lower bound on any edge those pairs can produce);
3. computes the BCCP of every cheap pair and keeps the ones whose edge weight
   is at most ``rho_hi`` (set ``S_l1``);
4. feeds those edges to Kruskal with a shared union-find;
5. filters out every remaining pair whose two nodes are already fully
   connected, and doubles ``beta``.

BCCP results are cached across rounds, and pairs filtered in step 5 may never
have their BCCP computed at all — that is the saving over EMST-Naive.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional

from repro.core.points import as_points
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal_batch
from repro.parallel.pool import parallel_map
from repro.parallel.primitives import parallel_split
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind
from repro.spatial.kdtree import KDNode, KDTree
from repro.wspd.bccp import BCCPCache
from repro.wspd.separation import node_distance
from repro.wspd.wspd import WellSeparatedPair, compute_wspd


def nodes_fully_connected(union_find: UnionFind, a: KDNode, b: KDNode) -> bool:
    """True when every point of ``a`` and ``b`` lies in one component.

    This is the ``f_diff`` filter of Algorithm 2: such a pair can never again
    contribute an MST edge, so it is discarded without computing its BCCP.
    The check early-exits on the first point in a different component.
    """
    current_tracker().add(1, 0)
    root = union_find.find(int(a.indices[0]))
    for index in a.indices[1:]:
        if union_find.find(int(index)) != root:
            return False
    for index in b.indices:
        if union_find.find(int(index)) != root:
            return False
    return True


def emst_gfk(
    points,
    *,
    leaf_size: int = 1,
    beta_growth: str = "double",
    num_threads: Optional[int] = None,
) -> EMSTResult:
    """Exact EMST via parallel GeoFilterKruskal (Algorithm 2).

    Parameters
    ----------
    points:
        Input point array of shape ``(n, d)``.
    leaf_size:
        kd-tree leaf size for the WSPD (the paper uses 1).
    beta_growth:
        ``"double"`` for the paper's exponentially increasing batch threshold
        (needed for the polylogarithmic round bound) or ``"increment"`` for
        the sequential Chatterjee et al. schedule (used by the beta ablation
        benchmark).
    num_threads:
        If > 1, BCCP evaluations within a round run on a thread pool.
    """
    if beta_growth not in ("double", "increment"):
        raise ValueError("beta_growth must be 'double' or 'increment'")
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "gfk")

    timings = {}
    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size)
    timings["build-tree"] = time.perf_counter() - start

    start = time.perf_counter()
    pairs: List[WellSeparatedPair] = compute_wspd(tree, separation="geometric")
    timings["wspd"] = time.perf_counter() - start
    total_pairs = len(pairs)

    cache = BCCPCache(tree)
    union_find = UnionFind(n)
    output = EdgeList()
    tracker = current_tracker()

    start = time.perf_counter()
    beta = 2
    rounds = 0
    while len(output) < n - 1 and pairs:
        rounds += 1
        cheap, expensive = parallel_split(
            pairs, lambda pair: pair.cardinality <= beta, phase="gfk-split"
        )
        if expensive:
            rho_hi = min(node_distance(p.node_a, p.node_b) for p in expensive)
            tracker.add(len(expensive), math.log2(len(expensive) + 1), phase="gfk-split")
        else:
            rho_hi = math.inf

        with tracker.parallel("gfk-bccp"):
            bccp_results = parallel_map(
                lambda pair: cache.get(pair.node_a, pair.node_b),
                cheap,
                num_threads=num_threads,
            )
        light, heavy = [], []
        for pair, result in zip(cheap, bccp_results):
            if result.distance <= rho_hi:
                light.append(result)
            else:
                heavy.append(pair)

        kruskal_batch((r.as_edge() for r in light), output, union_find)

        remaining = heavy + expensive
        pairs = [
            pair
            for pair in remaining
            if not nodes_fully_connected(union_find, pair.node_a, pair.node_b)
        ]
        tracker.add(len(remaining), math.log2(len(remaining) + 1), phase="gfk-filter")

        if beta_growth == "double":
            beta *= 2
        else:
            beta += 1
    timings["kruskal"] = time.perf_counter() - start

    stats = {
        "wspd_pairs": total_pairs,
        "pairs_materialized": total_pairs,
        "bccp_calls": cache.num_bccp_calls,
        "distance_evaluations": cache.num_distance_evaluations,
        "rounds": rounds,
    }
    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(output, n, "gfk", stats=stats)
