"""EMST-GFK: parallel GeoFilterKruskal over a materialized WSPD (Algorithm 2).

The algorithm proceeds in rounds.  In each round it

1. splits the remaining WSPD pairs into the "cheap" pairs ``S_l`` with
   cardinality ``|A| + |B| <= beta`` and the rest ``S_u``;
2. computes ``rho_hi``, the minimum bounding-sphere distance of the pairs in
   ``S_u`` (a lower bound on any edge those pairs can produce);
3. computes the BCCP of every cheap pair and keeps the ones whose edge weight
   is at most ``rho_hi`` (set ``S_l1``);
4. feeds those edges to Kruskal with a shared union-find;
5. filters out every remaining pair whose two nodes are already fully
   connected, and doubles ``beta``.

The pair set lives as two parallel node-id arrays over the flat tree engine,
so the cardinality split, the ``rho_hi`` reduction and the connectivity filter
of step 5 are all single vectorized passes: connectivity is snapshotted once
per round as per-node component ranges (one union-find root sweep plus one
bottom-up tree reduction), and a pair is fully connected exactly when both
nodes are root-uniform with the same root.  Step 3 submits the whole cheap
frontier to the batched BCCP kernel through the array-backed
:class:`~repro.wspd.bccp.BCCPCache` (one vectorized hit/miss partition, one
size-class-grouped kernel call), so BCCP results are cached across rounds and
pairs filtered in step 5 may never have their BCCP computed at all — that is
the saving over EMST-Naive.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal_batch_arrays
from repro.parallel.pool import map_shards
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind
from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDTree
from repro.wspd.bccp import BCCPCache
from repro.wspd.separation import node_distances
from repro.wspd.wspd import compute_wspd_ids


def connectivity_snapshot(
    flat: FlatKDTree, union_find: UnionFind
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-node (min, max) union-find root over every tree node.

    One vectorized root sweep plus one bottom-up tree reduction replaces the
    per-pair point loops of the ``f_diff`` filter: a node's points all lie in
    one component iff its min and max root coincide.
    """
    roots = union_find.roots()
    return flat.node_value_ranges(roots)


def pairs_fully_connected(
    root_min: np.ndarray, root_max: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """``f_diff`` of Algorithm 2 for whole pair arrays at once.

    True where every point of ``a`` and ``b`` lies in one component; such a
    pair can never again contribute an MST edge, so it is discarded without
    computing its BCCP.
    """
    return (
        (root_min[a] == root_max[a])
        & (root_min[b] == root_max[b])
        & (root_min[a] == root_min[b])
    )


def sharded_min(
    values_of: "Callable[[int, int], np.ndarray]",
    n: int,
    *,
    num_threads: Optional[int] = None,
) -> float:
    """Minimum of a chunk-computable value array, reduced in shard order.

    ``values_of(lo, hi)`` returns the values of span ``[lo, hi)``; each shard
    is reduced to its own minimum on the worker pool and the shard minima are
    folded left-to-right.  ``min`` is exact for floats, so the result equals
    the single-pass ``values.min()`` bit for bit at any thread count.
    """
    partial = map_shards(
        lambda lo, hi: float(values_of(lo, hi).min()), n, num_threads=num_threads
    )
    return min(partial)


def emst_gfk(
    points,
    *,
    leaf_size: int = 1,
    beta_growth: str = "double",
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
) -> EMSTResult:
    """Exact metric MST via parallel GeoFilterKruskal (Algorithm 2).

    Parameters
    ----------
    points:
        Input point array of shape ``(n, d)``.
    leaf_size:
        kd-tree leaf size for the WSPD (the paper uses 1).
    beta_growth:
        ``"double"`` for the paper's exponentially increasing batch threshold
        (needed for the polylogarithmic round bound) or ``"increment"`` for
        the sequential Chatterjee et al. schedule (used by the beta ablation
        benchmark).
    num_threads:
        Number of worker threads for the batched stages: the WSPD separation
        tests, each round's BCCP size-class kernel, the ``rho_hi`` reduction
        and the Kruskal weight sort all shard onto the persistent worker pool
        (:mod:`repro.parallel.pool`).  Sharding uses fixed chunk boundaries
        and shard-ordered reductions, so the MST is byte-identical at any
        thread count; ``None``/``0``/``1`` run inline.
    metric:
        Distance metric (name, Metric instance, or ``None`` for Euclidean);
        it rides the kd-tree into every separation mask and BCCP kernel.
    """
    if beta_growth not in ("double", "increment"):
        raise ValueError("beta_growth must be 'double' or 'increment'")
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "gfk")

    timings = {}
    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size, metric=metric)
    timings["build-tree"] = time.perf_counter() - start
    flat = tree.flat

    start = time.perf_counter()
    pair_a, pair_b = compute_wspd_ids(
        tree, separation="geometric", num_threads=num_threads
    )
    timings["wspd"] = time.perf_counter() - start
    total_pairs = int(pair_a.size)

    sizes = flat.node_sizes
    cardinality = sizes[pair_a] + sizes[pair_b]

    cache = BCCPCache(tree, num_threads=num_threads)
    union_find = UnionFind(n)
    output = EdgeList()
    tracker = current_tracker()

    start = time.perf_counter()
    beta = 2
    rounds = 0
    try:
        while len(output) < n - 1 and pair_a.size:
            rounds += 1
            cheap = cardinality <= beta
            tracker.add(
                float(pair_a.size), math.log2(pair_a.size + 1), phase="gfk-split"
            )
            exp_a, exp_b = pair_a[~cheap], pair_b[~cheap]
            if exp_a.size:
                rho_hi = sharded_min(
                    lambda lo, hi: node_distances(flat, exp_a[lo:hi], exp_b[lo:hi]),
                    int(exp_a.size),
                    num_threads=num_threads,
                )
                tracker.add(float(exp_a.size), math.log2(exp_a.size + 1), phase="gfk-split")
            else:
                rho_hi = math.inf

            cheap_a, cheap_b = pair_a[cheap], pair_b[cheap]
            with tracker.parallel("gfk-bccp"):
                point_a, point_b, weight = cache.get_batch(cheap_a, cheap_b)
            light = weight <= rho_hi
            heavy_mask = ~light

            kruskal_batch_arrays(
                point_a[light],
                point_b[light],
                weight[light],
                output,
                union_find,
                num_threads=num_threads,
            )

            remaining_a = np.concatenate([cheap_a[heavy_mask], exp_a])
            remaining_b = np.concatenate([cheap_b[heavy_mask], exp_b])
            if remaining_a.size:
                root_min, root_max = connectivity_snapshot(flat, union_find)
                alive = ~pairs_fully_connected(root_min, root_max, remaining_a, remaining_b)
                pair_a = remaining_a[alive]
                pair_b = remaining_b[alive]
            else:
                pair_a = remaining_a
                pair_b = remaining_b
            cardinality = sizes[pair_a] + sizes[pair_b]
            tracker.add(
                float(remaining_a.size), math.log2(remaining_a.size + 1), phase="gfk-filter"
            )

            if beta_growth == "double":
                beta *= 2
            else:
                beta += 1
    finally:
        # Under a bounded budget the store columns may be spill-file
        # memmaps; closing here unmaps them even if a round dies.  The
        # evaluation counters survive for the stats below.
        cache.close()
    timings["kruskal"] = time.perf_counter() - start

    stats = {
        "wspd_pairs": total_pairs,
        "pairs_materialized": total_pairs,
        "bccp_calls": cache.num_bccp_calls,
        "distance_evaluations": cache.num_distance_evaluations,
        "rounds": rounds,
    }
    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(output, n, "gfk", stats=stats)
