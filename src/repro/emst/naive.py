"""EMST-Naive: BCCP edge of every WSPD pair, then one MST pass.

This is the method of Callahan and Kosaraju that Section 3.1.2 describes as
the starting point: build a WSPD, connect the bichromatic closest pair of
every well-separated pair with an edge weighted by its distance, and compute
an MST of the resulting O(n)-edge graph.  Every BCCP is computed, whether or
not the MST will ever need it — the inefficiency GFK/MemoGFK remove.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal
from repro.parallel.scheduler import current_tracker
from repro.spatial.kdtree import KDTree
from repro.wspd.bccp import BCCPCache
from repro.wspd.wspd import compute_wspd_ids


def emst_naive(
    points,
    *,
    leaf_size: int = 1,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
) -> EMSTResult:
    """Exact metric MST via "all BCCPs of the WSPD, then Kruskal".

    Parameters
    ----------
    points:
        Input point array of shape ``(n, d)``.
    leaf_size:
        kd-tree leaf size used for the WSPD (the paper uses 1).
    num_threads:
        Accepted for API compatibility.  All BCCPs are evaluated by one
        size-class-batched array kernel call, which outruns the former
        per-pair thread pool, so the value is unused.
    metric:
        Distance metric (name, Metric instance, or ``None`` for Euclidean).
    """
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "naive")

    timings = {}
    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size, metric=metric)
    timings["build-tree"] = time.perf_counter() - start

    start = time.perf_counter()
    pair_a, pair_b = compute_wspd_ids(tree, separation="geometric")
    timings["wspd"] = time.perf_counter() - start

    start = time.perf_counter()
    cache = BCCPCache(tree)
    tracker = current_tracker()
    with tracker.parallel("naive-bccp"):
        point_a, point_b, weights = cache.get_batch(pair_a, pair_b)
    timings["bccp"] = time.perf_counter() - start

    start = time.perf_counter()
    tree_edges = kruskal((point_a, point_b, weights), n)
    timings["kruskal"] = time.perf_counter() - start

    stats = {
        "wspd_pairs": int(pair_a.size),
        "pairs_materialized": int(pair_a.size),
        "bccp_calls": cache.num_bccp_calls,
        "distance_evaluations": cache.num_distance_evaluations,
    }
    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(tree_edges, n, "naive", stats=stats)
