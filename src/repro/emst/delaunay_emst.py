"""EMST-Delaunay: 2D EMST as the MST of the Delaunay triangulation.

Appendix A.1 of the paper: in two dimensions the EMST is a subgraph of the
Delaunay triangulation (Shamos & Hoey), which has O(n) edges, so computing the
triangulation followed by any MST algorithm gives the EMST in O(n log n) work.
Only valid for d = 2.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.errors import InvalidParameterError
from repro.core.metric import EUCLIDEAN, MetricLike, resolve_metric
from repro.core.points import as_points
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal
from repro.spatial.delaunay import delaunay_edges


def emst_delaunay(
    points, *, num_threads: Optional[int] = None, metric: MetricLike = None
) -> EMSTResult:
    """Exact EMST of a 2D point set via its Delaunay triangulation.

    ``num_threads`` parallelizes the Kruskal weight sort over the O(n)
    triangulation edges.  The EMST-subgraph property of the Delaunay
    triangulation is specific to the Euclidean metric, so any other
    ``metric`` is rejected.
    """
    if resolve_metric(metric) != EUCLIDEAN:
        raise InvalidParameterError(
            "the Delaunay EMST is Euclidean-only (the EMST-subgraph property "
            "does not hold under other metrics); use method='memogfk' instead"
        )
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "delaunay")

    timings = {}
    start = time.perf_counter()
    endpoints, weights = delaunay_edges(data)
    timings["delaunay"] = time.perf_counter() - start

    start = time.perf_counter()
    order = weights.argsort(kind="stable")
    edges = ((int(endpoints[i, 0]), int(endpoints[i, 1]), float(weights[i])) for i in order)
    tree_edges = kruskal(edges, n, num_threads=num_threads)
    timings["kruskal"] = time.perf_counter() - start

    stats = {"delaunay_edges": int(endpoints.shape[0])}
    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(tree_edges, n, "delaunay", stats=stats)
