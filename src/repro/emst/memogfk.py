"""EMST-MemoGFK: memory-optimized GeoFilterKruskal (Algorithm 3).

MemoGFK never materializes the WSPD.  Each round performs two pruned kd-tree
traversals:

* ``GETRHO`` computes ``rho_hi``, the minimum bounding-sphere distance over
  the not-yet-connected well-separated pairs with cardinality greater than
  ``beta`` (a lower bound on every edge such a pair can produce);
* ``GETPAIRS`` retrieves only the pairs whose BCCP weight lies in the window
  ``[rho_lo, rho_hi)``, pruning subtrees whose bounding-sphere bounds place
  every descendant pair outside the window or whose points are already in one
  connected component.

The retrieved edges form one Kruskal batch; ``beta`` doubles and
``rho_lo = rho_hi`` for the next round.  The same engine, parameterized by the
separation predicate and the BCCP cache, also powers the HDBSCAN*-MemoGFK
algorithm (geometric-or-mutually-unreachable separation, BCCP* distances).
"""

from __future__ import annotations

import math
import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.points import as_points
from repro.emst.gfk import nodes_fully_connected
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal_batch
from repro.parallel.primitives import WriteMinCell
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind
from repro.spatial.kdtree import KDNode, KDTree
from repro.wspd.bccp import BCCPCache
from repro.wspd.separation import (
    hdbscan_well_separated,
    node_distance,
    node_max_distance,
    well_separated,
)

SeparationPredicate = Callable[[KDNode, KDNode], bool]
BoundFunction = Callable[[KDNode, KDNode], float]


def _euclidean_bounds() -> Tuple[BoundFunction, BoundFunction]:
    """Lower/upper bounds on the BCCP of a node pair (Euclidean weights)."""
    return node_distance, node_max_distance


def _mutual_reachability_bounds() -> Tuple[BoundFunction, BoundFunction]:
    """Lower/upper bounds on the BCCP* of a node pair.

    The mutual reachability distance of any pair of points drawn from nodes
    ``A`` and ``B`` is at least ``max(d(A, B), cd_min(A), cd_min(B))`` and at
    most ``max(d_max(A, B), cd_max(A), cd_max(B))``; the geometric bounds
    alone would under/over-estimate it and break the window pruning.
    """

    def lower(a: KDNode, b: KDNode) -> float:
        return max(node_distance(a, b), a.cd_min, b.cd_min)

    def upper(a: KDNode, b: KDNode) -> float:
        return max(node_max_distance(a, b), a.cd_max, b.cd_max)

    return lower, upper


def _get_rho(
    tree: KDTree,
    beta: int,
    union_find: UnionFind,
    predicate: SeparationPredicate,
    lower_bound: BoundFunction,
) -> float:
    """GETRHO: lower bound on edges produced by pairs with cardinality > beta.

    Traverses the kd-tree the same way the WSPD construction does, pruning
    subtrees whose pairs cannot matter: pairs with cardinality at most beta,
    pairs that are already fully connected, and pairs whose bounding-sphere
    distance already exceeds the best bound found so far.
    """
    tracker = current_tracker()
    rho = WriteMinCell(math.inf)

    def find_pair(p: KDNode, q: KDNode) -> None:
        stack: List[Tuple[KDNode, KDNode]] = [(p, q)]
        while stack:
            a, b = stack.pop()
            tracker.add(1, 0, phase="wspd")
            if a.size + b.size <= beta:
                continue
            if lower_bound(a, b) >= rho.value:
                continue
            if nodes_fully_connected(union_find, a, b):
                continue
            if a.sphere.diameter < b.sphere.diameter:
                a, b = b, a
            if predicate(a, b):
                rho.write(lower_bound(a, b), (a, b))
                continue
            if a.is_leaf:
                a, b = b, a
            if a.is_leaf:
                continue
            stack.append((a.left, b))
            stack.append((a.right, b))

    def visit(node: KDNode) -> None:
        if node.is_leaf or node.size <= beta:
            return
        if nodes_fully_connected(union_find, node, node):
            return
        find_pair(node.left, node.right)
        visit(node.left)
        visit(node.right)

    visit(tree.root)
    return rho.value


def _get_pairs(
    tree: KDTree,
    rho_lo: float,
    rho_hi: float,
    union_find: UnionFind,
    predicate: SeparationPredicate,
    cache: BCCPCache,
    lower_bound: BoundFunction,
    upper_bound: BoundFunction,
) -> List[Tuple[int, int, float]]:
    """GETPAIRS: edges of the not-yet-connected pairs with BCCP in the window.

    Only the pairs whose BCCP weight lies in ``[rho_lo, rho_hi)`` are
    materialized (as point-index edges); everything else is pruned using the
    bounding-sphere lower/upper bounds of Figure 3.

    The window tests are guarded against floating-point disagreement between
    the sphere-based bounds and the vectorized BCCP kernel: the upper-bound
    prune carries a small relative slack, and a pair whose BCCP falls
    marginally *below* ``rho_lo`` (i.e. it straddled the previous window's
    boundary) is still retrieved when its endpoints are not yet connected, so
    no edge can be lost to rounding at a window boundary.
    """
    tracker = current_tracker()
    edges: List[Tuple[int, int, float]] = []
    rho_lo_slack = rho_lo - 1e-9 * rho_lo - 1e-12

    def in_window(result) -> bool:
        if result.distance >= rho_hi:
            return False
        if result.distance >= rho_lo:
            return True
        return not union_find.connected(result.point_a, result.point_b)

    def find_pair(p: KDNode, q: KDNode) -> None:
        stack: List[Tuple[KDNode, KDNode]] = [(p, q)]
        while stack:
            a, b = stack.pop()
            tracker.add(1, 0, phase="wspd")
            if lower_bound(a, b) >= rho_hi:
                continue
            if upper_bound(a, b) < rho_lo_slack:
                continue
            if nodes_fully_connected(union_find, a, b):
                continue
            if a.sphere.diameter < b.sphere.diameter:
                a, b = b, a
            if predicate(a, b):
                result = cache.get(a, b)
                if in_window(result):
                    edges.append(result.as_edge())
                continue
            if a.is_leaf:
                a, b = b, a
            if a.is_leaf:
                # Duplicate points: both singletons, zero-diameter, not
                # separated only in pathological floating-point cases.
                result = cache.get(a, b)
                if in_window(result):
                    edges.append(result.as_edge())
                continue
            stack.append((a.left, b))
            stack.append((a.right, b))

    def visit(node: KDNode) -> None:
        if node.is_leaf:
            return
        if nodes_fully_connected(union_find, node, node):
            return
        find_pair(node.left, node.right)
        visit(node.left)
        visit(node.right)

    visit(tree.root)
    return edges


def memogfk_mst(
    tree: KDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
    core_distances: Optional[np.ndarray] = None,
    initial_beta: int = 2,
) -> Tuple[EdgeList, dict]:
    """Run the MemoGFK engine over an existing kd-tree.

    Parameters
    ----------
    tree:
        kd-tree over the input points (annotated with core distances when
        ``separation='hdbscan'``).
    separation:
        ``'geometric'`` (EMST) or ``'hdbscan'`` (new disjunctive separation).
    s:
        Separation constant for the geometric predicate.
    core_distances:
        When given, BCCP* (mutual reachability) distances are used for edge
        weights; required for HDBSCAN*.
    initial_beta:
        Starting batch-cardinality threshold (the paper uses 2).

    Returns
    -------
    (edges, stats):
        The MST edge list and a statistics dictionary (rounds, BCCP calls,
        distance evaluations, maximum number of edges materialized in any
        round).
    """
    if separation == "geometric":
        predicate: SeparationPredicate = lambda a, b: well_separated(a, b, s)
    elif separation == "hdbscan":
        predicate = hdbscan_well_separated
    else:
        raise ValueError("separation must be 'geometric' or 'hdbscan'")
    if tree.leaf_size != 1 and any(leaf.size > 1 for leaf in tree.leaves()):
        raise ValueError(
            "MemoGFK requires a kd-tree built with leaf_size=1 (pairs inside a "
            "multi-point leaf would never be enumerated)"
        )

    n = tree.size
    cache = BCCPCache(tree, core_distances=core_distances)
    union_find = UnionFind(n)
    output = EdgeList()
    if core_distances is None:
        lower_bound, upper_bound = _euclidean_bounds()
    else:
        if not tree.has_core_distances:
            tree.annotate_core_distances(np.asarray(core_distances, dtype=np.float64))
        lower_bound, upper_bound = _mutual_reachability_bounds()

    beta = initial_beta
    rho_lo = 0.0
    rounds = 0
    max_materialized = 0
    total_materialized = 0
    tracker = current_tracker()
    log_n = max(math.log2(n), 1.0)
    while len(output) < n - 1:
        rounds += 1
        # One round costs O(log n) depth: the two pruned traversals recurse to
        # tree depth and the Kruskal batch contributes another log factor.
        tracker.add(0.0, 2.0 * log_n, phase="wspd")
        rho_hi = _get_rho(tree, beta, union_find, predicate, lower_bound)
        batch = _get_pairs(
            tree, rho_lo, rho_hi, union_find, predicate, cache, lower_bound, upper_bound
        )
        max_materialized = max(max_materialized, len(batch))
        total_materialized += len(batch)
        kruskal_batch(batch, output, union_find)
        beta *= 2
        rho_lo = rho_hi
        if math.isinf(rho_hi) and len(output) < n - 1:
            # Final window covered every remaining pair; if the tree is still
            # incomplete the input must contain exact duplicates that the
            # predicate classified as separated with zero distance, which the
            # final batch has already handled.  Guard against an infinite
            # loop regardless.
            break

    stats = {
        "rounds": rounds,
        "bccp_calls": cache.num_bccp_calls,
        "distance_evaluations": cache.num_distance_evaluations,
        "max_pairs_materialized": max_materialized,
        "pairs_materialized": total_materialized,
    }
    return output, stats


def emst_memogfk(
    points,
    *,
    leaf_size: int = 1,
    s: float = 2.0,
    initial_beta: int = 2,
) -> EMSTResult:
    """Exact EMST via the memory-optimized GeoFilterKruskal (Algorithm 3)."""
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "memogfk")

    timings = {}
    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size)
    timings["build-tree"] = time.perf_counter() - start

    start = time.perf_counter()
    edges, stats = memogfk_mst(
        tree, separation="geometric", s=s, initial_beta=initial_beta
    )
    timings["wspd+kruskal"] = time.perf_counter() - start

    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(edges, n, "memogfk", stats=stats)
