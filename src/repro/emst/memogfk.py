"""EMST-MemoGFK: memory-optimized GeoFilterKruskal (Algorithm 3).

MemoGFK never materializes the WSPD.  Each round performs two pruned kd-tree
traversals:

* ``GETRHO`` computes ``rho_hi``, the minimum bounding-sphere distance over
  the not-yet-connected well-separated pairs with cardinality greater than
  ``beta`` (a lower bound on every edge such a pair can produce);
* ``GETPAIRS`` retrieves only the pairs whose BCCP weight lies in the window
  ``[rho_lo, rho_hi)``, pruning subtrees whose bounding-sphere bounds place
  every descendant pair outside the window or whose points are already in one
  connected component.

Both traversals run frontier-at-a-time over the flat array engine: a round
holds every pending (A, B) pair as two node-id arrays and applies all pruning
tests — the cardinality cut, the ρ-window bounds, the connectivity filter and
the separation predicate — as vectorized masks over the whole frontier.
Connectivity is snapshotted once per round (a union-find root sweep folded
into per-node component ranges), which is sound because the union-find only
changes in the Kruskal step between traversals.

GETPAIRS collects the surviving node pairs during the traversal and submits
the whole round to the batched BCCP kernel through the array-backed cache in
one call; the retrieved edge arrays form one vectorized Kruskal batch,
``beta`` doubles and ``rho_lo = rho_hi`` for the next round.  The same
engine, parameterized by the separation predicate and the BCCP cache, also
powers the HDBSCAN*-MemoGFK algorithm (geometric-or-mutually-unreachable
separation, BCCP* distances).
"""

from __future__ import annotations

import math
import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.metric import MetricLike
from repro.core.points import as_points
from repro.emst.gfk import pairs_fully_connected
from repro.emst.result import EMSTResult
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal_batch_arrays
from repro.parallel.pool import map_shards, resolve_num_threads
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind
from repro.spatial.flat import FlatKDTree
from repro.spatial.kdtree import KDTree
from repro.wspd.bccp import BCCPCache
from repro.wspd.separation import node_distances, node_max_distances
from repro.wspd.wspd import PairMask, frontier_step, pair_chunk_size, separation_mask

BoundMask = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _sharded_bound(
    bound: BoundMask,
    a: np.ndarray,
    b: np.ndarray,
    num_threads: Optional[int],
) -> np.ndarray:
    """Evaluate an elementwise pair bound, sharded on the worker pool.

    Same determinism contract as :func:`repro.wspd.wspd.evaluate_pair_mask`:
    fixed chunk boundaries (the shared :func:`repro.wspd.wspd.pair_chunk_size`
    — ``DEFAULT_CHUNK`` unbudgeted, the budget's tile share otherwise), every
    shard fills its slice of one output array, byte-identical to
    ``bound(a, b)`` at any thread count.
    """
    m = int(a.size)
    chunk = pair_chunk_size(num_threads)
    if resolve_num_threads(num_threads) == 1 or m < 2 * chunk:
        return bound(a, b)
    out = np.empty(m, dtype=np.float64)

    def shard(lo: int, hi: int) -> None:
        out[lo:hi] = bound(a[lo:hi], b[lo:hi])

    map_shards(shard, m, num_threads=num_threads, chunk_size=chunk)
    return out


def _geometric_bounds(flat: FlatKDTree) -> Tuple[BoundMask, BoundMask]:
    """Lower/upper bounds on the BCCP of node-pair arrays (plain distances).

    The bounds come from the node bounding spheres stored under the tree's
    metric, so they are valid for every norm-induced metric.
    """
    return (
        lambda a, b: node_distances(flat, a, b),
        lambda a, b: node_max_distances(flat, a, b),
    )


def _mutual_reachability_bounds(flat: FlatKDTree) -> Tuple[BoundMask, BoundMask]:
    """Lower/upper bounds on the BCCP* of node-pair arrays.

    The mutual reachability distance of any pair of points drawn from nodes
    ``A`` and ``B`` is at least ``max(d(A, B), cd_min(A), cd_min(B))`` and at
    most ``max(d_max(A, B), cd_max(A), cd_max(B))``; the geometric bounds
    alone would under/over-estimate it and break the window pruning.
    """

    def lower(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.maximum(
            node_distances(flat, a, b), np.maximum(flat.cd_min[a], flat.cd_min[b])
        )

    def upper(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.maximum(
            node_max_distances(flat, a, b), np.maximum(flat.cd_max[a], flat.cd_max[b])
        )

    return lower, upper


def _seed_pairs(
    flat: FlatKDTree,
    root_min: np.ndarray,
    root_max: np.ndarray,
    min_size: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """(left, right) child pairs of every internal node worth visiting.

    Mirrors the recursive ``visit``: descend from the root, stopping at nodes
    that are leaves, hold at most ``min_size`` points, or whose points already
    form one connected component — a pruned subtree contributes no seeds.
    """
    sizes = flat.node_sizes
    seeds_a: List[np.ndarray] = []
    seeds_b: List[np.ndarray] = []
    frontier = np.array([0], dtype=np.int64)
    while frontier.size:
        keep = (
            (flat.left_child[frontier] >= 0)
            & (sizes[frontier] > min_size)
            & (root_min[frontier] != root_max[frontier])
        )
        frontier = frontier[keep]
        if frontier.size == 0:
            break
        left = flat.left_child[frontier]
        right = flat.right_child[frontier]
        seeds_a.append(left)
        seeds_b.append(right)
        frontier = np.concatenate([left, right])
    if not seeds_a:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(seeds_a), np.concatenate(seeds_b)


def _get_rho(
    flat: FlatKDTree,
    beta: int,
    root_min: np.ndarray,
    root_max: np.ndarray,
    predicate: PairMask,
    lower_bound: BoundMask,
    num_threads: Optional[int] = None,
) -> float:
    """GETRHO: lower bound on edges produced by pairs with cardinality > beta.

    Traverses the kd-tree the same way the WSPD construction does, pruning
    frontier pairs that cannot matter: pairs with cardinality at most beta,
    pairs that are already fully connected, and pairs whose bounding-sphere
    lower bound already exceeds the best bound found so far (the running
    minimum tightens between frontier rounds, exactly like the sequential
    WRITE_MIN cell).
    """
    tracker = current_tracker()
    sizes = flat.node_sizes
    rho = math.inf
    a, b = _seed_pairs(flat, root_min, root_max, beta)
    while a.size:
        tracker.add(float(a.size), 0, phase="wspd")
        keep = sizes[a] + sizes[b] > beta
        a, b = a[keep], b[keep]
        if a.size == 0:
            break
        lower = _sharded_bound(lower_bound, a, b, num_threads)
        keep = lower < rho
        a, b, lower = a[keep], b[keep], lower[keep]
        if a.size == 0:
            break
        keep = ~pairs_fully_connected(root_min, root_max, a, b)
        a, b, lower = a[keep], b[keep], lower[keep]
        if a.size == 0:
            break
        # Both-leaf duplicate pairs carry no rho, so their batch is ignored.
        separated, _, _, _, _, a, b = frontier_step(
            flat, a, b, predicate, num_threads=num_threads
        )
        if separated.any():
            rho = min(rho, float(lower[separated].min()))
    return rho


def _get_pairs(
    tree: KDTree,
    rho_lo: float,
    rho_hi: float,
    point_roots: np.ndarray,
    root_min: np.ndarray,
    root_max: np.ndarray,
    predicate: PairMask,
    cache: BCCPCache,
    lower_bound: BoundMask,
    upper_bound: BoundMask,
    num_threads: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """GETPAIRS: edges of the not-yet-connected pairs with BCCP in the window.

    Only the pairs whose BCCP weight lies in ``[rho_lo, rho_hi)`` are
    materialized (as point-index edge arrays); everything else is pruned using
    the bounding-sphere lower/upper bounds of Figure 3, evaluated for the
    whole frontier per round.  The traversal itself only *collects* the
    surviving node pairs; the round's entire collection is then submitted to
    the batched BCCP kernel with one :meth:`BCCPCache.get_batch` call and the
    window test is applied as a single mask.  ``point_roots`` is the per-point
    union-find snapshot of this round (the union-find only changes in the
    Kruskal step, so it is exact throughout the traversal).

    The window tests are guarded against floating-point disagreement between
    the sphere-based bounds and the vectorized BCCP kernel: the upper-bound
    prune carries a small relative slack, and a pair whose BCCP falls
    marginally *below* ``rho_lo`` (i.e. it straddled the previous window's
    boundary) is still retrieved when its endpoints are not yet connected, so
    no edge can be lost to rounding at a window boundary.
    """
    flat = tree.flat
    tracker = current_tracker()
    rho_lo_slack = rho_lo - 1e-9 * rho_lo - 1e-12
    collected_a: List[np.ndarray] = []
    collected_b: List[np.ndarray] = []

    a, b = _seed_pairs(flat, root_min, root_max, 0)
    while a.size:
        tracker.add(float(a.size), 0, phase="wspd")
        keep = _sharded_bound(lower_bound, a, b, num_threads) < rho_hi
        a, b = a[keep], b[keep]
        if a.size == 0:
            break
        keep = _sharded_bound(upper_bound, a, b, num_threads) >= rho_lo_slack
        a, b = a[keep], b[keep]
        if a.size == 0:
            break
        keep = ~pairs_fully_connected(root_min, root_max, a, b)
        a, b = a[keep], b[keep]
        if a.size == 0:
            break
        _, sep_a, sep_b, dup_a, dup_b, a, b = frontier_step(
            flat, a, b, predicate, num_threads=num_threads
        )
        if sep_a.size:
            collected_a.append(sep_a)
            collected_b.append(sep_b)
        # Duplicate points: both singletons, zero-diameter, not separated
        # only in pathological floating-point cases.
        if dup_a.size:
            collected_a.append(dup_a)
            collected_b.append(dup_b)

    if not collected_a:
        empty_idx = np.empty(0, dtype=np.int64)
        return empty_idx, empty_idx.copy(), np.empty(0, dtype=np.float64)
    point_a, point_b, weight = cache.get_batch(
        np.concatenate(collected_a), np.concatenate(collected_b)
    )
    in_window = (weight < rho_hi) & (
        (weight >= rho_lo) | (point_roots[point_a] != point_roots[point_b])
    )
    return point_a[in_window], point_b[in_window], weight[in_window]


#: Checkpoint phase recording the MemoGFK round loop's live state.  Saved
#: after every completed round, retired by the api layer once the final MST
#: phase is committed.
ROUND_PHASE = "mst-rounds"


def _save_round_state(
    checkpoint,
    output: EdgeList,
    union_find: UnionFind,
    beta: int,
    rho_lo: float,
    rounds: int,
    max_materialized: int,
    total_materialized: int,
) -> None:
    u, v, w = output.as_arrays()
    arrays = {
        "edges_u": u,
        "edges_v": v,
        "edges_w": w,
        # beta can exceed float53 after enough doublings; keep ints exact.
        "counters": np.array(
            [beta, rounds, max_materialized, total_materialized], dtype=np.int64
        ),
        # rho_lo may legitimately be +inf (last window), so it cannot ride
        # the JSON manifest metadata.
        "rho_lo": np.array([rho_lo], dtype=np.float64),
    }
    for key, value in union_find.state_arrays().items():
        arrays[f"uf_{key}"] = value
    checkpoint.save_phase(ROUND_PHASE, arrays, {"round": rounds})


def memogfk_mst(
    tree: KDTree,
    *,
    separation: str = "geometric",
    s: float = 2.0,
    core_distances: Optional[np.ndarray] = None,
    initial_beta: int = 2,
    num_threads: Optional[int] = None,
    checkpoint=None,
) -> Tuple[EdgeList, dict]:
    """Run the MemoGFK engine over an existing kd-tree.

    Parameters
    ----------
    tree:
        kd-tree over the input points (annotated with core distances when
        ``separation='hdbscan'``).
    separation:
        ``'geometric'`` (EMST) or ``'hdbscan'`` (new disjunctive separation).
    s:
        Separation constant for the geometric predicate.
    core_distances:
        When given, BCCP* (mutual reachability) distances are used for edge
        weights; required for HDBSCAN*.
    initial_beta:
        Starting batch-cardinality threshold (the paper uses 2).
    num_threads:
        Worker threads for the batched stages: the GETRHO/GETPAIRS bound and
        separation sweeps, each round's BCCP(*) size-class kernel and the
        Kruskal weight sort all shard onto the persistent worker pool with
        fixed chunk boundaries, so the MST is byte-identical at any thread
        count; ``None``/``0``/``1`` run inline.
    checkpoint:
        Optional :class:`~repro.resilience.checkpoint.CheckpointManager`.
        When given, the loop commits its complete live state — the accepted
        edges, the union-find forest, ``beta``/``rho_lo`` and the round
        counters — after *every* round, and restores it on entry, so a run
        killed mid-MST resumes at its last finished round and still produces
        a byte-identical tree (each round is a deterministic function of the
        restored state).

    Returns
    -------
    (edges, stats):
        The MST edge list and a statistics dictionary (rounds, BCCP calls,
        distance evaluations, maximum number of edges materialized in any
        round).
    """
    if separation not in ("geometric", "hdbscan"):
        raise ValueError("separation must be 'geometric' or 'hdbscan'")
    flat = tree.flat
    if tree.leaf_size != 1 and int(flat.node_sizes[flat.leaf_ids()].max()) > 1:
        raise ValueError(
            "MemoGFK requires a kd-tree built with leaf_size=1 (pairs inside a "
            "multi-point leaf would never be enumerated)"
        )

    n = tree.size
    cache = BCCPCache(tree, core_distances=core_distances, num_threads=num_threads)
    union_find = UnionFind(n)
    output = EdgeList()
    if core_distances is None:
        lower_bound, upper_bound = _geometric_bounds(flat)
    else:
        if not tree.has_core_distances:
            tree.annotate_core_distances(np.asarray(core_distances, dtype=np.float64))
        lower_bound, upper_bound = _mutual_reachability_bounds(flat)
    predicate = separation_mask(flat, separation, s)

    beta = initial_beta
    rho_lo = 0.0
    rounds = 0
    max_materialized = 0
    total_materialized = 0
    if checkpoint is not None and checkpoint.has_phase(ROUND_PHASE):
        arrays, _ = checkpoint.load_phase(ROUND_PHASE)
        output.extend_arrays(arrays["edges_u"], arrays["edges_v"], arrays["edges_w"])
        union_find = UnionFind.from_state_arrays(
            {
                "parent": arrays["uf_parent"],
                "rank": arrays["uf_rank"],
                "num_components": arrays["uf_num_components"],
            }
        )
        counters = arrays["counters"]
        beta = int(counters[0])
        rounds = int(counters[1])
        max_materialized = int(counters[2])
        total_materialized = int(counters[3])
        rho_lo = float(arrays["rho_lo"][0])
    tracker = current_tracker()
    log_n = max(math.log2(n), 1.0)
    try:
        while len(output) < n - 1:
            rounds += 1
            # One round costs O(log n) depth: the two pruned traversals recurse
            # to tree depth and the Kruskal batch contributes another log
            # factor.
            tracker.add(0.0, 2.0 * log_n, phase="wspd")
            # The union-find only changes in the Kruskal step, so one component
            # snapshot (per-point roots folded into per-node root ranges) is
            # valid for both traversals of the round.
            point_roots = union_find.roots()
            root_min, root_max = flat.node_value_ranges(point_roots)
            rho_hi = _get_rho(
                flat, beta, root_min, root_max, predicate, lower_bound, num_threads
            )
            batch_u, batch_v, batch_w = _get_pairs(
                tree,
                rho_lo,
                rho_hi,
                point_roots,
                root_min,
                root_max,
                predicate,
                cache,
                lower_bound,
                upper_bound,
                num_threads,
            )
            max_materialized = max(max_materialized, int(batch_u.size))
            total_materialized += int(batch_u.size)
            kruskal_batch_arrays(
                batch_u, batch_v, batch_w, output, union_find, num_threads=num_threads
            )
            beta *= 2
            rho_lo = rho_hi
            if checkpoint is not None:
                _save_round_state(
                    checkpoint,
                    output,
                    union_find,
                    beta,
                    rho_lo,
                    rounds,
                    max_materialized,
                    total_materialized,
                )
            if math.isinf(rho_hi) and len(output) < n - 1:
                # Final window covered every remaining pair; if the tree is
                # still incomplete the input must contain exact duplicates that
                # the predicate classified as separated with zero distance,
                # which the final batch has already handled.  Guard against an
                # infinite loop regardless.
                break
    except BaseException:
        # Spill lifecycle: under a bounded budget the cache columns and the
        # output buffers may be spill-file memmaps; release them now so an
        # aborted fit drops its disk mappings (and the "bccp_cache"
        # reservation) deterministically instead of at garbage collection.
        cache.close()
        output.release()
        raise

    stats = {
        "rounds": rounds,
        "bccp_calls": cache.num_bccp_calls,
        "distance_evaluations": cache.num_distance_evaluations,
        "max_pairs_materialized": max_materialized,
        "pairs_materialized": total_materialized,
    }
    # The memo served its purpose; dropping it here releases its reservation
    # (and any spill mappings) before the caller builds on the MST.
    cache.close()
    return output, stats


def emst_memogfk(
    points,
    *,
    leaf_size: int = 1,
    s: float = 2.0,
    initial_beta: int = 2,
    num_threads: Optional[int] = None,
    metric: MetricLike = None,
    checkpoint=None,
) -> EMSTResult:
    """Exact metric MST via the memory-optimized GeoFilterKruskal (Algorithm 3).

    ``num_threads`` shards the batched stages onto the persistent worker pool
    (see :func:`memogfk_mst`); the MST is byte-identical at any setting.
    ``metric`` selects the distance (Euclidean by default); the metric rides
    the kd-tree, so every traversal bound and BCCP kernel picks it up.
    ``checkpoint`` enables the per-round state commits of
    :func:`memogfk_mst` (the ``emst()`` entry point wires this up from its
    ``checkpoint_dir=``).
    """
    data = as_points(points, min_points=1)
    n = data.shape[0]
    if n == 1:
        return EMSTResult(EdgeList(), 1, "memogfk")

    timings = {}
    start = time.perf_counter()
    tree = KDTree(data, leaf_size=leaf_size, metric=metric)
    timings["build-tree"] = time.perf_counter() - start

    start = time.perf_counter()
    edges, stats = memogfk_mst(
        tree,
        separation="geometric",
        s=s,
        initial_beta=initial_beta,
        num_threads=num_threads,
        checkpoint=checkpoint,
    )
    timings["wspd+kruskal"] = time.perf_counter() - start

    stats.update({f"time_{name}": value for name, value in timings.items()})
    return EMSTResult(edges, n, "memogfk", stats=stats)
