"""Command-line interface.

Exposes the three public pipelines on files of points so the library can be
used without writing Python::

    python -m repro emst points.csv --method memogfk --output tree.csv
    python -m repro hdbscan points.csv --min-pts 10 --epsilon 0.5
    python -m repro single-linkage points.csv --num-clusters 8
    python -m repro serve points.csv --save fit.npz
    python -m repro serve --load fit.npz --requests queries.jsonl

``serve`` is the long-lived mode: fit once (or ``--load`` a state saved with
``--save``), then answer any number of JSON-lines re-cut / label / predict /
update requests off the fitted arrays with zero refitting (``update``
mutates the served point set through the incremental :mod:`repro.dynamic`
engine).  A corrupt or fingerprint-mismatched ``--load`` file is refused
with exit code 2, as is ``--load`` combined with fit-shaping flags the
saved state already fixes.

Input files may be ``.csv`` / ``.txt`` (one point per row, comma or whitespace
separated, optional header) or ``.npy``.  Outputs are written as CSV: MST
edges as ``u,v,weight`` rows, cluster labels as one integer per row.

Every subcommand takes ``--num-threads N`` to shard the batched kernels
across the persistent worker pool (outputs are byte-identical at any
setting), ``--metric NAME`` to pick the distance metric (``euclidean``,
``manhattan``, ``chebyshev``, or ``minkowski:p``, e.g. ``minkowski:3``) and
``--backend NAME`` to pick the kernel backend (``numpy``, ``numba``,
``numpy-f32``, ``numba-f32``; compiled backends fall back to their numpy
equivalent with a warning when numba is not installed).
``emst`` and ``single-linkage`` take ``--epsilon EPS`` — and ``hdbscan``
takes ``--approx-epsilon EPS`` (``--epsilon`` being its DBSCAN* cut level) —
to compute the (1+EPS)-approximate tree instead of the exact one.

``--memory-budget SIZE`` (``512M``, ``2G``, or plain bytes) caps the bytes
the engine's tiled kernels and growable buffers plan to materialize: tiles
shrink to the budget's share, edge buffers past its spill threshold go to
unlinked temporary-file memmaps, and ``.npy`` inputs are memory-mapped
instead of loaded into RAM — outputs are byte-identical at any budget.

``--checkpoint-dir DIR`` commits each finished pipeline phase to ``DIR`` so
an interrupted run can be rerun with ``--resume`` and skip them
(byte-identical output; identical input and parameters enforced by the
checkpoint fingerprint).  ``--max-retries N`` / ``--task-timeout SECONDS``
bound the worker pool's death-recovery ladder.  Failures exit with typed
codes — 2 generic, 3 checkpoint (corrupt or mismatched), 4 worker failure,
5 spill I/O — each with a one-line actionable message on stderr.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

import numpy as np

from repro.approx import resolve_approx_method
from repro.core.backend import BACKEND_NAMES, resolve_backend
from repro.core.budget import MemoryBudget, parse_memory_size
from repro.core.errors import (
    CheckpointError,
    ReproError,
    SpillIOError,
    WorkerFailedError,
)
from repro.core.metric import METRIC_NAMES, resolve_metric
from repro.core.points import open_memmap_points
from repro.dendrogram.single_linkage import single_linkage
from repro.emst.api import EMST_METHODS, emst
from repro.hdbscan.api import HDBSCAN_METHODS, hdbscan


def load_points(path: str, *, memory_budget: Optional[MemoryBudget] = None) -> np.ndarray:
    """Load an ``(n, d)`` point array from a .npy, .csv or whitespace text file.

    Under a bounded ``memory_budget``, a ``.npy`` input is opened as a
    read-only memory map (:func:`repro.core.points.open_memmap_points`) so
    the points never occupy budgeted RAM; text formats always parse into RAM.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise ReproError(f"input file not found: {path}")
    if file_path.suffix == ".npy":
        if memory_budget is not None and memory_budget.bounded:
            return open_memmap_points(file_path)
        return np.load(file_path)
    text = file_path.read_text().strip()
    if not text:
        raise ReproError(f"input file is empty: {path}")
    first_line = text.splitlines()[0]
    delimiter = "," if "," in first_line else None
    skip = 0
    tokens = first_line.replace(",", " ").split()
    try:
        [float(token) for token in tokens]
    except ValueError:
        skip = 1  # header row
    return np.loadtxt(file_path, delimiter=delimiter, skiprows=skip, ndmin=2)


def _write_edges(result, destination: Optional[str]) -> None:
    lines = [f"{u},{v},{w:.17g}" for u, v, w in result.edges]
    _emit("\n".join(["u,v,weight"] + lines), destination)


def _write_labels(labels: np.ndarray, destination: Optional[str]) -> None:
    _emit("\n".join(["label"] + [str(int(label)) for label in labels]), destination)


def _emit(text: str, destination: Optional[str]) -> None:
    if destination:
        Path(destination).write_text(text + "\n")
    else:
        print(text)


def _parse_metric(text: str):
    """argparse ``type=`` hook: metric spec string -> Metric instance."""
    try:
        return resolve_metric(text)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _parse_memory_budget(text: str) -> MemoryBudget:
    """argparse ``type=`` hook: size spec string -> MemoryBudget.

    Shares :func:`repro.core.budget.parse_memory_size` with the estimators'
    ``memory_budget=`` validation, so ``--memory-budget 12X`` fails fast at
    parse time with the same message the Python API gives.
    """
    try:
        return MemoryBudget(parse_memory_size(text))
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _parse_backend(text: str):
    """argparse ``type=`` hook: backend name -> KernelBackend instance.

    Resolution happens here, at parse time, so a bad name fails fast with the
    registry's own message listing the available backends (an unavailable
    compiled backend still resolves — to its numpy fallback, with a warning —
    rather than erroring).
    """
    try:
        return resolve_backend(text)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


#: ``--help`` epilog listing the process-wide environment knobs.  Kept as a
#: module constant so the tests can assert the help output stays complete.
ENV_VAR_EPILOG = """\
environment variables:
  REPRO_BACKEND        default kernel backend when --backend is not given
                       (numpy, numba, numpy-f32, numba-f32)
  REPRO_MEMORY_BUDGET  default memory budget when --memory-budget is not
                       given (e.g. 512M, 2G, or plain bytes)
  REPRO_FAULTS         deterministic fault-injection spec for resilience
                       drills (e.g. 'crash-after-phase:phase=mst'); see
                       repro.resilience.faults

exit codes:
  0 success   2 usage/engine error (incl. corrupt or mismatched fit-state)
  3 checkpoint error   4 worker failure   5 spill I/O error
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel EMST and hierarchical spatial clustering (SIGMOD 2021 reproduction)",
        epilog=ENV_VAR_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_num_threads(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--num-threads",
            type=int,
            default=None,
            help="worker threads for the batched kernels (results are "
            "byte-identical at any setting; default: single-threaded)",
        )
        subparser.add_argument(
            "--metric",
            type=_parse_metric,
            default="euclidean",
            metavar="METRIC",
            help="distance metric: one of "
            + ", ".join(METRIC_NAMES)
            + " (minkowski takes an order, e.g. minkowski:3); "
            "default: euclidean",
        )
        subparser.add_argument(
            "--backend",
            type=_parse_backend,
            default=None,
            metavar="BACKEND",
            help="kernel backend: one of "
            + ", ".join(BACKEND_NAMES)
            + " (-f32 variants score candidates in float32 and re-evaluate "
            "surviving edges in exact float64; numba backends fall back to "
            "numpy with a warning when numba is not installed); "
            "default: the REPRO_BACKEND environment variable, else numpy",
        )
        subparser.add_argument(
            "--memory-budget",
            type=_parse_memory_budget,
            default=None,
            metavar="SIZE",
            help="bytes ceiling for the tiled kernels and growable buffers "
            "(e.g. 512M, 2G, or plain bytes; K/M/G/T suffixes are binary). "
            ".npy inputs are memory-mapped instead of loaded, oversized "
            "edge buffers spill to unlinked temporary files, and outputs "
            "stay byte-identical at any budget; "
            "default: the REPRO_MEMORY_BUDGET environment variable, "
            "else unbounded",
        )
        subparser.add_argument(
            "--checkpoint-dir",
            default=None,
            metavar="DIR",
            help="directory for phase-level checkpoint/resume: each finished "
            "pipeline phase is committed atomically with a checksum, and a "
            "rerun with --resume over the same directory skips the "
            "completed phases and produces byte-identical output; "
            "without --resume any existing checkpoint there is discarded",
        )
        subparser.add_argument(
            "--resume",
            action="store_true",
            help="resume from the checkpoint in --checkpoint-dir (requires "
            "--checkpoint-dir; identical input and parameters are enforced "
            "via the checkpoint fingerprint)",
        )
        subparser.add_argument(
            "--max-retries",
            type=int,
            default=None,
            metavar="N",
            help="worker-death events one pooled batch absorbs by "
            "respawn-and-retry before degrading to a serial fallback "
            "(default: 2)",
        )
        subparser.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="maximum time a pooled batch may go with no task completing "
            "before the run fails with a worker error (default: no limit)",
        )

    def add_epsilon(subparser: argparse.ArgumentParser, flag: str = "--epsilon") -> None:
        subparser.add_argument(
            flag,
            type=float,
            default=None,
            dest="approx_epsilon",
            metavar="EPS",
            help="compute the (1+EPS)-approximate tree instead of the exact "
            "one (total weight within a factor 1+EPS of exact, never "
            "below it); 0 means exact",
        )

    emst_parser = subparsers.add_parser("emst", help="Euclidean minimum spanning tree")
    emst_parser.add_argument("input", help="points file (.csv/.txt/.npy)")
    emst_parser.add_argument("--method", default="memogfk", choices=sorted(EMST_METHODS))
    emst_parser.add_argument("--output", help="write edges as CSV to this path")
    add_epsilon(emst_parser)
    add_num_threads(emst_parser)

    hdbscan_parser = subparsers.add_parser("hdbscan", help="HDBSCAN* clustering")
    hdbscan_parser.add_argument("input", help="points file (.csv/.txt/.npy)")
    hdbscan_parser.add_argument("--min-pts", type=int, default=10)
    hdbscan_parser.add_argument(
        "--method", default="memogfk", choices=sorted(HDBSCAN_METHODS)
    )
    hdbscan_parser.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="cut the hierarchy at this epsilon (DBSCAN* labels); "
        "without it, excess-of-mass flat clusters are returned",
    )
    hdbscan_parser.add_argument("--min-cluster-size", type=int, default=5)
    hdbscan_parser.add_argument("--output", help="write labels as CSV to this path")
    hdbscan_parser.add_argument(
        "--mst-output", help="also write the mutual-reachability MST edges here"
    )
    # --epsilon already names the DBSCAN* cut level on this subcommand.
    add_epsilon(hdbscan_parser, "--approx-epsilon")
    add_num_threads(hdbscan_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="fit (or --load) once, then answer re-cut/label/predict "
        "requests off the fitted state",
        description="Long-lived serving mode: run one expensive fit (or "
        "load a saved fit-state) and answer any number of JSON-lines "
        "requests off the read-only fitted arrays — no refitting.  One "
        "request object per input line (e.g. {\"op\": \"recut\", "
        "\"epsilon\": 0.5}, {\"op\": \"predict\", \"points\": [[...]]} or "
        "{\"op\": \"update\", \"insert\": [[...]], \"delete\": [0]} for an "
        "incremental point-set change with no refit); one JSON response "
        "per output line.  With --save and no --requests the command fits, "
        "saves the state and exits.",
    )
    serve_parser.add_argument(
        "input", nargs="?", help="points file (.csv/.txt/.npy) to fit"
    )
    serve_parser.add_argument(
        "--load",
        metavar="STATE",
        help="serve a fit-state saved with --save instead of fitting "
        "(refuses a corrupt file or one fitted under a different engine "
        "version, metric, backend or point set)",
    )
    serve_parser.add_argument(
        "--save",
        metavar="STATE",
        help="save the fitted state to this .npz (single checksummed file)",
    )
    # Fit-affecting flags use None sentinels (not their effective defaults)
    # so _run_serve can tell "explicitly passed" from "absent" even when the
    # passed value equals the default — required for the --load conflict
    # check below.
    serve_parser.add_argument(
        "--min-pts", type=int, default=None, help="(default: 10)"
    )
    serve_parser.add_argument(
        "--min-cluster-size", type=int, default=None, help="(default: 5)"
    )
    serve_parser.add_argument(
        "--allow-single-cluster", action="store_true", default=None,
        help="let excess-of-mass selection return the root as one cluster",
    )
    serve_parser.add_argument(
        "--method",
        default=None,
        choices=sorted(HDBSCAN_METHODS),
        help="(default: memogfk)",
    )
    serve_parser.add_argument(
        "--requests",
        metavar="FILE",
        help="JSON-lines request file (default: stdin)",
    )
    serve_parser.add_argument(
        "--output", metavar="FILE", help="responses file (default: stdout)"
    )
    serve_parser.add_argument(
        "--cache-size",
        type=int,
        default=128,
        metavar="N",
        help="capacity of the re-cut LRU cache (default: 128)",
    )
    add_num_threads(serve_parser)
    # The shared --metric flag defaults to euclidean on the fitting
    # subcommands; on serve the default must be a None sentinel too, so a
    # --load of a state saved under another metric is not spuriously
    # rejected (and an explicit --metric is asserted against it).
    serve_parser.set_defaults(metric=None)

    linkage_parser = subparsers.add_parser(
        "single-linkage", help="single-linkage clustering via the EMST"
    )
    linkage_parser.add_argument("input", help="points file (.csv/.txt/.npy)")
    linkage_parser.add_argument("--num-clusters", type=int, default=2)
    linkage_parser.add_argument("--method", default="memogfk", choices=sorted(EMST_METHODS))
    linkage_parser.add_argument("--output", help="write labels as CSV to this path")
    add_epsilon(linkage_parser)
    add_num_threads(linkage_parser)

    return parser


def _approx_method_kwargs(args) -> dict:
    """Map the CLI accuracy flag onto ``method=`` / ``epsilon=`` kwargs."""
    flag = "--approx-epsilon" if args.command == "hdbscan" else "--epsilon"
    method, kwargs = resolve_approx_method(
        args.method, getattr(args, "approx_epsilon", None), knob=flag
    )
    return {"method": method, **kwargs}


def _run_serve(args, parser, resilience_kwargs) -> None:
    """The ``serve`` subcommand body (fit or load, optionally save, answer)."""
    from repro.serve import ServingEngine, fit_state, load_state

    if (args.input is None) == (args.load is None):
        parser.error("serve takes a points file or --load STATE (exactly one)")
    if args.load is not None:
        # Fit-shaping flags are fixed by the saved state; all of them carry
        # None-sentinel defaults, so an explicitly-passed flag is detected
        # even when its value equals the fitting default (--min-pts 10 is a
        # conflict too — the saved state, not the flag, decides).  --metric
        # and --backend are allowed through as assertions: load_state
        # refuses a state saved under different geometry or kernels.
        conflicts = [
            flag
            for flag, value in (
                ("--min-pts", args.min_pts),
                ("--min-cluster-size", args.min_cluster_size),
                ("--allow-single-cluster", args.allow_single_cluster),
                ("--method", args.method),
            )
            if value is not None
        ]
        if conflicts:
            parser.error(
                "--load serves a saved fit-state; the fit parameters "
                f"{', '.join(conflicts)} are fixed by it and cannot be "
                "passed (refit without --load to change them)"
            )
        state = load_state(
            args.load,
            metric=args.metric,
            backend=args.backend,
            cut_cache_size=args.cache_size,
        )
    else:
        points = load_points(args.input, memory_budget=args.memory_budget)
        state = fit_state(
            points,
            min_pts=10 if args.min_pts is None else args.min_pts,
            min_cluster_size=(
                5 if args.min_cluster_size is None else args.min_cluster_size
            ),
            allow_single_cluster=bool(args.allow_single_cluster),
            method="memogfk" if args.method is None else args.method,
            metric=args.metric,
            backend=args.backend,
            memory_budget=args.memory_budget,
            num_threads=args.num_threads,
            cut_cache_size=args.cache_size,
            **resilience_kwargs,
        )
    if args.save:
        state.save(args.save)
        print(f"# serve: saved fit-state to {args.save}", file=sys.stderr)
        if args.requests is None:
            # Fit-and-save mode: do not block waiting on an interactive stdin.
            return
    engine = ServingEngine(state, num_threads=args.num_threads)
    if args.requests is not None:
        with open(args.requests) as input_stream:
            if args.output:
                with open(args.output, "w") as output_stream:
                    answered = engine.serve_stream(input_stream, output_stream)
            else:
                answered = engine.serve_stream(input_stream, sys.stdout)
    else:
        answered = engine.serve_stream(sys.stdin, sys.stdout)
    print(
        f"# serve: answered {answered} requests "
        f"({engine.requests_failed} failed), cut cache "
        f"{state.cache_info()['hits']} hits / "
        f"{state.cache_info()['misses']} misses",
        file=sys.stderr,
    )


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    resilience_kwargs = {
        "checkpoint_dir": args.checkpoint_dir,
        "resume": bool(args.resume),
        "max_retries": args.max_retries,
        "task_timeout": args.task_timeout,
    }
    try:
        if args.command == "serve":
            _run_serve(args, parser, resilience_kwargs)
            return 0
        points = load_points(args.input, memory_budget=args.memory_budget)
        metric = resolve_metric(getattr(args, "metric", None))
        if args.command == "emst":
            result = emst(
                points,
                metric=metric,
                backend=args.backend,
                memory_budget=args.memory_budget,
                num_threads=args.num_threads,
                **resilience_kwargs,
                **_approx_method_kwargs(args),
            )
            _write_edges(result, args.output)
            print(
                f"# EMST: {result.num_edges} edges, total weight {result.total_weight:.6g}",
                file=sys.stderr,
            )
        elif args.command == "hdbscan":
            result = hdbscan(
                points,
                min_pts=args.min_pts,
                metric=metric,
                backend=args.backend,
                memory_budget=args.memory_budget,
                num_threads=args.num_threads,
                **resilience_kwargs,
                **_approx_method_kwargs(args),
            )
            if args.mst_output:
                _write_edges(result.mst, args.mst_output)
            if args.epsilon is not None:
                labels = result.dbscan_labels(
                    args.epsilon, min_cluster_size=args.min_cluster_size
                )
            else:
                labels = result.eom_labels(min_cluster_size=args.min_cluster_size)
            _write_labels(labels, args.output)
            clusters = len(set(labels[labels >= 0].tolist()))
            noise = int(np.sum(labels == -1))
            print(f"# HDBSCAN*: {clusters} clusters, {noise} noise points", file=sys.stderr)
        else:  # single-linkage
            result = single_linkage(
                points,
                metric=metric,
                backend=args.backend,
                memory_budget=args.memory_budget,
                num_threads=args.num_threads,
                **resilience_kwargs,
                **_approx_method_kwargs(args),
            )
            labels = result.labels_k(args.num_clusters)
            _write_labels(labels, args.output)
            print(
                f"# single-linkage: {len(set(labels.tolist()))} clusters", file=sys.stderr
            )
    except CheckpointError as error:
        # Corrupt, truncated or fingerprint-mismatched checkpoint state: the
        # message says which and how to recover (delete the directory or drop
        # --resume); distinct exit code so wrappers can retry from scratch.
        print(f"checkpoint error: {error}", file=sys.stderr)
        return 3
    except WorkerFailedError as error:
        print(f"worker failure: {error}", file=sys.stderr)
        return 4
    except SpillIOError as error:
        print(f"spill I/O error: {error}", file=sys.stderr)
        return 5
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
