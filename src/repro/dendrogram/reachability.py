"""Reachability plots (OPTICS sequences).

The reachability plot for a starting point ``s`` lists the points in the
order Prim's algorithm visits them on the (mutual-reachability or Euclidean)
MST starting from ``s``; each point's bar height is the weight of the edge
that attached it to the already-visited set (``inf`` for ``s`` itself).

Two routes produce it:

* :func:`reachability_plot` — run Prim directly on the tree edges (the
  sequential reference, Section 4 "Sequentially ...").
* :func:`reachability_from_dendrogram` — read it off an *ordered* dendrogram:
  the leaf order is the in-order traversal, and a leaf's bar height is the
  height of its nearest ancestor of which it is in the right subtree.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.structure import Dendrogram
from repro.mst.prim import prim_order
from repro.parallel.scheduler import current_tracker


def reachability_plot(
    tree_edges: Iterable[Tuple[int, int, float]],
    num_points: int,
    *,
    start: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reachability plot by running Prim's algorithm on the tree edges.

    Returns ``(order, distances)``: the point ids in visit order and the bar
    height of each (``inf`` for the first).
    """
    order, distances = prim_order(tree_edges, num_points, start=start)
    if len(order) != num_points:
        raise InvalidParameterError(
            "tree_edges do not span all points; cannot build a reachability plot"
        )
    return np.asarray(order, dtype=np.int64), np.asarray(distances, dtype=np.float64)


def reachability_from_dendrogram(dendrogram: Dendrogram) -> Tuple[np.ndarray, np.ndarray]:
    """Reachability plot read off an ordered dendrogram.

    The in-order traversal of the leaves gives the point order; each leaf's
    bar height is the height of the nearest ancestor whose *right* subtree
    contains the leaf (``inf`` for the leftmost leaf).
    """
    n = dendrogram.num_points
    tracker = current_tracker()
    tracker.add(n, max(math.log2(n + 1), 1.0), phase="dendrogram")
    if n == 1:
        return np.zeros(1, dtype=np.int64), np.array([math.inf])
    if dendrogram.root is None:
        raise InvalidParameterError("dendrogram has no root; construction incomplete")

    order: List[int] = []
    heights: List[float] = []
    # Each stack entry carries the height "pending" for the first leaf of the
    # subtree: the height of the nearest ancestor that placed this subtree on
    # its right side.
    stack: List[Tuple[int, float]] = [(dendrogram.root, math.inf)]
    while stack:
        node_id, pending = stack.pop()
        if dendrogram.is_leaf(node_id):
            order.append(node_id)
            heights.append(pending)
            continue
        left, right = dendrogram.children(node_id)
        height = dendrogram.height(node_id)
        stack.append((right, height))
        stack.append((left, pending))
    return np.asarray(order, dtype=np.int64), np.asarray(heights, dtype=np.float64)
