"""Extracting flat clusterings from dendrograms and HDBSCAN* MSTs.

* :func:`clusters_at_height` cuts a dendrogram horizontally at a height
  ``epsilon``: the resulting clusters are the maximal subtrees entirely below
  the cut (single-linkage clusters when the dendrogram came from the EMST).
* :func:`dbscan_star_labels` reproduces the DBSCAN* clustering for a given
  ``epsilon`` directly from the HDBSCAN* MST plus core distances: a point is
  noise if its core distance exceeds ``epsilon`` (its self-edge is removed),
  and the clusters are the connected components of the remaining points under
  MST edges of weight at most ``epsilon``.
* :func:`cut_num_clusters` extracts exactly ``k`` clusters by splitting the
  ``k - 1`` highest dendrogram nodes (classic single-linkage flat clustering).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.structure import Dendrogram
from repro.parallel.primitives import segment_ranges
from repro.parallel.unionfind import UnionFind


def _label_cluster_roots(
    dendrogram: Dendrogram, roots: Sequence[int], labels: np.ndarray
) -> None:
    """Assign label ``i`` to every leaf under ``roots[i]`` with one scatter.

    Uses the dendrogram's precomputed leaf spans: the leaves of each root are
    one contiguous slice of the in-order leaf sequence, so the whole labeling
    is a segmented-iota gather plus a repeat — no per-node subtree walks, and
    no recursion regardless of dendrogram depth.
    """
    roots = np.asarray(roots, dtype=np.int64)
    if roots.size == 0:
        return
    order, first = dendrogram.leaf_spans()
    counts = dendrogram.node_sizes(roots)
    positions = segment_ranges(first[roots], counts)
    labels[order[positions]] = np.repeat(
        np.arange(roots.size, dtype=np.int64), counts
    )


def clusters_at_height(dendrogram: Dendrogram, epsilon: float) -> np.ndarray:
    """Cluster labels after cutting the dendrogram at height ``epsilon``.

    Every maximal subtree whose root height is at most ``epsilon`` becomes one
    cluster; leaves split off above the cut become singleton clusters.  Labels
    are consecutive integers starting at 0, in breadth-first order of the
    cluster roots (the historical ordering).  The cut runs as a
    level-synchronous frontier sweep over node-id arrays, and the labeling is
    one spans-based scatter.
    """
    n = dendrogram.num_points
    labels = np.full(n, -1, dtype=np.int64)
    if n == 1:
        labels[0] = 0
        return labels
    if dendrogram.root is None:
        raise InvalidParameterError("dendrogram has no root; construction incomplete")

    heights = dendrogram.heights()
    left, right = dendrogram.children_arrays()
    cluster_roots: list = []
    frontier = np.array([dendrogram.root], dtype=np.int64)
    while frontier.size:
        internal = frontier >= n
        below = np.zeros(frontier.shape[0], dtype=bool)
        below[internal] = heights[frontier[internal] - n] <= epsilon
        is_cluster = ~internal | below
        cluster_roots.append(frontier[is_cluster])
        expand = frontier[~is_cluster] - n
        # Interleave children (left1, right1, left2, ...) so the concatenated
        # per-level cluster roots reproduce the breadth-first label order.
        nxt = np.empty(2 * expand.shape[0], dtype=np.int64)
        nxt[0::2] = left[expand]
        nxt[1::2] = right[expand]
        frontier = nxt
    _label_cluster_roots(dendrogram, np.concatenate(cluster_roots), labels)
    return labels


def cut_num_clusters(dendrogram: Dendrogram, num_clusters: int) -> np.ndarray:
    """Cluster labels for exactly ``num_clusters`` clusters.

    Splits the dendrogram greedily at its highest internal nodes, the
    classic way a single-linkage dendrogram is flattened to ``k`` clusters.
    ``num_clusters`` is clamped to the number of points.
    """
    n = dendrogram.num_points
    if num_clusters < 1:
        raise InvalidParameterError("num_clusters must be >= 1")
    num_clusters = min(num_clusters, n)
    labels = np.full(n, -1, dtype=np.int64)
    if n == 1 or num_clusters == 1:
        labels[:] = 0
        return labels

    # Max-heap of candidate cluster roots keyed by height (leaves height 0).
    def height_of(node_id: int) -> float:
        return 0.0 if dendrogram.is_leaf(node_id) else dendrogram.height(node_id)

    heap = [(-height_of(dendrogram.root), dendrogram.root)]
    clusters = []
    while heap and len(heap) + len(clusters) < num_clusters:
        negative_height, node_id = heapq.heappop(heap)
        if dendrogram.is_leaf(node_id):
            clusters.append(node_id)
            continue
        left, right = dendrogram.children(node_id)
        heapq.heappush(heap, (-height_of(left), left))
        heapq.heappush(heap, (-height_of(right), right))
    clusters.extend(node_id for _, node_id in heap)

    _label_cluster_roots(dendrogram, clusters, labels)
    return labels


def dbscan_star_labels(
    mst_edges: Iterable[Tuple[int, int, float]],
    core_distances: np.ndarray,
    epsilon: float,
    *,
    min_cluster_size: int = 1,
) -> np.ndarray:
    """DBSCAN* labels for one value of ``epsilon`` from the HDBSCAN* MST.

    A point whose core distance exceeds ``epsilon`` is noise (label ``-1``).
    The remaining (core) points are clustered by the connected components of
    the MST edges with weight at most ``epsilon`` restricted to core points.
    Components smaller than ``min_cluster_size`` are also labelled noise.

    The whole computation is vectorized — one masked ``union_many`` over the
    edge columns, a ``bincount`` for component sizes, and a first-occurrence
    relabeling — and produces byte-identical labels to the historical
    per-edge/per-point loops: components are independent of union order, and
    labels are assigned in order of each component's first core point.  This
    is the serving layer's epsilon re-cut primitive, so a warm re-cut costs
    one pass over ``n - 1`` edges rather than a refit.
    """
    core_distances = np.asarray(core_distances, dtype=np.float64)
    n = core_distances.shape[0]
    if hasattr(mst_edges, "as_arrays"):
        edge_u, edge_v, edge_w = mst_edges.as_arrays()
    elif (
        isinstance(mst_edges, tuple)
        and len(mst_edges) == 3
        and all(isinstance(column, np.ndarray) for column in mst_edges)
    ):
        # Already-columnar edges (the serving layer's FitState stores the
        # MST as three parallel arrays).
        edge_u, edge_v, edge_w = mst_edges
    else:
        rows = [(int(u), int(v), float(w)) for u, v, w in mst_edges]
        edge_u = np.array([r[0] for r in rows], dtype=np.int64)
        edge_v = np.array([r[1] for r in rows], dtype=np.int64)
        edge_w = np.array([r[2] for r in rows], dtype=np.float64)
    edge_u = np.asarray(edge_u, dtype=np.int64)
    edge_v = np.asarray(edge_v, dtype=np.int64)
    edge_w = np.asarray(edge_w, dtype=np.float64)

    is_core = core_distances <= epsilon
    labels = np.full(n, -1, dtype=np.int64)
    core_index = np.flatnonzero(is_core)
    if core_index.size == 0:
        return labels

    union_find = UnionFind(n)
    keep = (edge_w <= epsilon) & is_core[edge_u] & is_core[edge_v]
    union_find.union_many(edge_u[keep], edge_v[keep])
    roots = union_find.roots()

    core_roots = roots[core_index]
    component_size = np.bincount(core_roots, minlength=n)
    eligible = core_index[component_size[core_roots] >= min_cluster_size]
    if eligible.size == 0:
        return labels

    # Label components by the index order of their first eligible point,
    # exactly as the historical sequential scan did.
    _, first_pos, inverse = np.unique(
        roots[eligible], return_index=True, return_inverse=True
    )
    order = np.argsort(first_pos, kind="stable")
    rank = np.empty(order.size, dtype=np.int64)
    rank[order] = np.arange(order.size, dtype=np.int64)
    labels[eligible] = rank[inverse]
    return labels
