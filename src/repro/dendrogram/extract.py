"""Extracting flat clusterings from dendrograms and HDBSCAN* MSTs.

* :func:`clusters_at_height` cuts a dendrogram horizontally at a height
  ``epsilon``: the resulting clusters are the maximal subtrees entirely below
  the cut (single-linkage clusters when the dendrogram came from the EMST).
* :func:`dbscan_star_labels` reproduces the DBSCAN* clustering for a given
  ``epsilon`` directly from the HDBSCAN* MST plus core distances: a point is
  noise if its core distance exceeds ``epsilon`` (its self-edge is removed),
  and the clusters are the connected components of the remaining points under
  MST edges of weight at most ``epsilon``.
* :func:`cut_num_clusters` extracts exactly ``k`` clusters by splitting the
  ``k - 1`` highest dendrogram nodes (classic single-linkage flat clustering).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.structure import Dendrogram
from repro.parallel.primitives import segment_ranges
from repro.parallel.unionfind import UnionFind


def _label_cluster_roots(
    dendrogram: Dendrogram, roots: Sequence[int], labels: np.ndarray
) -> None:
    """Assign label ``i`` to every leaf under ``roots[i]`` with one scatter.

    Uses the dendrogram's precomputed leaf spans: the leaves of each root are
    one contiguous slice of the in-order leaf sequence, so the whole labeling
    is a segmented-iota gather plus a repeat — no per-node subtree walks, and
    no recursion regardless of dendrogram depth.
    """
    roots = np.asarray(roots, dtype=np.int64)
    if roots.size == 0:
        return
    order, first = dendrogram.leaf_spans()
    counts = dendrogram.node_sizes(roots)
    positions = segment_ranges(first[roots], counts)
    labels[order[positions]] = np.repeat(
        np.arange(roots.size, dtype=np.int64), counts
    )


def clusters_at_height(dendrogram: Dendrogram, epsilon: float) -> np.ndarray:
    """Cluster labels after cutting the dendrogram at height ``epsilon``.

    Every maximal subtree whose root height is at most ``epsilon`` becomes one
    cluster; leaves split off above the cut become singleton clusters.  Labels
    are consecutive integers starting at 0, in breadth-first order of the
    cluster roots (the historical ordering).  The cut runs as a
    level-synchronous frontier sweep over node-id arrays, and the labeling is
    one spans-based scatter.
    """
    n = dendrogram.num_points
    labels = np.full(n, -1, dtype=np.int64)
    if n == 1:
        labels[0] = 0
        return labels
    if dendrogram.root is None:
        raise InvalidParameterError("dendrogram has no root; construction incomplete")

    heights = dendrogram.heights()
    left, right = dendrogram.children_arrays()
    cluster_roots: list = []
    frontier = np.array([dendrogram.root], dtype=np.int64)
    while frontier.size:
        internal = frontier >= n
        below = np.zeros(frontier.shape[0], dtype=bool)
        below[internal] = heights[frontier[internal] - n] <= epsilon
        is_cluster = ~internal | below
        cluster_roots.append(frontier[is_cluster])
        expand = frontier[~is_cluster] - n
        # Interleave children (left1, right1, left2, ...) so the concatenated
        # per-level cluster roots reproduce the breadth-first label order.
        nxt = np.empty(2 * expand.shape[0], dtype=np.int64)
        nxt[0::2] = left[expand]
        nxt[1::2] = right[expand]
        frontier = nxt
    _label_cluster_roots(dendrogram, np.concatenate(cluster_roots), labels)
    return labels


def cut_num_clusters(dendrogram: Dendrogram, num_clusters: int) -> np.ndarray:
    """Cluster labels for exactly ``num_clusters`` clusters.

    Splits the dendrogram greedily at its highest internal nodes, the
    classic way a single-linkage dendrogram is flattened to ``k`` clusters.
    ``num_clusters`` is clamped to the number of points.
    """
    n = dendrogram.num_points
    if num_clusters < 1:
        raise InvalidParameterError("num_clusters must be >= 1")
    num_clusters = min(num_clusters, n)
    labels = np.full(n, -1, dtype=np.int64)
    if n == 1 or num_clusters == 1:
        labels[:] = 0
        return labels

    # Max-heap of candidate cluster roots keyed by height (leaves height 0).
    def height_of(node_id: int) -> float:
        return 0.0 if dendrogram.is_leaf(node_id) else dendrogram.height(node_id)

    heap = [(-height_of(dendrogram.root), dendrogram.root)]
    clusters = []
    while heap and len(heap) + len(clusters) < num_clusters:
        negative_height, node_id = heapq.heappop(heap)
        if dendrogram.is_leaf(node_id):
            clusters.append(node_id)
            continue
        left, right = dendrogram.children(node_id)
        heapq.heappush(heap, (-height_of(left), left))
        heapq.heappush(heap, (-height_of(right), right))
    clusters.extend(node_id for _, node_id in heap)

    _label_cluster_roots(dendrogram, clusters, labels)
    return labels


def dbscan_star_labels(
    mst_edges: Iterable[Tuple[int, int, float]],
    core_distances: np.ndarray,
    epsilon: float,
    *,
    min_cluster_size: int = 1,
) -> np.ndarray:
    """DBSCAN* labels for one value of ``epsilon`` from the HDBSCAN* MST.

    A point whose core distance exceeds ``epsilon`` is noise (label ``-1``).
    The remaining (core) points are clustered by the connected components of
    the MST edges with weight at most ``epsilon`` restricted to core points.
    Components smaller than ``min_cluster_size`` are also labelled noise.
    """
    core_distances = np.asarray(core_distances, dtype=np.float64)
    n = core_distances.shape[0]
    is_core = core_distances <= epsilon
    union_find = UnionFind(n)
    for u, v, weight in mst_edges:
        u, v = int(u), int(v)
        if weight <= epsilon and is_core[u] and is_core[v]:
            union_find.union(u, v)

    labels = np.full(n, -1, dtype=np.int64)
    component_label = {}
    component_size = {}
    for index in range(n):
        if not is_core[index]:
            continue
        root = union_find.find(index)
        component_size[root] = component_size.get(root, 0) + 1
    next_label = 0
    for index in range(n):
        if not is_core[index]:
            continue
        root = union_find.find(index)
        if component_size[root] < min_cluster_size:
            continue
        if root not in component_label:
            component_label[root] = next_label
            next_label += 1
        labels[index] = component_label[root]
    return labels
