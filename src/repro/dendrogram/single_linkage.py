"""Single-linkage clustering via the EMST.

Computing the EMST and then building its dendrogram solves the single-linkage
hierarchical clustering problem (Gower & Ross); this module packages the two
steps behind one call, which is also what the paper's "dendrogram for
single-linkage clustering" experiments (Figure 9) measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.points import as_points
from repro.dendrogram.extract import clusters_at_height, cut_num_clusters
from repro.dendrogram.structure import Dendrogram
from repro.dendrogram.topdown import dendrogram_topdown
from repro.emst.api import emst
from repro.emst.result import EMSTResult


@dataclass
class SingleLinkageResult:
    """EMST plus its ordered dendrogram and convenience extraction helpers."""

    emst: EMSTResult
    dendrogram: Dendrogram
    stats: Dict[str, float] = field(default_factory=dict)

    def labels_at(self, epsilon: float) -> np.ndarray:
        """Flat clusters obtained by cutting the dendrogram at ``epsilon``."""
        return clusters_at_height(self.dendrogram, epsilon)

    def labels_k(self, num_clusters: int) -> np.ndarray:
        """Flat clustering with exactly ``num_clusters`` clusters."""
        return cut_num_clusters(self.dendrogram, num_clusters)


def single_linkage(
    points,
    *,
    method: str = "memogfk",
    metric=None,
    start: int = 0,
    heavy_fraction: float = 0.1,
    **emst_kwargs,
) -> SingleLinkageResult:
    """Single-linkage hierarchical clustering of a point set.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of points.
    method:
        EMST method to use (see :func:`repro.emst.api.emst`).
    metric:
        Distance metric for the underlying MST (name, Metric instance, or
        ``None`` for Euclidean).
    start:
        Starting vertex for the ordered dendrogram.
    heavy_fraction:
        Heavy-edge fraction for the top-down dendrogram construction.
    emst_kwargs:
        Forwarded to the EMST implementation.
    """
    data = as_points(points, min_points=1)
    timings = {}

    start_time = time.perf_counter()
    tree = emst(data, method=method, metric=metric, **emst_kwargs)
    timings["emst"] = time.perf_counter() - start_time

    start_time = time.perf_counter()
    dendrogram = dendrogram_topdown(
        tree.edges, data.shape[0], start=start, heavy_fraction=heavy_fraction
    )
    timings["dendrogram"] = time.perf_counter() - start_time

    stats = {f"time_{name}": value for name, value in timings.items()}
    return SingleLinkageResult(emst=tree, dendrogram=dendrogram, stats=stats)
