"""Top-down dendrogram construction (Section 4.2 of the paper).

Two variants are provided:

* :func:`dendrogram_topdown_simple` — the paper's warm-up algorithm: remove
  the heaviest edge (it becomes the root), recurse on the two resulting
  subtrees.  Worst-case quadratic, but simple; it doubles as the base case and
  as an independent reference in the tests.

* :func:`dendrogram_topdown` — the divide-and-conquer algorithm with heavy and
  light edges.  Each level takes the heaviest ``heavy_fraction`` of the edges
  (the paper uses 1/10) as the *heavy* subproblem, which forms the top part of
  the dendrogram; the connected components induced by the remaining *light*
  edges form independent light subproblems whose dendrogram roots are spliced
  into the corresponding positions of the heavy-edge dendrogram.  Because the
  light components are contracted into supernodes for the heavy subproblem,
  the splice is represented directly: the supernode's dendrogram id *is* the
  light component's dendrogram root.

The recursion is array-native: a subproblem is three parallel edge arrays,
the vertex → supernode map is one flat ``cluster_of`` array shared by the
whole recursion (every subproblem overwrites only its own vertices, and
leaves them bound to its finished root), light components are grouped with a
stable argsort of their union-find labels (first-occurrence component order,
matching the previous semisort grouping), and supernode redirections are
applied through a reusable identity ``remap`` array instead of per-vertex
dict rebuilds.  The base case shares the bulk merge sweep
(:func:`repro.dendrogram.sequential.merge_edges_bottom_up`) with the
sequential construction.

Both constructions honour the ordered-dendrogram rule (the child cluster
attached to the endpoint closer to the starting vertex goes left), so their
in-order leaf traversal equals Prim's visiting order from that vertex.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.sequential import (
    _ordered_children,
    merge_edges_bottom_up,
    tree_vertex_distances,
)
from repro.dendrogram.structure import Dendrogram
from repro.mst.edges import coerce_edge_arrays
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind

Edge = Tuple[int, int, float]


def _light_component_slices(
    labels: np.ndarray,
) -> List[np.ndarray]:
    """Group edge positions by component label, ordered by first occurrence.

    Equivalent to the previous dict-based semisort: each group keeps its
    edges in input order, and groups appear in the order their label is first
    seen.  One stable argsort + one pass over the unique labels replaces the
    per-edge dict traffic.
    """
    order = np.argsort(labels, kind="stable")
    unique_labels, group_starts, group_counts = np.unique(
        labels[order], return_index=True, return_counts=True
    )
    _, first_seen = np.unique(labels, return_index=True)
    groups = []
    for rank in np.argsort(first_seen, kind="stable"):
        start = group_starts[rank]
        groups.append(order[start : start + group_counts[rank]])
    return groups


def _build_recursive(
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_w: np.ndarray,
    cluster_of: np.ndarray,
    remap: np.ndarray,
    dendrogram: Dendrogram,
    vertex_distance: np.ndarray,
    heavy_fraction: float,
    base_size: int,
) -> int:
    """Heavy/light recursion; returns the dendrogram root of this subproblem.

    Postcondition: ``cluster_of[x] == root`` for every vertex ``x`` touched by
    this subproblem's edges, so callers can redirect whole supernodes with a
    single remap application.
    """
    tracker = current_tracker()
    m = int(edge_u.shape[0])
    tracker.add(m, max(math.log2(m + 1), 1.0), phase="dendrogram")
    verts = np.unique(np.concatenate([edge_u, edge_v]))

    num_heavy = max(1, int(m * heavy_fraction))
    threshold_index = m - num_heavy
    if m <= base_size or threshold_index <= 0:
        # Small subproblem, or every edge would be "heavy" and recursing
        # would not shrink the problem: run the bottom-up merge sweep.
        root = merge_edges_bottom_up(
            dendrogram, edge_u, edge_v, edge_w, cluster_of, vertex_distance
        )
        cluster_of[verts] = root
        return root

    # Heavy edges: the heaviest ``heavy_fraction`` of this subproblem's edges
    # (at least one).  Parallel selection in the paper; a partial sort here.
    order = np.argpartition(edge_w, threshold_index - 1)
    light = order[:threshold_index]
    heavy = order[threshold_index:]
    light_u, light_v, light_w = edge_u[light], edge_v[light], edge_w[light]

    # Light components: connected components induced by the light edges over
    # the contracted supernodes (vertices sharing a representative are one
    # supernode already).
    rep_u = cluster_of[light_u]
    rep_v = cluster_of[light_v]
    supernodes = np.unique(np.concatenate([rep_u, rep_v]))
    union_find = UnionFind(int(supernodes.shape[0]))
    union_find.union_many(
        np.searchsorted(supernodes, rep_u), np.searchsorted(supernodes, rep_v)
    )
    labels = union_find.roots()[np.searchsorted(supernodes, rep_u)]

    # Recursively build every light subproblem; its root becomes the
    # representative of every supernode the component absorbed.  The remap is
    # applied at the supernode level: a vertex that only touches heavy edges
    # may share its supernode with vertices inside a light component, and it
    # must follow that supernode into the component's new root.
    absorbed_all: List[np.ndarray] = []
    for positions in _light_component_slices(labels):
        absorbed = np.unique(
            np.concatenate([rep_u[positions], rep_v[positions]])
        )
        component_root = _build_recursive(
            light_u[positions],
            light_v[positions],
            light_w[positions],
            cluster_of,
            remap,
            dendrogram,
            vertex_distance,
            heavy_fraction,
            base_size,
        )
        remap[absorbed] = component_root
        absorbed_all.append(absorbed)
    cluster_of[verts] = remap[cluster_of[verts]]
    for absorbed in absorbed_all:
        remap[absorbed] = absorbed  # restore the identity for reuse

    # The heavy subproblem operates on the contracted vertices.
    root = _build_recursive(
        edge_u[heavy],
        edge_v[heavy],
        edge_w[heavy],
        cluster_of,
        remap,
        dendrogram,
        vertex_distance,
        heavy_fraction,
        base_size,
    )
    cluster_of[verts] = root
    return root


def dendrogram_topdown(
    edges,
    num_points: int,
    *,
    start: int = 0,
    heavy_fraction: float = 0.1,
    base_size: int = 32,
    vertex_distance: Optional[np.ndarray] = None,
) -> Dendrogram:
    """Ordered dendrogram via the heavy/light divide-and-conquer algorithm.

    Parameters
    ----------
    edges:
        The ``num_points - 1`` spanning-tree edges (any edge collection
        accepted by :func:`repro.mst.edges.coerce_edge_arrays`).
    num_points:
        Number of points/leaves.
    start:
        Starting vertex for the ordered dendrogram / reachability plot.
    heavy_fraction:
        Fraction of the edges treated as heavy at each level (paper: 1/10).
    base_size:
        Subproblems with at most this many edges switch to the sequential
        bottom-up construction (the paper similarly switches to the sequential
        algorithm below a size threshold).
    vertex_distance:
        Precomputed hop distances from ``start``.
    """
    if num_points < 1:
        raise InvalidParameterError("num_points must be >= 1")
    edge_u, edge_v, edge_w = coerce_edge_arrays(edges)
    dendrogram = Dendrogram(num_points)
    if num_points == 1:
        return dendrogram
    if edge_u.shape[0] != num_points - 1:
        raise InvalidParameterError(
            f"a spanning tree over {num_points} points needs {num_points - 1} edges, "
            f"got {edge_u.shape[0]}"
        )
    if not 0.0 < heavy_fraction <= 1.0:
        raise InvalidParameterError("heavy_fraction must be in (0, 1]")
    if vertex_distance is None:
        vertex_distance = tree_vertex_distances(
            (edge_u, edge_v, edge_w), num_points, start
        )

    cluster_of = np.arange(num_points, dtype=np.int64)
    remap = np.arange(2 * num_points - 1, dtype=np.int64)
    root = _build_recursive(
        edge_u,
        edge_v,
        edge_w,
        cluster_of,
        remap,
        dendrogram,
        vertex_distance,
        heavy_fraction,
        max(base_size, 1),
    )
    dendrogram.set_root(root)
    return dendrogram


def dendrogram_topdown_simple(
    edges,
    num_points: int,
    *,
    start: int = 0,
    vertex_distance: Optional[np.ndarray] = None,
) -> Dendrogram:
    """Ordered dendrogram via the warm-up algorithm (remove the heaviest edge).

    Worst-case O(n^2); used as an independent reference implementation and for
    small inputs.
    """
    edge_list = [(int(u), int(v), float(w)) for u, v, w in zip(*coerce_edge_arrays(edges))]
    if num_points < 1:
        raise InvalidParameterError("num_points must be >= 1")
    dendrogram = Dendrogram(num_points)
    if num_points == 1:
        return dendrogram
    if len(edge_list) != num_points - 1:
        raise InvalidParameterError(
            f"a spanning tree over {num_points} points needs {num_points - 1} edges, "
            f"got {len(edge_list)}"
        )
    if vertex_distance is None:
        vertex_distance = tree_vertex_distances(edge_list, num_points, start)
    tracker = current_tracker()

    def build(sub_edges: List[Edge]) -> int:
        tracker.add(len(sub_edges), 1.0, phase="dendrogram")
        if len(sub_edges) == 1:
            u, v, weight = sub_edges[0]
            left, right = _ordered_children(u, v, u, v, vertex_distance)
            return dendrogram.add_internal(left, right, weight, (u, v))
        heaviest_index = max(range(len(sub_edges)), key=lambda i: sub_edges[i][2])
        u, v, weight = sub_edges[heaviest_index]
        remaining = [edge for i, edge in enumerate(sub_edges) if i != heaviest_index]
        # Split the remaining edges by which side of the removed edge they lie on.
        vertices = {a for a, _, _ in sub_edges} | {b for _, b, _ in sub_edges}
        local_index = {vertex: index for index, vertex in enumerate(vertices)}
        union_find = UnionFind(len(local_index))
        for a, b, _ in remaining:
            union_find.union(local_index[a], local_index[b])
        root_u = union_find.find(local_index[u])
        side_u = [e for e in remaining if union_find.find(local_index[e[0]]) == root_u]
        side_v = [e for e in remaining if union_find.find(local_index[e[0]]) != root_u]
        node_u = build(side_u) if side_u else u
        node_v = build(side_v) if side_v else v
        left, right = _ordered_children(node_u, node_v, u, v, vertex_distance)
        return dendrogram.add_internal(left, right, weight, (u, v))

    root = build(edge_list)
    dendrogram.set_root(root)
    return dendrogram
