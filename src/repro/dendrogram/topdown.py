"""Top-down dendrogram construction (Section 4.2 of the paper).

Two variants are provided:

* :func:`dendrogram_topdown_simple` — the paper's warm-up algorithm: remove
  the heaviest edge (it becomes the root), recurse on the two resulting
  subtrees.  Worst-case quadratic, but simple; it doubles as the base case and
  as an independent reference in the tests.

* :func:`dendrogram_topdown` — the divide-and-conquer algorithm with heavy and
  light edges.  Each level takes the heaviest ``heavy_fraction`` of the edges
  (the paper uses 1/10) as the *heavy* subproblem, which forms the top part of
  the dendrogram; the connected components induced by the remaining *light*
  edges form independent light subproblems whose dendrogram roots are spliced
  into the corresponding positions of the heavy-edge dendrogram.  Because the
  light components are contracted into supernodes for the heavy subproblem,
  the splice is represented directly: the supernode's dendrogram id *is* the
  light component's dendrogram root.

Both constructions honour the ordered-dendrogram rule (the child cluster
attached to the endpoint closer to the starting vertex goes left), so their
in-order leaf traversal equals Prim's visiting order from that vertex.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.sequential import (
    _ordered_children,
    tree_vertex_distances,
)
from repro.dendrogram.structure import Dendrogram
from repro.parallel.scheduler import current_tracker
from repro.parallel.semisort import semisort
from repro.parallel.unionfind import UnionFind

Edge = Tuple[int, int, float]


def _bottom_up_merge(
    edges: Sequence[Edge],
    representative: Dict[int, int],
    dendrogram: Dendrogram,
    vertex_distance: np.ndarray,
) -> int:
    """Merge the clusters spanned by ``edges`` bottom-up; return the root id.

    ``representative`` maps every vertex appearing in ``edges`` to the
    dendrogram node currently representing its cluster (a leaf id for a bare
    vertex, or the root of an already-built light-subproblem dendrogram).
    Distinct vertices sharing a representative belong to the same contracted
    supernode, so the union-find operates over representative ids.
    """
    supernodes = {representative[u] for u, _, _ in edges} | {
        representative[v] for _, v, _ in edges
    }
    local_index = {supernode: index for index, supernode in enumerate(supernodes)}
    union_find = UnionFind(len(local_index))
    cluster_node: Dict[int, int] = {}

    last_node = -1
    for u, v, weight in sorted(edges, key=lambda edge: edge[2]):
        root_u = union_find.find(local_index[representative[u]])
        root_v = union_find.find(local_index[representative[v]])
        if root_u == root_v:
            # Cannot happen for a valid tree unless two supernodes were
            # already merged through another edge of equal weight touching
            # the same contracted component; skip defensively.
            continue
        node_u = cluster_node.get(root_u, representative[u])
        node_v = cluster_node.get(root_v, representative[v])
        left, right = _ordered_children(node_u, node_v, u, v, vertex_distance)
        new_node = dendrogram.add_internal(left, right, weight, (u, v))
        union_find.union(local_index[representative[u]], local_index[representative[v]])
        cluster_node[union_find.find(local_index[representative[u]])] = new_node
        last_node = new_node
    return last_node


def _build_recursive(
    edges: List[Edge],
    representative: Dict[int, int],
    dendrogram: Dendrogram,
    vertex_distance: np.ndarray,
    heavy_fraction: float,
    base_size: int,
    depth: int,
) -> int:
    """Heavy/light recursion; returns the dendrogram root of this subproblem."""
    tracker = current_tracker()
    m = len(edges)
    tracker.add(m, max(math.log2(m + 1), 1.0), phase="dendrogram")

    if m <= base_size:
        return _bottom_up_merge(edges, representative, dendrogram, vertex_distance)

    # Heavy edges: the heaviest ``heavy_fraction`` of this subproblem's edges
    # (at least one).  Parallel selection in the paper; a partial sort here.
    num_heavy = max(1, int(m * heavy_fraction))
    weights = np.array([w for _, _, w in edges])
    threshold_index = m - num_heavy
    if threshold_index <= 0:
        # Every edge would be "heavy"; recursing would not shrink the problem.
        return _bottom_up_merge(edges, representative, dendrogram, vertex_distance)
    order = np.argpartition(weights, threshold_index - 1)
    light_indices = order[:threshold_index]
    heavy_indices = order[threshold_index:]
    light_edges = [edges[i] for i in light_indices]
    heavy_edges = [edges[i] for i in heavy_indices]

    # Light components: connected components induced by the light edges over
    # the contracted supernodes (vertices sharing a representative are one
    # supernode already).
    supernodes = {representative[u] for u, _, _ in edges} | {
        representative[v] for _, v, _ in edges
    }
    local_index = {supernode: index for index, supernode in enumerate(supernodes)}
    union_find = UnionFind(len(local_index))
    for u, v, _ in light_edges:
        union_find.union(local_index[representative[u]], local_index[representative[v]])

    grouped = semisort(
        light_edges,
        key=lambda edge: union_find.find(local_index[representative[edge[0]]]),
        phase="dendrogram",
    )

    # Recursively build every light subproblem; its root becomes the
    # representative of every supernode the component absorbed.  The remap is
    # applied at the supernode level: a vertex that only touches heavy edges
    # may share its supernode with vertices inside a light component, and it
    # must follow that supernode into the component's new root.
    supernode_remap: Dict[int, int] = {}
    for component_edges in grouped.values():
        root = _build_recursive(
            list(component_edges),
            representative,
            dendrogram,
            vertex_distance,
            heavy_fraction,
            base_size,
            depth + 1,
        )
        for u, v, _ in component_edges:
            supernode_remap[representative[u]] = root
            supernode_remap[representative[v]] = root
    updated_representative = {
        vertex: supernode_remap.get(supernode, supernode)
        for vertex, supernode in representative.items()
    }

    # The heavy subproblem operates on the contracted vertices.
    return _build_recursive(
        heavy_edges,
        updated_representative,
        dendrogram,
        vertex_distance,
        heavy_fraction,
        base_size,
        depth + 1,
    )


def dendrogram_topdown(
    edges: Iterable[Edge],
    num_points: int,
    *,
    start: int = 0,
    heavy_fraction: float = 0.1,
    base_size: int = 32,
    vertex_distance: Optional[np.ndarray] = None,
) -> Dendrogram:
    """Ordered dendrogram via the heavy/light divide-and-conquer algorithm.

    Parameters
    ----------
    edges:
        The ``num_points - 1`` spanning-tree edges.
    num_points:
        Number of points/leaves.
    start:
        Starting vertex for the ordered dendrogram / reachability plot.
    heavy_fraction:
        Fraction of the edges treated as heavy at each level (paper: 1/10).
    base_size:
        Subproblems with at most this many edges switch to the sequential
        bottom-up construction (the paper similarly switches to the sequential
        algorithm below a size threshold).
    vertex_distance:
        Precomputed hop distances from ``start``.
    """
    edge_list = [(int(u), int(v), float(w)) for u, v, w in edges]
    if num_points < 1:
        raise InvalidParameterError("num_points must be >= 1")
    dendrogram = Dendrogram(num_points)
    if num_points == 1:
        return dendrogram
    if len(edge_list) != num_points - 1:
        raise InvalidParameterError(
            f"a spanning tree over {num_points} points needs {num_points - 1} edges, "
            f"got {len(edge_list)}"
        )
    if not 0.0 < heavy_fraction <= 1.0:
        raise InvalidParameterError("heavy_fraction must be in (0, 1]")
    if vertex_distance is None:
        vertex_distance = tree_vertex_distances(edge_list, num_points, start)

    representative = {}
    for u, v, _ in edge_list:
        representative[u] = u
        representative[v] = v

    root = _build_recursive(
        edge_list,
        representative,
        dendrogram,
        vertex_distance,
        heavy_fraction,
        max(base_size, 1),
        0,
    )
    dendrogram.set_root(root)
    return dendrogram


def dendrogram_topdown_simple(
    edges: Iterable[Edge],
    num_points: int,
    *,
    start: int = 0,
    vertex_distance: Optional[np.ndarray] = None,
) -> Dendrogram:
    """Ordered dendrogram via the warm-up algorithm (remove the heaviest edge).

    Worst-case O(n^2); used as an independent reference implementation and for
    small inputs.
    """
    edge_list = [(int(u), int(v), float(w)) for u, v, w in edges]
    if num_points < 1:
        raise InvalidParameterError("num_points must be >= 1")
    dendrogram = Dendrogram(num_points)
    if num_points == 1:
        return dendrogram
    if len(edge_list) != num_points - 1:
        raise InvalidParameterError(
            f"a spanning tree over {num_points} points needs {num_points - 1} edges, "
            f"got {len(edge_list)}"
        )
    if vertex_distance is None:
        vertex_distance = tree_vertex_distances(edge_list, num_points, start)
    tracker = current_tracker()

    def build(sub_edges: List[Edge]) -> int:
        tracker.add(len(sub_edges), 1.0, phase="dendrogram")
        if len(sub_edges) == 1:
            u, v, weight = sub_edges[0]
            left, right = _ordered_children(u, v, u, v, vertex_distance)
            return dendrogram.add_internal(left, right, weight, (u, v))
        heaviest_index = max(range(len(sub_edges)), key=lambda i: sub_edges[i][2])
        u, v, weight = sub_edges[heaviest_index]
        remaining = [edge for i, edge in enumerate(sub_edges) if i != heaviest_index]
        # Split the remaining edges by which side of the removed edge they lie on.
        vertices = {a for a, _, _ in sub_edges} | {b for _, b, _ in sub_edges}
        local_index = {vertex: index for index, vertex in enumerate(vertices)}
        union_find = UnionFind(len(local_index))
        for a, b, _ in remaining:
            union_find.union(local_index[a], local_index[b])
        root_u = union_find.find(local_index[u])
        side_u = [e for e in remaining if union_find.find(local_index[e[0]]) == root_u]
        side_v = [e for e in remaining if union_find.find(local_index[e[0]]) != root_u]
        node_u = build(side_u) if side_u else u
        node_v = build(side_v) if side_v else v
        left, right = _ordered_children(node_u, node_v, u, v, vertex_distance)
        return dendrogram.add_internal(left, right, weight, (u, v))

    root = build(edge_list)
    dendrogram.set_root(root)
    return dendrogram
