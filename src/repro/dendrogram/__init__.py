"""Dendrogram and reachability-plot construction (Section 4 of the paper).

Given a weighted spanning tree (the EMST for single-linkage clustering, or the
MST of the mutual reachability graph for HDBSCAN*), this package builds the
*dendrogram*: the binary merge tree obtained by removing tree edges in
decreasing weight order.  Three constructions are provided:

* :func:`~repro.dendrogram.sequential.dendrogram_sequential` — the classic
  bottom-up union-find construction (sort edges, merge in increasing order);
* :func:`~repro.dendrogram.topdown.dendrogram_topdown_simple` — the paper's
  "warm-up" top-down algorithm (repeatedly remove the heaviest edge);
* :func:`~repro.dendrogram.topdown.dendrogram_topdown` — the paper's
  divide-and-conquer algorithm that splits on the heaviest fraction of edges
  (heavy edges), recurses on the heavy-edge subproblem and every light-edge
  subproblem, and splices the light dendrograms into the heavy one.

All three produce *ordered* dendrograms for a chosen starting vertex: the
in-order traversal of the leaves equals the visit order of Prim's algorithm
started at that vertex, so the reachability plot (OPTICS sequence) can be read
directly off the dendrogram (:func:`~repro.dendrogram.reachability.reachability_plot`).
"""

from repro.dendrogram.structure import Dendrogram
from repro.dendrogram.sequential import dendrogram_sequential
from repro.dendrogram.topdown import dendrogram_topdown, dendrogram_topdown_simple
from repro.dendrogram.reachability import (
    reachability_plot,
    reachability_from_dendrogram,
)
from repro.dendrogram.extract import (
    clusters_at_height,
    dbscan_star_labels,
    cut_num_clusters,
)
from repro.dendrogram.condensed import (
    CondensedTree,
    condense_dendrogram,
    extract_eom_clusters,
    hdbscan_flat_labels,
)
from repro.dendrogram.single_linkage import single_linkage, SingleLinkageResult

__all__ = [
    "Dendrogram",
    "dendrogram_sequential",
    "dendrogram_topdown",
    "dendrogram_topdown_simple",
    "reachability_plot",
    "reachability_from_dendrogram",
    "clusters_at_height",
    "dbscan_star_labels",
    "cut_num_clusters",
    "CondensedTree",
    "condense_dendrogram",
    "extract_eom_clusters",
    "hdbscan_flat_labels",
    "single_linkage",
    "SingleLinkageResult",
]
