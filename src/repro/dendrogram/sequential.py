"""Sequential bottom-up dendrogram construction.

This is the classic agglomerative construction the paper describes as the
sequential baseline: sort the tree edges by weight and process them in
increasing order, merging the clusters of the two endpoints with a union-find
structure.  The order of the merges *is* the dendrogram.

The construction is array-backed end to end: the edge batch is argsorted once
(stable), the merge sweep runs over plain index arrays with an inlined
union-find (no per-edge dict probes or tracker dispatch), cluster → dendrogram
node bindings and cluster sizes live in flat arrays indexed by union-find
root, and the finished merge columns are appended to the
:class:`~repro.dendrogram.structure.Dendrogram` with one bulk call.

The construction is made *ordered* (Section 4.1) with the local rule the paper
uses: for the internal node created by edge ``(u, v)``, the child cluster
containing the endpoint with the smaller unweighted distance from the starting
vertex becomes the left child.  With distinct edge weights the resulting
dendrogram is exactly the ordered dendrogram whose in-order leaf traversal is
Prim's visiting order from the starting vertex.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.structure import Dendrogram
from repro.mst.edges import coerce_edge_arrays
from repro.parallel.scheduler import current_tracker


def tree_vertex_distances(edges, num_points: int, start: int) -> np.ndarray:
    """Unweighted hop distance of every vertex from ``start`` in the tree.

    This is the "vertex distance" of Section 4.2; it is computed once and
    shared by the ordered-dendrogram constructions.  The tree is folded into
    CSR adjacency (degree counting + one stable argsort of the doubled
    endpoint array) and the BFS expands a whole frontier per round with
    vectorized neighbour gathers — no per-vertex Python adjacency lists.
    """
    u, v, _ = coerce_edge_arrays(edges)
    heads = np.concatenate([u, v])
    tails = np.concatenate([v, u])
    degrees = np.bincount(heads, minlength=num_points)
    indptr = np.zeros(num_points + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    neighbours = tails[np.argsort(heads, kind="stable")]

    distances = np.full(num_points, -1, dtype=np.int64)
    distances[start] = 0
    frontier = np.array([start], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        gather = np.arange(total, dtype=np.int64)
        gather += np.repeat(starts - (np.cumsum(counts) - counts), counts)
        candidates = neighbours[gather]
        fresh = candidates[distances[candidates] < 0]
        if fresh.size == 0:
            break
        # A vertex can be reached from two frontier vertices only in a graph
        # with cycles; for the trees handled here ``fresh`` is duplicate-free,
        # but ``unique`` keeps the function correct on any graph.
        frontier = np.unique(fresh)
        distances[frontier] = level
    return distances


def _ordered_children(
    node_u: int,
    node_v: int,
    u: int,
    v: int,
    vertex_distance: np.ndarray,
) -> Tuple[int, int]:
    """Order the two child clusters by the paper's rule.

    ``node_u`` is the cluster containing ``u`` and ``node_v`` the cluster
    containing ``v``; the cluster attached to the endpoint closer to the
    starting vertex goes left.
    """
    if vertex_distance[u] <= vertex_distance[v]:
        return node_u, node_v
    return node_v, node_u


def merge_edges_bottom_up(
    dendrogram: Dendrogram,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_w: np.ndarray,
    cluster_of: np.ndarray,
    vertex_distance: np.ndarray,
) -> int:
    """Array union-find merge sweep shared by the bottom-up constructions.

    Processes the edges in non-decreasing weight order (stable argsort, so
    ties keep input order), merging the clusters of the endpoints and
    recording one internal node per accepted merge; returns the id of the last
    node created (-1 when no merge happened).  ``cluster_of[x]`` maps a vertex
    to the dendrogram node currently representing its cluster — a leaf id for
    a bare vertex, or the root of an already-built subproblem dendrogram
    (vertices sharing a representative belong to one contracted supernode).

    The union-find runs over the *representative* ids: local indices are
    assigned by sorting the unique representatives, and the parent/rank/
    binding/size state lives in flat arrays — the sweep touches no dicts.
    """
    m = int(edge_u.shape[0])
    if m == 0:
        return -1
    order = np.argsort(edge_w, kind="stable")
    rep_u = cluster_of[edge_u]
    rep_v = cluster_of[edge_v]
    supernodes = np.unique(np.concatenate([rep_u, rep_v]))
    local_u = np.searchsorted(supernodes, rep_u)[order].tolist()
    local_v = np.searchsorted(supernodes, rep_v)[order].tolist()
    su_sorted = edge_u[order]
    sv_sorted = edge_v[order]
    su = su_sorted.tolist()
    sv = sv_sorted.tolist()

    # Per-supernode state: union-find parent/rank, the dendrogram node bound
    # to each live root, and its leaf count.
    parent = list(range(len(supernodes)))
    rank = [0] * len(supernodes)
    binding = supernodes.tolist()
    sizes = dendrogram.node_sizes(supernodes).tolist()
    # Scalar indexing into a Python list is several times faster than into an
    # ndarray, but converting the full per-point array only pays off when the
    # subproblem touches a comparable number of vertices.
    vd = vertex_distance.tolist() if vertex_distance.shape[0] <= 4 * m else vertex_distance

    out_left = np.empty(m, dtype=np.int64)
    out_right = np.empty(m, dtype=np.int64)
    out_size = np.empty(m, dtype=np.int64)
    accepted = np.ones(m, dtype=bool)
    next_id = dendrogram.num_points + dendrogram.num_internal
    created = 0
    for index in range(m):
        x = local_u[index]
        while parent[x] != x:
            parent[x] = x = parent[parent[x]]
        y = local_v[index]
        while parent[y] != y:
            parent[y] = y = parent[parent[y]]
        if x == y:
            # Cannot happen for a valid tree unless two supernodes were
            # already merged through another edge of equal weight touching
            # the same contracted component; skip defensively.
            accepted[index] = False
            continue
        node_u = binding[x]
        node_v = binding[y]
        u = su[index]
        v = sv[index]
        if vd[u] <= vd[v]:
            out_left[created] = node_u
            out_right[created] = node_v
        else:
            out_left[created] = node_v
            out_right[created] = node_u
        if rank[x] < rank[y]:
            x, y = y, x
        elif rank[x] == rank[y]:
            rank[x] += 1
        parent[y] = x
        sizes[x] = out_size[created] = sizes[x] + sizes[y]
        binding[x] = next_id + created
        created += 1

    if created == 0:
        return -1
    first_id = dendrogram.add_internal_batch(
        out_left[:created],
        out_right[:created],
        edge_w[order][accepted],
        su_sorted[accepted],
        sv_sorted[accepted],
        out_size[:created],
    )
    return first_id + created - 1


def dendrogram_sequential(
    edges,
    num_points: int,
    *,
    start: int = 0,
    vertex_distance: Optional[np.ndarray] = None,
) -> Dendrogram:
    """Bottom-up (ordered) dendrogram of a weighted spanning tree.

    Parameters
    ----------
    edges:
        The ``num_points - 1`` spanning-tree edges (any edge collection
        accepted by :func:`repro.mst.edges.coerce_edge_arrays`).
    num_points:
        Number of points/leaves.
    start:
        Starting vertex defining the ordered dendrogram / reachability plot.
    vertex_distance:
        Precomputed hop distances from ``start`` (computed if omitted).
    """
    if num_points < 1:
        raise InvalidParameterError("num_points must be >= 1")
    edge_u, edge_v, edge_w = coerce_edge_arrays(edges)
    dendrogram = Dendrogram(num_points)
    if num_points == 1:
        return dendrogram
    if edge_u.shape[0] != num_points - 1:
        raise InvalidParameterError(
            f"a spanning tree over {num_points} points needs {num_points - 1} edges, "
            f"got {edge_u.shape[0]}"
        )
    if vertex_distance is None:
        vertex_distance = tree_vertex_distances(
            (edge_u, edge_v, edge_w), num_points, start
        )

    n = num_points
    current_tracker().add(n * max(math.log2(n), 1.0), n, phase="dendrogram")
    root = merge_edges_bottom_up(
        dendrogram,
        edge_u,
        edge_v,
        edge_w,
        np.arange(num_points, dtype=np.int64),
        vertex_distance,
    )
    dendrogram.set_root(root)
    return dendrogram
