"""Sequential bottom-up dendrogram construction.

This is the classic agglomerative construction the paper describes as the
sequential baseline: sort the tree edges by weight and process them in
increasing order, merging the clusters of the two endpoints with a union-find
structure.  The order of the merges *is* the dendrogram.

The construction is made *ordered* (Section 4.1) with the local rule the paper
uses: for the internal node created by edge ``(u, v)``, the child cluster
containing the endpoint with the smaller unweighted distance from the starting
vertex becomes the left child.  With distinct edge weights the resulting
dendrogram is exactly the ordered dendrogram whose in-order leaf traversal is
Prim's visiting order from the starting vertex.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.structure import Dendrogram
from repro.parallel.scheduler import current_tracker
from repro.parallel.unionfind import UnionFind


def tree_vertex_distances(
    edges: Sequence[Tuple[int, int, float]], num_points: int, start: int
) -> np.ndarray:
    """Unweighted hop distance of every vertex from ``start`` in the tree.

    This is the "vertex distance" of Section 4.2; it is computed once and
    shared by the ordered-dendrogram constructions.
    """
    adjacency: List[List[int]] = [[] for _ in range(num_points)]
    for u, v, _ in edges:
        adjacency[int(u)].append(int(v))
        adjacency[int(v)].append(int(u))
    distances = np.full(num_points, -1, dtype=np.int64)
    distances[start] = 0
    frontier = [start]
    while frontier:
        next_frontier: List[int] = []
        for vertex in frontier:
            for neighbor in adjacency[vertex]:
                if distances[neighbor] < 0:
                    distances[neighbor] = distances[vertex] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


def _ordered_children(
    node_u: int,
    node_v: int,
    u: int,
    v: int,
    vertex_distance: np.ndarray,
) -> Tuple[int, int]:
    """Order the two child clusters by the paper's rule.

    ``node_u`` is the cluster containing ``u`` and ``node_v`` the cluster
    containing ``v``; the cluster attached to the endpoint closer to the
    starting vertex goes left.
    """
    if vertex_distance[u] <= vertex_distance[v]:
        return node_u, node_v
    return node_v, node_u


def dendrogram_sequential(
    edges: Iterable[Tuple[int, int, float]],
    num_points: int,
    *,
    start: int = 0,
    vertex_distance: Optional[np.ndarray] = None,
) -> Dendrogram:
    """Bottom-up (ordered) dendrogram of a weighted spanning tree.

    Parameters
    ----------
    edges:
        The ``num_points - 1`` spanning-tree edges.
    num_points:
        Number of points/leaves.
    start:
        Starting vertex defining the ordered dendrogram / reachability plot.
    vertex_distance:
        Precomputed hop distances from ``start`` (computed if omitted).
    """
    edge_list = [(int(u), int(v), float(w)) for u, v, w in edges]
    if num_points < 1:
        raise InvalidParameterError("num_points must be >= 1")
    dendrogram = Dendrogram(num_points)
    if num_points == 1:
        return dendrogram
    if len(edge_list) != num_points - 1:
        raise InvalidParameterError(
            f"a spanning tree over {num_points} points needs {num_points - 1} edges, "
            f"got {len(edge_list)}"
        )
    if vertex_distance is None:
        vertex_distance = tree_vertex_distances(edge_list, num_points, start)

    tracker = current_tracker()
    n = num_points
    tracker.add(n * max(math.log2(n), 1.0), n, phase="dendrogram")

    order = sorted(range(len(edge_list)), key=lambda index: edge_list[index][2])
    union_find = UnionFind(num_points)
    cluster_node: Dict[int, int] = {}

    last_node = -1
    for index in order:
        u, v, weight = edge_list[index]
        root_u = union_find.find(u)
        root_v = union_find.find(v)
        # A component never merged before is a singleton, so its dendrogram
        # node is simply the leaf id of its only vertex (the union-find root).
        node_u = cluster_node.get(root_u, root_u)
        node_v = cluster_node.get(root_v, root_v)
        left, right = _ordered_children(node_u, node_v, u, v, vertex_distance)
        new_node = dendrogram.add_internal(left, right, weight, (u, v))
        union_find.union(u, v)
        cluster_node[union_find.find(u)] = new_node
        last_node = new_node

    dendrogram.set_root(last_node)
    return dendrogram
