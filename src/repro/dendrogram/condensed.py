"""Condensed tree and excess-of-mass (EOM) cluster extraction.

The paper produces the HDBSCAN* *dendrogram*; turning the dendrogram into a
flat clustering without choosing a single epsilon is done, in Campello et
al.'s original HDBSCAN* formulation, by (1) *condensing* the dendrogram —
ignoring splits that only shave off fewer than ``min_cluster_size`` points —
and (2) selecting the set of condensed clusters with maximum total
*stability* ("excess of mass").  This module implements both steps on top of
:class:`repro.dendrogram.structure.Dendrogram`, so the full
``hdbscan()`` → dendrogram → flat clusters pipeline is available end to end.

Density here is expressed as ``lambda = 1 / height`` (height being the mutual
reachability distance at which a split happens), following the standard
formulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.structure import Dendrogram


@dataclass(frozen=True)
class CondensedEdge:
    """One record of the condensed tree.

    ``child`` is a point id when ``child_size == 1`` and ``child_is_cluster``
    is False; otherwise it is the id of a child cluster.  ``lambda_value`` is
    the density level (1 / height) at which the child separated from
    ``parent_cluster``.
    """

    parent_cluster: int
    child: int
    lambda_value: float
    child_size: int
    child_is_cluster: bool


@dataclass
class CondensedTree:
    """Condensed dendrogram plus per-cluster bookkeeping."""

    num_points: int
    min_cluster_size: int
    edges: List[CondensedEdge] = field(default_factory=list)
    birth_lambda: Dict[int, float] = field(default_factory=dict)
    parent_of_cluster: Dict[int, int] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        return len(self.birth_lambda)

    def cluster_ids(self) -> List[int]:
        return sorted(self.birth_lambda)

    def children_clusters(self, cluster: int) -> List[int]:
        return [
            edge.child
            for edge in self.edges
            if edge.parent_cluster == cluster and edge.child_is_cluster
        ]

    def stability(self, cluster: int) -> float:
        """Excess-of-mass stability: sum over members of (lambda_leave - lambda_birth)."""
        birth = self.birth_lambda[cluster]
        total = 0.0
        for edge in self.edges:
            if edge.parent_cluster != cluster:
                continue
            leave = edge.lambda_value
            if math.isinf(leave):
                # Points that never separate before the densest level: cap at
                # the largest finite lambda seen in the cluster (standard
                # practice; an all-duplicate cluster has unbounded density).
                leave = birth
            total += (leave - birth) * edge.child_size
        return total


def _lambda_of_height(height: float) -> float:
    return math.inf if height <= 0.0 else 1.0 / height


def condense_dendrogram(
    dendrogram: Dendrogram, min_cluster_size: int = 5
) -> CondensedTree:
    """Condense a dendrogram, ignoring splits smaller than ``min_cluster_size``.

    Walking from the root down, a split into two children both of size at
    least ``min_cluster_size`` creates two new clusters; otherwise the large
    side keeps the parent's cluster identity and the points of the small side
    "fall out" of the cluster at the split's density level.
    """
    if min_cluster_size < 1:
        raise InvalidParameterError("min_cluster_size must be >= 1")
    n = dendrogram.num_points
    tree = CondensedTree(num_points=n, min_cluster_size=min_cluster_size)
    if n == 1:
        tree.birth_lambda[0] = 0.0
        tree.edges.append(CondensedEdge(0, 0, math.inf, 1, False))
        return tree
    if dendrogram.root is None:
        raise InvalidParameterError("dendrogram has no root; construction incomplete")

    root_cluster = 0
    tree.birth_lambda[root_cluster] = 0.0
    next_cluster_id = 1

    def leaves_under(node_id: int) -> List[int]:
        stack, members = [node_id], []
        while stack:
            current = stack.pop()
            if dendrogram.is_leaf(current):
                members.append(current)
            else:
                left, right = dendrogram.children(current)
                stack.extend((left, right))
        return members

    # Each stack entry: (dendrogram node, condensed cluster it belongs to).
    stack: List[Tuple[int, int]] = [(dendrogram.root, root_cluster)]
    while stack:
        node_id, cluster = stack.pop()
        if dendrogram.is_leaf(node_id):
            # A singleton that reached the bottom of its cluster: it stays
            # until the maximum density, i.e. it leaves at lambda = infinity
            # (capped later during stability computation).
            tree.edges.append(CondensedEdge(cluster, node_id, math.inf, 1, False))
            continue
        left, right = dendrogram.children(node_id)
        lambda_value = _lambda_of_height(dendrogram.height(node_id))
        left_size = dendrogram.node_size(left)
        right_size = dendrogram.node_size(right)
        big_left = left_size >= min_cluster_size
        big_right = right_size >= min_cluster_size

        if big_left and big_right:
            for child in (left, right):
                child_cluster = next_cluster_id
                next_cluster_id += 1
                tree.birth_lambda[child_cluster] = lambda_value
                tree.parent_of_cluster[child_cluster] = cluster
                tree.edges.append(
                    CondensedEdge(
                        cluster,
                        child_cluster,
                        lambda_value,
                        dendrogram.node_size(child),
                        True,
                    )
                )
                stack.append((child, child_cluster))
        elif big_left or big_right:
            survivor, shed = (left, right) if big_left else (right, left)
            for point in leaves_under(shed):
                tree.edges.append(CondensedEdge(cluster, point, lambda_value, 1, False))
            stack.append((survivor, cluster))
        else:
            for point in leaves_under(node_id):
                tree.edges.append(CondensedEdge(cluster, point, lambda_value, 1, False))
    return tree


def extract_eom_clusters(
    condensed: CondensedTree, *, allow_single_cluster: bool = False
) -> Tuple[np.ndarray, Dict[int, float]]:
    """Excess-of-mass cluster selection.

    Processes clusters bottom-up: a cluster is selected when its own stability
    exceeds the summed stability of its selected descendants (which are then
    deselected).  The root cluster is only eligible when
    ``allow_single_cluster`` is true, as in the reference formulation.

    Returns ``(labels, stabilities)`` where ``labels[p]`` is the selected
    cluster's consecutive label for point ``p`` (or ``-1`` for noise) and
    ``stabilities`` maps each selected condensed-cluster id to its stability.
    """
    cluster_ids = condensed.cluster_ids()
    if not cluster_ids:
        return np.full(condensed.num_points, -1, dtype=np.int64), {}

    # Process deepest clusters first: children have larger ids than parents by
    # construction, so reverse id order is a valid bottom-up order.
    stability = {cluster: condensed.stability(cluster) for cluster in cluster_ids}
    subtree_score: Dict[int, float] = {}
    selected: Dict[int, bool] = {}
    for cluster in sorted(cluster_ids, reverse=True):
        children = condensed.children_clusters(cluster)
        child_score = sum(subtree_score[child] for child in children)
        is_root = cluster == 0
        if (stability[cluster] >= child_score and not is_root) or (
            is_root and allow_single_cluster and stability[cluster] >= child_score
        ):
            selected[cluster] = True
            subtree_score[cluster] = stability[cluster]
            # Deselect every descendant.
            descendants = list(children)
            while descendants:
                descendant = descendants.pop()
                selected[descendant] = False
                descendants.extend(condensed.children_clusters(descendant))
        else:
            selected[cluster] = False
            subtree_score[cluster] = max(child_score, stability[cluster]) if is_root else child_score

    chosen = [cluster for cluster in cluster_ids if selected.get(cluster)]
    label_of_cluster = {cluster: label for label, cluster in enumerate(sorted(chosen))}

    # A point belongs to the selected ancestor (if any) of the cluster it fell
    # out of.
    def selected_ancestor(cluster: int) -> Optional[int]:
        current: Optional[int] = cluster
        while current is not None:
            if selected.get(current):
                return current
            current = condensed.parent_of_cluster.get(current)
        return None

    labels = np.full(condensed.num_points, -1, dtype=np.int64)
    for edge in condensed.edges:
        if edge.child_is_cluster:
            continue
        home = selected_ancestor(edge.parent_cluster)
        if home is not None:
            labels[edge.child] = label_of_cluster[home]
    stabilities = {cluster: stability[cluster] for cluster in chosen}
    return labels, stabilities


def hdbscan_flat_labels(
    dendrogram: Dendrogram,
    *,
    min_cluster_size: int = 5,
    allow_single_cluster: bool = False,
) -> np.ndarray:
    """Convenience wrapper: condense the dendrogram and run EOM selection."""
    condensed = condense_dendrogram(dendrogram, min_cluster_size)
    labels, _ = extract_eom_clusters(
        condensed, allow_single_cluster=allow_single_cluster
    )
    return labels
