"""Condensed tree and excess-of-mass (EOM) cluster extraction.

The paper produces the HDBSCAN* *dendrogram*; turning the dendrogram into a
flat clustering without choosing a single epsilon is done, in Campello et
al.'s original HDBSCAN* formulation, by (1) *condensing* the dendrogram —
ignoring splits that only shave off fewer than ``min_cluster_size`` points —
and (2) selecting the set of condensed clusters with maximum total
*stability* ("excess of mass").  This module implements both steps on top of
:class:`repro.dendrogram.structure.Dendrogram`, so the full
``hdbscan()`` → dendrogram → flat clusters pipeline is available end to end.

Density here is expressed as ``lambda = 1 / height`` (height being the mutual
reachability distance at which a split happens), following the standard
formulation.

The implementation is array-native end to end: subtree membership comes from
the dendrogram's precomputed leaf spans (one slice per shed subtree instead
of a per-node stack walk), the condensed records accumulate in columnar
buffers, per-cluster stabilities are one segmented ``bincount``, and the EOM
selection resolves nearest-selected-ancestors with single id-ordered array
scans — no recursion anywhere, so arbitrarily deep (chain-shaped)
dendrograms condense without ever approaching a ``RecursionError``, and the
clustering tail is no longer an object-at-a-time stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.dendrogram.structure import Dendrogram


@dataclass(frozen=True)
class CondensedEdge:
    """One record of the condensed tree.

    ``child`` is a point id when ``child_size == 1`` and ``child_is_cluster``
    is False; otherwise it is the id of a child cluster.  ``lambda_value`` is
    the density level (1 / height) at which the child separated from
    ``parent_cluster``.
    """

    parent_cluster: int
    child: int
    lambda_value: float
    child_size: int
    child_is_cluster: bool


class _EdgeColumns:
    """Columnar accumulator for condensed-tree records.

    Records arrive either one cluster-child at a time or as whole arrays of
    point fallouts (the leaves of a shed subtree); both append to per-column
    array lists that are concatenated once at the end.
    """

    def __init__(self) -> None:
        self.parents: List[np.ndarray] = []
        self.children: List[np.ndarray] = []
        self.lambdas: List[np.ndarray] = []
        self.sizes: List[np.ndarray] = []
        self.is_cluster: List[np.ndarray] = []

    def add_points(self, cluster: int, points: np.ndarray, lambda_value: float) -> None:
        count = int(points.shape[0])
        self.parents.append(np.full(count, cluster, dtype=np.int64))
        self.children.append(np.asarray(points, dtype=np.int64))
        self.lambdas.append(np.full(count, lambda_value, dtype=np.float64))
        self.sizes.append(np.ones(count, dtype=np.int64))
        self.is_cluster.append(np.zeros(count, dtype=bool))

    def add_cluster(
        self, cluster: int, child_cluster: int, lambda_value: float, size: int
    ) -> None:
        self.parents.append(np.array([cluster], dtype=np.int64))
        self.children.append(np.array([child_cluster], dtype=np.int64))
        self.lambdas.append(np.array([lambda_value], dtype=np.float64))
        self.sizes.append(np.array([size], dtype=np.int64))
        self.is_cluster.append(np.array([True]))

    def concatenate(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if not self.parents:
            empty_i = np.empty(0, dtype=np.int64)
            return (
                empty_i,
                empty_i.copy(),
                np.empty(0, dtype=np.float64),
                empty_i.copy(),
                np.empty(0, dtype=bool),
            )
        return (
            np.concatenate(self.parents),
            np.concatenate(self.children),
            np.concatenate(self.lambdas),
            np.concatenate(self.sizes),
            np.concatenate(self.is_cluster),
        )


class CondensedTree:
    """Condensed dendrogram stored as parallel record columns.

    ``edge_*`` columns hold one entry per condensed record (cluster children
    and point fallouts interleaved in construction order).  The historical
    ``edges`` list-of-:class:`CondensedEdge` view is materialized on demand
    for compatibility; all internal computation runs on the columns.
    """

    def __init__(
        self,
        num_points: int,
        min_cluster_size: int,
        edge_parent: np.ndarray,
        edge_child: np.ndarray,
        edge_lambda: np.ndarray,
        edge_size: np.ndarray,
        edge_is_cluster: np.ndarray,
        birth_lambda: Dict[int, float],
        parent_of_cluster: Dict[int, int],
    ) -> None:
        self.num_points = num_points
        self.min_cluster_size = min_cluster_size
        self.edge_parent = edge_parent
        self.edge_child = edge_child
        self.edge_lambda = edge_lambda
        self.edge_size = edge_size
        self.edge_is_cluster = edge_is_cluster
        self.birth_lambda = birth_lambda
        self.parent_of_cluster = parent_of_cluster

    @property
    def num_clusters(self) -> int:
        return len(self.birth_lambda)

    @property
    def edges(self) -> List[CondensedEdge]:
        """Record objects in construction order (compatibility view)."""
        return [
            CondensedEdge(int(p), int(c), float(lam), int(s), bool(flag))
            for p, c, lam, s, flag in zip(
                self.edge_parent.tolist(),
                self.edge_child.tolist(),
                self.edge_lambda.tolist(),
                self.edge_size.tolist(),
                self.edge_is_cluster.tolist(),
            )
        ]

    def cluster_ids(self) -> List[int]:
        return sorted(self.birth_lambda)

    def children_clusters(self, cluster: int) -> List[int]:
        mask = self.edge_is_cluster & (self.edge_parent == cluster)
        return self.edge_child[mask].tolist()

    def births(self) -> np.ndarray:
        """Birth lambda of every cluster, indexed by consecutive cluster id."""
        count = self.num_clusters
        births = np.zeros(count, dtype=np.float64)
        for cluster, birth in self.birth_lambda.items():
            births[cluster] = birth
        return births

    def stabilities(self) -> np.ndarray:
        """Excess-of-mass stability of every cluster with one segmented sum.

        Stability of a cluster is the sum over its records of
        ``(lambda_leave - lambda_birth) * child_size``; records that never
        leave (infinite lambda) are capped at the cluster's own birth level,
        matching the classic formulation for all-duplicate clusters.  The
        ``bincount`` accumulates contributions in record order, so the sums
        match the historical per-edge loop bit for bit.
        """
        count = self.num_clusters
        if count == 0 or self.edge_parent.size == 0:
            return np.zeros(count, dtype=np.float64)
        births = self.births()
        birth_of_record = births[self.edge_parent]
        leave = np.where(np.isinf(self.edge_lambda), birth_of_record, self.edge_lambda)
        contributions = (leave - birth_of_record) * self.edge_size
        return np.bincount(self.edge_parent, weights=contributions, minlength=count)

    def stability(self, cluster: int) -> float:
        """Excess-of-mass stability: sum over members of (lambda_leave - lambda_birth)."""
        return float(self.stabilities()[cluster])

    # -- serialization --------------------------------------------------------

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """The condensed tree as a flat ``name -> ndarray`` mapping.

        Cluster ids are consecutive ``0..num_clusters-1`` by construction, so
        the ``birth_lambda`` / ``parent_of_cluster`` dicts flatten into dense
        arrays (parent ``-1`` marks the root).  ``meta`` carries
        ``[num_points, min_cluster_size]``.
        """
        count = self.num_clusters
        parents = np.full(count, -1, dtype=np.int64)
        for child_cluster, parent_cluster in self.parent_of_cluster.items():
            parents[child_cluster] = parent_cluster
        return {
            "edge_parent": self.edge_parent,
            "edge_child": self.edge_child,
            "edge_lambda": self.edge_lambda,
            "edge_size": self.edge_size,
            "edge_is_cluster": self.edge_is_cluster,
            "cluster_births": self.births(),
            "cluster_parents": parents,
            "meta": np.array(
                [self.num_points, self.min_cluster_size], dtype=np.int64
            ),
        }

    @classmethod
    def from_state_arrays(cls, arrays: Dict[str, np.ndarray]) -> "CondensedTree":
        """Exact inverse of :meth:`state_arrays`."""
        meta = np.asarray(arrays["meta"], dtype=np.int64)
        births = np.asarray(arrays["cluster_births"], dtype=np.float64)
        parents = np.asarray(arrays["cluster_parents"], dtype=np.int64)
        return cls(
            num_points=int(meta[0]),
            min_cluster_size=int(meta[1]),
            edge_parent=np.asarray(arrays["edge_parent"], dtype=np.int64),
            edge_child=np.asarray(arrays["edge_child"], dtype=np.int64),
            edge_lambda=np.asarray(arrays["edge_lambda"], dtype=np.float64),
            edge_size=np.asarray(arrays["edge_size"], dtype=np.int64),
            edge_is_cluster=np.asarray(arrays["edge_is_cluster"], dtype=bool),
            birth_lambda={i: float(b) for i, b in enumerate(births.tolist())},
            parent_of_cluster={
                i: int(p) for i, p in enumerate(parents.tolist()) if p >= 0
            },
        )


def _lambda_of_height(height: float) -> float:
    return math.inf if height <= 0.0 else 1.0 / height


def condense_dendrogram(
    dendrogram: Dendrogram, min_cluster_size: int = 5
) -> CondensedTree:
    """Condense a dendrogram, ignoring splits smaller than ``min_cluster_size``.

    Walking from the root down, a split into two children both of size at
    least ``min_cluster_size`` creates two new clusters; otherwise the large
    side keeps the parent's cluster identity and the points of the small side
    "fall out" of the cluster at the split's density level.  The walk is an
    explicit iterative stack over dendrogram nodes; the points of a shed
    subtree come from the dendrogram's leaf spans as one array slice, so no
    step recurses or touches leaves one at a time.
    """
    if min_cluster_size < 1:
        raise InvalidParameterError("min_cluster_size must be >= 1")
    n = dendrogram.num_points
    if n == 1:
        return CondensedTree(
            num_points=1,
            min_cluster_size=min_cluster_size,
            edge_parent=np.zeros(1, dtype=np.int64),
            edge_child=np.zeros(1, dtype=np.int64),
            edge_lambda=np.full(1, math.inf),
            edge_size=np.ones(1, dtype=np.int64),
            edge_is_cluster=np.zeros(1, dtype=bool),
            birth_lambda={0: 0.0},
            parent_of_cluster={},
        )
    if dendrogram.root is None:
        raise InvalidParameterError("dendrogram has no root; construction incomplete")

    order, first = dendrogram.leaf_spans()

    def leaves_of(node_id: int) -> np.ndarray:
        lo = int(first[node_id])
        return order[lo : lo + dendrogram.node_size(node_id)]

    root_cluster = 0
    birth_lambda: Dict[int, float] = {root_cluster: 0.0}
    parent_of_cluster: Dict[int, int] = {}
    columns = _EdgeColumns()
    next_cluster_id = 1

    # Each stack entry: (dendrogram node, condensed cluster it belongs to).
    stack: List[Tuple[int, int]] = [(dendrogram.root, root_cluster)]
    while stack:
        node_id, cluster = stack.pop()
        if dendrogram.is_leaf(node_id):
            # A singleton that reached the bottom of its cluster: it stays
            # until the maximum density, i.e. it leaves at lambda = infinity
            # (capped later during stability computation).
            columns.add_points(
                cluster, np.array([node_id], dtype=np.int64), math.inf
            )
            continue
        left, right = dendrogram.children(node_id)
        lambda_value = _lambda_of_height(dendrogram.height(node_id))
        left_size = dendrogram.node_size(left)
        right_size = dendrogram.node_size(right)
        big_left = left_size >= min_cluster_size
        big_right = right_size >= min_cluster_size

        if big_left and big_right:
            for child in (left, right):
                child_cluster = next_cluster_id
                next_cluster_id += 1
                birth_lambda[child_cluster] = lambda_value
                parent_of_cluster[child_cluster] = cluster
                columns.add_cluster(
                    cluster,
                    child_cluster,
                    lambda_value,
                    dendrogram.node_size(child),
                )
                stack.append((child, child_cluster))
        elif big_left or big_right:
            survivor, shed = (left, right) if big_left else (right, left)
            columns.add_points(cluster, leaves_of(shed), lambda_value)
            stack.append((survivor, cluster))
        else:
            columns.add_points(cluster, leaves_of(node_id), lambda_value)

    parent, child, lam, size, is_cluster = columns.concatenate()
    return CondensedTree(
        num_points=n,
        min_cluster_size=min_cluster_size,
        edge_parent=parent,
        edge_child=child,
        edge_lambda=lam,
        edge_size=size,
        edge_is_cluster=is_cluster,
        birth_lambda=birth_lambda,
        parent_of_cluster=parent_of_cluster,
    )


def extract_eom_clusters(
    condensed: CondensedTree, *, allow_single_cluster: bool = False
) -> Tuple[np.ndarray, Dict[int, float]]:
    """Excess-of-mass cluster selection.

    Processes clusters bottom-up: a cluster is selected when its own stability
    exceeds the summed stability of its selected descendants (which are then
    deselected).  The root cluster is only eligible when
    ``allow_single_cluster`` is true, as in the reference formulation.

    Deselection and point assignment run as id-ordered array scans: cluster
    ids are assigned parent-before-child, so one forward pass resolves every
    cluster's nearest effectively-selected ancestor, and the point labels are
    one vectorized gather over the condensed point records — the historical
    per-point ancestor walks are gone.

    Returns ``(labels, stabilities)`` where ``labels[p]`` is the selected
    cluster's consecutive label for point ``p`` (or ``-1`` for noise) and
    ``stabilities`` maps each selected condensed-cluster id to its stability.
    """
    count = condensed.num_clusters
    if count == 0:
        return np.full(condensed.num_points, -1, dtype=np.int64), {}

    parent_cl = np.full(count, -1, dtype=np.int64)
    for child_cluster, parent_cluster in condensed.parent_of_cluster.items():
        parent_cl[child_cluster] = parent_cluster
    stability = condensed.stabilities()

    children: List[List[int]] = [[] for _ in range(count)]
    cluster_records = np.flatnonzero(condensed.edge_is_cluster)
    for parent_cluster, child_cluster in zip(
        condensed.edge_parent[cluster_records].tolist(),
        condensed.edge_child[cluster_records].tolist(),
    ):
        children[parent_cluster].append(child_cluster)

    # Bottom-up selection sweep (children have larger ids than parents by
    # construction, so reverse id order is a valid bottom-up order).
    selected = np.zeros(count, dtype=bool)
    subtree_score = np.zeros(count, dtype=np.float64)
    for cluster in range(count - 1, -1, -1):
        child_score = 0.0
        for child_cluster in children[cluster]:
            child_score += subtree_score[child_cluster]
        is_root = cluster == 0
        eligible = allow_single_cluster if is_root else True
        if eligible and stability[cluster] >= child_score:
            selected[cluster] = True
            subtree_score[cluster] = stability[cluster]
        else:
            subtree_score[cluster] = (
                max(child_score, float(stability[cluster])) if is_root else child_score
            )

    # Top-down scans (parents first): a selected ancestor deselects the whole
    # subtree below it, and every cluster resolves its nearest effectively
    # selected ancestor-or-self for point assignment.
    has_selected_ancestor = np.zeros(count, dtype=bool)
    for cluster in range(1, count):
        parent_cluster = parent_cl[cluster]
        has_selected_ancestor[cluster] = (
            selected[parent_cluster] or has_selected_ancestor[parent_cluster]
        )
    effective = selected & ~has_selected_ancestor
    home = np.full(count, -1, dtype=np.int64)
    for cluster in range(count):
        if effective[cluster]:
            home[cluster] = cluster
        elif parent_cl[cluster] >= 0:
            home[cluster] = home[parent_cl[cluster]]

    chosen = np.flatnonzero(effective)
    label_of_cluster = np.full(count, -1, dtype=np.int64)
    label_of_cluster[chosen] = np.arange(chosen.size, dtype=np.int64)

    # A point belongs to the effectively selected ancestor (if any) of the
    # cluster it fell out of: one gather over the point records.
    labels = np.full(condensed.num_points, -1, dtype=np.int64)
    point_records = ~condensed.edge_is_cluster
    record_home = home[condensed.edge_parent[point_records]]
    record_labels = np.where(
        record_home >= 0, label_of_cluster[np.maximum(record_home, 0)], -1
    )
    labels[condensed.edge_child[point_records]] = record_labels
    stabilities = {int(cluster): float(stability[cluster]) for cluster in chosen}
    return labels, stabilities


def _condense_and_extract(
    dendrogram: Dendrogram, min_cluster_size: int, allow_single_cluster: bool
) -> Tuple[CondensedTree, np.ndarray]:
    """The shared condense → EOM-extract pipeline behind both label APIs."""
    condensed = condense_dendrogram(dendrogram, min_cluster_size)
    labels, _ = extract_eom_clusters(
        condensed, allow_single_cluster=allow_single_cluster
    )
    return condensed, labels


def hdbscan_flat_labels(
    dendrogram: Dendrogram,
    *,
    min_cluster_size: int = 5,
    allow_single_cluster: bool = False,
) -> np.ndarray:
    """Convenience wrapper: condense the dendrogram and run EOM selection."""
    _, labels = _condense_and_extract(
        dendrogram, min_cluster_size, allow_single_cluster
    )
    return labels


def point_fallout_lambdas(condensed: CondensedTree) -> np.ndarray:
    """Per-point density level at which each point left its condensed cluster.

    One gather over the condensed point records; points that never leave
    carry ``inf``.  This is the ``lambda_p`` of the membership-probability
    formulation, and the serving layer's ``approximate_predict`` compares new
    points against exactly these levels.
    """
    point_records = ~condensed.edge_is_cluster
    point_lambda = np.zeros(condensed.num_points, dtype=np.float64)
    point_lambda[condensed.edge_child[point_records]] = condensed.edge_lambda[
        point_records
    ]
    return point_lambda


def membership_probabilities(
    condensed: CondensedTree, labels: np.ndarray
) -> np.ndarray:
    """Per-point cluster membership strengths for an EOM labeling.

    The probability of a clustered point follows the standard HDBSCAN*
    membership formulation: the density level ``lambda_p`` at which the point
    left its cluster, normalized by the maximum such level inside that
    cluster (points that persist to the cluster's maximum density get 1.0;
    noise points get 0.0).
    """
    probabilities = np.zeros(condensed.num_points, dtype=np.float64)
    point_lambda = point_fallout_lambdas(condensed)
    for label in np.unique(labels[labels >= 0]):
        members = labels == label
        member_lambda = point_lambda[members]
        finite = member_lambda[np.isfinite(member_lambda)]
        max_lambda = float(finite.max()) if finite.size else 0.0
        if max_lambda <= 0.0:
            probabilities[members] = 1.0
        else:
            # Infinite lambdas (points that never leave) divide to inf and
            # clamp to full membership.
            probabilities[members] = np.minimum(member_lambda / max_lambda, 1.0)
    return probabilities


def labels_and_probabilities_from_condensed(
    condensed: CondensedTree, *, allow_single_cluster: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """EOM labels plus membership strengths from an existing condensed tree.

    The serving layer's zero-refit ``recut`` calls this directly on its
    cached :class:`CondensedTree`; :func:`hdbscan_labels_and_probabilities`
    is this plus the condense step, so both paths produce byte-identical
    output for the same ``min_cluster_size``.
    """
    labels, _ = extract_eom_clusters(
        condensed, allow_single_cluster=allow_single_cluster
    )
    return labels, membership_probabilities(condensed, labels)


def hdbscan_labels_and_probabilities(
    dendrogram: Dendrogram,
    *,
    min_cluster_size: int = 5,
    allow_single_cluster: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """EOM labels plus per-point cluster membership strengths.

    See :func:`membership_probabilities` for the probability formulation.
    """
    condensed = condense_dendrogram(dendrogram, min_cluster_size)
    return labels_and_probabilities_from_condensed(
        condensed, allow_single_cluster=allow_single_cluster
    )
