"""The dendrogram data structure.

A dendrogram over ``n`` points is a full binary tree with ``n`` leaves (the
points, ids ``0 .. n-1``) and ``n - 1`` internal nodes (ids ``n .. 2n-2``).
Each internal node corresponds to one spanning-tree edge: removing that edge
splits the node's cluster into its two children, and the node's *height* is
the weight of the removed edge.

Internal nodes are stored in structure-of-arrays form — growable NumPy
buffers for children, heights, subtree sizes and originating edges — so the
array-native constructions append whole batches of merges with one
:meth:`Dendrogram.add_internal_batch` call, and whole-column operations
(linkage export, parent arrays, validity checks, :meth:`node_sizes`) run as
single array passes.

Ordered dendrograms additionally fix the left/right order of every node's
children so that the in-order traversal of the leaves equals the Prim-order
traversal of the underlying tree from a chosen starting vertex (Section 4.1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.buffers import ensure_capacity
from repro.core.errors import InvalidParameterError

_INITIAL_CAPACITY = 16


class Dendrogram:
    """Binary merge tree over ``num_points`` leaves.

    Internal node ``k`` (0-based) has node id ``num_points + k``; its children
    may be leaves (ids below ``num_points``) or other internal nodes.
    """

    def __init__(self, num_points: int) -> None:
        if num_points < 1:
            raise InvalidParameterError("a dendrogram needs at least one point")
        self.num_points = num_points
        self._spans_cache: Optional[Tuple[int, int, np.ndarray, np.ndarray]] = None
        # A complete dendrogram has exactly ``num_points - 1`` internal nodes,
        # so sizing the buffers up front makes growth the exception.
        capacity = max(num_points - 1, _INITIAL_CAPACITY)
        self._left = np.empty(capacity, dtype=np.int64)
        self._right = np.empty(capacity, dtype=np.int64)
        self._height = np.empty(capacity, dtype=np.float64)
        self._size = np.empty(capacity, dtype=np.int64)
        self._edge_u = np.empty(capacity, dtype=np.int64)
        self._edge_v = np.empty(capacity, dtype=np.int64)
        self._count = 0
        self.root: Optional[int] = 0 if num_points == 1 else None

    # -- construction ---------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        ensure_capacity(
            self,
            ("_left", "_right", "_height", "_size", "_edge_u", "_edge_v"),
            self._count,
            self._count + extra,
        )

    def add_internal(
        self,
        left: int,
        right: int,
        height: float,
        edge: Tuple[int, int],
    ) -> int:
        """Add an internal node merging ``left`` and ``right``; return its id."""
        self._reserve(1)
        index = self._count
        node_id = self.num_points + index
        self._left[index] = left
        self._right[index] = right
        self._height[index] = height
        self._size[index] = self.node_size(int(left)) + self.node_size(int(right))
        self._edge_u[index] = edge[0]
        self._edge_v[index] = edge[1]
        self._count = index + 1
        return node_id

    def add_internal_batch(
        self,
        left: np.ndarray,
        right: np.ndarray,
        height: np.ndarray,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        sizes: np.ndarray,
    ) -> int:
        """Append a whole batch of internal nodes; return the first new id.

        ``sizes`` must hold each new node's leaf count (the array-backed
        constructions track cluster sizes in their merge sweeps, so recomputing
        them here would be redundant).  Children may reference nodes created
        earlier in the same batch, exactly like repeated :meth:`add_internal`
        calls.
        """
        m = int(len(left))
        self._reserve(m)
        start = self._count
        self._left[start : start + m] = left
        self._right[start : start + m] = right
        self._height[start : start + m] = height
        self._size[start : start + m] = sizes
        self._edge_u[start : start + m] = edge_u
        self._edge_v[start : start + m] = edge_v
        self._count = start + m
        return self.num_points + start

    def set_root(self, node_id: int) -> None:
        self.root = int(node_id)

    # -- accessors ------------------------------------------------------------

    @property
    def num_internal(self) -> int:
        return self._count

    def is_leaf(self, node_id: int) -> bool:
        return node_id < self.num_points

    def children(self, node_id: int) -> Tuple[int, int]:
        """(left, right) child ids of an internal node."""
        index = self._internal_index(node_id)
        return int(self._left[index]), int(self._right[index])

    def height(self, node_id: int) -> float:
        """Height (weight of the removed edge) of an internal node."""
        return float(self._height[self._internal_index(node_id)])

    def edge(self, node_id: int) -> Tuple[int, int]:
        """The spanning-tree edge whose removal created this internal node."""
        index = self._internal_index(node_id)
        return int(self._edge_u[index]), int(self._edge_v[index])

    def node_size(self, node_id: int) -> int:
        """Number of leaves under ``node_id``."""
        if self.is_leaf(node_id):
            return 1
        return int(self._size[self._internal_index(node_id)])

    def node_sizes(self, node_ids: np.ndarray) -> np.ndarray:
        """Leaf counts of a whole array of node ids at once."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        sizes = np.ones(node_ids.shape[0], dtype=np.int64)
        internal = node_ids >= self.num_points
        sizes[internal] = self._size[node_ids[internal] - self.num_points]
        return sizes

    def heights(self) -> np.ndarray:
        """Heights of all internal nodes (construction order)."""
        return self._height[: self._count].copy()

    def children_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(left, right) child-id arrays of all internal nodes (views).

        Row ``k`` belongs to internal node ``num_points + k``; array-native
        traversals (e.g. the dendrogram-cut frontier sweep) index these
        instead of calling :meth:`children` per node.
        """
        return self._left[: self._count], self._right[: self._count]

    def _internal_index(self, node_id: int) -> int:
        index = node_id - self.num_points
        if index < 0 or index >= self._count:
            raise InvalidParameterError(f"node {node_id} is not an internal node")
        return index

    # -- traversals -----------------------------------------------------------

    def leaves_in_order(self) -> List[int]:
        """Leaf ids in dendrogram (in-order / left-to-right) order."""
        if self.root is None:
            raise InvalidParameterError("dendrogram has no root; construction incomplete")
        n = self.num_points
        left = self._left
        right = self._right
        order: List[int] = []
        stack: List[int] = [self.root]
        while stack:
            node_id = stack.pop()
            if node_id < n:
                order.append(node_id)
                continue
            index = node_id - n
            # In-order on a full binary tree: everything in the left subtree,
            # then everything in the right subtree (the internal node itself
            # carries no leaf).
            stack.append(int(right[index]))
            stack.append(int(left[index]))
        return order

    def leaf_spans(self) -> Tuple[np.ndarray, np.ndarray]:
        """In-order leaf sequence plus every node's contiguous span in it.

        Returns ``(order, first)`` where ``order`` lists the leaf ids in
        dendrogram (left-to-right) order and, for *every* node id ``v``, the
        leaves under ``v`` are exactly ``order[first[v] : first[v] +
        node_size(v)]``.  This turns "collect/label the leaves of a subtree"
        — previously a per-node stack walk — into one array slice.

        The spans are computed with pointer doubling over the parent array:
        a node's span start is the sum, along its root path, of the left-
        sibling sizes of the right-child steps; doubling evaluates all those
        path sums in ``O(log depth)`` vectorized rounds, so even a fully
        degenerate (chain-shaped) dendrogram needs no deep recursion.  The
        result is cached until the dendrogram grows or is re-rooted.
        """
        if self.root is None:
            raise InvalidParameterError(
                "dendrogram has no root; construction incomplete"
            )
        cache_key = (self._count, int(self.root))
        if self._spans_cache is not None and self._spans_cache[:2] == cache_key:
            return self._spans_cache[2], self._spans_cache[3]

        n = self.num_points
        count = self._count
        total = n + count
        left = self._left[:count]
        right = self._right[:count]

        # delta[v]: leaves preceding v within its parent — 0 for left
        # children (and the root), the left sibling's leaf count for right
        # children.
        delta = np.zeros(total, dtype=np.int64)
        delta[right] = self.node_sizes(left)
        jump = self.parent_array()

        # Pointer doubling: first[v] accumulates the delta sum over the path
        # segment [v, jump[v]); each round doubles the segment until every
        # jump pointer falls off the root.  The gathers on the right-hand
        # side snapshot before the scatter, so one statement per array is a
        # synchronous round.
        first = delta.copy()
        while True:
            active = np.flatnonzero(jump >= 0)
            if active.size == 0:
                break
            first[active] += first[jump[active]]
            jump[active] = jump[jump[active]]
        order = np.empty(n, dtype=np.int64)
        order[first[:n]] = np.arange(n, dtype=np.int64)
        self._spans_cache = (cache_key[0], cache_key[1], order, first)
        return order, first

    def parent_array(self) -> np.ndarray:
        """Parent id of every node (-1 for the root)."""
        total = self.num_points + self._count
        parents = np.full(total, -1, dtype=np.int64)
        ids = self.num_points + np.arange(self._count, dtype=np.int64)
        parents[self._left[: self._count]] = ids
        parents[self._right[: self._count]] = ids
        return parents

    def iter_internal(self) -> Iterator[int]:
        """Iterate over internal node ids in construction order."""
        for index in range(self._count):
            yield self.num_points + index

    # -- validation and comparison --------------------------------------------

    def is_valid(self) -> bool:
        """Structural sanity: every node has one parent, heights are monotone.

        Monotonicity here means every internal node is at least as high as its
        internal children, which holds for dendrograms produced by removing
        edges in decreasing weight order.
        """
        if self.num_points == 1:
            return self.num_internal == 0
        if self.num_internal != self.num_points - 1 or self.root is None:
            return False
        parents = self.parent_array()
        root_count = int(np.sum(parents == -1))
        if root_count != 1 or parents[self.root] != -1:
            return False
        heights = self._height[: self._count]
        for child_column in (self._left[: self._count], self._right[: self._count]):
            internal_child = child_column >= self.num_points
            if internal_child.any():
                child_heights = heights[child_column[internal_child] - self.num_points]
                if (child_heights > heights[internal_child] + 1e-12).any():
                    return False
        return True

    def to_linkage_matrix(self) -> np.ndarray:
        """SciPy-style ``(n-1, 4)`` linkage matrix (cluster1, cluster2, height, size).

        Internal nodes must have been added in non-decreasing height order for
        the result to be a valid SciPy linkage; the bottom-up construction
        guarantees that, the top-down ones do not (use
        :func:`repro.dendrogram.sequential.dendrogram_sequential` when a SciPy
        compatible matrix is required).
        """
        count = self._count
        matrix = np.empty((count, 4), dtype=np.float64)
        matrix[:, 0] = self._left[:count]
        matrix[:, 1] = self._right[:count]
        matrix[:, 2] = self._height[:count]
        matrix[:, 3] = self._size[:count]
        return matrix

    # -- checkpoint state ------------------------------------------------------

    def state_arrays(self) -> "dict[str, np.ndarray]":
        """Copies of the live columns for a phase checkpoint (exact restore)."""
        count = self._count
        return {
            "left": self._left[:count].copy(),
            "right": self._right[:count].copy(),
            "height": self._height[:count].copy(),
            "size": self._size[:count].copy(),
            "edge_u": self._edge_u[:count].copy(),
            "edge_v": self._edge_v[:count].copy(),
            "meta": np.array(
                [self.num_points, -1 if self.root is None else self.root],
                dtype=np.int64,
            ),
        }

    @classmethod
    def from_state_arrays(cls, arrays: "dict[str, np.ndarray]") -> "Dendrogram":
        """Rebuild a dendrogram from :meth:`state_arrays` output.

        The restored tree is bit-for-bit equal to the checkpointed one: the
        columns are written back verbatim (batch append preserves order and
        values) and the root is reinstated, so every downstream consumer —
        linkage export, cuts, cluster extraction — sees identical bytes.
        """
        meta = np.asarray(arrays["meta"], dtype=np.int64)
        dendrogram = cls(int(meta[0]))
        dendrogram.add_internal_batch(
            np.asarray(arrays["left"], dtype=np.int64),
            np.asarray(arrays["right"], dtype=np.int64),
            np.asarray(arrays["height"], dtype=np.float64),
            np.asarray(arrays["edge_u"], dtype=np.int64),
            np.asarray(arrays["edge_v"], dtype=np.int64),
            np.asarray(arrays["size"], dtype=np.int64),
        )
        if int(meta[1]) >= 0:
            dendrogram.set_root(int(meta[1]))
        return dendrogram

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dendrogram(n={self.num_points}, internal={self.num_internal})"
