"""The dendrogram data structure.

A dendrogram over ``n`` points is a full binary tree with ``n`` leaves (the
points, ids ``0 .. n-1``) and ``n - 1`` internal nodes (ids ``n .. 2n-2``).
Each internal node corresponds to one spanning-tree edge: removing that edge
splits the node's cluster into its two children, and the node's *height* is
the weight of the removed edge.

Ordered dendrograms additionally fix the left/right order of every node's
children so that the in-order traversal of the leaves equals the Prim-order
traversal of the underlying tree from a chosen starting vertex (Section 4.1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError


class Dendrogram:
    """Binary merge tree over ``num_points`` leaves.

    Internal node ``k`` (0-based) has node id ``num_points + k``; its children
    may be leaves (ids below ``num_points``) or other internal nodes.
    """

    def __init__(self, num_points: int) -> None:
        if num_points < 1:
            raise InvalidParameterError("a dendrogram needs at least one point")
        self.num_points = num_points
        self._left: List[int] = []
        self._right: List[int] = []
        self._height: List[float] = []
        self._size: List[int] = []
        self._edge: List[Tuple[int, int]] = []
        self.root: Optional[int] = 0 if num_points == 1 else None

    # -- construction ---------------------------------------------------------

    def add_internal(
        self,
        left: int,
        right: int,
        height: float,
        edge: Tuple[int, int],
    ) -> int:
        """Add an internal node merging ``left`` and ``right``; return its id."""
        node_id = self.num_points + len(self._left)
        self._left.append(int(left))
        self._right.append(int(right))
        self._height.append(float(height))
        self._size.append(self.node_size(left) + self.node_size(right))
        self._edge.append((int(edge[0]), int(edge[1])))
        return node_id

    def set_root(self, node_id: int) -> None:
        self.root = int(node_id)

    # -- accessors ------------------------------------------------------------

    @property
    def num_internal(self) -> int:
        return len(self._left)

    def is_leaf(self, node_id: int) -> bool:
        return node_id < self.num_points

    def children(self, node_id: int) -> Tuple[int, int]:
        """(left, right) child ids of an internal node."""
        index = self._internal_index(node_id)
        return self._left[index], self._right[index]

    def height(self, node_id: int) -> float:
        """Height (weight of the removed edge) of an internal node."""
        return self._height[self._internal_index(node_id)]

    def edge(self, node_id: int) -> Tuple[int, int]:
        """The spanning-tree edge whose removal created this internal node."""
        return self._edge[self._internal_index(node_id)]

    def node_size(self, node_id: int) -> int:
        """Number of leaves under ``node_id``."""
        if self.is_leaf(node_id):
            return 1
        return self._size[self._internal_index(node_id)]

    def heights(self) -> np.ndarray:
        """Heights of all internal nodes (construction order)."""
        return np.asarray(self._height, dtype=np.float64)

    def _internal_index(self, node_id: int) -> int:
        index = node_id - self.num_points
        if index < 0 or index >= len(self._left):
            raise InvalidParameterError(f"node {node_id} is not an internal node")
        return index

    # -- traversals -----------------------------------------------------------

    def leaves_in_order(self) -> List[int]:
        """Leaf ids in dendrogram (in-order / left-to-right) order."""
        if self.root is None:
            raise InvalidParameterError("dendrogram has no root; construction incomplete")
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(self.root, False)]
        while stack:
            node_id, expanded = stack.pop()
            if self.is_leaf(node_id):
                order.append(node_id)
                continue
            left, right = self.children(node_id)
            # In-order on a full binary tree: everything in the left subtree,
            # then everything in the right subtree (the internal node itself
            # carries no leaf).
            stack.append((right, False))
            stack.append((left, False))
        return order

    def parent_array(self) -> np.ndarray:
        """Parent id of every node (-1 for the root)."""
        total = self.num_points + self.num_internal
        parents = np.full(total, -1, dtype=np.int64)
        for index in range(self.num_internal):
            node_id = self.num_points + index
            parents[self._left[index]] = node_id
            parents[self._right[index]] = node_id
        return parents

    def iter_internal(self) -> Iterator[int]:
        """Iterate over internal node ids in construction order."""
        for index in range(self.num_internal):
            yield self.num_points + index

    # -- validation and comparison --------------------------------------------

    def is_valid(self) -> bool:
        """Structural sanity: every node has one parent, heights are monotone.

        Monotonicity here means every internal node is at least as high as its
        internal children, which holds for dendrograms produced by removing
        edges in decreasing weight order.
        """
        if self.num_points == 1:
            return self.num_internal == 0
        if self.num_internal != self.num_points - 1 or self.root is None:
            return False
        parents = self.parent_array()
        root_count = int(np.sum(parents == -1))
        if root_count != 1 or parents[self.root] != -1:
            return False
        for node_id in self.iter_internal():
            for child in self.children(node_id):
                if not self.is_leaf(child) and self.height(child) > self.height(node_id) + 1e-12:
                    return False
        return True

    def to_linkage_matrix(self) -> np.ndarray:
        """SciPy-style ``(n-1, 4)`` linkage matrix (cluster1, cluster2, height, size).

        Internal nodes must have been added in non-decreasing height order for
        the result to be a valid SciPy linkage; the bottom-up construction
        guarantees that, the top-down ones do not (use
        :func:`repro.dendrogram.sequential.dendrogram_sequential` when a SciPy
        compatible matrix is required).
        """
        matrix = np.empty((self.num_internal, 4), dtype=np.float64)
        for index in range(self.num_internal):
            matrix[index, 0] = self._left[index]
            matrix[index, 1] = self._right[index]
            matrix[index, 2] = self._height[index]
            matrix[index, 3] = self._size[index]
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dendrogram(n={self.num_points}, internal={self.num_internal})"
