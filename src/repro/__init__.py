"""Parallel EMST and hierarchical spatial clustering (HDBSCAN*).

A from-scratch Python reproduction of *"Fast Parallel Algorithms for Euclidean
Minimum Spanning Tree and Hierarchical Spatial Clustering"* (Wang, Yu, Gu &
Shun, SIGMOD 2021).

Quickstart
----------
>>> import numpy as np
>>> from repro import emst, hdbscan, single_linkage
>>> points = np.random.default_rng(0).random((1000, 3))
>>> tree = emst(points)                      # Euclidean MST (MemoGFK)
>>> clustering = hdbscan(points, min_pts=10)  # HDBSCAN* hierarchy
>>> labels = clustering.dbscan_labels(0.1)    # flat DBSCAN* cut

Every pipeline takes a ``metric=`` knob (``"euclidean"``, ``"manhattan"``,
``"chebyshev"``, ``"minkowski:p"``) and a ``backend=`` knob (``"numpy"``,
``"numba"``, ``"numpy-f32"``, ``"numba-f32"`` — compiled and float32-lowered
kernel variants; see :mod:`repro.core.backend`), and :mod:`repro.estimators`
provides the scikit-learn-style facade:

>>> from repro.estimators import HDBSCAN
>>> labels = HDBSCAN(min_pts=10, metric="manhattan").fit_predict(points)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.core import PointSet, as_points, open_memmap_points
from repro.core.budget import (
    MemoryBudget,
    current_memory_budget,
    parse_memory_size,
    resolve_memory_budget,
    set_default_memory_budget,
    use_memory_budget,
)
from repro.core.backend import (
    BACKEND_NAMES,
    BackendFallbackWarning,
    KernelBackend,
    available_backends,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.core.metric import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
    resolve_metric,
)
from repro.core.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    InvalidParameterError,
    InvalidPointSetError,
    NotComputedError,
    ReproError,
    SpillIOError,
    WorkerFailedError,
)
from repro.resilience import CheckpointManager, inject_faults
from repro.emst import (
    EMSTResult,
    emst,
    emst_bruteforce,
    emst_delaunay,
    emst_dualtree_boruvka,
    emst_gfk,
    emst_memogfk,
    emst_naive,
)
from repro.hdbscan import (
    HDBSCANResult,
    core_distances,
    hdbscan,
    hdbscan_mst_gantao,
    hdbscan_mst_memogfk,
    optics_approx_mst,
)
from repro.approx import approx_emst, approx_hdbscan, approx_hdbscan_mst
from repro.dendrogram import (
    Dendrogram,
    clusters_at_height,
    cut_num_clusters,
    dbscan_star_labels,
    dendrogram_sequential,
    dendrogram_topdown,
    reachability_plot,
    single_linkage,
    SingleLinkageResult,
)
from repro.spatial import KDTree
from repro.parallel import WorkDepthTracker, use_tracker
from repro import estimators
from repro.estimators import EMST, HDBSCAN

__version__ = "1.1.0"

__all__ = [
    "PointSet",
    "as_points",
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "resolve_metric",
    "BACKEND_NAMES",
    "BackendFallbackWarning",
    "KernelBackend",
    "available_backends",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "estimators",
    "EMST",
    "HDBSCAN",
    "ReproError",
    "InvalidParameterError",
    "InvalidPointSetError",
    "NotComputedError",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "WorkerFailedError",
    "SpillIOError",
    "CheckpointManager",
    "inject_faults",
    "EMSTResult",
    "emst",
    "emst_bruteforce",
    "emst_delaunay",
    "emst_dualtree_boruvka",
    "emst_gfk",
    "emst_memogfk",
    "emst_naive",
    "HDBSCANResult",
    "core_distances",
    "hdbscan",
    "hdbscan_mst_gantao",
    "hdbscan_mst_memogfk",
    "optics_approx_mst",
    "approx_emst",
    "approx_hdbscan",
    "approx_hdbscan_mst",
    "Dendrogram",
    "clusters_at_height",
    "cut_num_clusters",
    "dbscan_star_labels",
    "dendrogram_sequential",
    "dendrogram_topdown",
    "reachability_plot",
    "single_linkage",
    "SingleLinkageResult",
    "KDTree",
    "WorkDepthTracker",
    "use_tracker",
    "__version__",
]
