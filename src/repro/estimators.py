"""Scikit-learn-style estimator facade over the functional pipelines.

The functional API (:func:`repro.emst.api.emst`,
:func:`repro.hdbscan.api.hdbscan`) is what the benchmarks and the paper
reproduction drive; production callers usually want the estimator shape that
scikit-learn established — construct with hyperparameters, ``fit`` on data,
read ``labels_``-style attributes, round-trip parameters through
``get_params`` / ``set_params``.  This module provides exactly that facade:
:class:`EMST` and :class:`HDBSCAN` validate and coerce inputs once at the
boundary (contiguous float64, clear errors for NaN/inf/empty), thread the
``metric``, ``backend`` and ``num_threads`` knobs through the engine, and
expose the fitted artifacts as plain NumPy attributes.

>>> from repro.estimators import HDBSCAN
>>> model = HDBSCAN(min_pts=10, metric="manhattan")
>>> labels = model.fit_predict(points)
>>> model.probabilities_  # per-point cluster membership strengths
"""

from __future__ import annotations

import inspect
from typing import Optional

import numpy as np

from repro.approx import resolve_approx_method
from repro.core.backend import BackendLike, resolve_backend
from repro.core.budget import BudgetLike, resolve_memory_budget
from repro.core.errors import InvalidParameterError, NotComputedError
from repro.core.metric import MetricLike, resolve_metric
from repro.core.points import as_points
from repro.dendrogram.condensed import hdbscan_labels_and_probabilities
from repro.dendrogram.extract import cut_num_clusters
from repro.dendrogram.topdown import dendrogram_topdown
from repro.emst.api import EMST_METHODS, emst
from repro.hdbscan.api import HDBSCAN_METHODS, hdbscan


class _ReproEstimator:
    """Minimal scikit-learn estimator protocol (params + fitted-state checks).

    Subclasses declare their constructor parameters in ``_parameter_names``;
    ``get_params`` / ``set_params`` operate on exactly that set, matching the
    sklearn contract (``set_params`` rejects unknown keys, returns ``self``
    so calls chain, and takes effect on the next ``fit``).
    """

    _parameter_names: tuple = ()

    def get_params(self, deep: bool = True) -> dict:
        """Constructor parameters as a dict (``deep`` accepted for sklearn
        compatibility; there are no nested estimators)."""
        return {name: getattr(self, name) for name in self._parameter_names}

    def set_params(self, **params) -> "_ReproEstimator":
        """Update constructor parameters; unknown names raise."""
        for name, value in params.items():
            if name not in self._parameter_names:
                raise InvalidParameterError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(self._parameter_names)}"
                )
            setattr(self, name, value)
        return self

    def __getattr__(self, name: str):
        # Only reached when normal attribute lookup fails: a trailing
        # underscore marks a fitted artifact, so accessing one before fit()
        # raises the library's "not computed" error instead of a bare
        # AttributeError.  A fitted estimator can still lack an artifact that
        # depends on configuration (e.g. EMST ``labels_`` without
        # ``n_clusters``); distinguish that so the user is not told to
        # re-call fit() in a loop.
        if name.endswith("_") and not name.startswith("_"):
            if self.__dict__.get("_fit_complete"):
                raise NotComputedError(
                    f"{name!r} is not available on this fitted "
                    f"{type(self).__name__}; it requires different "
                    "parameters (for example, EMST labels_ requires "
                    "n_clusters to be set)"
                )
            raise NotComputedError(
                f"this {type(self).__name__} instance is not fitted yet; "
                f"call fit() before accessing {name!r}"
            )
        raise AttributeError(name)

    @classmethod
    def _parameter_defaults(cls) -> dict:
        """Constructor defaults, read off the signature (cached per class)."""
        defaults = cls.__dict__.get("_parameter_defaults_cache")
        if defaults is None:
            defaults = {
                name: parameter.default
                for name, parameter in inspect.signature(
                    cls.__init__
                ).parameters.items()
                if parameter.default is not inspect.Parameter.empty
            }
            cls._parameter_defaults_cache = defaults
        return defaults

    def __repr__(self) -> str:
        # sklearn-style: print only the parameters that differ from their
        # constructor defaults, so HDBSCAN(min_pts=20) reads as exactly that
        # instead of a fourteen-knob wall.
        defaults = self._parameter_defaults()
        shown = []
        for name in self._parameter_names:
            value = getattr(self, name)
            if name in defaults and value == defaults[name]:
                continue
            shown.append(f"{name}={value!r}")
        return f"{type(self).__name__}({', '.join(shown)})"


class EMST(_ReproEstimator):
    """Minimum-spanning-tree estimator (optionally with flat cluster labels).

    Parameters
    ----------
    method:
        MST construction method (see :data:`repro.emst.api.EMST_METHODS`).
    metric:
        Distance metric: a name (``"euclidean"``, ``"manhattan"``,
        ``"chebyshev"``, ``"minkowski:p"``), a Metric instance, or ``None``
        for Euclidean.
    epsilon:
        Accuracy knob: ``0.0`` (default) computes the exact tree with the
        configured ``method``; a positive value computes the
        (1+ε)-approximate tree (``total_weight_`` is at most ``1 + epsilon``
        times the exact MST weight, and never below it) via the
        ``"wspd-approx"`` engine — ``method`` must then be left at its
        default or set to ``"wspd-approx"`` explicitly.
    n_clusters:
        When set, :meth:`fit` also derives single-linkage flat cluster labels
        by cutting the tree's dendrogram into ``n_clusters`` clusters, and
        :meth:`fit_predict` returns them.
    backend:
        Kernel backend: a name (``"numpy"``, ``"numba"``, ``"numpy-f32"``,
        ``"numba-f32"``), a :class:`~repro.core.backend.KernelBackend`
        instance, or ``None`` for the ambient default.  Exact (float64)
        backends return byte-identical trees; ``-f32`` backends score
        candidates in float32 with every surviving edge re-evaluated in
        exact float64.
    num_threads:
        Worker threads for the batched kernels (results are byte-identical
        at any setting).
    memory_budget:
        Bytes ceiling for the tiled kernels and growable buffers: an int, a
        size string (``"512M"``, ``"2G"``), a
        :class:`~repro.core.budget.MemoryBudget`, or ``None`` for the
        ambient default.  Only tile/chunk sizes (and spill-to-disk) change,
        so the fitted tree is byte-identical at any budget.
    checkpoint_dir:
        Directory for phase-level checkpoint/resume (see
        :mod:`repro.resilience`): a fit killed mid-computation resumes from
        its last committed phase on the next ``fit`` with identical data and
        parameters, byte-identically.  ``None`` (default) disables
        checkpointing.
    resume:
        With ``False`` an existing checkpoint in ``checkpoint_dir`` is
        discarded on ``fit`` instead of resumed.
    max_retries:
        Worker-death events one pooled batch absorbs by respawn-and-retry
        before degrading to the serial fallback (``None``: ambient default).
    task_timeout:
        Seconds a pooled batch may stall with no completed task before the
        fit fails with ``WorkerFailedError`` (``None``: no time limit).

    Attributes (after ``fit``)
    --------------------------
    edges_:
        ``(n - 1, 2)`` int64 array of tree edges (point-index endpoints).
    weights_:
        ``(n - 1,)`` float64 array of edge weights under the metric.
    total_weight_:
        Sum of the edge weights.
    labels_:
        Single-linkage labels (only when ``n_clusters`` is set).
    n_features_in_:
        Input dimensionality.
    result_:
        The full :class:`~repro.emst.result.EMSTResult`.
    """

    _parameter_names = (
        "method",
        "metric",
        "backend",
        "epsilon",
        "n_clusters",
        "num_threads",
        "memory_budget",
        "checkpoint_dir",
        "resume",
        "max_retries",
        "task_timeout",
    )

    def __init__(
        self,
        *,
        method: str = "memogfk",
        metric: MetricLike = "euclidean",
        backend: BackendLike = None,
        epsilon: float = 0.0,
        n_clusters: Optional[int] = None,
        num_threads: Optional[int] = None,
        memory_budget: BudgetLike = None,
        checkpoint_dir=None,
        resume: bool = True,
        max_retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
    ) -> None:
        self.method = method
        self.metric = metric
        self.backend = backend
        self.epsilon = epsilon
        self.n_clusters = n_clusters
        self.num_threads = num_threads
        self.memory_budget = memory_budget
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.max_retries = max_retries
        self.task_timeout = task_timeout

    def fit(self, X, y=None) -> "EMST":
        """Compute the MST of ``X`` under the configured metric."""
        if self.method not in EMST_METHODS:
            raise InvalidParameterError(
                f"unknown EMST method {self.method!r}; "
                f"choose from {sorted(EMST_METHODS)}"
            )
        method, method_kwargs = resolve_approx_method(self.method, self.epsilon)
        resolve_metric(self.metric)  # fail fast on bad metric specs
        resolve_backend(self.backend)  # fail fast on bad backend names
        resolve_memory_budget(self.memory_budget)  # fail fast on bad budgets
        data = as_points(X, min_points=1)
        # Validate everything parameter-shaped before the (potentially
        # expensive) MST computation runs.
        if self.n_clusters is not None and not (
            1 <= int(self.n_clusters) <= data.shape[0]
        ):
            raise InvalidParameterError(
                f"n_clusters must be in [1, {data.shape[0]}], "
                f"got {self.n_clusters}"
            )
        result = emst(
            data,
            method=method,
            metric=self.metric,
            backend=self.backend,
            memory_budget=self.memory_budget,
            checkpoint_dir=self.checkpoint_dir,
            resume=bool(self.resume),
            max_retries=self.max_retries,
            task_timeout=self.task_timeout,
            num_threads=self.num_threads,
            **method_kwargs,
        )
        u, v, w = result.edges.as_arrays()
        self.n_features_in_ = int(data.shape[1])
        self.edges_ = np.column_stack([u, v]).astype(np.int64, copy=False)
        self.weights_ = np.array(w, dtype=np.float64, copy=True)
        self.total_weight_ = float(self.weights_.sum())
        self.result_ = result
        # labels_ exists only when n_clusters is configured; drop any value
        # left over from a previous fit with different parameters.
        self.__dict__.pop("labels_", None)
        if self.n_clusters is not None:
            if data.shape[0] == 1:
                self.labels_ = np.zeros(1, dtype=np.int64)
            else:
                dendrogram = dendrogram_topdown(result.edges, data.shape[0])
                self.labels_ = cut_num_clusters(dendrogram, int(self.n_clusters))
        self._fit_complete = True
        return self

    def fit_predict(self, X, y=None) -> np.ndarray:
        """Fit and return single-linkage labels (requires ``n_clusters``)."""
        if self.n_clusters is None:
            raise InvalidParameterError(
                "EMST.fit_predict requires n_clusters to be set; "
                "use fit() alone to compute the tree"
            )
        self.fit(X)
        return self.labels_


class HDBSCAN(_ReproEstimator):
    """HDBSCAN* clustering estimator over the parallel MST engine.

    Parameters
    ----------
    min_pts:
        The HDBSCAN* ``minPts`` density parameter.
    min_cluster_size:
        Minimum flat-cluster size for the condensed-tree extraction.
    metric:
        Distance metric (name, Metric instance, or ``None`` for Euclidean).
    method:
        Mutual-reachability MST construction (see
        :data:`repro.hdbscan.api.HDBSCAN_METHODS`).
    epsilon:
        When set, flat labels come from the DBSCAN* cut at this density
        level instead of excess-of-mass selection.  (This is the cut level
        of the hierarchy — the *accuracy* knob is ``approx_epsilon``.)
    approx_epsilon:
        Accuracy knob: ``0.0`` (default) computes the exact
        mutual-reachability MST with the configured ``method``; a positive
        value computes the (1+ε)-approximate MST (total weight within
        ``1 + approx_epsilon`` of exact, never below it) via the
        ``"wspd-approx"`` engine — ``method`` must then be left at its
        default or set to ``"wspd-approx"`` explicitly.
    allow_single_cluster:
        Whether EOM selection may return the root as a single cluster.
    backend:
        Kernel backend (name, :class:`~repro.core.backend.KernelBackend`
        instance, or ``None`` for the ambient default); see
        :class:`EMST`.
    num_threads:
        Worker threads for the batched kernels.
    memory_budget:
        Bytes ceiling for the tiled kernels and growable buffers (int, size
        string like ``"512M"``, a MemoryBudget, or ``None`` for the ambient
        default); labels and the MST are byte-identical at any budget.
    checkpoint_dir / resume / max_retries / task_timeout:
        Fault-tolerance knobs, identical to :class:`EMST`: phase-level
        checkpoint/resume under ``checkpoint_dir`` (byte-identical resumed
        fits) and worker-death retry / stall-timeout policy for the pooled
        kernels.

    Attributes (after ``fit``)
    --------------------------
    labels_:
        Flat cluster labels (noise points get ``-1``).
    probabilities_:
        Per-point cluster membership strengths in ``[0, 1]`` (0 for noise).
    core_distances_:
        Core distance of every point under the metric.
    mst_edges_ / mst_weights_:
        The mutual-reachability MST as arrays.
    n_features_in_:
        Input dimensionality.
    result_:
        The full :class:`~repro.hdbscan.result.HDBSCANResult`.
    """

    _parameter_names = (
        "min_pts",
        "min_cluster_size",
        "metric",
        "method",
        "epsilon",
        "approx_epsilon",
        "allow_single_cluster",
        "backend",
        "num_threads",
        "memory_budget",
        "checkpoint_dir",
        "resume",
        "max_retries",
        "task_timeout",
    )

    def __init__(
        self,
        *,
        min_pts: int = 10,
        min_cluster_size: int = 5,
        metric: MetricLike = "euclidean",
        method: str = "memogfk",
        epsilon: Optional[float] = None,
        approx_epsilon: float = 0.0,
        allow_single_cluster: bool = False,
        backend: BackendLike = None,
        num_threads: Optional[int] = None,
        memory_budget: BudgetLike = None,
        checkpoint_dir=None,
        resume: bool = True,
        max_retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
    ) -> None:
        self.min_pts = min_pts
        self.min_cluster_size = min_cluster_size
        self.metric = metric
        self.method = method
        self.epsilon = epsilon
        self.approx_epsilon = approx_epsilon
        self.allow_single_cluster = allow_single_cluster
        self.backend = backend
        self.num_threads = num_threads
        self.memory_budget = memory_budget
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.max_retries = max_retries
        self.task_timeout = task_timeout

    def fit(self, X, y=None) -> "HDBSCAN":
        """Run the HDBSCAN* pipeline on ``X`` and derive flat labels."""
        if self.method not in HDBSCAN_METHODS:
            raise InvalidParameterError(
                f"unknown HDBSCAN* method {self.method!r}; "
                f"choose from {sorted(HDBSCAN_METHODS)}"
            )
        method, method_kwargs = resolve_approx_method(
            self.method, self.approx_epsilon, knob="approx_epsilon"
        )
        resolve_metric(self.metric)
        resolve_backend(self.backend)  # fail fast on bad backend names
        resolve_memory_budget(self.memory_budget)  # fail fast on bad budgets
        data = as_points(X, min_points=1)
        n = data.shape[0]
        self.n_features_in_ = int(data.shape[1])
        if n == 1:
            # A lone point has no density structure: it is noise (whatever
            # min_pts says — no distance is ever computed).
            self.labels_ = np.full(1, -1, dtype=np.int64)
            self.probabilities_ = np.zeros(1, dtype=np.float64)
            self.core_distances_ = np.zeros(1, dtype=np.float64)
            self.mst_edges_ = np.empty((0, 2), dtype=np.int64)
            self.mst_weights_ = np.empty(0, dtype=np.float64)
            self.result_ = None
            self._fit_complete = True
            return self
        if not 1 <= int(self.min_pts) <= n:
            # Same contract as the functional hdbscan(): a min_pts outside
            # [1, n] is an error, never silently clamped.
            raise InvalidParameterError(
                f"min_pts must be in [1, {n}], got {self.min_pts}"
            )
        result = hdbscan(
            data,
            min_pts=int(self.min_pts),
            method=method,
            metric=self.metric,
            backend=self.backend,
            memory_budget=self.memory_budget,
            checkpoint_dir=self.checkpoint_dir,
            resume=bool(self.resume),
            max_retries=self.max_retries,
            task_timeout=self.task_timeout,
            num_threads=self.num_threads,
            **method_kwargs,
        )
        if self.epsilon is not None:
            labels = result.dbscan_labels(
                float(self.epsilon), min_cluster_size=int(self.min_cluster_size)
            )
            probabilities = (labels >= 0).astype(np.float64)
        else:
            labels, probabilities = hdbscan_labels_and_probabilities(
                result.dendrogram,
                min_cluster_size=int(self.min_cluster_size),
                allow_single_cluster=bool(self.allow_single_cluster),
            )
        u, v, w = result.mst.edges.as_arrays()
        self.labels_ = labels
        self.probabilities_ = probabilities
        self.core_distances_ = np.array(result.core_distances, copy=True)
        self.mst_edges_ = np.column_stack([u, v]).astype(np.int64, copy=False)
        self.mst_weights_ = np.array(w, dtype=np.float64, copy=True)
        self.result_ = result
        self._fit_complete = True
        return self

    def fit_predict(self, X, y=None) -> np.ndarray:
        """Fit and return the flat cluster labels."""
        self.fit(X)
        return self.labels_
