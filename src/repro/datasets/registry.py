"""Dataset registry shared by the benchmarks.

Each entry mirrors one of the paper's evaluation data sets, downscaled to a
size pure Python can process in seconds (DESIGN.md, "Substitutions").  The
names follow the paper's ``<dim>D-<family>-<size>`` convention so benchmark
output reads like the paper's tables.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.datasets.real_proxies import (
    chem_proxy,
    geolife_proxy,
    household_proxy,
    ht_proxy,
)
from repro.datasets.synthetic import seed_spreader, uniform_fill

# Default reproduction-scale sizes (the paper uses 10M / 24.9M / 2.05M / 0.93M
# / 4.2M points; the proxies keep the same relative ordering of sizes).
_DEFAULT_SIZES = {
    "uniform": 4000,
    "varden": 4000,
    "geolife": 5000,
    "household": 3000,
    "ht": 2000,
    "chem": 2500,
}


def _make_uniform(dimensions: int) -> Callable[[int, Optional[int]], np.ndarray]:
    def build(n: int, seed: Optional[int]) -> np.ndarray:
        return uniform_fill(n, dimensions, seed=seed)

    return build


def _make_varden(dimensions: int) -> Callable[[int, Optional[int]], np.ndarray]:
    def build(n: int, seed: Optional[int]) -> np.ndarray:
        return seed_spreader(n, dimensions, seed=seed)

    return build


DATASETS: Dict[str, Dict] = {
    "2D-UniformFill": {"builder": _make_uniform(2), "default_n": _DEFAULT_SIZES["uniform"]},
    "3D-UniformFill": {"builder": _make_uniform(3), "default_n": _DEFAULT_SIZES["uniform"]},
    "5D-UniformFill": {"builder": _make_uniform(5), "default_n": _DEFAULT_SIZES["uniform"]},
    "7D-UniformFill": {"builder": _make_uniform(7), "default_n": _DEFAULT_SIZES["uniform"]},
    "2D-SS-varden": {"builder": _make_varden(2), "default_n": _DEFAULT_SIZES["varden"]},
    "3D-SS-varden": {"builder": _make_varden(3), "default_n": _DEFAULT_SIZES["varden"]},
    "5D-SS-varden": {"builder": _make_varden(5), "default_n": _DEFAULT_SIZES["varden"]},
    "7D-SS-varden": {"builder": _make_varden(7), "default_n": _DEFAULT_SIZES["varden"]},
    "3D-GeoLife": {
        "builder": lambda n, seed: geolife_proxy(n, seed=seed),
        "default_n": _DEFAULT_SIZES["geolife"],
    },
    "7D-Household": {
        "builder": lambda n, seed: household_proxy(n, seed=seed),
        "default_n": _DEFAULT_SIZES["household"],
    },
    "10D-HT": {
        "builder": lambda n, seed: ht_proxy(n, seed=seed),
        "default_n": _DEFAULT_SIZES["ht"],
    },
    "16D-CHEM": {
        "builder": lambda n, seed: chem_proxy(n, seed=seed),
        "default_n": _DEFAULT_SIZES["chem"],
    },
}


def load_dataset(name: str, *, n: Optional[int] = None, seed: int = 0) -> np.ndarray:
    """Generate one registered dataset by name.

    Parameters
    ----------
    name:
        One of the keys of :data:`DATASETS` (e.g. ``"3D-GeoLife"``).
    n:
        Number of points (defaults to the registry's reproduction-scale size).
    seed:
        Random seed, so benchmarks are repeatable.
    """
    try:
        entry = DATASETS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    size = n if n is not None else entry["default_n"]
    return entry["builder"](size, seed)


def benchmark_suite(*, small: bool = False, seed: int = 0) -> Dict[str, np.ndarray]:
    """The full suite of datasets used by the table/figure benchmarks.

    ``small=True`` shrinks every dataset (used by smoke tests and CI-style
    runs of the benchmark harness).
    """
    suite = {}
    for name, entry in DATASETS.items():
        size = entry["default_n"] // 8 if small else entry["default_n"]
        suite[name] = entry["builder"](max(size, 64), seed)
    return suite
