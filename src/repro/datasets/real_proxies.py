"""Synthetic proxies for the paper's real-world data sets.

The real data sets (GeoLife GPS traces, UCI Household power consumption, UCI
gas-sensor HT and CHEM) are not redistributable and are far larger than a
pure-Python reproduction can process, so each proxy below generates points
with the same dimensionality and the qualitative spatial structure the paper
highlights — most importantly GeoLife's extreme skew (dense urban clusters
plus sparse long-range travel) and the correlated, low-effective-dimension
structure of the sensor data sets.  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.errors import InvalidParameterError


def _check_n(n: int) -> None:
    if n < 1:
        raise InvalidParameterError("n must be positive")


def geolife_proxy(n: int = 5000, *, seed: Optional[int] = None) -> np.ndarray:
    """3-d GPS-like data: heavily skewed clusters plus sparse trajectories.

    Mimics GeoLife's structure: most points concentrate in a handful of dense
    "city" clusters (longitude/latitude scale), a small fraction lies along
    long "trajectory" segments between cities, and the third coordinate
    (altitude) has a much smaller, noisy range.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    num_cities = 8
    city_centers = rng.uniform(0.0, 100.0, size=(num_cities, 2))
    city_weights = rng.dirichlet(np.full(num_cities, 0.35))

    num_travel = max(1, n // 20)
    num_city_points = n - num_travel

    assignments = rng.choice(num_cities, size=num_city_points, p=city_weights)
    spreads = rng.uniform(0.05, 1.5, size=num_cities)
    xy = city_centers[assignments] + rng.normal(
        0.0, 1.0, size=(num_city_points, 2)
    ) * spreads[assignments][:, None]

    # Travel segments: linear interpolation between two random cities.
    origins = city_centers[rng.integers(0, num_cities, size=num_travel)]
    destinations = city_centers[rng.integers(0, num_cities, size=num_travel)]
    t = rng.random(num_travel)[:, None]
    travel_xy = origins + t * (destinations - origins) + rng.normal(0, 0.2, (num_travel, 2))

    xy_all = np.vstack([xy, travel_xy])
    altitude = np.abs(rng.normal(0.0, 0.3, size=(n, 1))) + 0.01 * xy_all[:, :1]
    return np.hstack([xy_all, altitude])


def household_proxy(n: int = 4000, *, seed: Optional[int] = None) -> np.ndarray:
    """7-d electricity-consumption-like data: correlated features, few modes."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    num_modes = 6  # appliance usage regimes
    mode_centers = rng.uniform(0.0, 5.0, size=(num_modes, 7))
    assignments = rng.integers(0, num_modes, size=n)
    base = mode_centers[assignments]
    # Strongly correlated noise: a low-rank factor model.
    factors = rng.normal(0.0, 1.0, size=(n, 2))
    loading = rng.normal(0.0, 0.4, size=(2, 7))
    noise = rng.normal(0.0, 0.05, size=(n, 7))
    return base + factors @ loading + noise


def ht_proxy(n: int = 2000, *, seed: Optional[int] = None) -> np.ndarray:
    """10-d home-sensor-like data: slowly drifting time series snapshots."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    drift = np.cumsum(rng.normal(0.0, 0.05, size=(n, 3)), axis=0)
    loading = rng.normal(0.0, 0.6, size=(3, 10))
    seasonal = np.sin(np.linspace(0.0, 40.0, n))[:, None] * rng.normal(0.5, 0.1, size=(1, 10))
    noise = rng.normal(0.0, 0.1, size=(n, 10))
    return drift @ loading + seasonal + noise


def chem_proxy(n: int = 3000, *, seed: Optional[int] = None) -> np.ndarray:
    """16-d chemical-sensor-like data: plateaus at discrete gas mixtures."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    num_mixtures = 10
    mixture_response = rng.uniform(0.0, 10.0, size=(num_mixtures, 16))
    assignments = rng.integers(0, num_mixtures, size=n)
    response = mixture_response[assignments]
    sensor_drift = np.cumsum(rng.normal(0.0, 0.01, size=(n, 16)), axis=0)
    noise = rng.normal(0.0, 0.2, size=(n, 16))
    return response + sensor_drift + noise
