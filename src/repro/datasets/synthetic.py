"""Synthetic dataset generators.

* :func:`uniform_fill` — points uniformly distributed in a hypergrid of side
  length ``sqrt(n)``, exactly the paper's "UniformFill" generator.
* :func:`seed_spreader` — the seed-spreader generator of Gan & Tao used for
  the paper's "SS-varden" data sets: a random walk drops local clusters of
  points ("spreads") and occasionally restarts at a random location, which
  produces clusters of varying density plus scattered noise.
* :func:`gaussian_blobs` — isotropic Gaussian clusters, used by the examples
  and tests for data with known ground-truth structure.
* :func:`paper_example_points` — the 9-point 2D configuration of the paper's
  Figure 1 (vertices a..i), used by the worked-example tests.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError


def uniform_fill(
    n: int,
    dimensions: int,
    *,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Points uniformly at random in a hypergrid with side length ``sqrt(n)``."""
    if n < 1 or dimensions < 1:
        raise InvalidParameterError("n and dimensions must be positive")
    rng = np.random.default_rng(seed)
    side = math.sqrt(n)
    return rng.uniform(0.0, side, size=(n, dimensions))


def seed_spreader(
    n: int,
    dimensions: int,
    *,
    seed: Optional[int] = None,
    restart_probability: float = 0.01,
    local_radius: float = 1.0,
    step_scale: float = 0.5,
    noise_fraction: float = 0.02,
    domain_side: Optional[float] = None,
) -> np.ndarray:
    """Seed-spreader data ("SS-varden"): clusters of varying density.

    A "spreader" performs a random walk; at every step it drops one point
    uniformly inside a ball of radius ``local_radius`` around its current
    position, then moves by a random offset of scale ``step_scale``.  With
    probability ``restart_probability`` the spreader teleports to a uniformly
    random location, starting a new cluster.  A ``noise_fraction`` of the
    points is replaced by uniform noise over the whole domain.
    """
    if n < 1 or dimensions < 1:
        raise InvalidParameterError("n and dimensions must be positive")
    if not 0.0 <= noise_fraction <= 1.0:
        raise InvalidParameterError("noise_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    side = domain_side if domain_side is not None else math.sqrt(n)

    points = np.empty((n, dimensions), dtype=np.float64)
    position = rng.uniform(0.0, side, size=dimensions)
    for index in range(n):
        offset = rng.normal(0.0, local_radius, size=dimensions)
        points[index] = position + offset
        position = position + rng.normal(0.0, step_scale, size=dimensions)
        if rng.random() < restart_probability:
            position = rng.uniform(0.0, side, size=dimensions)

    num_noise = int(round(noise_fraction * n))
    if num_noise > 0:
        noise_indices = rng.choice(n, size=num_noise, replace=False)
        points[noise_indices] = rng.uniform(0.0, side, size=(num_noise, dimensions))
    return points


def gaussian_blobs(
    n: int,
    dimensions: int,
    *,
    num_clusters: int = 5,
    cluster_std: float = 0.05,
    seed: Optional[int] = None,
    return_labels: bool = False,
) -> Tuple[np.ndarray, np.ndarray] | np.ndarray:
    """Isotropic Gaussian clusters with centres uniform in the unit cube."""
    if num_clusters < 1:
        raise InvalidParameterError("num_clusters must be >= 1")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(num_clusters, dimensions))
    labels = rng.integers(0, num_clusters, size=n)
    points = centers[labels] + rng.normal(0.0, cluster_std, size=(n, dimensions))
    if return_labels:
        return points, labels
    return points


def paper_example_points() -> Tuple[np.ndarray, dict]:
    """The 9-point example of the paper's Figure 1.

    The exact coordinates are not given in the paper, so this reconstruction
    places the points so that the *distances used in the figure* hold:
    ``d(a, b) = 4``, ``d(a, d) = sqrt(2)``, ``d(b, d) = sqrt(10)``,
    ``d(d, e) = 6``, ``d(e, g) = sqrt(5)``, ``d(f, g) = 1``,
    ``d(f, h) = sqrt(5)``, ``d(b, c) = 2*sqrt(2)``, ``d(h, i) = sqrt(346)``.
    Returns the ``(9, 2)`` array and a name-to-index mapping.
    """
    names = ["a", "b", "c", "d", "e", "f", "g", "h", "i"]
    coordinates = np.array(
        [
            [0.0, 0.0],    # a
            [4.0, 0.0],    # b
            [6.0, -2.0],   # c
            [1.0, 1.0],    # d
            [1.0, 7.0],    # e
            [3.0, 9.0],    # f
            [2.0, 9.0],    # g
            [4.0, 11.0],   # h
            [19.0, 22.0],  # i
        ]
    )
    return coordinates, {name: index for index, name in enumerate(names)}
