"""Dataset generators used by the examples, tests and benchmarks.

The paper evaluates on two synthetic families (UniformFill and the
seed-spreader "SS-varden" data) plus four real data sets (GeoLife, Household,
HT, CHEM).  The synthetic families are regenerated here with the same
processes; the real data sets are not redistributable, so
:mod:`repro.datasets.real_proxies` provides synthetic proxies that match their
dimensionality and spatial character (see DESIGN.md, "Substitutions").
"""

from repro.datasets.synthetic import (
    uniform_fill,
    seed_spreader,
    gaussian_blobs,
    paper_example_points,
)
from repro.datasets.real_proxies import (
    geolife_proxy,
    household_proxy,
    ht_proxy,
    chem_proxy,
)
from repro.datasets.registry import DATASETS, load_dataset, benchmark_suite

__all__ = [
    "uniform_fill",
    "seed_spreader",
    "gaussian_blobs",
    "paper_example_points",
    "geolife_proxy",
    "household_proxy",
    "ht_proxy",
    "chem_proxy",
    "DATASETS",
    "load_dataset",
    "benchmark_suite",
]
