"""Euler tours of trees.

An Euler tour replaces every undirected tree edge {u, v} with the two directed
arcs (u, v) and (v, u) and links the arcs into a single circuit that traverses
each arc exactly once.  The paper uses Euler tours to root trees, compute
unweighted vertex distances from the starting vertex (label downward arcs +1
and upward arcs -1 and list-rank), and to split trees into subproblems during
dendrogram construction.

``build_euler_tour`` constructs the successor representation in O(n) time from
an edge list; :class:`EulerTour` exposes the derived quantities the dendrogram
algorithm needs (rooting, parent edges, vertex distances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.parallel.scheduler import current_tracker
from repro.parallel.listrank import list_rank


@dataclass
class EulerTour:
    """Euler tour of an undirected tree.

    Attributes
    ----------
    arcs:
        ``(2m, 2)`` array; arc ``2k`` is ``(u, v)`` and arc ``2k + 1`` is
        ``(v, u)`` for input edge ``k``.
    successor:
        Successor arc index of every arc along the circuit.
    first_arc:
        For every vertex, one arc leaving it (used as the tour entry point).
    """

    arcs: np.ndarray
    successor: np.ndarray
    first_arc: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.first_arc.shape[0])

    @property
    def num_arcs(self) -> int:
        return int(self.arcs.shape[0])

    def rooted_at(self, root: int) -> "RootedTour":
        """Break the circuit at ``root`` and derive parent/depth information."""
        return RootedTour(self, root)


def build_euler_tour(num_vertices: int, edges: Sequence[Tuple[int, int]]) -> EulerTour:
    """Build an Euler tour for the tree given by ``edges``.

    ``edges`` must form a forest; vertices with no incident edge are allowed
    (they simply have no arcs).  Work O(n), depth O(log n) (sorting arcs by
    endpoint is charged as the dominant step).
    """
    edges = list(edges)
    m = len(edges)
    arcs = np.empty((2 * m, 2), dtype=np.int64)
    for k, (u, v) in enumerate(edges):
        arcs[2 * k] = (u, v)
        arcs[2 * k + 1] = (v, u)

    current_tracker().add(max(2 * m, 1), np.log2(max(m, 2)), phase="eulertour")

    # Group outgoing arcs by source vertex, preserving a stable order.
    outgoing: List[List[int]] = [[] for _ in range(num_vertices)]
    for arc_index in range(2 * m):
        outgoing[arcs[arc_index, 0]].append(arc_index)

    # The successor of arc (u, v) is the next outgoing arc of v after (v, u)
    # in v's outgoing list (cyclically).  This is the standard O(1)-per-arc
    # construction once per-vertex arc lists are available.
    position_in_list: Dict[int, int] = {}
    for vertex_arcs in outgoing:
        for position, arc_index in enumerate(vertex_arcs):
            position_in_list[arc_index] = position

    successor = np.full(2 * m, -1, dtype=np.int64)
    for arc_index in range(2 * m):
        u, v = arcs[arc_index]
        reverse_index = arc_index ^ 1  # (v, u)
        v_list = outgoing[v]
        next_position = (position_in_list[reverse_index] + 1) % len(v_list)
        successor[arc_index] = v_list[next_position]

    first_arc = np.full(num_vertices, -1, dtype=np.int64)
    for vertex, vertex_arcs in enumerate(outgoing):
        if vertex_arcs:
            first_arc[vertex] = vertex_arcs[0]

    return EulerTour(arcs=arcs, successor=successor, first_arc=first_arc)


class RootedTour:
    """An Euler tour broken at a chosen root, yielding rooted-tree structure."""

    def __init__(self, tour: EulerTour, root: int) -> None:
        self._tour = tour
        self.root = root
        self._order: List[int] = []
        self._parent = np.full(tour.num_vertices, -1, dtype=np.int64)
        self._vertex_distance = np.full(tour.num_vertices, -1, dtype=np.int64)
        self._traverse()

    def _traverse(self) -> None:
        tour = self._tour
        n = tour.num_vertices
        start_arc = int(tour.first_arc[self.root])
        self._vertex_distance[self.root] = 0
        self._order = [int(a) for a in self._arc_sequence(start_arc)]
        current_tracker().add(max(len(self._order), 1), np.log2(max(n, 2)), phase="eulertour")
        for arc_index in self._order:
            u, v = tour.arcs[arc_index]
            if self._vertex_distance[v] < 0:
                self._vertex_distance[v] = self._vertex_distance[u] + 1
                self._parent[v] = u

    def _arc_sequence(self, start_arc: int) -> List[int]:
        if start_arc < 0:
            return []
        sequence = [start_arc]
        tour = self._tour
        arc = int(tour.successor[start_arc])
        while arc != start_arc:
            sequence.append(arc)
            arc = int(tour.successor[arc])
        return sequence

    @property
    def parent(self) -> np.ndarray:
        """Parent vertex of every vertex (-1 for the root and isolated vertices)."""
        return self._parent

    @property
    def vertex_distance(self) -> np.ndarray:
        """Unweighted hop distance from the root (the paper's "vertex distance")."""
        return self._vertex_distance

    @property
    def arc_order(self) -> List[int]:
        """Arcs in the order the tour visits them, starting at the root."""
        return list(self._order)


def vertex_distances_via_listrank(
    num_vertices: int, edges: Sequence[Tuple[int, int]], root: int
) -> np.ndarray:
    """Vertex distances from ``root`` computed the way the paper describes.

    Each downward arc gets the value +1 and each upward arc -1; list ranking
    over the Euler tour then yields, for every vertex, its unweighted distance
    from the root.  This function exists mainly to validate (in tests) that
    the list-ranking machinery reproduces the straightforward BFS distances
    used by :class:`RootedTour`.
    """
    tour = build_euler_tour(num_vertices, edges)
    rooted = tour.rooted_at(root)
    order = rooted.arc_order
    if not order:
        distances = np.zeros(num_vertices, dtype=np.int64)
        return distances

    # Successor along the tour order (a simple path, so list ranking applies).
    k = len(order)
    successor = np.arange(1, k + 1, dtype=np.int64)
    successor[-1] = -1
    # Value of an arc: +1 if it goes downward (child discovered), else -1.
    values = np.empty(k, dtype=np.float64)
    parent = rooted.parent
    for position, arc_index in enumerate(order):
        u, v = tour.arcs[arc_index]
        values[position] = 1.0 if parent[v] == u else -1.0
    suffix = list_rank(successor, values)
    # suffix[position] = sum of values from position..end. Distance of the
    # vertex entered by arc at ``position`` equals total_downs_before+1 ... we
    # recover it as (total sum over the whole tour) - (suffix after position).
    distances = np.zeros(num_vertices, dtype=np.int64)
    seen = np.zeros(num_vertices, dtype=bool)
    seen[root] = True
    total = suffix[0]
    for position, arc_index in enumerate(order):
        _, v = tour.arcs[arc_index]
        if not seen[v]:
            remaining_after = suffix[position + 1] if position + 1 < k else 0.0
            # Prefix sum up to and including this arc.
            prefix_inclusive = total - remaining_after
            distances[v] = int(round(prefix_inclusive))
            seen[v] = True
    return distances
