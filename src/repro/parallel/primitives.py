"""Classic parallel primitives (Section 2.2 of the paper).

Each primitive executes sequentially (NumPy-vectorized where it matters) but
charges its textbook work/depth cost to the ambient
:class:`~repro.parallel.scheduler.WorkDepthTracker`:

=============  =========  ==============
primitive      work       depth
=============  =========  ==============
prefix sum     O(n)       O(log n)
filter         O(n)       O(log n)
split          O(n)       O(log n)
WRITE_MIN      O(n)       O(1)
min/max index  O(n)       O(log n)
=============  =========  ==============
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.parallel.scheduler import current_tracker


def _log2(n: int) -> float:
    return math.log2(n) if n > 1 else 1.0


def prefix_sum(values, *, phase: str = "primitive"):
    """Exclusive prefix sum; returns ``(prefix_array, total)``.

    Matches the paper's definition: element ``i`` of the result is the sum of
    ``values[:i]`` and the overall total is returned separately.
    """
    array = np.asarray(values)
    n = array.shape[0]
    current_tracker().add(n, _log2(n), phase=phase)
    if n == 0:
        return np.zeros(0, dtype=array.dtype if array.size else np.int64), array.dtype.type(0)
    cumulative = np.cumsum(array)
    prefix = np.empty_like(cumulative)
    prefix[0] = 0
    prefix[1:] = cumulative[:-1]
    return prefix, cumulative[-1]


def segment_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``.

    The segmented-iota primitive: one ``np.repeat``-based pass in place of a
    Python loop over segments.  Shared by the flat kd-tree build and the
    dendrogram leaf-span scatters.
    """
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(offsets, counts)
    out += np.repeat(starts, counts)
    return out


def parallel_filter(items: Sequence, predicate: Callable, *, phase: str = "primitive") -> list:
    """Keep the items for which ``predicate`` is true, preserving order."""
    items = list(items)
    n = len(items)
    current_tracker().add(max(n, 1), _log2(n), phase=phase)
    return [item for item in items if predicate(item)]


def parallel_split(items: Sequence, predicate: Callable, *, phase: str = "primitive") -> Tuple[list, list]:
    """Partition items into ``(true_items, false_items)``, order-preserving.

    The paper's SPLIT moves "true" elements before "false" elements; returning
    the two groups separately is equivalent and more convenient for callers.
    """
    items = list(items)
    n = len(items)
    current_tracker().add(max(n, 1), _log2(n), phase=phase)
    true_items, false_items = [], []
    for item in items:
        if predicate(item):
            true_items.append(item)
        else:
            false_items.append(item)
    return true_items, false_items


class WriteMinCell:
    """A priority-concurrent-write cell: keeps the smallest value written.

    ``write(value, payload)`` corresponds to the paper's WRITE_MIN: on
    concurrent writes the smallest value survives.  Sequential execution makes
    the "concurrent" part trivial, but keeping the same interface lets the
    algorithms read exactly like their parallel pseudocode.
    """

    __slots__ = ("value", "payload")

    def __init__(self, initial: float = math.inf, payload=None) -> None:
        self.value = initial
        self.payload = payload

    def write(self, value: float, payload=None) -> bool:
        """Write ``value`` if smaller than the current value; report success."""
        current_tracker().add(1, 1)
        if value < self.value:
            self.value = value
            self.payload = payload
            return True
        return False


def write_min(cells, index: int, value: float) -> bool:
    """WRITE_MIN into ``cells[index]`` for an array-of-floats representation."""
    current_tracker().add(1, 1)
    if value < cells[index]:
        cells[index] = value
        return True
    return False


def parallel_min_index(values, *, phase: str = "primitive") -> int:
    """Index of the minimum value (O(n) work, O(log n) depth reduction)."""
    array = np.asarray(values)
    n = array.shape[0]
    if n == 0:
        raise ValueError("cannot reduce an empty sequence")
    current_tracker().add(n, _log2(n), phase=phase)
    return int(np.argmin(array))


def parallel_max_index(values, *, phase: str = "primitive") -> int:
    """Index of the maximum value (O(n) work, O(log n) depth reduction)."""
    array = np.asarray(values)
    n = array.shape[0]
    if n == 0:
        raise ValueError("cannot reduce an empty sequence")
    current_tracker().add(n, _log2(n), phase=phase)
    return int(np.argmax(array))
