"""Work–depth accounting and Brent-bound running-time simulation.

The paper proves bounds of the form "O(n^2) work and O(log^2 n) depth" and its
speedup figures (Figures 6, 7, 9, 10) show how running time falls as threads
are added on a 48-core machine.  In pure Python we cannot reproduce the
machine, but we *can* measure the work and depth our implementations actually
incur and convert them into the running time Brent's scheduling theorem
predicts::

    T_p  =  W / p  +  D

The tracker below is a tiny structured profiler for exactly that purpose:

* ``tracker.add(work, depth)`` charges cost inside the currently open scope;
* ``tracker.parallel(...)`` opens a scope whose children run conceptually in
  parallel: their work adds up, their depth contributes only its maximum;
* ``tracker.sequential(...)`` opens a scope whose children run one after the
  other: both work and depth add up.

Algorithms throughout the library charge costs at the same granularity the
paper uses in its analysis (per distance evaluation, per tree-node visit, per
Kruskal batch, per recursion level), so the resulting speedup curves reproduce
the *shape* of the paper's figures.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence


@dataclass
class _Scope:
    """One node of the work–depth composition tree."""

    kind: str  # "sequential" or "parallel"
    label: str
    work: float = 0.0
    depth: float = 0.0
    # For a parallel scope, children depths are folded via max; ``depth``
    # accumulates the running maximum.  For sequential scopes depths add.


class WorkDepthTracker:
    """Accumulates work and depth of an instrumented computation.

    The tracker is deliberately lightweight: it keeps only the running totals
    per open scope plus a per-phase summary, not the whole composition tree,
    so instrumentation overhead stays negligible even for millions of charge
    calls.
    """

    def __init__(self) -> None:
        self._stack: List[_Scope] = [_Scope("sequential", "<root>")]
        self._phase_work: Dict[str, float] = {}

    # -- charging -----------------------------------------------------------

    def add(self, work: float, depth: float = 1.0, phase: Optional[str] = None) -> None:
        """Charge ``work`` operations with critical-path length ``depth``."""
        scope = self._stack[-1]
        scope.work += work
        if scope.kind == "parallel":
            # Within a parallel scope each charged unit is an independent
            # child; only the maximum depth survives.
            scope.depth = max(scope.depth, depth)
        else:
            scope.depth += depth
        if phase is not None:
            self._phase_work[phase] = self._phase_work.get(phase, 0.0) + work

    # -- structured scopes ---------------------------------------------------

    @contextlib.contextmanager
    def parallel(self, label: str = "parallel") -> Iterator[None]:
        """Scope whose direct children execute in parallel."""
        scope = _Scope("parallel", label)
        self._stack.append(scope)
        try:
            yield
        finally:
            self._stack.pop()
            self._fold_child(scope)

    @contextlib.contextmanager
    def sequential(self, label: str = "sequential") -> Iterator[None]:
        """Scope whose direct children execute one after another."""
        scope = _Scope("sequential", label)
        self._stack.append(scope)
        try:
            yield
        finally:
            self._stack.pop()
            self._fold_child(scope)

    @contextlib.contextmanager
    def task(self, depth_hint: float = 1.0) -> Iterator[None]:
        """One task inside an enclosing parallel scope.

        The body of the task is sequential; its total depth is folded into the
        parent with ``max`` semantics.  ``depth_hint`` is the minimum depth the
        task contributes even if its body charges nothing.
        """
        scope = _Scope("sequential", "task", depth=0.0)
        self._stack.append(scope)
        try:
            yield
        finally:
            self._stack.pop()
            scope.depth = max(scope.depth, depth_hint)
            self._fold_child(scope)

    def _fold_child(self, child: _Scope) -> None:
        parent = self._stack[-1]
        parent.work += child.work
        if parent.kind == "parallel":
            parent.depth = max(parent.depth, child.depth)
        else:
            parent.depth += child.depth

    # -- results -------------------------------------------------------------

    @property
    def work(self) -> float:
        """Total work charged so far (at the root scope)."""
        return self._stack[0].work

    @property
    def depth(self) -> float:
        """Total depth charged so far (at the root scope)."""
        return self._stack[0].depth

    @property
    def phase_work(self) -> Dict[str, float]:
        """Work charged per named phase (copy)."""
        return dict(self._phase_work)

    def reset(self) -> None:
        self._stack = [_Scope("sequential", "<root>")]
        self._phase_work = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkDepthTracker(work={self.work:.3g}, depth={self.depth:.3g})"


# ---------------------------------------------------------------------------
# Ambient tracker
# ---------------------------------------------------------------------------

class _NullTracker(WorkDepthTracker):
    """Tracker that discards every charge; used when no tracker is active."""

    def add(self, work: float, depth: float = 1.0, phase: Optional[str] = None) -> None:
        return None


_NULL = _NullTracker()
_state = threading.local()


def current_tracker() -> WorkDepthTracker:
    """The tracker active in this thread (a no-op tracker if none is set)."""
    return getattr(_state, "tracker", _NULL)


@contextlib.contextmanager
def use_tracker(tracker: WorkDepthTracker) -> Iterator[WorkDepthTracker]:
    """Make ``tracker`` the ambient tracker for the duration of the block."""
    previous = getattr(_state, "tracker", _NULL)
    _state.tracker = tracker
    try:
        yield tracker
    finally:
        _state.tracker = previous


# ---------------------------------------------------------------------------
# Brent-bound simulation
# ---------------------------------------------------------------------------

def simulated_time(
    work: float,
    depth: float,
    processors: int,
    *,
    seconds_per_op: float = 1.0,
    hyperthread_factor: float = 1.0,
) -> float:
    """Running time predicted by Brent's bound ``W/p + D``.

    ``seconds_per_op`` converts abstract operations into seconds (calibrated
    from a measured single-thread run); ``hyperthread_factor`` < 1 models the
    partial benefit of hyper-threads ("48h" in the paper's figures), where the
    extra logical cores contribute only a fraction of a physical core each.
    """
    if processors < 1:
        raise ValueError("processors must be >= 1")
    effective = processors * hyperthread_factor if hyperthread_factor != 1.0 else processors
    return (work / effective + depth) * seconds_per_op


def simulated_speedups(
    work: float,
    depth: float,
    processor_counts: Sequence[int],
    *,
    hyperthread_last: bool = False,
) -> List[float]:
    """Self-relative speedups ``T_1 / T_p`` for a list of processor counts.

    If ``hyperthread_last`` is true, the final entry of ``processor_counts``
    is treated as a hyper-threaded configuration: it gets 1.35x the effective
    parallelism of its physical-core count, mirroring the modest extra gain
    the paper reports for "48h" over 48 physical cores.
    """
    t1 = simulated_time(work, depth, 1)
    speedups: List[float] = []
    for index, p in enumerate(processor_counts):
        if hyperthread_last and index == len(processor_counts) - 1:
            tp = simulated_time(work, depth, p, hyperthread_factor=1.35)
        else:
            tp = simulated_time(work, depth, p)
        speedups.append(t1 / tp)
    return speedups
