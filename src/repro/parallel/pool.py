"""The multicore execution engine: a persistent thread-based worker pool.

NumPy releases the GIL inside its C kernels (ufunc inner loops, BLAS matrix
products, sorts, searchsorted, fancy-index gathers), so the batched array
kernels this library is built from — BCCP size-class tensors, k-NN frontier
blocks, WSPD predicate masks, chunked merge sorts — get *real* wall-clock
multicore speedups from plain threads, the same route threaded scikit-learn
backends take.  This module provides the machinery every hot path shares:

* :class:`WorkerPool` — a persistent pool of daemon worker threads with a
  shared task queue.  Unlike a per-call ``ThreadPoolExecutor``, the workers
  are spawned once and reused for every batch of every round of every
  algorithm invocation, so the per-dispatch overhead is one queue push rather
  than a thread spawn.  Each worker owns a reusable :class:`Workspace` of
  scratch buffers (reachable via :func:`current_workspace`) so repeated
  kernel launches do not re-allocate their large temporaries.
* :func:`get_pool` — process-wide cache of pools keyed by worker count, which
  is what makes the pools persistent across calls; callers never construct a
  pool on a hot path.
* :func:`parallel_map` — order-preserving map over a task list, degrading to
  an inline loop for tiny inputs or ``num_threads <= 1``.
* :func:`shard_ranges` / :func:`map_shards` — fixed-boundary sharding of an
  index range.  Chunk boundaries depend only on the chunk size, never on the
  thread count, and results are combined in shard order, so a computation
  sharded this way is *deterministic*: byte-identical output at any
  ``num_threads`` (the contract the thread-determinism tests pin down).

Exceptions raised by a task propagate to the caller of ``map`` after the
whole batch has drained, so a failed round cannot leave orphan tasks writing
into shared output arrays.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

#: Default element-chunk size used by the frontier/bound sharding call sites.
#: Large enough that each task amortizes its NumPy dispatch overhead, small
#: enough that a round's frontier splits into several tasks per worker.
DEFAULT_CHUNK = 32_768

_STOP = object()


#: Requests above this many bytes are served as one-shot allocations instead
#: of being cached: workspaces live as long as their worker thread (the whole
#: process for pooled workers), so caching a pathological one-off tensor
#: would pin its peak size in every worker forever.  64 MB is exactly the
#: steady-state BCCP class-chunk tensor, so the common case still reuses.
_MAX_CACHED_BYTES = 64 << 20


class Workspace:
    """Reusable per-thread scratch buffers for the batched kernels.

    ``take(key, shape, dtype)`` returns an array of the requested shape backed
    by a cached buffer that only grows (geometrically, capped at
    ``_MAX_CACHED_BYTES``), so a worker that evaluates thousands of similar
    BCCP size-class chunks allocates its distance tensor once instead of once
    per chunk.  Buffers are keyed by ``(key, dtype)``; the returned view
    aliases the cache, so a kernel must finish with one buffer before taking
    it again under the same key.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, np.dtype], np.ndarray] = {}

    def take(self, key: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        dtype = np.dtype(dtype)
        needed = int(np.prod(shape)) if shape else 1
        if needed * dtype.itemsize > _MAX_CACHED_BYTES:
            # One-shot oversized request: freed with the caller, never cached.
            return np.empty(needed, dtype=dtype).reshape(shape)
        buffer = self._buffers.get((key, dtype))
        if buffer is None or buffer.size < needed:
            capacity = needed if buffer is None else max(needed, 2 * buffer.size)
            capacity = min(capacity, _MAX_CACHED_BYTES // dtype.itemsize)
            buffer = np.empty(max(capacity, needed), dtype=dtype)
            self._buffers[(key, dtype)] = buffer
        return buffer[:needed].reshape(shape)

    def clear(self) -> None:
        self._buffers.clear()


_thread_state = threading.local()


def current_workspace() -> Workspace:
    """The calling thread's reusable workspace (created lazily).

    Pool workers each get their own; the main thread gets one too, so kernels
    can use workspace buffers identically on the inline (single-thread) path.
    """
    workspace = getattr(_thread_state, "workspace", None)
    if workspace is None:
        workspace = Workspace()
        _thread_state.workspace = workspace
    return workspace


class _Job:
    """One ``map`` invocation: its tasks, results and completion latch."""

    __slots__ = ("function", "results", "pending", "error", "condition")

    def __init__(self, function: Callable, num_tasks: int) -> None:
        self.function = function
        self.results: List = [None] * num_tasks
        self.pending = num_tasks
        self.error: Optional[BaseException] = None
        self.condition = threading.Condition()

    def run_task(self, index: int, item) -> None:
        try:
            result = self.function(item)
            error = None
        except BaseException as exc:  # propagated to the submitting thread
            result, error = None, exc
        with self.condition:
            self.results[index] = result
            if error is not None and self.error is None:
                self.error = error
            self.pending -= 1
            if self.pending == 0:
                self.condition.notify_all()

    def wait(self) -> List:
        with self.condition:
            while self.pending:
                self.condition.wait()
        if self.error is not None:
            raise self.error
        return self.results


class WorkerPool:
    """A persistent pool of ``num_threads`` daemon worker threads.

    Workers are spawned lazily on the first threaded ``map`` and then live
    until :meth:`shutdown`; every subsequent ``map`` reuses them.  Tasks are
    dispatched through one shared queue; results are returned in input order.
    The pool is safe to share between sequential algorithm phases (that is the
    point), but a single ``map`` call's tasks must not themselves submit to
    the same pool (no nested parallelism — none of the kernels need it).
    """

    def __init__(self, num_threads: int, *, name: str = "repro-worker") -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self._name = name
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def workers_started(self) -> int:
        """Number of worker threads spawned so far (0 until the first map)."""
        return len(self._threads)

    def _ensure_workers_locked(self) -> None:
        while len(self._threads) < self.num_threads:
            thread = threading.Thread(
                target=self._worker,
                name=f"{self._name}-{len(self._threads)}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _worker(self) -> None:
        # Each worker owns a workspace for the whole pool lifetime, so kernel
        # scratch buffers persist across rounds and algorithm invocations.
        _thread_state.workspace = Workspace()
        while True:
            task = self._tasks.get()
            if task is _STOP:
                return
            job, index, item = task
            job.run_task(index, item)

    def shutdown(self) -> None:
        """Stop the workers and reject further maps.  Idempotent.

        The close flag and the stop sentinels are published under the same
        lock that :meth:`map` enqueues under, so a concurrent map either
        fully enqueues before the sentinels (its tasks drain first) or
        observes the closed pool and raises — tasks can never land behind
        the sentinels and hang their job.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
            for _ in threads:
                self._tasks.put(_STOP)
        for thread in threads:
            thread.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- execution -----------------------------------------------------------

    def map(self, function: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``function`` to every item; results in input order.

        Degrades to an inline loop when the pool has one worker or there is
        only one item.  The first exception raised by any task is re-raised
        here after all tasks of the batch have finished.
        """
        items = list(items)
        if not items:
            return []
        if self.num_threads == 1 or len(items) == 1:
            if self._closed:
                raise RuntimeError("WorkerPool has been shut down")
            return [function(item) for item in items]
        job = _Job(function, len(items))
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool has been shut down")
            self._ensure_workers_locked()
            for index, item in enumerate(items):
                self._tasks.put((job, index, item))
        return job.wait()


# ---------------------------------------------------------------------------
# Process-wide persistent pools
# ---------------------------------------------------------------------------

_pools: Dict[int, WorkerPool] = {}
_pools_lock = threading.Lock()


def resolve_num_threads(num_threads: Optional[int]) -> int:
    """Normalize a user-facing ``num_threads`` knob: None/0/negative -> 1."""
    if num_threads is None or num_threads <= 1:
        return 1
    return int(num_threads)


def get_pool(num_threads: int) -> WorkerPool:
    """The shared persistent pool with exactly ``num_threads`` workers.

    Pools are cached per worker count for the life of the process, so every
    stage of every algorithm run with the same ``num_threads`` reuses the same
    threads (and their workspaces).  Worker counts are kept exact — rather
    than handing a 4-thread request 8 cached workers — so measured scaling
    curves reflect the requested parallelism.
    """
    num_threads = resolve_num_threads(num_threads)
    with _pools_lock:
        pool = _pools.get(num_threads)
        if pool is None or pool._closed:
            pool = WorkerPool(num_threads)
            _pools[num_threads] = pool
        return pool


def shutdown_pools() -> None:
    """Shut down and drop every cached pool (tests and benchmarks use this)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown()


# ---------------------------------------------------------------------------
# Mapping helpers
# ---------------------------------------------------------------------------

def parallel_map(
    function: Callable[[T], R],
    items: Iterable[T],
    *,
    num_threads: Optional[int] = None,
    chunk_threshold: int = 2,
) -> List[R]:
    """Apply ``function`` to every item, optionally on the shared worker pool.

    With ``num_threads`` of ``None``, ``0`` or ``1`` — or with fewer items
    than ``chunk_threshold`` — this degrades to a plain list comprehension so
    there is no pool overhead on tiny inputs.  Threaded calls dispatch to the
    persistent pool from :func:`get_pool`; results keep input order either
    way.
    """
    items = list(items)
    if not items:
        return []
    if resolve_num_threads(num_threads) == 1 or len(items) < chunk_threshold:
        return [function(item) for item in items]
    return get_pool(num_threads).map(function, items)


def shard_ranges(n: int, chunk_size: Optional[int] = None) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into fixed ``[lo, hi)`` spans of ``chunk_size``.

    Boundaries depend only on ``chunk_size`` (``None`` reads the module's
    ``DEFAULT_CHUNK`` at call time, so tests can lower it) — never on the
    thread count — so a kernel sharded over these spans produces
    byte-identical results at any ``num_threads`` (deterministic sharding +
    stable, shard-ordered reduction).
    """
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


def map_shards(
    function: Callable[[int, int], R],
    n: int,
    *,
    num_threads: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[R]:
    """Run ``function(lo, hi)`` over the fixed shards of ``range(n)``.

    Results come back in shard order, so reductions over them are stable and
    independent of scheduling.  Single-shard (or single-thread) calls run
    inline over the *same* spans, keeping the two paths bit-for-bit equal.
    """
    spans = shard_ranges(n, chunk_size)
    if not spans:
        return []
    if resolve_num_threads(num_threads) == 1 or len(spans) == 1:
        return [function(lo, hi) for lo, hi in spans]
    return get_pool(num_threads).map(lambda span: function(span[0], span[1]), spans)
