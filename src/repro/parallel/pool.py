"""Real (thread-based) coarse-grained parallelism helpers.

NumPy releases the GIL inside its C kernels, so embarrassingly parallel
batches of NumPy-heavy tasks (BCCP evaluations, k-NN chunks) can get a real —
if modest — speedup from a thread pool even in pure Python.  The benchmark
harness uses :func:`parallel_map` for those stages when the caller requests
``num_threads > 1``; everything else in the library is agnostic to whether it
runs inside a pool worker.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    function: Callable[[T], R],
    items: Sequence[T],
    *,
    num_threads: Optional[int] = None,
    chunk_threshold: int = 2,
) -> List[R]:
    """Apply ``function`` to every item, optionally using a thread pool.

    With ``num_threads`` of ``None``, ``0`` or ``1`` — or with fewer items
    than ``chunk_threshold`` — this degrades to a plain list comprehension so
    there is no pool overhead on tiny inputs.
    """
    items = list(items)
    if not items:
        return []
    if not num_threads or num_threads <= 1 or len(items) < chunk_threshold:
        return [function(item) for item in items]
    workers = min(num_threads, len(items))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(function, items))
