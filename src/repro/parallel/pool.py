"""The multicore execution engine: a persistent thread-based worker pool.

NumPy releases the GIL inside its C kernels (ufunc inner loops, BLAS matrix
products, sorts, searchsorted, fancy-index gathers), so the batched array
kernels this library is built from — BCCP size-class tensors, k-NN frontier
blocks, WSPD predicate masks, chunked merge sorts — get *real* wall-clock
multicore speedups from plain threads, the same route threaded scikit-learn
backends take.  This module provides the machinery every hot path shares:

* :class:`WorkerPool` — a persistent pool of daemon worker threads with a
  shared task queue.  Unlike a per-call ``ThreadPoolExecutor``, the workers
  are spawned once and reused for every batch of every round of every
  algorithm invocation, so the per-dispatch overhead is one queue push rather
  than a thread spawn.  Each worker owns a reusable :class:`Workspace` of
  scratch buffers (reachable via :func:`current_workspace`) so repeated
  kernel launches do not re-allocate their large temporaries.
* :func:`get_pool` — process-wide cache of pools keyed by worker count, which
  is what makes the pools persistent across calls; callers never construct a
  pool on a hot path.  A cached pool that went unhealthy (dead workers, a
  poisoning timeout) is rebuilt instead of reused.
* :func:`parallel_map` — order-preserving map over a task list, degrading to
  an inline loop for tiny inputs or ``num_threads <= 1``.
* :func:`shard_ranges` / :func:`map_shards` — fixed-boundary sharding of an
  index range.  Chunk boundaries depend only on the chunk size, never on the
  thread count, and results are combined in shard order, so a computation
  sharded this way is *deterministic*: byte-identical output at any
  ``num_threads`` (the contract the thread-determinism tests pin down).

Exceptions raised by a task propagate to the caller of ``map`` after the
whole batch has drained, so a failed round cannot leave orphan tasks writing
into shared output arrays.

**Fault tolerance** (the hardening contract the chaos suite pins down): a
``map`` never hangs on a dead worker.  Tasks are *claimed* before execution;
the waiting thread polls worker health and, when a worker dies mid-batch,
respawns it and re-enqueues the dead worker's claimed-but-unfinished tasks —
sharding is deterministic, so a re-executed task writes exactly the bytes
the first execution would have.  After :attr:`PoolPolicy.max_retries` death
events the pool escalates to a clean *serial fallback* (the waiting thread
claims and runs every remaining task inline, with a
:class:`WorkerRecoveryWarning`); if even that is killed, or a
``task_timeout`` passes with no progress, the pool raises
:class:`~repro.core.errors.WorkerFailedError` and marks itself unhealthy so
:func:`get_pool` rebuilds it.  The retry/timeout knobs flow either per call
or through the ambient :func:`use_pool_policy` scope that ``emst()`` /
``hdbscan()`` open from their ``max_retries=`` / ``task_timeout=``
parameters.
"""

from __future__ import annotations

import atexit
import queue
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.core.errors import InvalidParameterError, WorkerFailedError
from repro.resilience.faults import _InjectedWorkerDeath, fault_check

T = TypeVar("T")
R = TypeVar("R")

#: Default element-chunk size used by the frontier/bound sharding call sites.
#: Large enough that each task amortizes its NumPy dispatch overhead, small
#: enough that a round's frontier splits into several tasks per worker.
DEFAULT_CHUNK = 32_768

_STOP = object()

#: How often a waiting ``map`` wakes to check worker health.  Completions
#: notify the waiter immediately; this poll only bounds how long a worker
#: death can go undetected.
_HEALTH_POLL_SECONDS = 0.05

# Task states inside a job.
_QUEUED, _CLAIMED, _DONE = 0, 1, 2


class WorkerRecoveryWarning(UserWarning):
    """Warned when the pool degrades (serial fallback after worker deaths)."""


#: Requests above this many bytes are served as one-shot allocations instead
#: of being cached: workspaces live as long as their worker thread (the whole
#: process for pooled workers), so caching a pathological one-off tensor
#: would pin its peak size in every worker forever.  64 MB is exactly the
#: steady-state BCCP class-chunk tensor, so the common case still reuses.
_MAX_CACHED_BYTES = 64 << 20


class Workspace:
    """Reusable per-thread scratch buffers for the batched kernels.

    ``take(key, shape, dtype)`` returns an array of the requested shape backed
    by a cached buffer that only grows (geometrically, capped at
    ``_MAX_CACHED_BYTES``), so a worker that evaluates thousands of similar
    BCCP size-class chunks allocates its distance tensor once instead of once
    per chunk.  Buffers are keyed by ``(key, dtype)``; the returned view
    aliases the cache, so a kernel must finish with one buffer before taking
    it again under the same key.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, np.dtype], np.ndarray] = {}

    def take(self, key: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        dtype = np.dtype(dtype)
        needed = int(np.prod(shape)) if shape else 1
        if needed * dtype.itemsize > _MAX_CACHED_BYTES:
            # One-shot oversized request: freed with the caller, never cached.
            return np.empty(needed, dtype=dtype).reshape(shape)
        buffer = self._buffers.get((key, dtype))
        if buffer is None or buffer.size < needed:
            capacity = needed if buffer is None else max(needed, 2 * buffer.size)
            capacity = min(capacity, _MAX_CACHED_BYTES // dtype.itemsize)
            buffer = np.empty(max(capacity, needed), dtype=dtype)
            self._buffers[(key, dtype)] = buffer
        return buffer[:needed].reshape(shape)

    def clear(self) -> None:
        self._buffers.clear()


_thread_state = threading.local()


def current_workspace() -> Workspace:
    """The calling thread's reusable workspace (created lazily).

    Pool workers each get their own; the main thread gets one too, so kernels
    can use workspace buffers identically on the inline (single-thread) path.
    """
    workspace = getattr(_thread_state, "workspace", None)
    if workspace is None:
        workspace = Workspace()
        _thread_state.workspace = workspace
    return workspace


# ---------------------------------------------------------------------------
# Retry / timeout policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PoolPolicy:
    """Ambient fault-tolerance knobs every threaded ``map`` consults.

    ``max_retries`` bounds how many worker-death events one batch absorbs by
    respawn-and-re-execute before escalating to the serial fallback;
    ``task_timeout`` (seconds) bounds how long a batch may go with *no* task
    completing before the pool gives up with ``WorkerFailedError`` (``None``
    waits forever — the historical behavior — but never hangs on a death,
    which is detected by liveness, not time).
    """

    max_retries: int = 2
    task_timeout: Optional[float] = None


_default_policy = PoolPolicy()


def current_pool_policy() -> PoolPolicy:
    """The ambient policy (see :func:`use_pool_policy`)."""
    return _default_policy


def _validated_policy(
    base: PoolPolicy,
    max_retries: Optional[int],
    task_timeout: Optional[float],
) -> PoolPolicy:
    updated = base
    if max_retries is not None:
        if int(max_retries) < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {max_retries!r}"
            )
        updated = replace(updated, max_retries=int(max_retries))
    if task_timeout is not None:
        if not float(task_timeout) > 0:
            raise InvalidParameterError(
                f"task_timeout must be a positive number of seconds, "
                f"got {task_timeout!r}"
            )
        updated = replace(updated, task_timeout=float(task_timeout))
    return updated


@contextmanager
def use_pool_policy(
    max_retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> Iterator[PoolPolicy]:
    """Scope the ambient retry/timeout policy (``None`` keeps the current
    value of a knob).  The public entry points open this scope from their
    ``max_retries=`` / ``task_timeout=`` parameters so every pooled stage of
    a pipeline inherits one policy without per-call-site plumbing."""
    global _default_policy
    previous = _default_policy
    _default_policy = _validated_policy(previous, max_retries, task_timeout)
    try:
        yield _default_policy
    finally:
        _default_policy = previous


class _Job:
    """One ``map`` invocation: its tasks, results and completion latch.

    Every task moves ``queued -> claimed -> done``; claims record the
    claiming thread so the waiter can detect tasks orphaned by a dead worker
    and re-issue exactly those.  ``claim`` is the double-execution guard: a
    re-enqueued task and its stale queue entry can never both run.
    """

    __slots__ = (
        "function",
        "items",
        "results",
        "state",
        "claimant",
        "pending",
        "error",
        "condition",
        "last_progress",
    )

    def __init__(self, function: Callable, items: List) -> None:
        self.function = function
        self.items = items
        self.results: List = [None] * len(items)
        self.state = [_QUEUED] * len(items)
        self.claimant: List[Optional[threading.Thread]] = [None] * len(items)
        self.pending = len(items)
        self.error: Optional[BaseException] = None
        self.condition = threading.Condition()
        self.last_progress = time.monotonic()

    def claim(self, index: int, thread: Optional[threading.Thread] = None) -> bool:
        """Claim a queued task; False if it is already claimed or done."""
        with self.condition:
            if self.state[index] != _QUEUED:
                return False
            self.state[index] = _CLAIMED
            self.claimant[index] = thread or threading.current_thread()
            return True

    def steal(self, index: int) -> bool:
        """Claim a task even if it is held by a *dead* thread (rescue path)."""
        with self.condition:
            if self.state[index] == _DONE:
                return False
            holder = self.claimant[index]
            if self.state[index] == _CLAIMED and holder is not None and holder.is_alive():
                return False
            self.state[index] = _CLAIMED
            self.claimant[index] = threading.current_thread()
            return True

    def requeue_abandoned(self) -> List[int]:
        """Reset tasks claimed by dead threads to queued; return their indices."""
        orphans = []
        with self.condition:
            for index, state in enumerate(self.state):
                if state != _CLAIMED:
                    continue
                holder = self.claimant[index]
                if holder is not None and not holder.is_alive():
                    self.state[index] = _QUEUED
                    self.claimant[index] = None
                    orphans.append(index)
        return orphans

    def run_task(self, index: int) -> None:
        try:
            result = self.function(self.items[index])
            error = None
        except BaseException as exc:  # propagated to the submitting thread
            result, error = None, exc
        with self.condition:
            self.results[index] = result
            self.state[index] = _DONE
            if error is not None and self.error is None:
                self.error = error
            self.pending -= 1
            self.last_progress = time.monotonic()
            if self.pending == 0:
                self.condition.notify_all()


class WorkerPool:
    """A persistent pool of ``num_threads`` daemon worker threads.

    Workers are spawned lazily on the first threaded ``map`` and then live
    until :meth:`shutdown`; every subsequent ``map`` reuses them.  Tasks are
    dispatched through one shared queue; results are returned in input order.
    The pool is safe to share between sequential algorithm phases (that is the
    point), but a single ``map`` call's tasks must not themselves submit to
    the same pool (no nested parallelism — none of the kernels need it).
    """

    def __init__(self, num_threads: int, *, name: str = "repro-worker") -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self._name = name
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads: List[threading.Thread] = []
        self._spawned = 0
        self._lock = threading.Lock()
        self._closed = False
        self._poisoned = False
        #: Worker-death events absorbed over the pool's lifetime (observable
        #: for tests and the chaos harness).
        self.deaths_detected = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def workers_started(self) -> int:
        """Number of live worker threads (0 until the first map)."""
        return len(self._threads)

    @property
    def healthy(self) -> bool:
        """Whether the pool can be reused: open, not poisoned by a timeout,
        and with no dead worker awaiting replacement."""
        if self._closed or self._poisoned:
            return False
        return all(thread.is_alive() for thread in self._threads)

    def _ensure_workers_locked(self) -> None:
        # Replace dead workers first (their threads can never run again),
        # then top up to the requested width.
        self._threads = [thread for thread in self._threads if thread.is_alive()]
        while len(self._threads) < self.num_threads:
            thread = threading.Thread(
                target=self._worker,
                name=f"{self._name}-{self._spawned}",
                daemon=True,
            )
            self._spawned += 1
            thread.start()
            self._threads.append(thread)

    def _worker(self) -> None:
        # Each worker owns a workspace for the whole pool lifetime, so kernel
        # scratch buffers persist across rounds and algorithm invocations.
        _thread_state.workspace = Workspace()
        while True:
            task = self._tasks.get()
            if task is _STOP:
                return
            job, index = task
            if not job.claim(index):
                continue  # stale entry for a re-executed or finished task
            if fault_check("kill-worker") is not None:
                # Injected worker death: exit with the task claimed but
                # unfinished, exactly the state a crashed thread leaves.
                return
            job.run_task(index)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers and reject further maps.  Idempotent.

        The close flag and the stop sentinels are published under the same
        lock that :meth:`map` enqueues under, so a concurrent map either
        fully enqueues before the sentinels (its tasks drain first) or
        observes the closed pool and raises — tasks can never land behind
        the sentinels and hang their job.  ``wait=False`` skips joining the
        workers (used for unhealthy pools, whose workers may be stuck; they
        are daemons, so they cannot outlive the process).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
            for _ in threads:
                self._tasks.put(_STOP)
        if wait:
            for thread in threads:
                thread.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- execution -----------------------------------------------------------

    def map(
        self,
        function: Callable[[T], R],
        items: Sequence[T],
        *,
        max_retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
    ) -> List[R]:
        """Apply ``function`` to every item; results in input order.

        Degrades to an inline loop when the pool has one worker or there is
        only one item.  The first exception raised by any task is re-raised
        here after all tasks of the batch have finished.  Worker deaths are
        absorbed per the retry policy (see the module docstring); the knobs
        default to the ambient :func:`use_pool_policy` scope.
        """
        policy = _validated_policy(_default_policy, max_retries, task_timeout)
        items = list(items)
        if not items:
            return []
        if self.num_threads == 1 or len(items) == 1:
            if self._closed:
                raise RuntimeError("WorkerPool has been shut down")
            return [function(item) for item in items]
        job = _Job(function, items)
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool has been shut down")
            self._ensure_workers_locked()
            for index in range(len(items)):
                self._tasks.put((job, index))
        return self._await_resilient(job, policy)

    # -- fault-tolerant completion --------------------------------------------

    def _await_resilient(self, job: _Job, policy: PoolPolicy) -> List:
        """Wait for a job, surviving worker deaths and bounding stalls.

        Invariants: a task runs at most once (claims), every death event is
        answered by respawn + re-enqueue of exactly the orphaned tasks, and
        the loop always exits — via completion, serial fallback, or
        ``WorkerFailedError`` — never by waiting on a thread that cannot
        answer.
        """
        deaths = 0
        while True:
            with job.condition:
                if job.pending == 0:
                    break
                job.condition.wait(timeout=_HEALTH_POLL_SECONDS)
                if job.pending == 0:
                    break
                stalled = (
                    policy.task_timeout is not None
                    and time.monotonic() - job.last_progress > policy.task_timeout
                )
            with self._lock:
                dead = [t for t in self._threads if not t.is_alive()]
            orphaned = job.requeue_abandoned()
            if dead or orphaned:
                deaths += max(len(dead), 1)
                self.deaths_detected += max(len(dead), 1)
                if deaths > policy.max_retries:
                    warnings.warn(
                        f"worker pool lost workers {deaths} times "
                        f"(max_retries={policy.max_retries}); finishing the "
                        "batch serially on the submitting thread",
                        WorkerRecoveryWarning,
                        stacklevel=3,
                    )
                    self._drain_serially(job)
                    break
                with self._lock:
                    if not self._closed:
                        self._ensure_workers_locked()
                for index in orphaned:
                    # requeue_abandoned reset them to queued; give every one a
                    # fresh queue entry (stale entries are claim-guarded).
                    self._tasks.put((job, index))
                continue
            if stalled:
                self._poisoned = True
                raise WorkerFailedError(
                    f"no pool task completed within task_timeout="
                    f"{policy.task_timeout}s ({job.pending} of "
                    f"{len(job.items)} tasks pending); the pool is marked "
                    "unhealthy and will be rebuilt on next use"
                )
        if job.error is not None:
            raise job.error
        return job.results

    def _drain_serially(self, job: _Job) -> None:
        """Serial fallback: claim and run every remaining task inline.

        Tasks still claimed by *live* workers are left to finish there; the
        loop re-scans until the job drains, stealing from any worker that
        dies in the meantime, so it can never deadlock.  An injected death
        with ``scope=any`` kills this last resort too — that is the
        exhausted-retries contract, surfaced as ``WorkerFailedError``.
        """
        while True:
            progress = False
            for index in range(len(job.items)):
                if not job.steal(index):
                    continue
                progress = True
                try:
                    if fault_check("kill-worker", serial=True) is not None:
                        raise _InjectedWorkerDeath()
                    job.run_task(index)
                except _InjectedWorkerDeath:
                    self._poisoned = True
                    raise WorkerFailedError(
                        "worker retries exhausted: the serial fallback was "
                        "killed as well; the pool is marked unhealthy and "
                        "will be rebuilt on next use"
                    ) from None
            with job.condition:
                if job.pending == 0:
                    return
                if not progress:
                    job.condition.wait(timeout=_HEALTH_POLL_SECONDS)


# ---------------------------------------------------------------------------
# Process-wide persistent pools
# ---------------------------------------------------------------------------

_pools: Dict[int, WorkerPool] = {}
_pools_lock = threading.Lock()


def resolve_num_threads(num_threads: Optional[int]) -> int:
    """Normalize a user-facing ``num_threads`` knob: None/0/negative -> 1."""
    if num_threads is None or num_threads <= 1:
        return 1
    return int(num_threads)


def get_pool(num_threads: int) -> WorkerPool:
    """The shared persistent pool with exactly ``num_threads`` workers.

    Pools are cached per worker count for the life of the process, so every
    stage of every algorithm run with the same ``num_threads`` reuses the same
    threads (and their workspaces).  Worker counts are kept exact — rather
    than handing a 4-thread request 8 cached workers — so measured scaling
    curves reflect the requested parallelism.  A cached pool that went
    unhealthy (shut down, poisoned by a timeout, or holding dead workers) is
    replaced with a fresh pool instead of reused — a poisoned cache entry
    must never wedge every later caller.
    """
    num_threads = resolve_num_threads(num_threads)
    with _pools_lock:
        pool = _pools.get(num_threads)
        if pool is None or not pool.healthy:
            if pool is not None:
                # Abandon, don't join: an unhealthy pool may hold stuck
                # workers, and they are daemons anyway.
                pool.shutdown(wait=False)
            pool = WorkerPool(num_threads)
            _pools[num_threads] = pool
        return pool


def shutdown_pools() -> None:
    """Shut down and drop every cached pool (tests and benchmarks use this;
    also registered via ``atexit`` so daemon workers and their workspace
    buffers are drained at interpreter exit)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        # Healthy pools drain cleanly; unhealthy ones are abandoned rather
        # than joined, so exit can never hang on a stuck worker.
        pool.shutdown(wait=pool.healthy)


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Mapping helpers
# ---------------------------------------------------------------------------

def parallel_map(
    function: Callable[[T], R],
    items: Iterable[T],
    *,
    num_threads: Optional[int] = None,
    chunk_threshold: int = 2,
) -> List[R]:
    """Apply ``function`` to every item, optionally on the shared worker pool.

    With ``num_threads`` of ``None``, ``0`` or ``1`` — or with fewer items
    than ``chunk_threshold`` — this degrades to a plain list comprehension so
    there is no pool overhead on tiny inputs.  Threaded calls dispatch to the
    persistent pool from :func:`get_pool`; results keep input order either
    way.
    """
    items = list(items)
    if not items:
        return []
    if resolve_num_threads(num_threads) == 1 or len(items) < chunk_threshold:
        return [function(item) for item in items]
    return get_pool(num_threads).map(function, items)


def shard_ranges(n: int, chunk_size: Optional[int] = None) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into fixed ``[lo, hi)`` spans of ``chunk_size``.

    Boundaries depend only on ``chunk_size`` (``None`` reads the module's
    ``DEFAULT_CHUNK`` at call time, so tests can lower it) — never on the
    thread count — so a kernel sharded over these spans produces
    byte-identical results at any ``num_threads`` (deterministic sharding +
    stable, shard-ordered reduction).
    """
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


def map_shards(
    function: Callable[[int, int], R],
    n: int,
    *,
    num_threads: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[R]:
    """Run ``function(lo, hi)`` over the fixed shards of ``range(n)``.

    Results come back in shard order, so reductions over them are stable and
    independent of scheduling.  Single-shard (or single-thread) calls run
    inline over the *same* spans, keeping the two paths bit-for-bit equal.
    """
    spans = shard_ranges(n, chunk_size)
    if not spans:
        return []
    if resolve_num_threads(num_threads) == 1 or len(spans) == 1:
        return [function(lo, hi) for lo, hi in spans]
    return get_pool(num_threads).map(lambda span: function(span[0], span[1]), spans)
