"""List ranking.

Given a linked list (successor pointers) with a value on every node, list
ranking returns, for every node, the sum of values from that node to the end
of the list.  The paper uses list ranking to root Euler tours, compute vertex
distances from the starting vertex, and assign subproblem labels during
dendrogram construction.

The implementation here is the standard pointer-jumping formulation executed
sequentially on NumPy arrays: each of the O(log n) jumping rounds doubles the
distance every pointer spans, which is also exactly the cost charged to the
work–depth tracker (O(n log n) work in this simple variant; the
work-optimal variant the paper cites has the same depth).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.scheduler import current_tracker


def list_rank(successor, values, *, phase: str = "listrank") -> np.ndarray:
    """Suffix sums along a successor-linked list.

    Parameters
    ----------
    successor:
        ``successor[i]`` is the next node after ``i``, or ``-1`` (or ``i``
        itself) for the terminal node.
    values:
        Value attached to each node.

    Returns
    -------
    ranks:
        ``ranks[i]`` is the sum of ``values`` over the sublist starting at
        ``i`` and running to the end (inclusive of ``i``).
    """
    succ = np.asarray(successor, dtype=np.int64).copy()
    vals = np.asarray(values, dtype=np.float64).copy()
    n = succ.shape[0]
    if vals.shape[0] != n:
        raise ValueError("successor and values must have the same length")
    if n == 0:
        return vals

    # Normalize terminators: self-loops become the -1 sentinel.
    indices = np.arange(n, dtype=np.int64)
    succ[succ == indices] = -1

    rounds = 0
    # Wyllie's pointer jumping: after round k every live pointer spans 2^k
    # original hops, so O(log n) synchronous rounds finish the suffix sums.
    while True:
        advancing = succ >= 0
        if not np.any(advancing):
            break
        rounds += 1
        current_tracker().add(n, 1.0, phase=phase)
        safe_succ = np.where(advancing, succ, 0)
        vals = vals + np.where(advancing, vals[safe_succ], 0.0)
        succ = np.where(advancing, succ[safe_succ], succ)
        if rounds > int(np.ceil(np.log2(n + 1))) + 2:
            # Guard against malformed (cyclic) input lists.
            raise ValueError("successor pointers do not form an acyclic list")
    current_tracker().add(n, 1.0, phase=phase)
    return vals
