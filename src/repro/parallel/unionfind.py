"""Union-find (disjoint set union) with path compression and union by rank.

Kruskal's algorithm, the GFK/MemoGFK filters, and the sequential dendrogram
construction all share a union-find structure; the GFK variants additionally
share one instance *across* Kruskal invocations (Algorithm 2, line 1), which
is why ``UnionFind`` is an explicit object rather than a function-local array.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.scheduler import current_tracker


class UnionFind:
    """Disjoint-set forest over the integers ``0 .. n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        self._num_components = n

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self._parent.shape[0])

    @property
    def num_components(self) -> int:
        """Current number of disjoint components."""
        return self._num_components

    def find(self, x: int) -> int:
        """Representative of the component containing ``x`` (with compression)."""
        # Depth is charged by the calling algorithm (finds from different
        # tasks run concurrently in the parallel algorithms being modelled).
        current_tracker().add(1, 0)
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every node on the path directly at the root.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def connected(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are currently in the same component."""
        return self.find(x) == self.find(y)

    def union(self, x: int, y: int) -> bool:
        """Merge the components of ``x`` and ``y``; return False if already merged."""
        root_x = self.find(x)
        root_y = self.find(y)
        if root_x == root_y:
            return False
        rank = self._rank
        if rank[root_x] < rank[root_y]:
            root_x, root_y = root_y, root_x
        self._parent[root_y] = root_x
        if rank[root_x] == rank[root_y]:
            rank[root_x] += 1
        self._num_components -= 1
        return True

    def union_many(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Union parallel arrays of pairs in order; return the accepted mask.

        Semantically identical to calling :meth:`union` per pair (the sweep is
        inherently sequential — each union can change the outcome of the
        next), but the loop runs over plain Python ints from the input arrays
        with inlined find/path-halving, and the work is charged to the tracker
        once for the whole batch instead of per find.  This is the union sweep
        of the vectorized Kruskal batches and the array-backed dendrogram
        constructions.
        """
        m = int(len(u))
        accepted = np.zeros(m, dtype=bool)
        if m == 0:
            return accepted
        current_tracker().add(2.0 * m, 1.0)
        parent = self._parent
        rank = self._rank
        merged = 0
        u_list = np.asarray(u, dtype=np.int64).tolist()
        v_list = np.asarray(v, dtype=np.int64).tolist()
        for index in range(m):
            x = u_list[index]
            while True:
                p = parent[x]
                if p == x:
                    break
                gp = parent[p]
                parent[x] = gp  # path halving
                x = gp
            y = v_list[index]
            while True:
                p = parent[y]
                if p == y:
                    break
                gp = parent[p]
                parent[y] = gp
                y = gp
            if x == y:
                continue
            if rank[x] < rank[y]:
                x, y = y, x
            parent[y] = x
            if rank[x] == rank[y]:
                rank[x] += 1
            accepted[index] = True
            merged += 1
        self._num_components -= merged
        return accepted

    # -- checkpoint state ------------------------------------------------------

    def state_arrays(self) -> "dict[str, np.ndarray]":
        """Copies of the exact internal state for phase checkpoints.

        The parent array is captured as-is (compressed or not): restoring it
        reproduces the forest *bit-for-bit*, which the byte-identical resume
        contract requires — normalizing to roots here would change the
        compression state subsequent finds observe and with it the charged
        work counters, even though the answers would agree.
        """
        return {
            "parent": self._parent.copy(),
            "rank": self._rank.copy(),
            "num_components": np.array([self._num_components], dtype=np.int64),
        }

    @classmethod
    def from_state_arrays(cls, arrays: "dict[str, np.ndarray]") -> "UnionFind":
        """Rebuild a forest from :meth:`state_arrays` output (exact restore)."""
        forest = cls(0)
        forest._parent = np.asarray(arrays["parent"], dtype=np.int64).copy()
        forest._rank = np.asarray(arrays["rank"], dtype=np.int8).copy()
        forest._num_components = int(np.asarray(arrays["num_components"]).reshape(-1)[0])
        return forest

    def roots(self) -> np.ndarray:
        """Representative of every element at once, by vectorized pointer jumping.

        Runs ``roots = parent[roots]`` sweeps until a fixed point (a constant
        number of rounds given the path compression performed by scalar finds)
        and fully compresses the forest as a side effect.  The GFK/MemoGFK
        connectivity filters snapshot components once per round with this
        instead of calling :meth:`find` per point of every node pair.
        """
        current_tracker().add(self.size, 1.0)
        parent = self._parent
        roots = parent.copy()
        while True:
            hop = parent[roots]
            if np.array_equal(hop, roots):
                break
            roots = hop
        self._parent[:] = roots
        return roots

    def component_labels(self) -> np.ndarray:
        """Array mapping every element to its component representative."""
        return self.roots()
