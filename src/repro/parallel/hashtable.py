"""Parallel hash table shim.

The paper assumes a hash table supporting n inserts/finds/deletes in O(n) work
and O(log n) depth w.h.p.  In this sequential reproduction a Python dict
already provides the semantics; this wrapper exists so algorithm code reads
like the paper's pseudocode and so the hash-table operations are charged to
the work–depth tracker at the stated cost.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional, Tuple

from repro.parallel.scheduler import current_tracker


class ParallelHashTable:
    """Hash map with insert/find/delete plus cost accounting."""

    def __init__(self) -> None:
        self._table: Dict[Hashable, object] = {}

    def insert(self, key: Hashable, value) -> None:
        current_tracker().add(1, 1)
        self._table[key] = value

    def find(self, key: Hashable, default=None):
        current_tracker().add(1, 1)
        return self._table.get(key, default)

    def delete(self, key: Hashable) -> bool:
        current_tracker().add(1, 1)
        return self._table.pop(key, _MISSING) is not _MISSING

    def __contains__(self, key: Hashable) -> bool:
        current_tracker().add(1, 1)
        return key in self._table

    def __len__(self) -> int:
        return len(self._table)

    def items(self) -> Iterator[Tuple[Hashable, object]]:
        return iter(self._table.items())


_MISSING = object()
