"""Semisort: group items by key without ordering the groups.

The paper uses semisort to group the edges of each dendrogram subproblem by
subproblem label in O(n) expected work and O(log n) depth.  A Python dict
gives exactly the grouping semantics; the standard costs are charged to the
work–depth tracker so the dendrogram analysis stays honest.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Iterable, List, TypeVar

from repro.parallel.scheduler import current_tracker

T = TypeVar("T")


def semisort(items: Iterable[T], key: Callable[[T], Hashable], *, phase: str = "semisort") -> Dict[Hashable, List[T]]:
    """Group ``items`` by ``key(item)``.

    Returns a dict mapping each key to the list of its items in input order
    (the paper's semisort guarantees nothing about the ordering of different
    keys, and neither should callers of this function).
    """
    groups: Dict[Hashable, List[T]] = {}
    count = 0
    for item in items:
        count += 1
        groups.setdefault(key(item), []).append(item)
    current_tracker().add(max(count, 1), math.log2(count) if count > 1 else 1.0, phase=phase)
    return groups
