"""Work–depth parallel model and the classic parallel primitives.

The paper analyses all of its algorithms in the shared-memory work–depth
model: *work* is the total number of operations and *depth* the longest chain
of sequential dependencies; Brent's theorem turns a ``(W, D)`` pair into a
running-time bound ``W/p + D`` on ``p`` processors.

CPython's GIL prevents a faithful shared-memory implementation, so this
subpackage provides two things instead (see DESIGN.md, "Parallelism model"):

* :class:`~repro.parallel.scheduler.WorkDepthTracker` — algorithms report the
  work and depth they incur, and the tracker converts those into simulated
  running times for any processor count via Brent's bound.
* Sequentially-executed versions of the primitives the paper relies on
  (prefix sum, filter, split, WRITE_MIN, semisort, list ranking, Euler tours,
  union-find) that charge the textbook work/depth costs to the active tracker,
  so the simulated speedups reflect the algorithms actually implemented.

:mod:`~repro.parallel.pool` provides the *real* multicore execution engine: a
persistent :class:`~repro.parallel.pool.WorkerPool` of daemon threads (NumPy
releases the GIL inside its C kernels) that every batched hot path — BCCP
size-class tensors, k-NN blocks, WSPD predicate masks, the chunked Kruskal
merge sort — shards work onto with fixed, thread-count-independent chunk
boundaries, so threaded runs are byte-identical to single-threaded ones.  The
simulated Brent-bound curves and the measured wall-clock curves of
``benchmarks/bench_parallel_scaling.py`` are therefore directly comparable.
"""

from repro.parallel.scheduler import (
    WorkDepthTracker,
    current_tracker,
    use_tracker,
    simulated_time,
    simulated_speedups,
)
from repro.parallel.primitives import (
    prefix_sum,
    parallel_filter,
    parallel_split,
    write_min,
    WriteMinCell,
    parallel_max_index,
    parallel_min_index,
)
from repro.parallel.semisort import semisort
from repro.parallel.listrank import list_rank
from repro.parallel.eulertour import EulerTour, build_euler_tour
from repro.parallel.unionfind import UnionFind
from repro.parallel.hashtable import ParallelHashTable
from repro.parallel.pool import (
    WorkerPool,
    Workspace,
    current_workspace,
    get_pool,
    map_shards,
    parallel_map,
    shard_ranges,
    shutdown_pools,
)

__all__ = [
    "WorkDepthTracker",
    "current_tracker",
    "use_tracker",
    "simulated_time",
    "simulated_speedups",
    "prefix_sum",
    "parallel_filter",
    "parallel_split",
    "write_min",
    "WriteMinCell",
    "parallel_max_index",
    "parallel_min_index",
    "semisort",
    "list_rank",
    "EulerTour",
    "build_euler_tour",
    "UnionFind",
    "ParallelHashTable",
    "WorkerPool",
    "Workspace",
    "current_workspace",
    "get_pool",
    "map_shards",
    "parallel_map",
    "shard_ranges",
    "shutdown_pools",
]
