"""Work–depth parallel model and the classic parallel primitives.

The paper analyses all of its algorithms in the shared-memory work–depth
model: *work* is the total number of operations and *depth* the longest chain
of sequential dependencies; Brent's theorem turns a ``(W, D)`` pair into a
running-time bound ``W/p + D`` on ``p`` processors.

CPython's GIL prevents a faithful shared-memory implementation, so this
subpackage provides two things instead (see DESIGN.md, "Parallelism model"):

* :class:`~repro.parallel.scheduler.WorkDepthTracker` — algorithms report the
  work and depth they incur, and the tracker converts those into simulated
  running times for any processor count via Brent's bound.
* Sequentially-executed versions of the primitives the paper relies on
  (prefix sum, filter, split, WRITE_MIN, semisort, list ranking, Euler tours,
  union-find) that charge the textbook work/depth costs to the active tracker,
  so the simulated speedups reflect the algorithms actually implemented.

A small :mod:`~repro.parallel.pool` helper offers real ``ThreadPoolExecutor``
parallelism for the coarse-grained NumPy-heavy stages (BCCP batches, k-NN
batches) where the GIL is released.
"""

from repro.parallel.scheduler import (
    WorkDepthTracker,
    current_tracker,
    use_tracker,
    simulated_time,
    simulated_speedups,
)
from repro.parallel.primitives import (
    prefix_sum,
    parallel_filter,
    parallel_split,
    write_min,
    WriteMinCell,
    parallel_max_index,
    parallel_min_index,
)
from repro.parallel.semisort import semisort
from repro.parallel.listrank import list_rank
from repro.parallel.eulertour import EulerTour, build_euler_tour
from repro.parallel.unionfind import UnionFind
from repro.parallel.hashtable import ParallelHashTable
from repro.parallel.pool import parallel_map

__all__ = [
    "WorkDepthTracker",
    "current_tracker",
    "use_tracker",
    "simulated_time",
    "simulated_speedups",
    "prefix_sum",
    "parallel_filter",
    "parallel_split",
    "write_min",
    "WriteMinCell",
    "parallel_max_index",
    "parallel_min_index",
    "semisort",
    "list_rank",
    "EulerTour",
    "build_euler_tour",
    "UnionFind",
    "ParallelHashTable",
    "parallel_map",
]
