"""Axis-aligned bounding boxes and bounding spheres.

The WSPD well-separation tests and the MemoGFK pruning rules (Section 3.1.3 of
the paper) are expressed in terms of per-node bounding spheres: the minimum
distance between two spheres lower-bounds the BCCP of the two point sets and
the sum of sphere diameters plus the center distance upper-bounds it.
Following the reference implementation we derive each node's sphere from its
axis-aligned bounding box (center = box center, radius = half the box
diagonal), which is cheap to maintain during kd-tree construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box given by coordinate-wise lower/upper corners."""

    lower: np.ndarray
    upper: np.ndarray

    @staticmethod
    def of_points(points: np.ndarray) -> "BoundingBox":
        """Smallest box containing every row of ``points``."""
        points = np.asarray(points, dtype=np.float64)
        return BoundingBox(points.min(axis=0), points.max(axis=0))

    @property
    def center(self) -> np.ndarray:
        return (self.lower + self.upper) * 0.5

    @property
    def extent(self) -> np.ndarray:
        """Side length along each dimension."""
        return self.upper - self.lower

    @property
    def diagonal(self) -> float:
        """Length of the main diagonal."""
        return float(np.linalg.norm(self.extent))

    def contains(self, point: np.ndarray, *, tol: float = 0.0) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(
            np.all(point >= self.lower - tol) and np.all(point <= self.upper + tol)
        )

    def merge(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            np.minimum(self.lower, other.lower), np.maximum(self.upper, other.upper)
        )

    def to_sphere(self) -> "BoundingSphere":
        """Bounding sphere circumscribing the box."""
        return BoundingSphere(self.center, self.diagonal * 0.5)

    def min_distance(self, other: "BoundingBox") -> float:
        """Minimum Euclidean distance between the two boxes (0 if they overlap)."""
        gap = np.maximum(
            np.maximum(self.lower - other.upper, other.lower - self.upper), 0.0
        )
        return float(np.linalg.norm(gap))

    def max_distance(self, other: "BoundingBox") -> float:
        """Maximum Euclidean distance between any two points of the boxes."""
        span = np.maximum(self.upper - other.lower, other.upper - self.lower)
        return float(np.linalg.norm(span))

    def min_distance_to_point(self, point: np.ndarray) -> float:
        point = np.asarray(point, dtype=np.float64)
        gap = np.maximum(np.maximum(self.lower - point, point - self.upper), 0.0)
        return float(np.linalg.norm(gap))


@dataclass(frozen=True)
class BoundingSphere:
    """Sphere with a center and radius.

    ``distance`` / ``max_distance`` give the lower and upper bounds on the
    distance between points contained in two spheres, exactly the quantities
    ``d(A, B)`` and ``d_max(A, B)`` used throughout Section 3 of the paper.
    """

    center: np.ndarray
    radius: float

    @staticmethod
    def of_points(points: np.ndarray) -> "BoundingSphere":
        """Sphere circumscribing the axis-aligned bounding box of ``points``."""
        return BoundingBox.of_points(points).to_sphere()

    @property
    def diameter(self) -> float:
        return 2.0 * self.radius

    def distance(self, other: "BoundingSphere") -> float:
        """Minimum distance between the two spheres (0 if they intersect)."""
        center_gap = float(np.linalg.norm(self.center - other.center))
        return max(0.0, center_gap - self.radius - other.radius)

    def max_distance(self, other: "BoundingSphere") -> float:
        """Maximum distance between any point of one sphere and of the other."""
        center_gap = float(np.linalg.norm(self.center - other.center))
        return center_gap + self.radius + other.radius

    def contains(self, point: np.ndarray, *, tol: float = 1e-9) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return float(np.linalg.norm(point - self.center)) <= self.radius + tol

    def well_separated_from(self, other: "BoundingSphere", s: float = 2.0) -> bool:
        """Callahan–Kosaraju well-separation with separation constant ``s``.

        Both point sets are enclosed in spheres of the common radius
        ``r = max(radius_A, radius_B)``; the sets are well-separated when the
        gap between those enlarged spheres is at least ``s * r``.
        """
        r = max(self.radius, other.radius)
        center_gap = float(np.linalg.norm(self.center - other.center))
        return center_gap - 2.0 * r >= s * r
