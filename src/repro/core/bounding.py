"""Axis-aligned bounding boxes and bounding spheres.

The WSPD well-separation tests and the MemoGFK pruning rules (Section 3.1.3 of
the paper) are expressed in terms of per-node bounding spheres: the minimum
distance between two spheres lower-bounds the BCCP of the two point sets and
the sum of sphere diameters plus the center distance upper-bounds it.
Following the reference implementation we derive each node's sphere from its
axis-aligned bounding box (center = box center, radius = half the box
diagonal), which is cheap to maintain during kd-tree construction.

Both shapes are metric-aware: every distance-flavoured method takes an
optional :class:`~repro.core.metric.Metric` (``None`` keeps the historical
Euclidean code path, bit for bit), and a sphere can carry the metric it was
derived under so the scalar separation predicates stay metric-correct.  All
supported metrics are norm-induced, so the sphere bounds remain valid: the
circumscribing radius of a box is half the norm of its extent and the
min/max sphere-to-sphere bounds follow from the triangle inequality alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.metric import Metric


def _norm(vector: np.ndarray, metric: Optional[Metric]) -> float:
    if metric is None:
        return float(np.linalg.norm(vector))
    return metric.vector_norm(vector)


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box given by coordinate-wise lower/upper corners."""

    lower: np.ndarray
    upper: np.ndarray

    @staticmethod
    def of_points(points: np.ndarray) -> "BoundingBox":
        """Smallest box containing every row of ``points``."""
        points = np.asarray(points, dtype=np.float64)
        return BoundingBox(points.min(axis=0), points.max(axis=0))

    @property
    def center(self) -> np.ndarray:
        return (self.lower + self.upper) * 0.5

    @property
    def extent(self) -> np.ndarray:
        """Side length along each dimension."""
        return self.upper - self.lower

    @property
    def diagonal(self) -> float:
        """Euclidean length of the main diagonal."""
        return float(np.linalg.norm(self.extent))

    def contains(self, point: np.ndarray, *, tol: float = 0.0) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(
            np.all(point >= self.lower - tol) and np.all(point <= self.upper + tol)
        )

    def merge(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            np.minimum(self.lower, other.lower), np.maximum(self.upper, other.upper)
        )

    def to_sphere(self, metric: Optional[Metric] = None) -> "BoundingSphere":
        """Bounding sphere circumscribing the box under ``metric``."""
        return BoundingSphere(
            self.center, 0.5 * _norm(self.extent, metric), metric=metric
        )

    def min_distance(
        self, other: "BoundingBox", metric: Optional[Metric] = None
    ) -> float:
        """Minimum distance between the two boxes (0 if they overlap)."""
        gap = np.maximum(
            np.maximum(self.lower - other.upper, other.lower - self.upper), 0.0
        )
        return _norm(gap, metric)

    def max_distance(
        self, other: "BoundingBox", metric: Optional[Metric] = None
    ) -> float:
        """Maximum distance between any two points of the boxes."""
        span = np.maximum(self.upper - other.lower, other.upper - self.lower)
        return _norm(span, metric)

    def min_distance_to_point(
        self, point: np.ndarray, metric: Optional[Metric] = None
    ) -> float:
        point = np.asarray(point, dtype=np.float64)
        gap = np.maximum(np.maximum(self.lower - point, point - self.upper), 0.0)
        return _norm(gap, metric)


@dataclass(frozen=True)
class BoundingSphere:
    """Sphere with a center and radius (a metric ball when ``metric`` is set).

    ``distance`` / ``max_distance`` give the lower and upper bounds on the
    distance between points contained in two spheres, exactly the quantities
    ``d(A, B)`` and ``d_max(A, B)`` used throughout Section 3 of the paper.
    A ``metric`` of ``None`` means Euclidean (the historical code path).
    """

    center: np.ndarray
    radius: float
    metric: Optional[Metric] = None

    @staticmethod
    def of_points(
        points: np.ndarray, metric: Optional[Metric] = None
    ) -> "BoundingSphere":
        """Sphere circumscribing the axis-aligned bounding box of ``points``."""
        return BoundingBox.of_points(points).to_sphere(metric)

    @property
    def diameter(self) -> float:
        return 2.0 * self.radius

    def _center_gap(self, other: "BoundingSphere") -> float:
        return _norm(self.center - other.center, self.metric)

    def distance(self, other: "BoundingSphere") -> float:
        """Minimum distance between the two spheres (0 if they intersect)."""
        return max(0.0, self._center_gap(other) - self.radius - other.radius)

    def max_distance(self, other: "BoundingSphere") -> float:
        """Maximum distance between any point of one sphere and of the other."""
        return self._center_gap(other) + self.radius + other.radius

    def contains(self, point: np.ndarray, *, tol: float = 1e-9) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return _norm(point - self.center, self.metric) <= self.radius + tol

    def well_separated_from(self, other: "BoundingSphere", s: float = 2.0) -> bool:
        """Callahan–Kosaraju well-separation with separation constant ``s``.

        Both point sets are enclosed in spheres of the common radius
        ``r = max(radius_A, radius_B)``; the sets are well-separated when the
        gap between those enlarged spheres is at least ``s * r``.
        """
        r = max(self.radius, other.radius)
        return self._center_gap(other) - 2.0 * r >= s * r
