"""Engine-wide memory budget: bytes accounting for the tiled hot paths.

Every batched kernel in this library materializes *tiles* — a block of k-NN
queries, one BCCP size-class distance tensor, a sort chunk of the Kruskal
weight array — and before this module each kernel sized its tiles from its
own hard-coded constant.  A :class:`MemoryBudget` replaces those constants
with one bytes ceiling threaded through the engine the same way
:class:`~repro.core.metric.Metric` and the kernel backend are: a per-call
``memory_budget=`` argument on the public entry points scopes an *ambient*
budget (:func:`use_memory_budget`) that every kernel consults when it picks a
tile size (:meth:`MemoryBudget.tile_rows` / :meth:`~MemoryBudget.tile_bytes`).

The budget changes **only** tile and chunk sizes.  Every tiled kernel in the
engine is tile-invariant by construction — k-NN results are independent of
the query blocking, BCCP class padding is fixed before chunking, the parallel
merge argsort equals ``np.argsort(..., kind="stable")`` at any chunk size,
and the frontier masks are elementwise — so results are **byte-identical to
the unbudgeted engine at any budget that admits at least one tile**.  A
budget below the floor of a kernel's smallest possible tile simply clamps at
that floor (:data:`MIN_TILE_BYTES`, or the kernel's own row minimum): the run
may then overshoot the requested ceiling by the irreducible tile, but it
never changes results and never errors.

Beyond tiling, a bounded budget turns on **spill-to-disk** for the growable
containers: :func:`repro.core.buffers.ensure_capacity` routes buffer
(re)allocation through :meth:`MemoryBudget.allocate`, which backs any buffer
larger than the spill threshold with an *unlinked* temporary-file memmap —
the OS pages it instead of RAM, views stay valid for the life of the mapping,
and nothing is left on disk afterwards because the file is deleted the moment
it is mapped.

Accounting is deliberately simple: fixed per-component reservations
(:meth:`MemoryBudget.reserve` — the input points, persistent caches) are
subtracted from the total, kernels receive a bounded share of what remains
per tile, and the high-water mark of everything the budget granted is kept in
:attr:`MemoryBudget.peak_bytes` so benchmarks can report the *planned* peak
next to the measured RSS.

Selection order mirrors the backend knob: per-call ``memory_budget=``
argument > ambient default (:func:`set_default_memory_budget` /
:func:`use_memory_budget`) > the ``REPRO_MEMORY_BUDGET`` environment
variable read once at import > unbounded.
"""

from __future__ import annotations

import os
import re
import tempfile
import warnings
import weakref
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

import numpy as np

from repro.core.errors import InvalidParameterError

BudgetLike = Union[None, int, str, "MemoryBudget"]

#: Floor on the bytes any single tile may use.  "Any budget that admits at
#: least one tile" is a budget for which this floor is meaningful: below it
#: the kernels clamp here rather than degenerating to pathological row-by-row
#: dispatch (which would be slow but *still* byte-identical).
MIN_TILE_BYTES = 64 << 10

#: Fraction of the un-reserved budget one tile may claim.  Several tiled
#: stages (and, under ``num_threads > 1``, several workers' tiles) are live
#: at once, so a single tile never gets the whole remainder.
_TILE_DIVISOR = 4

_SIZE_PATTERN = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMGT]?)B?\s*$", re.IGNORECASE)

_SIZE_FACTORS = {"": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}


def parse_memory_size(spec: Union[int, float, str]) -> int:
    """Parse a human-readable size (``"512M"``, ``"2G"``, ``"65536"``) to bytes.

    Suffixes ``K``/``M``/``G``/``T`` (optionally followed by ``B``, any case)
    denote binary multiples; a bare number is bytes.  This is the one parser
    shared by the CLI ``--memory-budget`` flag and the estimators'
    ``memory_budget=`` validation, so both fail fast with the same message on
    nonsense values (empty strings, negative or zero sizes, unknown units).
    """
    if isinstance(spec, bool):
        raise InvalidParameterError(f"invalid memory size {spec!r}")
    if isinstance(spec, (int, float, np.integer, np.floating)):
        size = int(spec)
        if size <= 0:
            raise InvalidParameterError(
                f"memory size must be positive, got {spec!r}"
            )
        return size
    if not isinstance(spec, str):
        raise InvalidParameterError(
            f"memory size must be an int, a string like '512M', or a "
            f"MemoryBudget, got {spec!r}"
        )
    match = _SIZE_PATTERN.match(spec)
    if match is None:
        raise InvalidParameterError(
            f"invalid memory size {spec!r}; expected bytes or a K/M/G/T "
            f"suffix, e.g. '512M' or '2G'"
        )
    value = float(match.group(1)) * _SIZE_FACTORS[match.group(2).upper()]
    size = int(value)
    if size <= 0:
        raise InvalidParameterError(f"memory size must be positive, got {spec!r}")
    return size


def format_memory_size(nbytes: Optional[int]) -> str:
    """Human-readable rendering of a byte count (``None`` -> ``"unbounded"``)."""
    if nbytes is None:
        return "unbounded"
    for suffix, factor in (("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10)):
        if nbytes >= factor and nbytes % (factor // 16) == 0:
            value = nbytes / factor
            return f"{value:g}{suffix}"
    return str(int(nbytes))


class MemoryBudget:
    """A bytes ceiling for the engine's tiled kernels and growable buffers.

    Parameters
    ----------
    total:
        Total budget in bytes (int), as a size string (``"512M"``), or
        ``None`` for unbounded (every helper then returns its caller's
        default, and nothing spills).
    spill_threshold:
        Buffers at least this large are backed by unlinked temporary-file
        memmaps instead of RAM (see :meth:`allocate`).  Defaults to an
        eighth of the total for bounded budgets; ``None`` on an unbounded
        budget disables spilling.
    spill_dir:
        Directory the anonymous spill files are created in (defaults to the
        platform temporary directory).  Files are unlinked immediately after
        mapping, so nothing survives the process regardless.

    Notes
    -----
    The budget is an accounting object, not an enforcement mechanism: it
    bounds what the *engine* plans to materialize (and records the high-water
    mark of those grants in :attr:`peak_bytes`), while the interpreter, NumPy
    and the input arrays live outside it.  Benchmarks therefore gate measured
    RSS against ``budget + fixed overhead allowance``, never against the raw
    budget.
    """

    def __init__(
        self,
        total: Union[None, int, str] = None,
        *,
        spill_threshold: Union[None, int, str] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        self.total_bytes: Optional[int] = (
            None if total is None else parse_memory_size(total)
        )
        if spill_threshold is not None:
            self.spill_threshold_bytes: Optional[int] = parse_memory_size(
                spill_threshold
            )
        elif self.total_bytes is not None:
            self.spill_threshold_bytes = max(self.total_bytes // 8, MIN_TILE_BYTES)
        else:
            self.spill_threshold_bytes = None
        self.spill_dir = spill_dir
        self._reservations: Dict[str, int] = {}
        #: High-water mark of reservations + the largest concurrent tile
        #: grant — the *planned* peak, reported next to measured RSS.
        self.peak_bytes = 0
        #: Number of buffers this budget has spilled to disk, and their bytes.
        self.spilled_buffers = 0
        self.spilled_bytes = 0
        #: Bytes of spilled buffers whose memmaps are still alive (decremented
        #: by a ``weakref.finalize`` on each mapping).  The spill-lifecycle
        #: tests pin this to zero after a fit — including a *failed* fit — to
        #: prove no exception path leaks a mapping or its file descriptor.
        self.live_spilled_bytes = 0

    # -- identity --------------------------------------------------------------

    @property
    def bounded(self) -> bool:
        """Whether a finite ceiling is set (unbounded budgets are no-ops)."""
        return self.total_bytes is not None

    def spec(self) -> str:
        """Canonical string form (what benchmark metadata records)."""
        return format_memory_size(self.total_bytes)

    def __repr__(self) -> str:
        return f"MemoryBudget({self.spec()!r})"

    # -- reservations ----------------------------------------------------------

    def reserve(self, component: str, nbytes: int) -> None:
        """Register a fixed per-component reservation (idempotent per name).

        Reservations model long-lived allocations — the coerced input array,
        a persistent cache — that tiles must leave room for.  Re-reserving a
        component replaces its previous figure (callers re-enter the engine
        with the same budget object across pipeline stages).
        """
        self._reservations[component] = max(int(nbytes), 0)
        self._note(self.reserved_bytes)

    def release(self, component: str) -> None:
        """Drop a reservation (missing names are ignored)."""
        self._reservations.pop(component, None)

    @property
    def reserved_bytes(self) -> int:
        """Sum of the current per-component reservations."""
        return sum(self._reservations.values())

    @property
    def reservations(self) -> Dict[str, int]:
        """A copy of the per-component reservation table."""
        return dict(self._reservations)

    def available_bytes(self) -> int:
        """Bytes left for tiles after the fixed reservations.

        Never below :data:`MIN_TILE_BYTES`: a budget fully consumed by
        reservations still admits the minimum tile (clamping, not failing,
        is the contract — results are tile-invariant).
        """
        if self.total_bytes is None:
            raise InvalidParameterError(
                "available_bytes() is undefined on an unbounded budget"
            )
        return max(self.total_bytes - self.reserved_bytes, MIN_TILE_BYTES)

    # -- tile sizing -----------------------------------------------------------

    def tile_bytes(
        self, default: int, *, parts: int = 1, component: str = "tile"
    ) -> int:
        """The bytes ceiling for one tile of a kernel.

        ``default`` is the kernel's unbudgeted constant (returned verbatim on
        an unbounded budget, so the historical tile sizes are preserved
        exactly).  On a bounded budget a tile gets at most a
        :data:`_TILE_DIVISOR`-th of the un-reserved remainder, further split
        across ``parts`` concurrent consumers (worker threads), floored at
        :data:`MIN_TILE_BYTES` so a tiny budget clamps instead of
        degenerating.
        """
        if self.total_bytes is None:
            return int(default)
        share = self.available_bytes() // (_TILE_DIVISOR * max(int(parts), 1))
        granted = max(min(int(default), share), MIN_TILE_BYTES)
        self._note(self.reserved_bytes + granted * max(int(parts), 1))
        return granted

    def tile_rows(
        self,
        bytes_per_row: int,
        *,
        default_bytes: int,
        minimum: int = 1,
        maximum: Optional[int] = None,
        parts: int = 1,
        component: str = "tile",
    ) -> int:
        """Rows per tile given a per-row footprint.

        ``rows = clamp(tile_bytes // bytes_per_row, minimum, maximum)`` —
        the shape every blocked kernel (k-NN query blocks, sort chunks,
        frontier mask shards) derives its blocking from.
        """
        budget_bytes = self.tile_bytes(default_bytes, parts=parts, component=component)
        rows = budget_bytes // max(int(bytes_per_row), 1)
        rows = max(rows, int(minimum))
        if maximum is not None:
            rows = min(rows, int(maximum))
        return int(rows)

    def tile_elements(
        self,
        dtype,
        *,
        default_elements: int,
        minimum: int = 1,
        parts: int = 1,
        component: str = "tile",
    ) -> int:
        """Elements per tile for a kernel that thinks in dtype entries.

        The BCCP size-class kernel caps the padded distance entries one chunk
        may materialize; this converts its element count through the dtype's
        itemsize so the cap becomes a bytes ceiling under a bounded budget.
        """
        itemsize = int(np.dtype(dtype).itemsize)
        budget_bytes = self.tile_bytes(
            int(default_elements) * itemsize, parts=parts, component=component
        )
        return max(budget_bytes // itemsize, int(minimum))

    # -- peak tracking ---------------------------------------------------------

    def _note(self, nbytes: int) -> None:
        # Peak tracking is only meaningful against a ceiling; keeping this a
        # no-op when unbounded also keeps the shared UNBOUNDED singleton
        # stateless across runs.
        if self.total_bytes is None:
            return
        if nbytes > self.peak_bytes:
            self.peak_bytes = int(nbytes)

    def note_allocation(self, nbytes: int) -> None:
        """Record an engine allocation the tile helpers did not size.

        Used for irreducible blocks — a single oversized BCCP pair matrix —
        so :attr:`peak_bytes` stays an honest high-water mark even when a
        kernel must overshoot the tile ceiling.
        """
        self._note(self.reserved_bytes + max(int(nbytes), 0))

    # -- spill-to-disk ---------------------------------------------------------

    def wants_spill(self, nbytes: int) -> bool:
        """Whether a buffer of ``nbytes`` should be disk-backed."""
        return (
            self.spill_threshold_bytes is not None
            and nbytes >= self.spill_threshold_bytes
        )

    def allocate(self, capacity: int, dtype) -> np.ndarray:
        """An uninitialized 1-d buffer of ``capacity`` entries.

        RAM-backed (``np.empty``) below the spill threshold; above it, a
        memory map over an unlinked temporary file — the mapping keeps the
        (deleted) file alive, so the buffer needs no cleanup and cannot leak
        onto disk past the process.  Falls back to RAM with a warning if the
        spill directory is unwritable; if that fallback *also* fails for lack
        of memory, raises :class:`~repro.core.errors.SpillIOError` (the typed
        out-of-resources signal the CLI maps to its own exit code).  The file
        handle is closed on every path, including mid-setup failures, so a
        refused spill can never leak a descriptor.
        """
        from repro.core.errors import SpillIOError
        from repro.resilience.faults import fault_check

        dtype = np.dtype(dtype)
        nbytes = int(capacity) * dtype.itemsize
        if not self.wants_spill(nbytes):
            self.note_allocation(nbytes)
            return np.empty(int(capacity), dtype=dtype)
        handle = None
        try:
            fault = fault_check("spill-os-error", nbytes=nbytes)
            if fault is not None:
                raise OSError(f"injected spill failure ({fault.spec()})")
            handle = tempfile.TemporaryFile(
                dir=self.spill_dir, prefix="repro-spill-"
            )
            handle.truncate(max(nbytes, 1))
            buffer = np.memmap(handle, dtype=dtype, mode="r+", shape=(int(capacity),))
        except OSError as error:
            if handle is not None:
                handle.close()
            warnings.warn(
                f"could not spill a {nbytes}-byte buffer to disk ({error}); "
                "keeping it in RAM",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                fault = fault_check("spill-ram-fail", nbytes=nbytes)
                if fault is not None:
                    raise MemoryError(f"injected RAM exhaustion ({fault.spec()})")
                fallback = np.empty(int(capacity), dtype=dtype)
            except MemoryError as ram_error:
                raise SpillIOError(
                    f"spilling a {nbytes}-byte buffer to disk failed "
                    f"({error}) and the RAM fallback failed too "
                    f"({ram_error}); free disk space in the spill directory "
                    f"({self.spill_dir or 'the system tmpdir'}) or raise the "
                    "memory budget"
                ) from ram_error
            self.note_allocation(nbytes)
            return fallback
        except BaseException:
            if handle is not None:
                handle.close()
            raise
        # The mapping owns the pages now; the file object can go (the file
        # itself was never linked into the filesystem namespace on POSIX, or
        # is marked delete-on-close elsewhere).
        handle.close()
        self.spilled_buffers += 1
        self.spilled_bytes += nbytes
        self.live_spilled_bytes += nbytes
        weakref.finalize(buffer, self._release_spill, nbytes)
        return buffer

    def _release_spill(self, nbytes: int) -> None:
        self.live_spilled_bytes -= nbytes


#: The unbounded budget every kernel sees unless a caller scopes one.
UNBOUNDED = MemoryBudget(None)


def resolve_memory_budget(budget: BudgetLike = None) -> MemoryBudget:
    """Normalize a budget argument into a usable :class:`MemoryBudget`.

    ``None`` means the ambient default (see :func:`use_memory_budget`;
    initialized from ``REPRO_MEMORY_BUDGET`` at import, unbounded otherwise).
    Ints and strings construct a bounded budget via :func:`parse_memory_size`
    — nonsense values fail fast with the parser's message.
    """
    if budget is None:
        return _default_budget
    if isinstance(budget, MemoryBudget):
        return budget
    if isinstance(budget, (int, str, np.integer)) and not isinstance(budget, bool):
        return MemoryBudget(parse_memory_size(budget))
    raise InvalidParameterError(
        f"memory_budget must be bytes, a size string like '512M', a "
        f"MemoryBudget instance or None, got {budget!r}"
    )


def current_memory_budget() -> MemoryBudget:
    """The ambient budget tiled kernels and growable buffers consult."""
    return _default_budget


def set_default_memory_budget(budget: BudgetLike) -> MemoryBudget:
    """Set (and return) the ambient default budget.

    Pass ``None`` to reset to unbounded.
    """
    global _default_budget
    _default_budget = UNBOUNDED if budget is None else resolve_memory_budget(budget)
    return _default_budget


@contextmanager
def use_memory_budget(budget: BudgetLike) -> Iterator[MemoryBudget]:
    """Context manager scoping the ambient memory budget.

    ``use_memory_budget(None)`` is a no-op scope (keeps the current ambient
    budget), so the public entry points wrap their whole pipeline
    unconditionally, exactly like :func:`repro.core.backend.use_backend`::

        with use_memory_budget(memory_budget):   # None -> ambient default
            ... build trees, run kernels ...
    """
    global _default_budget
    previous = _default_budget
    if budget is not None:
        _default_budget = resolve_memory_budget(budget)
    try:
        yield _default_budget
    finally:
        _default_budget = previous


def _initial_default() -> MemoryBudget:
    """Resolve the import-time default from ``REPRO_MEMORY_BUDGET``.

    A bad value warns and keeps the engine unbounded rather than making the
    package unimportable.
    """
    spec = os.environ.get("REPRO_MEMORY_BUDGET", "").strip()
    if not spec:
        return UNBOUNDED
    try:
        return MemoryBudget(parse_memory_size(spec))
    except InvalidParameterError as error:
        warnings.warn(
            f"ignoring REPRO_MEMORY_BUDGET: {error}", RuntimeWarning, stacklevel=2
        )
        return UNBOUNDED


_default_budget = _initial_default()
