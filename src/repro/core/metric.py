"""Pluggable distance metrics: the geometry core every layer dispatches on.

A :class:`Metric` bundles the vectorized distance kernels (point-point,
point-block, pairwise, cancellation-safe exact edge weights, batched BCCP
block tensors) together with the geometric bounds the upper layers need
(point-to-box gaps, bounding-"sphere" radii derived from box extents).  The
kd-tree stores its per-node radii under the metric it was built with, so the
WSPD separation predicates, the MemoGFK window bounds, the BCCP kernels and
the k-NN traversals all stay metric-correct without any per-call plumbing:
the metric rides the tree.

Every metric here is induced by a norm (``d(x, y) = ||x - y||``), so the
bounding-volume reasoning the paper does with Euclidean spheres carries over
unchanged: the circumscribing "sphere" of a box with extent ``e`` has radius
``||e|| / 2`` around the box center, sphere-to-sphere gaps lower-bound and
center-distance-plus-radii upper-bound the point distances (triangle
inequality only), and the point-to-box minimum distance is the norm of the
per-axis gap vector.

Supported metrics:

* ``euclidean`` (L2) — byte-for-byte the kernels the engine has always used:
  squared-expansion BLAS matrix products compared in squared space internally
  (the "sqeuclidean" fast path) with one final clamp-and-sqrt, and the exact
  difference-and-norm re-evaluation for MST edge weights;
* ``manhattan`` (L1, a.k.a. cityblock/taxicab);
* ``chebyshev`` (L∞, a.k.a. maximum/chessboard);
* ``minkowski`` with a general order ``p >= 1`` (``p`` of 1, 2 or ``inf``
  canonicalize to the dedicated classes above).

The non-Euclidean batch kernels never materialize an ``(…, d)``-times-larger
difference tensor: they accumulate ``|a_j - b_j|^p`` one coordinate axis at a
time into a distance-shaped accumulator, so their peak memory matches the
Euclidean expansion kernels and the existing chunk budgets stay valid.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.core.errors import InvalidParameterError

MetricLike = Union[None, str, "Metric"]


def _as_float(array: np.ndarray) -> np.ndarray:
    """Coerce to a floating dtype, *preserving* float32.

    The dense kernels are dtype-polymorphic so the lowered (float32-scoring)
    backends can run them at half the memory traffic; every other input dtype
    is promoted to float64 exactly as before.
    """
    array = np.asarray(array)
    if array.dtype == np.float32:
        return array
    return np.asarray(array, dtype=np.float64)


class Metric:
    """A norm-induced distance metric and its batched kernels.

    Subclasses implement the row-norm primitive :meth:`diff_norms` plus the
    dense kernels that have metric-specific fast paths.  The dense kernels
    are dtype-polymorphic over float64 and float32 (float32 inputs score in
    float32 — the lowered-backend fast path; every other dtype promotes to
    float64); the scalar kernels and :meth:`exact_edge_weights` always
    compute in float64.  Inputs are assumed validated by the callers (the
    public entry points coerce through :func:`repro.core.points.as_points`).
    """

    #: Canonical metric name (``"euclidean"``, ``"manhattan"``, …).
    name: str = "metric"

    # -- identity ------------------------------------------------------------

    def spec(self) -> str:
        """Canonical string form, parseable by :func:`resolve_metric`."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other) -> bool:
        return isinstance(other, Metric) and self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(self.spec())

    # -- scalar kernels ------------------------------------------------------

    def vector_norm(self, vector) -> float:
        """Norm of a single 1-d coordinate vector."""
        raise NotImplementedError

    def point_distance(self, p, q) -> float:
        """Distance between two points given as 1-d coordinate arrays."""
        if not (isinstance(p, np.ndarray) and p.dtype == np.float64):
            p = np.asarray(p, dtype=np.float64)
        if not (isinstance(q, np.ndarray) and q.dtype == np.float64):
            q = np.asarray(q, dtype=np.float64)
        return self.vector_norm(p - q)

    # -- batched row kernels -------------------------------------------------

    def diff_norms(self, diff: np.ndarray) -> np.ndarray:
        """Row norms of an ``(m, d)`` array of difference (or gap) vectors."""
        raise NotImplementedError

    def distances_to_point(self, points: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Distances from every row of ``points`` to a single ``query`` point."""
        return self.diff_norms(points - query)

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(len(a), len(b))`` matrix of distances between two point sets."""
        raise NotImplementedError

    def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
        """Full ``(n, n)`` distance matrix of a point set."""
        points = _as_float(points)
        return self.cross_distances(points, points)

    def exact_edge_weights(
        self,
        points: np.ndarray,
        index_a: np.ndarray,
        index_b: np.ndarray,
        core_distances: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Exact edge weights for parallel arrays of point indices.

        The matrix kernels may trade a few digits for batching (the Euclidean
        expansion loses them to cancellation); MST edge weights must be exact,
        so winning pairs are re-evaluated with a direct difference-and-norm
        pass.  With ``core_distances`` the returned weight is the mutual
        reachability distance ``max(cd(u), cd(v), d(u, v))``.
        """
        index_a = np.asarray(index_a, dtype=np.int64)
        index_b = np.asarray(index_b, dtype=np.int64)
        weights = self.diff_norms(points[index_a] - points[index_b])
        if core_distances is not None:
            np.maximum(weights, core_distances[index_a], out=weights)
            np.maximum(weights, core_distances[index_b], out=weights)
        return weights

    def block_cross_distances(
        self, pts_a: np.ndarray, pts_b: np.ndarray, workspace
    ) -> np.ndarray:
        """Batched BCCP distance tensor: ``(g, p_a, d) × (g, p_b, d) → (g, p_a, p_b)``.

        ``workspace`` is the calling thread's reusable buffer pool
        (:func:`repro.parallel.pool.current_workspace`); the returned tensor
        aliases workspace storage and is valid until the next ``take`` of the
        same keys, which matches how the BCCP size-class kernel consumes it.
        """
        raise NotImplementedError

    # -- geometric bounds ----------------------------------------------------

    def box_radii(self, extent: np.ndarray) -> np.ndarray:
        """Circumscribing-sphere radius of boxes given their ``(m, d)`` extents.

        The farthest point of a box from its center is a corner, at distance
        ``||extent|| / 2`` under any norm-induced metric.
        """
        return 0.5 * self.diff_norms(extent)


class EuclideanMetric(Metric):
    """L2 metric — bit-for-bit the kernels the engine has always used.

    Comparisons inside the dense kernels happen in *squared* space (the
    ``|x|^2 + |y|^2 - 2 x.y`` BLAS expansion — the internal "sqeuclidean"
    fast path) with a single clamp-and-sqrt at the end; exact edge weights
    use the batched row-wise ``matmul`` that reproduces the historical
    per-edge ``np.linalg.norm`` bit for bit.
    """

    name = "euclidean"

    def vector_norm(self, vector) -> float:
        diff = np.asarray(vector, dtype=np.float64)
        return float(np.sqrt(np.dot(diff, diff)))

    def diff_norms(self, diff: np.ndarray) -> np.ndarray:
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def squared_distances_to_point(
        self, points: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        """Squared distances — the internal comparison-space fast path."""
        diff = points - query
        return np.einsum("ij,ij->i", diff, diff)

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = _as_float(a)
        b = _as_float(b)
        a_sq = np.einsum("ij,ij->i", a, a)
        b_sq = np.einsum("ij,ij->i", b, b)
        sq = a_sq[:, None] + b_sq[None, :] - 2.0 * (a @ b.T)
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    def exact_edge_weights(
        self,
        points: np.ndarray,
        index_a: np.ndarray,
        index_b: np.ndarray,
        core_distances: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        index_a = np.asarray(index_a, dtype=np.int64)
        index_b = np.asarray(index_b, dtype=np.int64)
        diff = points[index_a] - points[index_b]
        # Batched row-wise dot products (BLAS), bit-identical to the historical
        # per-edge ``np.linalg.norm(diff)`` — a SIMD ``einsum`` sum is not.
        weights = np.sqrt(np.matmul(diff[:, None, :], diff[:, :, None])[:, 0, 0])
        if core_distances is not None:
            np.maximum(weights, core_distances[index_a], out=weights)
            np.maximum(weights, core_distances[index_b], out=weights)
        return weights

    def block_cross_distances(
        self, pts_a: np.ndarray, pts_b: np.ndarray, workspace
    ) -> np.ndarray:
        g, p_a, _ = pts_a.shape
        p_b = pts_b.shape[1]
        # Same expansion, summation kernels and rounding as ``cross_distances``
        # (einsum row norms, BLAS matmul cross terms, clamp, sqrt), so the
        # minimized values — and therefore the argmin tie-breaking — agree
        # with the scalar kernel bit-for-bit.  The cross-term tensor — the
        # largest temporary — lives in the calling thread's reusable
        # workspace, so each pool worker allocates it once across all its
        # class chunks.
        cross = workspace.take("bccp.cross", (g, p_a, p_b), dtype=pts_a.dtype)
        np.matmul(pts_a, pts_b.transpose(0, 2, 1), out=cross)
        sq_a = np.einsum("gpd,gpd->gp", pts_a, pts_a)
        sq_b = np.einsum("gqd,gqd->gq", pts_b, pts_b)
        sq = sq_a[:, :, None] + sq_b[:, None, :]
        cross *= 2.0
        sq -= cross
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq, out=sq)


class _AxisAccumulatingMetric(Metric):
    """Shared machinery for metrics computed as per-axis reductions.

    The dense kernels accumulate one coordinate axis at a time into a
    distance-shaped output, so peak memory stays at the size of the result
    (plus one same-shaped scratch buffer) regardless of dimensionality.
    """

    def _accumulate(self, acc: np.ndarray, axis_abs_diff: np.ndarray) -> None:
        """Fold one axis's ``|a_j - b_j|`` into the running accumulator."""
        raise NotImplementedError

    def _finalize(self, acc: np.ndarray) -> np.ndarray:
        """Turn the accumulated per-axis folds into distances (in place)."""
        return acc

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = _as_float(a)
        b = _as_float(b)
        acc = np.zeros((a.shape[0], b.shape[0]), dtype=np.result_type(a, b))
        for axis in range(a.shape[1]):
            diff = a[:, axis, None] - b[None, :, axis]
            np.abs(diff, out=diff)
            self._accumulate(acc, diff)
        return self._finalize(acc)

    def block_cross_distances(
        self, pts_a: np.ndarray, pts_b: np.ndarray, workspace
    ) -> np.ndarray:
        g, p_a, d = pts_a.shape
        p_b = pts_b.shape[1]
        acc = workspace.take("bccp.cross", (g, p_a, p_b), dtype=pts_a.dtype)
        acc.fill(0.0)
        diff = workspace.take("bccp.axis", (g, p_a, p_b), dtype=pts_a.dtype)
        for axis in range(d):
            np.subtract(
                pts_a[:, :, None, axis], pts_b[:, None, :, axis], out=diff
            )
            np.abs(diff, out=diff)
            self._accumulate(acc, diff)
        return self._finalize(acc)


class ManhattanMetric(_AxisAccumulatingMetric):
    """L1 metric (cityblock / taxicab)."""

    name = "manhattan"

    def vector_norm(self, vector) -> float:
        return float(np.abs(np.asarray(vector, dtype=np.float64)).sum())

    def diff_norms(self, diff: np.ndarray) -> np.ndarray:
        return np.abs(diff).sum(axis=-1)

    def _accumulate(self, acc: np.ndarray, axis_abs_diff: np.ndarray) -> None:
        acc += axis_abs_diff


class ChebyshevMetric(_AxisAccumulatingMetric):
    """L∞ metric (maximum / chessboard)."""

    name = "chebyshev"

    def vector_norm(self, vector) -> float:
        vector = np.asarray(vector, dtype=np.float64)
        return float(np.abs(vector).max()) if vector.size else 0.0

    def diff_norms(self, diff: np.ndarray) -> np.ndarray:
        return np.abs(diff).max(axis=-1)

    def _accumulate(self, acc: np.ndarray, axis_abs_diff: np.ndarray) -> None:
        np.maximum(acc, axis_abs_diff, out=acc)


class MinkowskiMetric(_AxisAccumulatingMetric):
    """General Lp metric for a finite order ``p > 1`` (``p != 2``).

    Orders 1, 2 and ``inf`` canonicalize to the dedicated classes via
    :func:`resolve_metric`, which keeps their faster (and, for Euclidean,
    byte-stable) kernels in play.
    """

    name = "minkowski"

    def __init__(self, p: float) -> None:
        p = float(p)
        if not p >= 1.0 or math.isinf(p) or math.isnan(p):
            raise InvalidParameterError(
                f"minkowski order p must be a finite number >= 1, got {p!r}"
            )
        self.p = p

    def spec(self) -> str:
        p = self.p
        return f"minkowski:{int(p)}" if p == int(p) else f"minkowski:{p!r}"

    def __repr__(self) -> str:
        return f"MinkowskiMetric(p={self.p!r})"

    def vector_norm(self, vector) -> float:
        vector = np.asarray(vector, dtype=np.float64)
        return float((np.abs(vector) ** self.p).sum() ** (1.0 / self.p))

    def diff_norms(self, diff: np.ndarray) -> np.ndarray:
        return (np.abs(diff) ** self.p).sum(axis=-1) ** (1.0 / self.p)

    def _accumulate(self, acc: np.ndarray, axis_abs_diff: np.ndarray) -> None:
        axis_abs_diff **= self.p
        acc += axis_abs_diff

    def _finalize(self, acc: np.ndarray) -> np.ndarray:
        acc **= 1.0 / self.p
        return acc


#: The process-wide Euclidean metric — the default everywhere, and the one
#: the byte-identity guarantees are stated against.
EUCLIDEAN = EuclideanMetric()
MANHATTAN = ManhattanMetric()
CHEBYSHEV = ChebyshevMetric()

_NAMED_METRICS = {
    "euclidean": EUCLIDEAN,
    "l2": EUCLIDEAN,
    "manhattan": MANHATTAN,
    "l1": MANHATTAN,
    "cityblock": MANHATTAN,
    "taxicab": MANHATTAN,
    "chebyshev": CHEBYSHEV,
    "linf": CHEBYSHEV,
    "chessboard": CHEBYSHEV,
    "maximum": CHEBYSHEV,
}

#: Metric names accepted by CLIs / estimators (``minkowski`` additionally
#: takes an order, e.g. ``minkowski:3``).
METRIC_NAMES = ("euclidean", "manhattan", "chebyshev", "minkowski")


def resolve_metric(metric: MetricLike = None, *, p: Optional[float] = None) -> Metric:
    """Normalize a metric argument into a :class:`Metric` instance.

    Accepts ``None`` (Euclidean, the default), a :class:`Metric` instance
    (returned as-is), or a string: a metric name (``"euclidean"``/"l2"``,
    ``"manhattan"``/"l1"``/"cityblock"``, ``"chebyshev"``/"linf"``,
    ``"minkowski"``) optionally carrying the Minkowski order inline as
    ``"minkowski:p"``.  ``p`` may also be given as a keyword for the
    ``"minkowski"`` name.  Orders 1, 2 and ``inf`` canonicalize to the
    dedicated L1 / L2 / L∞ metrics.
    """
    if metric is None:
        metric = EUCLIDEAN
    if isinstance(metric, Metric):
        if p is not None and getattr(metric, "p", p) != p:
            raise InvalidParameterError(
                f"metric {metric.spec()!r} conflicts with explicit p={p!r}"
            )
        return metric
    if not isinstance(metric, str):
        raise InvalidParameterError(
            f"metric must be a name, a Metric instance or None, got {metric!r}"
        )
    name = metric.strip().lower()
    if ":" in name:
        name, _, inline_p = name.partition(":")
        name = name.strip()
        try:
            inline_value = float(inline_p.strip())
        except ValueError:
            raise InvalidParameterError(
                f"could not parse minkowski order from {metric!r}"
            ) from None
        if p is not None and p != inline_value:
            raise InvalidParameterError(
                f"metric {metric!r} conflicts with explicit p={p!r}"
            )
        p = inline_value
    if name == "minkowski":
        if p is None:
            raise InvalidParameterError(
                "minkowski metric needs an order: pass 'minkowski:p' or p=..."
            )
        if p == 1.0:
            return MANHATTAN
        if p == 2.0:
            return EUCLIDEAN
        if math.isinf(p) and p > 0:
            return CHEBYSHEV
        return MinkowskiMetric(p)
    resolved = _NAMED_METRICS.get(name)
    if resolved is None:
        raise InvalidParameterError(
            f"unknown metric {metric!r}; choose from {sorted(set(METRIC_NAMES))} "
            "(minkowski takes an order, e.g. 'minkowski:3')"
        )
    implicit_order = {
        "manhattan": 1.0,
        "euclidean": 2.0,
        "chebyshev": math.inf,
    }[resolved.name]
    if p is not None and p != implicit_order:
        raise InvalidParameterError(
            f"metric {metric!r} conflicts with order p={p!r} "
            f"(it is fixed at p={implicit_order!r})"
        )
    return resolved
