"""Growable NumPy buffer support shared by the array-backed containers.

:class:`~repro.mst.edges.EdgeList` and
:class:`~repro.dendrogram.structure.Dendrogram` both store their contents as
parallel flat arrays that grow by capacity doubling; this module holds the one
copy of that growth routine.

Growth policy (documented contract, pinned by ``tests/test_memory_budget.py``):

* capacity starts at the container's initial size and **doubles** until it
  covers the requested count — amortized O(1) appends, at most 2x
  over-allocation at any instant;
* growth never shrinks a buffer; ``as_arrays``-style accessors return
  zero-copy views over the live prefix of the (possibly oversized) buffers,
  and containers expose an explicit ``shrink_to_fit()`` for callers that want
  the over-allocation back;
* allocation is routed through the ambient
  :class:`~repro.core.budget.MemoryBudget`: under a bounded budget, buffers
  whose byte size crosses the budget's spill threshold are transparently
  backed by unlinked temporary-file memmaps (spill-to-disk) instead of RAM.
  Views handed out before a growth step remain valid either way — growth
  allocates a new buffer and copies the live prefix, it never resizes in
  place.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.budget import current_memory_budget


def ensure_capacity(obj, names: Sequence[str], count: int, needed: int) -> None:
    """Grow the named parallel buffer attributes of ``obj`` to ``needed`` slots.

    ``count`` is the number of live entries to preserve.  Buffers grow by
    doubling, so amortized append cost stays constant.  New storage comes from
    the ambient memory budget's allocator, which spills oversized buffers to
    disk under a bounded budget.
    """
    capacity = int(getattr(obj, names[0]).shape[0])
    if needed <= capacity:
        return
    while capacity < needed:
        capacity *= 2
    budget = current_memory_budget()
    for name in names:
        old = getattr(obj, name)
        grown = budget.allocate(capacity, old.dtype)
        grown[:count] = old[:count]
        setattr(obj, name, grown)


def shrink_buffers(obj, names: Sequence[str], count: int, minimum: int) -> None:
    """Trim the named parallel buffers of ``obj`` to their live prefix.

    The inverse of :func:`ensure_capacity`: re-allocates each buffer at
    ``max(count, minimum)`` slots and copies the live entries, releasing the
    doubling over-allocation (and any spill file backing it).  Existing views
    into the old buffers stay valid — they keep the old storage alive.
    """
    capacity = int(getattr(obj, names[0]).shape[0])
    target = max(int(count), int(minimum))
    if capacity <= target:
        return
    budget = current_memory_budget()
    for name in names:
        old = getattr(obj, name)
        trimmed = budget.allocate(target, old.dtype)
        trimmed[:count] = old[:count]
        setattr(obj, name, trimmed)


def buffers_nbytes(obj, names: Sequence[str]) -> int:
    """Total allocated bytes of the named buffers (capacity, not live count)."""
    return int(sum(getattr(obj, name).nbytes for name in names))


def readonly_view(array: np.ndarray, count: int) -> np.ndarray:
    """A non-writeable length-``count`` view of a live buffer.

    Containers hand out zero-copy views of their storage; marking them
    read-only turns accidental caller mutation into an error instead of
    silent corruption of the container's contents.
    """
    view = array[:count]
    view.flags.writeable = False
    return view
