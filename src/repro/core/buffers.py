"""Growable NumPy buffer support shared by the array-backed containers.

:class:`~repro.mst.edges.EdgeList` and
:class:`~repro.dendrogram.structure.Dendrogram` both store their contents as
parallel flat arrays that grow by capacity doubling; this module holds the one
copy of that growth routine.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ensure_capacity(obj, names: Sequence[str], count: int, needed: int) -> None:
    """Grow the named parallel buffer attributes of ``obj`` to ``needed`` slots.

    ``count`` is the number of live entries to preserve.  Buffers grow by
    doubling, so amortized append cost stays constant.
    """
    capacity = int(getattr(obj, names[0]).shape[0])
    if needed <= capacity:
        return
    while capacity < needed:
        capacity *= 2
    for name in names:
        old = getattr(obj, name)
        grown = np.empty(capacity, dtype=old.dtype)
        grown[:count] = old[:count]
        setattr(obj, name, grown)


def readonly_view(array: np.ndarray, count: int) -> np.ndarray:
    """A non-writeable length-``count`` view of a live buffer.

    Containers hand out zero-copy views of their storage; marking them
    read-only turns accidental caller mutation into an error instead of
    silent corruption of the container's contents.
    """
    view = array[:count]
    view.flags.writeable = False
    return view
