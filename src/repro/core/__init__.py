"""Core geometric utilities shared by every subsystem.

This subpackage holds the small, dependency-free building blocks the rest of
the library is written against: point-set validation, the pluggable metric
core and its distance kernels, bounding boxes and bounding spheres, and the
library's exception hierarchy.
"""

from repro.core.errors import (
    ReproError,
    InvalidParameterError,
    InvalidPointSetError,
    NotComputedError,
)
from repro.core.points import PointSet, as_points, open_memmap_points
from repro.core.budget import (
    MemoryBudget,
    current_memory_budget,
    format_memory_size,
    parse_memory_size,
    resolve_memory_budget,
    set_default_memory_budget,
    use_memory_budget,
)
from repro.core.backend import (
    BACKEND_NAMES,
    BackendFallbackWarning,
    KernelBackend,
    available_backends,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.core.metric import (
    CHEBYSHEV,
    EUCLIDEAN,
    MANHATTAN,
    METRIC_NAMES,
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
    resolve_metric,
)
from repro.core.distance import (
    euclidean,
    point_distance,
    pairwise_distances,
    cross_distances,
    closest_pair_bruteforce,
    squared_distances_to_point,
)
from repro.core.bounding import BoundingBox, BoundingSphere

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "InvalidPointSetError",
    "NotComputedError",
    "PointSet",
    "as_points",
    "open_memmap_points",
    "MemoryBudget",
    "current_memory_budget",
    "format_memory_size",
    "parse_memory_size",
    "resolve_memory_budget",
    "set_default_memory_budget",
    "use_memory_budget",
    "BACKEND_NAMES",
    "BackendFallbackWarning",
    "KernelBackend",
    "available_backends",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "EUCLIDEAN",
    "MANHATTAN",
    "CHEBYSHEV",
    "METRIC_NAMES",
    "resolve_metric",
    "euclidean",
    "point_distance",
    "pairwise_distances",
    "cross_distances",
    "closest_pair_bruteforce",
    "squared_distances_to_point",
    "BoundingBox",
    "BoundingSphere",
]
