"""Core geometric utilities shared by every subsystem.

This subpackage holds the small, dependency-free building blocks the rest of
the library is written against: point-set validation, Euclidean distance
kernels, bounding boxes and bounding spheres, and the library's exception
hierarchy.
"""

from repro.core.errors import (
    ReproError,
    InvalidParameterError,
    InvalidPointSetError,
    NotComputedError,
)
from repro.core.points import PointSet, as_points
from repro.core.distance import (
    euclidean,
    pairwise_distances,
    cross_distances,
    closest_pair_bruteforce,
    squared_distances_to_point,
)
from repro.core.bounding import BoundingBox, BoundingSphere

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "InvalidPointSetError",
    "NotComputedError",
    "PointSet",
    "as_points",
    "euclidean",
    "pairwise_distances",
    "cross_distances",
    "closest_pair_bruteforce",
    "squared_distances_to_point",
    "BoundingBox",
    "BoundingSphere",
]
