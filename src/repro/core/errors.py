"""Exception hierarchy for the library.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single base class.  The subclasses distinguish the three
failure modes a user can hit: bad parameters, a malformed input point set, and
asking for a result that has not been computed yet.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its documented domain (e.g. ``minPts < 1``)."""


class InvalidPointSetError(ReproError, ValueError):
    """The input point set is malformed (wrong shape, NaN values, empty)."""


class NotComputedError(ReproError, RuntimeError):
    """A derived result was requested before the producing step has run."""
