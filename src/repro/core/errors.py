"""Exception hierarchy for the library.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single base class.  The subclasses distinguish the
failure modes a user can hit: bad parameters, a malformed input point set,
asking for a result that has not been computed yet, and the fault-tolerance
failures introduced with :mod:`repro.resilience` — a checkpoint that cannot
be resumed (corrupt, or written by an incompatible run), a worker pool that
lost workers beyond what retries can absorb, and spill-to-disk I/O that
failed with no RAM fallback left.

:mod:`repro.errors` re-exports every class here as the public flat namespace.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its documented domain (e.g. ``minPts < 1``)."""


class InvalidPointSetError(ReproError, ValueError):
    """The input point set is malformed (wrong shape, NaN values, empty)."""


class NotComputedError(ReproError, RuntimeError):
    """A derived result was requested before the producing step has run."""


class CheckpointError(ReproError):
    """Base class for checkpoint/resume failures (never silently ignored)."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file is corrupt or truncated (checksum/format mismatch).

    Raised instead of ever resuming from damaged state; delete the checkpoint
    directory (or pass ``resume=False``) to restart from scratch.
    """


class CheckpointMismatchError(CheckpointError):
    """An existing checkpoint was written by an incompatible run.

    The manifest fingerprint (points hash, method, metric, backend, dtype,
    ``num_threads``, memory budget, engine version) does not match the
    current call, so resuming could silently produce wrong results; the
    mismatching fields are listed in the message.
    """


class FitStateError(ReproError):
    """A saved serving state could not be used.

    Raised by :mod:`repro.serve` when a ``.npz`` fit-state file is corrupt
    (truncated, missing arrays, or failing its per-array checksums) or was
    written by an incompatible run (engine version, metric, backend, dtype or
    points hash mismatch).  Loading never silently proceeds on damaged or
    mismatched state; refit and re-save instead.
    """


class WorkerFailedError(ReproError, RuntimeError):
    """The worker pool could not complete a batch.

    Raised when worker deaths exhausted the retry budget (including the
    serial fallback) or a task exceeded its ``task_timeout`` — never by
    hanging.  The pool is marked unhealthy so :func:`repro.parallel.pool.
    get_pool` rebuilds it on the next use.
    """


class SpillIOError(ReproError, OSError):
    """Spilling a buffer to disk failed and the RAM fallback failed too."""
