"""Numba-jitted hot kernels for the compiled backend (import-gated).

This module compiles the three kernels the profile says dominate — the
pairwise-distance block, the BCCP inner loop and the brute-force k-NN
selection — as ``@njit(cache=True, nogil=True)`` functions.  ``nogil`` makes
them parallel-safe inside the existing :class:`~repro.parallel.pool.WorkerPool`
shards (the pool's threads run them truly concurrently, like NumPy's own
GIL-releasing C kernels), and ``cache=True`` persists the compiled machine
code next to the source so only the first process ever pays the JIT cost.

The metric is passed *by code*, not by object: ``MODE_EUCLIDEAN`` /
``MODE_MANHATTAN`` / ``MODE_CHEBYSHEV`` / ``MODE_MINKOWSKI`` plus a float
order ``p`` (ignored except for Minkowski).  A metric the codes cannot
express makes :func:`repro.core.backend.metric_mode` return ``None`` and the
backend falls back to the metric's own NumPy kernels, so custom
:class:`~repro.core.metric.Metric` subclasses keep working on every backend.

Precision notes: the jitted Euclidean kernel accumulates squared coordinate
differences directly (difference-and-norm), which is *more* accurate than the
BLAS expansion trick the NumPy kernels use but not bit-identical to it.  The
quantities computed here are only ever used to *select* winners (BCCP argmin
rows, k-NN neighbour sets); the reported MST edge weights always come from
the shared exact float64 re-evaluation, so exact float64 results agree with
the NumPy backend whenever the selection is unambiguous (ties at the level of
the expansion's rounding are the only way to differ, and the conformance
matrix pins agreement on its datasets).

Importing this module raises ``ImportError`` when numba is absent; only
:mod:`repro.core.backend` imports it, inside a guard.
"""

from __future__ import annotations

import numpy as np
from numba import njit

#: Metric codes understood by the kernels (must stay in sync with
#: :func:`repro.core.backend.metric_mode`).
MODE_EUCLIDEAN = 0
MODE_MANHATTAN = 1
MODE_CHEBYSHEV = 2
MODE_MINKOWSKI = 3

_JIT = dict(cache=True, nogil=True)


@njit(inline="always", **_JIT)
def _point_distance(points_a, ia, points_b, ib, mode, p):
    """Distance between row ``ia`` of ``points_a`` and row ``ib`` of ``points_b``."""
    d = points_a.shape[1]
    if mode == MODE_EUCLIDEAN:
        acc = 0.0
        for axis in range(d):
            diff = points_a[ia, axis] - points_b[ib, axis]
            acc += diff * diff
        return np.sqrt(acc)
    if mode == MODE_MANHATTAN:
        acc = 0.0
        for axis in range(d):
            acc += abs(points_a[ia, axis] - points_b[ib, axis])
        return acc
    if mode == MODE_CHEBYSHEV:
        acc = 0.0
        for axis in range(d):
            diff = abs(points_a[ia, axis] - points_b[ib, axis])
            if diff > acc:
                acc = diff
        return acc
    acc = 0.0
    for axis in range(d):
        acc += abs(points_a[ia, axis] - points_b[ib, axis]) ** p
    return acc ** (1.0 / p)


@njit(**_JIT)
def cross_distances_kernel(a, b, mode, p, out):
    """Dense ``(len(a), len(b))`` distance matrix into the preallocated ``out``."""
    for i in range(a.shape[0]):
        for j in range(b.shape[0]):
            out[i, j] = _point_distance(a, i, b, j, mode, p)


@njit(**_JIT)
def bccp_pairs_kernel(
    points,
    perm,
    start_a,
    size_a,
    start_b,
    size_b,
    core_distances,
    use_cd,
    mode,
    p,
    out_pa,
    out_pb,
):
    """BCCP (or BCCP* when ``use_cd``) winners of a chunk of node pairs.

    For each pair ``r`` the loop scans ``|A_r| * |B_r|`` candidates and keeps
    the strict row-major first minimum — the same winner the padded-tensor
    ``argmin`` of the NumPy backend selects — without ever materializing the
    distance tensor, which is where the compiled speedup comes from.
    ``core_distances`` must be a length-1 dummy when ``use_cd`` is false.
    """
    for r in range(start_a.shape[0]):
        best = np.inf
        best_u = np.int64(-1)
        best_v = np.int64(-1)
        for ii in range(size_a[r]):
            u = perm[start_a[r] + ii]
            cd_u = core_distances[u] if use_cd else 0.0
            for jj in range(size_b[r]):
                v = perm[start_b[r] + jj]
                dist = _point_distance(points, u, points, v, mode, p)
                if use_cd:
                    if cd_u > dist:
                        dist = cd_u
                    cd_v = core_distances[v]
                    if cd_v > dist:
                        dist = cd_v
                if dist < best:
                    best = dist
                    best_u = u
                    best_v = v
        out_pa[r] = best_u
        out_pb[r] = best_v


@njit(**_JIT)
def knn_chunk_kernel(queries, data, k, mode, p, out_idx, out_dist):
    """Exact k smallest distances from each query row to every data row.

    Per query, a bounded insertion list (sorted ascending) replaces the
    NumPy ``argpartition`` + sort; neighbours come out already ordered by
    increasing distance.  O(n log k)-ish with small constants — and no
    ``(rows, n)`` distance matrix is ever materialized.
    """
    n = data.shape[0]
    for qi in range(queries.shape[0]):
        count = 0
        worst = np.inf
        for j in range(n):
            dist = _point_distance(queries, qi, data, j, mode, p)
            if count < k:
                # Insertion into the not-yet-full list.
                pos = count
                while pos > 0 and out_dist[qi, pos - 1] > dist:
                    out_dist[qi, pos] = out_dist[qi, pos - 1]
                    out_idx[qi, pos] = out_idx[qi, pos - 1]
                    pos -= 1
                out_dist[qi, pos] = dist
                out_idx[qi, pos] = j
                count += 1
                worst = out_dist[qi, count - 1]
            elif dist < worst:
                pos = k - 1
                while pos > 0 and out_dist[qi, pos - 1] > dist:
                    out_dist[qi, pos] = out_dist[qi, pos - 1]
                    out_idx[qi, pos] = out_idx[qi, pos - 1]
                    pos -= 1
                out_dist[qi, pos] = dist
                out_idx[qi, pos] = j
                worst = out_dist[qi, k - 1]


def warmup(dtype=np.float64) -> None:
    """Compile (or load from cache) every kernel for ``dtype`` points.

    Benchmarks call this before timing so the first measured iteration is not
    a JIT compilation.
    """
    pts = np.zeros((2, 2), dtype=dtype)
    out = np.zeros((2, 2), dtype=dtype)
    cross_distances_kernel(pts, pts, MODE_EUCLIDEAN, 2.0, out)
    perm = np.arange(2, dtype=np.int64)
    one = np.zeros(1, dtype=np.int64)
    two = np.full(1, 2, dtype=np.int64)
    pa = np.empty(1, dtype=np.int64)
    pb = np.empty(1, dtype=np.int64)
    cd = np.zeros(2, dtype=dtype)
    bccp_pairs_kernel(
        pts, perm, one, two, one, two, cd, True, MODE_EUCLIDEAN, 2.0, pa, pb
    )
    oidx = np.empty((2, 1), dtype=np.int64)
    odist = np.empty((2, 1), dtype=dtype)
    knn_chunk_kernel(pts, pts, 1, MODE_EUCLIDEAN, 2.0, oidx, odist)
