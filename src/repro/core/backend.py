"""Compiled-kernel backend registry with float32 lowering.

The Metric refactor made distance computation a seam; this module makes the
*implementation* of the hot kernels behind that seam pluggable.  A
:class:`KernelBackend` bundles the three kernels the profile says dominate —
the pairwise-distance block, the BCCP argmin inner loop, and the brute-force
k-NN selection — together with a **scoring dtype**:

* ``numpy`` — the default backend.  Pure delegation to the metric's own
  vectorized kernels; bit-for-bit the engine the byte-identity guarantees
  are stated against.
* ``numba`` — the same kernels JIT-compiled by numba (``cache=True``,
  ``nogil=True`` so they run truly concurrently inside the existing
  :class:`~repro.parallel.pool.WorkerPool` shards).  Optional: when numba is
  not installed the backend reports unavailable and resolution falls back to
  ``numpy`` with a :class:`BackendFallbackWarning` — selecting it never
  breaks an import or a run.
* ``numpy-f32`` / ``numba-f32`` — the *lowered* variants: candidate scoring
  (tree build, WSPD frontier masks, BCCP tensors, k-NN folds) runs on a
  float32 copy of the points, halving the memory traffic of the
  bandwidth-bound kernels, and only the surviving winners (MST edge
  endpoints, selected neighbours) are re-evaluated in exact float64.

Contract: backends whose scoring dtype is float64 are **exact** — they must
select the same trees the default backend selects (pinned by the conformance
matrix; only exact ties at the level of kernel rounding could differ, and the
reported edge weights always come from the shared exact float64 kernel
either way).  Lowered (float32-scoring) backends are contractually
*approximate*: selections may differ within float32 resolution, and the
conformance matrix gates them with bounded weight/edge agreement instead of
byte-identity — the same shape of guarantee the (1+eps) subsystem uses.

Selection order: per-call ``backend=`` argument > ambient default (set via
:func:`set_default_backend` / the :func:`use_backend` context manager) >
the ``REPRO_BACKEND`` environment variable read once at import > ``numpy``.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.metric import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
)

try:  # The compiled kernels are optional; everything degrades to numpy.
    from repro.core import _numba_kernels

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised by the no-numba CI leg
    _numba_kernels = None
    HAVE_NUMBA = False

BackendLike = Union[None, str, "KernelBackend"]


class BackendFallbackWarning(RuntimeWarning):
    """Warned when a requested backend is unavailable and numpy substitutes."""


def metric_mode(metric: Metric) -> Optional[Tuple[int, float]]:
    """Map a metric onto the compiled kernels' ``(mode, p)`` codes.

    Returns ``None`` for metrics the compiled kernels cannot express (custom
    :class:`Metric` subclasses); the numba backend then falls back to the
    metric's own NumPy kernels for that call.
    """
    if _numba_kernels is None:
        return None
    if type(metric) is EuclideanMetric:
        return _numba_kernels.MODE_EUCLIDEAN, 2.0
    if type(metric) is ManhattanMetric:
        return _numba_kernels.MODE_MANHATTAN, 1.0
    if type(metric) is ChebyshevMetric:
        return _numba_kernels.MODE_CHEBYSHEV, float("inf")
    if type(metric) is MinkowskiMetric:
        return _numba_kernels.MODE_MINKOWSKI, float(metric.p)
    return None


class KernelBackend:
    """The numpy backend: delegation to the metric's vectorized kernels.

    Subclasses override individual kernels; everything they do not override
    keeps the default NumPy path, so a backend only has to accelerate what it
    can and correctness never depends on coverage.

    Parameters
    ----------
    name:
        Registry name (``"numpy"``, ``"numpy-f32"``, …).
    scoring_dtype:
        dtype the *candidate-scoring* kernels run in.  float64 backends are
        exact; float32 backends are the lowered fast path (winners are still
        re-evaluated in float64 by the callers' exact-weight kernels).
    """

    def __init__(self, name: str, scoring_dtype=np.float64) -> None:
        self.name = name
        self.scoring_dtype = np.dtype(scoring_dtype)

    # -- identity ------------------------------------------------------------

    @property
    def lowered(self) -> bool:
        """Whether candidate scoring runs in float32 (approximate contract)."""
        return self.scoring_dtype == np.float32

    @property
    def exact(self) -> bool:
        """Whether the backend honours the byte-identity contract."""
        return not self.lowered

    def available(self) -> bool:
        """Whether the backend can run in this process (numpy always can)."""
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    # -- dtype lowering ------------------------------------------------------

    def lower_points(self, points: np.ndarray) -> np.ndarray:
        """The scoring-precision view of a point array.

        Exact backends return the input unchanged (no copy); lowered backends
        return a C-contiguous float32 copy (also no copy when the input is
        already float32, which is what the dtype-preserving
        :func:`~repro.core.points.as_points` boundary enables for embedding
        workloads).
        """
        if points.dtype == self.scoring_dtype and points.flags["C_CONTIGUOUS"]:
            return points
        return np.ascontiguousarray(points, dtype=self.scoring_dtype)

    # -- hot kernels ---------------------------------------------------------

    def cross_distances(
        self, metric: Metric, a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """Dense pairwise-distance block between two point arrays."""
        return metric.cross_distances(a, b)

    def bccp_class(
        self,
        metric: Metric,
        points: np.ndarray,
        perm: np.ndarray,
        core_distances: Optional[np.ndarray],
        start_a: np.ndarray,
        size_a: np.ndarray,
        start_b: np.ndarray,
        size_b: np.ndarray,
        p_a: int,
        p_b: int,
        rows: np.ndarray,
        out_pa: np.ndarray,
        out_pb: np.ndarray,
        workspace,
    ) -> None:
        """Resolve one padded size class of BCCP node pairs.

        ``points`` is the tree's *scoring* array (float32 under a lowered
        backend); winners land in ``out_pa`` / ``out_pb`` at ``rows`` and the
        caller re-evaluates their weights exactly in float64.  The NumPy
        implementation is the padded-tensor argmin the engine has always
        used: padded slots repeat the node's first point and are masked to
        ``+inf``, so the row-major argmin matches the scalar kernel's
        tie-breaking bit for bit.
        """
        g = rows.size
        cols_a = np.arange(p_a, dtype=np.int64)
        cols_b = np.arange(p_b, dtype=np.int64)
        mask_a = cols_a[None, :] >= size_a[:, None]
        mask_b = cols_b[None, :] >= size_b[:, None]
        idx_a = perm[start_a[:, None] + np.where(mask_a, 0, cols_a[None, :])]
        idx_b = perm[start_b[:, None] + np.where(mask_b, 0, cols_b[None, :])]

        pts_a = points[idx_a]  # (g, p_a, d)
        pts_b = points[idx_b]  # (g, p_b, d)
        # The metric's block kernel applies the same expansion, summation
        # kernels and rounding as its scalar ``cross_distances`` (for
        # Euclidean: einsum row norms, BLAS matmul cross terms, clamp, sqrt),
        # so the minimized values — and therefore the argmin tie-breaking —
        # agree with the scalar kernel bit-for-bit.  The distance tensor —
        # the largest temporary — lives in the calling thread's reusable
        # workspace, so each pool worker allocates it once across all its
        # class chunks.
        dist = metric.block_cross_distances(pts_a, pts_b, workspace)
        if core_distances is not None:
            np.maximum(dist, core_distances[idx_a][:, :, None], out=dist)
            np.maximum(dist, core_distances[idx_b][:, None, :], out=dist)
        dist[np.broadcast_to(mask_a[:, :, None], dist.shape)] = np.inf
        dist[np.broadcast_to(mask_b[:, None, :], dist.shape)] = np.inf

        winners = np.argmin(dist.reshape(g, p_a * p_b), axis=1)
        win_i, win_j = np.divmod(winners, p_b)
        arange_g = np.arange(g, dtype=np.int64)
        out_pa[rows] = idx_a[arange_g, win_i]
        out_pb[rows] = idx_b[arange_g, win_j]

    def knn_chunk(
        self, metric: Metric, queries: np.ndarray, data: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """k smallest distances from each query row to every data row.

        Returns ``(indices, distances)`` of shape ``(len(queries), k)``,
        sorted by increasing distance.  One chunk materializes a
        ``(len(queries), len(data))`` distance block; ``argpartition``
        selects the k smallest before a final stable sort of only those k.
        """
        dists = self.cross_distances(metric, queries, data)
        part = np.argpartition(dists, k - 1, axis=1)[:, :k]
        rows = np.arange(queries.shape[0])[:, None]
        part_d = dists[rows, part]
        order = np.argsort(part_d, axis=1, kind="stable")
        return part[rows, order], part_d[rows, order]


class NumbaKernelBackend(KernelBackend):
    """Numba-jitted kernels; metric-general via the ``(mode, p)`` codes.

    Metrics the codes cannot express (custom subclasses) transparently fall
    back to the NumPy kernels call by call.  All jitted kernels run with
    ``nogil=True``, so WorkerPool shards execute them concurrently exactly
    like the NumPy C kernels they replace.
    """

    def available(self) -> bool:
        # The "no-numba" fault simulates numba import failure mid-session:
        # while armed, the compiled backend reports itself unavailable, so
        # resolution takes the documented numpy-fallback path (with its
        # BackendFallbackWarning) — the chaos suite pins that down.
        from repro.resilience.faults import fault_enabled

        if fault_enabled("no-numba"):
            return False
        return HAVE_NUMBA

    def warmup(self) -> None:
        """Pre-compile (or load the on-disk cache of) every kernel."""
        _numba_kernels.warmup(self.scoring_dtype)

    def cross_distances(
        self, metric: Metric, a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        mode = metric_mode(metric)
        if mode is None:
            return super().cross_distances(metric, a, b)
        a = np.ascontiguousarray(a)
        b = np.ascontiguousarray(b)
        out = np.empty((a.shape[0], b.shape[0]), dtype=np.result_type(a, b))
        _numba_kernels.cross_distances_kernel(a, b, mode[0], mode[1], out)
        return out

    def bccp_class(
        self,
        metric: Metric,
        points: np.ndarray,
        perm: np.ndarray,
        core_distances: Optional[np.ndarray],
        start_a: np.ndarray,
        size_a: np.ndarray,
        start_b: np.ndarray,
        size_b: np.ndarray,
        p_a: int,
        p_b: int,
        rows: np.ndarray,
        out_pa: np.ndarray,
        out_pb: np.ndarray,
        workspace,
    ) -> None:
        mode = metric_mode(metric)
        if mode is None:
            super().bccp_class(
                metric, points, perm, core_distances, start_a, size_a,
                start_b, size_b, p_a, p_b, rows, out_pa, out_pb, workspace,
            )
            return
        # The compiled loop scans candidates directly: no padding, no
        # distance tensor, same strict row-major first-minimum tie-breaking
        # as the padded argmin.
        use_cd = core_distances is not None
        if use_cd:
            cd = np.ascontiguousarray(core_distances, dtype=points.dtype)
        else:
            cd = np.zeros(1, dtype=points.dtype)
        chunk_pa = np.empty(rows.size, dtype=np.int64)
        chunk_pb = np.empty(rows.size, dtype=np.int64)
        _numba_kernels.bccp_pairs_kernel(
            points, perm, start_a, size_a, start_b, size_b,
            cd, use_cd, mode[0], mode[1], chunk_pa, chunk_pb,
        )
        out_pa[rows] = chunk_pa
        out_pb[rows] = chunk_pb

    def knn_chunk(
        self, metric: Metric, queries: np.ndarray, data: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        mode = metric_mode(metric)
        if mode is None:
            return super().knn_chunk(metric, queries, data, k)
        queries = np.ascontiguousarray(queries)
        data = np.ascontiguousarray(data)
        out_idx = np.empty((queries.shape[0], k), dtype=np.int64)
        out_dist = np.empty(
            (queries.shape[0], k), dtype=np.result_type(queries, data)
        )
        _numba_kernels.knn_chunk_kernel(
            queries, data, k, mode[0], mode[1], out_idx, out_dist
        )
        return out_idx, out_dist


#: The registry.  Order matters only for documentation; lookups are by name.
BACKENDS = {
    "numpy": KernelBackend("numpy", np.float64),
    "numpy-f32": KernelBackend("numpy-f32", np.float32),
    "numba": NumbaKernelBackend("numba", np.float64),
    "numba-f32": NumbaKernelBackend("numba-f32", np.float32),
}

#: Backend names accepted by CLIs / estimators.
BACKEND_NAMES = tuple(BACKENDS)

#: Substitution table for unavailable compiled backends (same contract,
#: interpreted kernels).
_FALLBACKS = {"numba": "numpy", "numba-f32": "numpy-f32"}


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that can actually run in this process."""
    return tuple(
        name for name, backend in BACKENDS.items() if backend.available()
    )


def resolve_backend(backend: BackendLike = None) -> KernelBackend:
    """Normalize a backend argument into a usable :class:`KernelBackend`.

    ``None`` means the ambient default (see :func:`set_default_backend` /
    :func:`use_backend`; initialized from ``REPRO_BACKEND`` at import).  An
    unknown name raises listing the available backends; a known-but-
    unavailable backend (numba not installed) falls back to its numpy
    equivalent with a :class:`BackendFallbackWarning` — never an error, so
    environments without numba run everything, just slower.
    """
    if backend is None:
        return _default_backend
    if isinstance(backend, KernelBackend):
        resolved = backend
    elif isinstance(backend, str):
        resolved = BACKENDS.get(backend.strip().lower())
        if resolved is None:
            raise InvalidParameterError(
                f"unknown backend {backend!r}; available backends: "
                f"{sorted(available_backends())} "
                f"(registered: {sorted(BACKEND_NAMES)})"
            )
    else:
        raise InvalidParameterError(
            f"backend must be a name, a KernelBackend instance or None, "
            f"got {backend!r}"
        )
    if not resolved.available():
        substitute = BACKENDS[_FALLBACKS.get(resolved.name, "numpy")]
        warnings.warn(
            f"backend {resolved.name!r} is not available in this environment "
            f"(numba is not installed); falling back to {substitute.name!r}",
            BackendFallbackWarning,
            stacklevel=2,
        )
        return substitute
    return resolved


def get_default_backend() -> KernelBackend:
    """The ambient default backend new trees and calls resolve to."""
    return _default_backend


def set_default_backend(backend: BackendLike) -> KernelBackend:
    """Set (and return) the ambient default backend.

    Accepts anything :func:`resolve_backend` accepts except ``None``.
    """
    global _default_backend
    if backend is None:
        raise InvalidParameterError(
            "set_default_backend needs a backend name or instance; "
            "to reset, pass 'numpy'"
        )
    _default_backend = resolve_backend(backend)
    return _default_backend


@contextmanager
def use_backend(backend: BackendLike):
    """Context manager scoping the ambient default backend.

    ``use_backend(None)`` is a no-op scope (keeps the current default), which
    is what lets the public entry points wrap their whole pipeline
    unconditionally::

        with use_backend(backend):   # backend=None -> ambient default
            ... build trees, run kernels ...
    """
    global _default_backend
    previous = _default_backend
    if backend is not None:
        _default_backend = resolve_backend(backend)
    try:
        yield _default_backend
    finally:
        _default_backend = previous


def _initial_default() -> KernelBackend:
    """Resolve the import-time default from the ``REPRO_BACKEND`` env var.

    A bad name in the environment warns and keeps numpy rather than making
    the package unimportable.
    """
    spec = os.environ.get("REPRO_BACKEND", "").strip()
    if not spec:
        return BACKENDS["numpy"]
    try:
        return resolve_backend(spec)
    except InvalidParameterError as error:
        warnings.warn(
            f"ignoring REPRO_BACKEND: {error}", BackendFallbackWarning,
            stacklevel=2,
        )
        return BACKENDS["numpy"]


_default_backend = _initial_default()
