"""Euclidean distance kernels.

These are the only distance computations used anywhere in the library, so the
cost accounting in :mod:`repro.parallel.scheduler` can charge work in units of
"distance evaluations" consistently.
"""

from __future__ import annotations

import numpy as np


def euclidean(p, q) -> float:
    """Euclidean distance between two points given as 1-d coordinate arrays.

    Called in tight loops from the BCCP and k-NN paths, so inputs that are
    already float64 ndarrays skip the ``asarray`` round-trip.
    """
    if not (isinstance(p, np.ndarray) and p.dtype == np.float64):
        p = np.asarray(p, dtype=np.float64)
    if not (isinstance(q, np.ndarray) and q.dtype == np.float64):
        q = np.asarray(q, dtype=np.float64)
    diff = p - q
    return float(np.sqrt(np.dot(diff, diff)))


def squared_distances_to_point(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from every row of ``points`` to ``query``."""
    diff = points - query
    return np.einsum("ij,ij->i", diff, diff)


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` Euclidean distance matrix of a point set."""
    return cross_distances(points, points)


def cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(len(a), len(b))`` matrix of Euclidean distances between two sets.

    Uses the expansion ``|x - y|^2 = |x|^2 + |y|^2 - 2 x.y`` so the whole
    computation is a single matrix product; negative values produced by
    floating-point cancellation are clamped to zero before the square root.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_sq = np.einsum("ij,ij->i", a, a)
    b_sq = np.einsum("ij,ij->i", b, b)
    sq = a_sq[:, None] + b_sq[None, :] - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def exact_edge_weights(
    points: np.ndarray,
    index_a: np.ndarray,
    index_b: np.ndarray,
    core_distances=None,
) -> np.ndarray:
    """Cancellation-safe edge weights for parallel arrays of point indices.

    The matrix kernels (:func:`cross_distances` and the batched BCCP kernel)
    use the ``|x|^2 + |y|^2 - 2 x.y`` expansion, which loses a few digits to
    cancellation; MST edge weights must be exact, so the winning pairs are
    re-evaluated with a direct difference-and-norm pass.  With
    ``core_distances`` the returned weight is the mutual reachability distance
    ``max(cd(u), cd(v), d(u, v))``.  This is the single exact kernel shared by
    the scalar and batched BCCP/BCCP* paths.
    """
    index_a = np.asarray(index_a, dtype=np.int64)
    index_b = np.asarray(index_b, dtype=np.int64)
    diff = points[index_a] - points[index_b]
    # Batched row-wise dot products (BLAS), bit-identical to the historical
    # per-edge ``np.linalg.norm(diff)`` — a SIMD ``einsum`` sum is not.
    weights = np.sqrt(np.matmul(diff[:, None, :], diff[:, :, None])[:, 0, 0])
    if core_distances is not None:
        np.maximum(weights, core_distances[index_a], out=weights)
        np.maximum(weights, core_distances[index_b], out=weights)
    return weights


def closest_pair_bruteforce(a: np.ndarray, b: np.ndarray):
    """Bichromatic closest pair by exhaustive search.

    Returns ``(i, j, distance)`` where ``i`` indexes ``a`` and ``j`` indexes
    ``b``.  This is the reference the kd-tree/WSPD BCCP implementations are
    tested against.
    """
    dists = cross_distances(a, b)
    flat = int(np.argmin(dists))
    i, j = divmod(flat, dists.shape[1])
    return i, j, float(dists[i, j])
