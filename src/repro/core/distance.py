"""Distance kernels: thin dispatchers over the pluggable metric core.

Historically this module *was* the geometry of the library — hardcoded
Euclidean kernels.  The kernels now live on :class:`repro.core.metric.Metric`
implementations; the functions here keep the established call signatures and
dispatch to a metric (Euclidean by default, so every existing caller gets the
exact same code path bit for bit).  The cost accounting in
:mod:`repro.parallel.scheduler` still charges work in units of "distance
evaluations" regardless of the metric.
"""

from __future__ import annotations

import numpy as np

from repro.core.metric import EUCLIDEAN, MetricLike, resolve_metric


def euclidean(p, q) -> float:
    """Euclidean distance between two points given as 1-d coordinate arrays.

    Called in tight loops from the BCCP and k-NN paths, so inputs that are
    already float64 ndarrays skip the ``asarray`` round-trip.
    """
    return EUCLIDEAN.point_distance(p, q)


def point_distance(p, q, metric: MetricLike = None) -> float:
    """Distance between two points under ``metric`` (Euclidean by default)."""
    return resolve_metric(metric).point_distance(p, q)


def squared_distances_to_point(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from every row of ``points`` to ``query``.

    This is the Euclidean-only internal comparison-space fast path
    ("sqeuclidean"); metric-general callers use
    :meth:`Metric.distances_to_point` instead.
    """
    return EUCLIDEAN.squared_distances_to_point(points, query)


def pairwise_distances(points: np.ndarray, metric: MetricLike = None) -> np.ndarray:
    """Full ``(n, n)`` distance matrix of a point set under ``metric``."""
    return resolve_metric(metric).pairwise_distances(points)


def cross_distances(
    a: np.ndarray, b: np.ndarray, metric: MetricLike = None
) -> np.ndarray:
    """``(len(a), len(b))`` matrix of distances between two sets.

    The Euclidean default uses the expansion ``|x - y|^2 = |x|^2 + |y|^2 -
    2 x.y`` so the whole computation is a single matrix product; negative
    values produced by floating-point cancellation are clamped to zero before
    the square root.  Non-Euclidean metrics accumulate one coordinate axis at
    a time, so peak memory matches the Euclidean kernel.
    """
    return resolve_metric(metric).cross_distances(a, b)


def exact_edge_weights(
    points: np.ndarray,
    index_a: np.ndarray,
    index_b: np.ndarray,
    core_distances=None,
    metric: MetricLike = None,
) -> np.ndarray:
    """Cancellation-safe edge weights for parallel arrays of point indices.

    The matrix kernels (:func:`cross_distances` and the batched BCCP kernel)
    may trade a few digits for batching; MST edge weights must be exact, so
    the winning pairs are re-evaluated with a direct difference-and-norm
    pass.  With ``core_distances`` the returned weight is the mutual
    reachability distance ``max(cd(u), cd(v), d(u, v))``.  This is the single
    exact kernel shared by the scalar and batched BCCP/BCCP* paths.
    """
    return resolve_metric(metric).exact_edge_weights(
        points, index_a, index_b, core_distances
    )


def closest_pair_bruteforce(a: np.ndarray, b: np.ndarray, metric: MetricLike = None):
    """Bichromatic closest pair by exhaustive search.

    Returns ``(i, j, distance)`` where ``i`` indexes ``a`` and ``j`` indexes
    ``b``.  This is the reference the kd-tree/WSPD BCCP implementations are
    tested against.
    """
    dists = resolve_metric(metric).cross_distances(a, b)
    flat = int(np.argmin(dists))
    i, j = divmod(flat, dists.shape[1])
    return i, j, float(dists[i, j])
