"""Point-set container and validation.

Every *algorithm* in the library takes an ``(n, d)`` float64 array of points:
the public entry points (``emst``, ``hdbscan``, the estimators) call
:func:`as_points` with its default ``dtype=np.float64``, which promotes
whatever the user supplied — this is where float32 embedding matrices are
upcast, deliberately and exactly once, so every exact kernel downstream
(edge-weight re-evaluation, metric scalar paths) runs in full precision.

Code that wants to *keep* a float32 input in float32 — the lowered kernel
backends of :mod:`repro.core.backend`, user pre-processing pipelines — passes
``dtype=None``, which preserves a float32 or float64 input instead of
silently upcasting.  :class:`PointSet` preserves the input dtype the same
way, so wrapping an embedding matrix no longer doubles its memory.

:class:`PointSet` is a light wrapper that carries the array together with a
few cached summary statistics (bounding box, number of points,
dimensionality) that several algorithms need.

Out-of-core inputs: a C-contiguous float64 ``np.memmap`` (e.g. an
``np.load(..., mmap_mode='r')`` of an ``.npy`` file) passes through
:func:`as_points` **without being copied into RAM** — validation streams the
finiteness check in fixed-size slices instead of materializing one
array-sized temporary, and the canonicalization step only copies when dtype
or layout actually require it.  :func:`open_memmap_points` is the validated
loader the CLI uses for ``.npy`` inputs under a memory budget.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.errors import InvalidPointSetError

#: Rows per slice of the streamed finiteness check; sized so one slice's
#: boolean temporary stays a few MB even for wide points.
_FINITE_CHECK_ROWS = 1 << 18


def _all_finite(array: np.ndarray) -> bool:
    """``np.all(np.isfinite(array))`` evaluated in bounded-memory slices.

    One shot for small arrays; for large (possibly memory-mapped) inputs the
    check walks fixed row slices so the temporary stays bounded and a memmap
    is streamed once instead of pulled into RAM alongside a same-sized bool
    array.
    """
    if array.ndim != 2 or array.shape[0] <= _FINITE_CHECK_ROWS:
        return bool(np.all(np.isfinite(array)))
    for start in range(0, array.shape[0], _FINITE_CHECK_ROWS):
        if not np.all(np.isfinite(array[start : start + _FINITE_CHECK_ROWS])):
            return False
    return True


def as_points(
    points,
    *,
    copy: bool = False,
    min_points: int = 1,
    dtype: Optional[np.dtype] = np.float64,
) -> np.ndarray:
    """Validate and normalize ``points`` into an ``(n, d)`` float array.

    Parameters
    ----------
    points:
        Anything ``np.asarray`` accepts: a list of coordinate tuples, an
        existing NumPy array, a :class:`PointSet`, etc.
    copy:
        If true, always return a fresh array even when the input is already in
        canonical form.
    min_points:
        Minimum number of rows required; most algorithms need at least one
        point and MST-style algorithms need at least two.
    dtype:
        ``np.float64`` (the default) reproduces the historical
        promote-everything boundary the exact engine is specified against.
        ``None`` preserves a float32 (or float64) input's dtype instead of
        silently upcasting — any other input dtype still promotes to
        float64.  ``np.float32`` forces the lowered precision.

    Raises
    ------
    InvalidPointSetError
        If the array is not two-dimensional, has zero columns, has fewer than
        ``min_points`` rows, contains non-finite values, or ``dtype`` is not
        float32/float64/None.
    """
    if isinstance(points, PointSet):
        array = points.coordinates
    else:
        try:
            array = np.asarray(points)
            if not np.issubdtype(array.dtype, np.floating):
                array = np.asarray(array, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise InvalidPointSetError(
                f"points could not be converted to a float array: {error}"
            ) from None
    if dtype is None:
        target = np.dtype(np.float32 if array.dtype == np.float32 else np.float64)
    else:
        target = np.dtype(dtype)
        if target not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise InvalidPointSetError(
                f"dtype must be float32, float64 or None, got {dtype!r}"
            )
    if array.size == 0:
        raise InvalidPointSetError(
            "points is empty; provide at least one point as an (n, d) array"
        )
    if array.ndim == 1:
        # A flat list of scalars is ambiguous; treat it as n one-dimensional
        # points, which is the only meaningful interpretation.
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise InvalidPointSetError(
            f"points must be a 2-d array of shape (n, d); got ndim={array.ndim}"
        )
    n, d = array.shape
    if d == 0:
        raise InvalidPointSetError("points must have at least one coordinate dimension")
    if n < min_points:
        raise InvalidPointSetError(
            f"at least {min_points} point(s) required; got {n}"
        )
    if not _all_finite(array):
        raise InvalidPointSetError("points must not contain NaN or infinite values")
    if copy:
        array = np.array(array, dtype=target, order="C", copy=True)
    elif array.dtype != target or not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array, dtype=target)
    return array


def open_memmap_points(path, *, mmap_mode: str = "r") -> np.ndarray:
    """Open an ``.npy`` file of points as a validated read-only memory map.

    The returned array is an ``np.memmap`` the OS pages on demand — handing
    it to :func:`as_points` (or any public pipeline) costs no RAM copy when
    the file already stores C-contiguous float64 rows, which is what the
    out-of-core engine relies on at ``n >= 10^7``.

    Degenerate files fail fast with clear errors instead of surfacing deep
    inside a kernel: a missing or empty file, a non-array payload, and a
    non-floating dtype (an integer or structured ``.npy`` cannot be mapped
    without a converting copy, which would defeat the point) all raise
    :class:`~repro.core.errors.InvalidPointSetError`.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise InvalidPointSetError(f"points file not found: {path}")
    if file_path.stat().st_size == 0:
        raise InvalidPointSetError(f"points file is empty: {path}")
    try:
        array = np.load(file_path, mmap_mode=mmap_mode, allow_pickle=False)
    except ValueError as error:
        raise InvalidPointSetError(
            f"could not open {path} as an .npy array: {error}"
        ) from None
    if not isinstance(array, np.ndarray) or array.dtype.hasobject:
        raise InvalidPointSetError(
            f"{path} does not contain a plain numeric array"
        )
    if not np.issubdtype(array.dtype, np.floating):
        raise InvalidPointSetError(
            f"{path} has dtype {array.dtype}; memory-mapped points must be "
            f"float32 or float64 (convert once with "
            f"np.save(path, array.astype(np.float64)))"
        )
    if array.ndim != 2 or array.shape[0] == 0 or array.shape[1] == 0:
        raise InvalidPointSetError(
            f"{path} must store a non-empty (n, d) array; got shape "
            f"{array.shape}"
        )
    return array


class PointSet:
    """An immutable set of points in d-dimensional Euclidean space.

    The class is a thin convenience wrapper: algorithms accept raw arrays just
    as happily, but a ``PointSet`` caches the global bounding box and exposes
    named accessors which keep example and benchmark code readable.

    The input dtype is preserved (float32 stays float32, everything else
    normalizes to float64), so wrapping a float32 embedding matrix does not
    double its memory; the algorithm entry points still promote to float64 at
    their own boundary unless a lowered backend is selected.

    ``copy=False`` wraps an already-canonical array (C-contiguous
    float32/float64) without duplicating its storage — the memory-mapped
    mode: ``PointSet(open_memmap_points(path), copy=False)`` keeps the
    points on disk, paged by the OS.  The wrapper is only able to enforce
    read-only access on storage it owns, so with ``copy=False`` the caller's
    array is left exactly as passed (a ``mmap_mode='r'`` map is already
    non-writeable).
    """

    def __init__(self, points, *, copy: bool = True):
        self._coords = as_points(points, copy=copy, dtype=None)
        if copy:
            self._coords.setflags(write=False)
        self._lower_bound = None
        self._upper_bound = None

    @property
    def coordinates(self) -> np.ndarray:
        """The underlying ``(n, d)`` read-only coordinate array."""
        return self._coords

    @property
    def size(self) -> int:
        """Number of points."""
        return self._coords.shape[0]

    @property
    def dimension(self) -> int:
        """Number of coordinate dimensions."""
        return self._coords.shape[1]

    @property
    def lower_bound(self) -> np.ndarray:
        """Coordinate-wise minimum over all points (computed once, cached)."""
        if self._lower_bound is None:
            self._lower_bound = self._coords.min(axis=0)
            self._lower_bound.setflags(write=False)
        return self._lower_bound

    @property
    def upper_bound(self) -> np.ndarray:
        """Coordinate-wise maximum over all points (computed once, cached)."""
        if self._upper_bound is None:
            self._upper_bound = self._coords.max(axis=0)
            self._upper_bound.setflags(write=False)
        return self._upper_bound

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index):
        return self._coords[index]

    def __iter__(self):
        return iter(self._coords)

    def __repr__(self) -> str:
        return f"PointSet(n={self.size}, d={self.dimension})"
