"""Point-set container and validation.

Every algorithm in the library takes an ``(n, d)`` float64 array of points.
:func:`as_points` is the single entry point that normalizes user input into
that canonical form, and :class:`PointSet` is a light wrapper that carries the
array together with a few cached summary statistics (bounding box, number of
points, dimensionality) that several algorithms need.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidPointSetError


def as_points(points, *, copy: bool = False, min_points: int = 1) -> np.ndarray:
    """Validate and normalize ``points`` into an ``(n, d)`` float64 array.

    Parameters
    ----------
    points:
        Anything ``np.asarray`` accepts: a list of coordinate tuples, an
        existing NumPy array, a :class:`PointSet`, etc.
    copy:
        If true, always return a fresh array even when the input is already in
        canonical form.
    min_points:
        Minimum number of rows required; most algorithms need at least one
        point and MST-style algorithms need at least two.

    Raises
    ------
    InvalidPointSetError
        If the array is not two-dimensional, has zero columns, has fewer than
        ``min_points`` rows, or contains non-finite values.
    """
    if isinstance(points, PointSet):
        array = points.coordinates
    else:
        try:
            array = np.asarray(points, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise InvalidPointSetError(
                f"points could not be converted to a float64 array: {error}"
            ) from None
    if array.size == 0:
        raise InvalidPointSetError(
            "points is empty; provide at least one point as an (n, d) array"
        )
    if array.ndim == 1:
        # A flat list of scalars is ambiguous; treat it as n one-dimensional
        # points, which is the only meaningful interpretation.
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise InvalidPointSetError(
            f"points must be a 2-d array of shape (n, d); got ndim={array.ndim}"
        )
    n, d = array.shape
    if d == 0:
        raise InvalidPointSetError("points must have at least one coordinate dimension")
    if n < min_points:
        raise InvalidPointSetError(
            f"at least {min_points} point(s) required; got {n}"
        )
    if not np.all(np.isfinite(array)):
        raise InvalidPointSetError("points must not contain NaN or infinite values")
    if copy:
        array = np.array(array, dtype=np.float64, order="C", copy=True)
    elif array.dtype != np.float64 or not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array, dtype=np.float64)
    return array


class PointSet:
    """An immutable set of points in d-dimensional Euclidean space.

    The class is a thin convenience wrapper: algorithms accept raw arrays just
    as happily, but a ``PointSet`` caches the global bounding box and exposes
    named accessors which keep example and benchmark code readable.
    """

    def __init__(self, points):
        self._coords = as_points(points, copy=True)
        self._coords.setflags(write=False)
        self._lower_bound = None
        self._upper_bound = None

    @property
    def coordinates(self) -> np.ndarray:
        """The underlying ``(n, d)`` read-only coordinate array."""
        return self._coords

    @property
    def size(self) -> int:
        """Number of points."""
        return self._coords.shape[0]

    @property
    def dimension(self) -> int:
        """Number of coordinate dimensions."""
        return self._coords.shape[1]

    @property
    def lower_bound(self) -> np.ndarray:
        """Coordinate-wise minimum over all points (computed once, cached)."""
        if self._lower_bound is None:
            self._lower_bound = self._coords.min(axis=0)
            self._lower_bound.setflags(write=False)
        return self._lower_bound

    @property
    def upper_bound(self) -> np.ndarray:
        """Coordinate-wise maximum over all points (computed once, cached)."""
        if self._upper_bound is None:
            self._upper_bound = self._coords.max(axis=0)
            self._upper_bound.setflags(write=False)
        return self._upper_bound

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index):
        return self._coords[index]

    def __iter__(self):
        return iter(self._coords)

    def __repr__(self) -> str:
        return f"PointSet(n={self.size}, d={self.dimension})"
