"""Worked examples and structural claims taken directly from the paper.

* Figure 1: core distances and HDBSCAN* MST edge weights of the 9-point
  example (minPts = 3).
* Appendix D, Theorem D.1: for minPts <= 3 the EMST is also an MST of the
  mutual reachability graph; Figure 11 shows this can fail for minPts = 4.
* Section 3.2.2: the new well-separation definition produces fewer pairs.
"""

import numpy as np
import pytest

from repro.core.distance import euclidean
from repro.emst import emst_bruteforce, emst_memogfk
from repro.hdbscan import (
    core_distances,
    hdbscan,
    hdbscan_mst_bruteforce,
    hdbscan_mst_memogfk,
)
from repro.mst.edges import total_weight


class TestFigure1Example:
    """The example data set of Figure 1 (points a .. i, minPts = 3)."""

    def test_distances_match_figure(self, paper_example):
        points, index = paper_example
        assert euclidean(points[index["a"]], points[index["b"]]) == pytest.approx(4.0)
        assert euclidean(points[index["a"]], points[index["d"]]) == pytest.approx(
            np.sqrt(2.0)
        )
        assert euclidean(points[index["b"]], points[index["d"]]) == pytest.approx(
            np.sqrt(10.0)
        )
        assert euclidean(points[index["d"]], points[index["e"]]) == pytest.approx(6.0)
        assert euclidean(points[index["f"]], points[index["g"]]) == pytest.approx(1.0)
        assert euclidean(points[index["e"]], points[index["g"]]) == pytest.approx(
            np.sqrt(5.0)
        )
        assert euclidean(points[index["f"]], points[index["h"]]) == pytest.approx(
            np.sqrt(5.0)
        )
        assert euclidean(points[index["b"]], points[index["c"]]) == pytest.approx(
            2.0 * np.sqrt(2.0)
        )
        assert euclidean(points[index["h"]], points[index["i"]]) == pytest.approx(
            np.sqrt(346.0)
        )

    def test_core_distance_of_a_is_4(self, paper_example):
        # Figure 1a: a's core distance is 4 because b is a's third nearest
        # neighbour (including a itself) at distance 4.
        points, index = paper_example
        core = core_distances(points, 3)
        assert core[index["a"]] == pytest.approx(4.0)

    def test_mst_edge_weight_a_d_is_4(self, paper_example):
        # Figure 1a: the weight of edge (a, d) in the mutual reachability
        # graph is max(4, sqrt(10), sqrt(2)) = 4.
        points, index = paper_example
        core = core_distances(points, 3)
        weight = max(
            core[index["a"]],
            core[index["d"]],
            euclidean(points[index["a"]], points[index["d"]]),
        )
        assert weight == pytest.approx(4.0)

    def test_hdbscan_mst_contains_cross_cluster_edge_de(self, paper_example):
        # The dendrogram of Figure 1b splits on edge (d, e): that edge must be
        # in the MST of the mutual reachability graph.
        points, index = paper_example
        result = hdbscan_mst_memogfk(points, 3)
        edges = {(min(u, v), max(u, v)) for u, v, _ in result.edges}
        assert (min(index["d"], index["e"]), max(index["d"], index["e"])) in edges

    def test_cut_at_3_5_gives_expected_clusters_and_noise(self, paper_example):
        # Figure 1b: cutting the dendrogram at eps = 3.5 gives clusters
        # {d, b} and {e, g, f, h}, with a, c and i as noise.
        points, index = paper_example
        result = hdbscan(points, min_pts=3)
        labels = result.dbscan_labels(3.5)
        noise = {name for name in "abcdefghi" if labels[index[name]] == -1}
        assert noise == {"a", "c", "i"}
        assert labels[index["d"]] == labels[index["b"]]
        cluster_two = {labels[index[name]] for name in ("e", "g", "f", "h")}
        assert len(cluster_two) == 1
        assert labels[index["d"]] != labels[index["e"]]


class TestAppendixD:
    @pytest.mark.parametrize("min_pts", [1, 2, 3])
    def test_emst_weight_equals_hdbscan_mst_weight_for_small_minpts(self, min_pts):
        points = np.random.default_rng(min_pts + 40).random((80, 2))
        emst_edges = emst_bruteforce(points).edges
        core = core_distances(points, min_pts)
        emst_weight_mutual = sum(
            max(w, core[u], core[v]) for u, v, w in emst_edges
        )
        hdbscan_weight = hdbscan_mst_bruteforce(points, min_pts).total_weight
        # Theorem D.1: the EMST, re-weighted by mutual reachability, is an MST
        # of the mutual reachability graph when minPts <= 3.
        assert emst_weight_mutual == pytest.approx(hdbscan_weight, rel=1e-9)

    def test_emst_can_differ_for_larger_minpts(self):
        # For minPts >= 4 the EMST re-weighted by mutual reachability is in
        # general only an upper bound on the HDBSCAN* MST weight (Figure 11
        # gives a concrete 7-point example).  Verify the inequality holds and
        # that at least one random instance is strict.
        strict = False
        for seed in range(8):
            points = np.random.default_rng(seed).random((40, 2))
            core = core_distances(points, 6)
            emst_weight_mutual = sum(
                max(w, core[u], core[v]) for u, v, w in emst_bruteforce(points).edges
            )
            hdbscan_weight = hdbscan_mst_bruteforce(points, 6).total_weight
            assert emst_weight_mutual >= hdbscan_weight - 1e-9
            if emst_weight_mutual > hdbscan_weight + 1e-9:
                strict = True
        assert strict


class TestSection322PairReduction:
    def test_new_separation_reduces_pairs_on_clustered_data(self, varden_points):
        from repro.spatial import KDTree
        from repro.wspd import count_wspd_pairs

        min_pts = 25
        core = core_distances(varden_points, min_pts)
        tree = KDTree(varden_points, leaf_size=1)
        tree.annotate_core_distances(core)
        geometric = count_wspd_pairs(tree, separation="geometric")
        disjunctive = count_wspd_pairs(tree, separation="hdbscan")
        # The paper reports 2.5x-10.3x fewer pairs; at this reduced scale we
        # only assert a strict reduction.
        assert disjunctive < geometric
